//! Reproduces the paper's Example 3 (BITCOUNT1) and the control-flow
//! behaviour of Figure 11: four data-dependent inner loops run as separate
//! instruction streams and re-join at an explicit ALL-SS barrier.
//!
//! Run with: `cargo run --example bitcount_barrier`

use ximd::workloads::{bitcount, gen};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = gen::bit_weighted_ints(7, 20, 24);
    println!(
        "counting bits of {} elements (cumulative into B[])\n",
        data.len()
    );

    let (outcome, trace) = bitcount::run_ximd_traced(&data)?;
    let expect = bitcount::oracle(&data);
    assert_eq!(outcome.b, expect, "simulated B[] must match the oracle");
    println!("B[] = {:?}", outcome.b);
    println!("xsim: {} cycles\n", outcome.cycles);

    // Figure 11: the stream profile. Runs of '4' are the four concurrent
    // bit loops; each drop to '1' is the barrier re-join.
    println!("=== concurrent-stream profile (paper Figure 11) ===");
    let profile = bitcount::stream_profile(&trace);
    let mut line = String::new();
    for &s in &profile {
        line.push(char::from_digit(s as u32, 10).unwrap_or('?'));
    }
    println!("streams per cycle: {line}");
    println!("max concurrent streams: {}", profile.iter().max().unwrap());
    let joins = profile.windows(2).filter(|w| w[0] > 1 && w[1] == 1).count();
    println!("barrier re-joins: {joins}\n");

    // The §4.1 comparison: a single sequencer must count each element
    // serially.
    let v = bitcount::run_vliw(&data)?;
    assert_eq!(v.b, expect);
    println!(
        "vsim (VLIW baseline): {} cycles -> XIMD speedup {:.2}x",
        v.cycles,
        v.cycles as f64 / outcome.cycles as f64
    );
    Ok(())
}
