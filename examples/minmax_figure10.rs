//! Reproduces the paper's Example 2 (MINMAX) and Figure 10 end-to-end:
//! prints the program in the paper's boxed listing format, runs it on the
//! published data set `IZ() = (5,3,4,7)`, prints the cycle-by-cycle address
//! trace, and checks it against the published table.
//!
//! Run with: `cargo run --example minmax_figure10`

use ximd::asm::listing::{listing, ListingOptions};
use ximd::workloads::minmax;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== MINMAX (paper Example 2) ===\n");
    let assembly = minmax::ximd_assembly();
    println!("{}", listing(&assembly.program, ListingOptions::default()));

    let data = [5, 3, 4, 7];
    println!("running with IZ() = {data:?} (the paper's sample data set)\n");
    let (outcome, trace) = minmax::run_ximd_traced(&data)?;

    println!("=== Address trace (paper Figure 10) ===\n");
    print!("{trace}");
    println!(
        "\nresult: min = {}, max = {} in {} cycles",
        outcome.min, outcome.max, outcome.cycles
    );

    match minmax::diff_figure10(&trace) {
        None => println!("trace matches the published Figure 10 cycle for cycle"),
        Some((cycle, expected, actual)) => {
            println!("MISMATCH at cycle {cycle}:\n  expected {expected}\n  actual   {actual}");
            std::process::exit(1);
        }
    }

    // The comparison the figure illustrates: both conditional updates
    // execute in parallel, so each iteration costs 3 cycles on XIMD; the
    // VLIW baseline serializes its branches.
    let big = ximd::workloads::gen::uniform_ints(1, 256, -10_000, 10_000);
    let x = minmax::run_ximd(&big)?;
    let v = minmax::run_vliw(&big)?;
    println!(
        "\nn = {}: xsim {} cycles, vsim {} cycles -> XIMD speedup {:.2}x",
        big.len(),
        x.cycles,
        v.cycles,
        v.cycles as f64 / x.cycles as f64
    );
    Ok(())
}
