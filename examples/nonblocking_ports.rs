//! The paper's Figure 12: two concurrent processes exchanging six values
//! through non-blocking sync-bit synchronizations, compared against the
//! same program using memory flags — "this will result in increased
//! performance".
//!
//! Run with: `cargo run --example nonblocking_ports`

use ximd::workloads::nonblocking::{run_flags, run_sync, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Figure 12: non-blocking synchronizations on an 8-FU XIMD");
    println!("variables a,b,c arrive on ports 0-2 (process 1), x,y,z on 3-5 (process 2)\n");
    println!(
        "{:>6} {:>12} {:>12} {:>9}",
        "seed", "sync cycles", "flag cycles", "saving"
    );

    let mut total_sync = 0u64;
    let mut total_flags = 0u64;
    for seed in 0..10 {
        let scenario = Scenario::with_seed(seed);
        let sync = run_sync(&scenario)?;
        let flags = run_flags(&scenario)?;
        assert_eq!(sync.p1_wrote, scenario.xyz.to_vec());
        assert_eq!(sync.p2_wrote, scenario.abc.to_vec());
        assert_eq!(flags.p1_wrote, scenario.xyz.to_vec());
        assert_eq!(flags.p2_wrote, scenario.abc.to_vec());
        println!(
            "{seed:>6} {:>12} {:>12} {:>8.1}%",
            sync.cycles,
            flags.cycles,
            100.0 * (1.0 - sync.cycles as f64 / flags.cycles as f64)
        );
        total_sync += sync.cycles;
        total_flags += flags.cycles;
    }
    println!(
        "\nmean saving from sync bits: {:.1}% ({} vs {} total cycles)",
        100.0 * (1.0 - total_sync as f64 / total_flags as f64),
        total_sync,
        total_flags
    );
    Ok(())
}
