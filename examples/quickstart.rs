//! Quick start: assemble an XIMD program, run it on xsim, inspect results.
//!
//! The program forks two functional units onto independent search loops —
//! FU0 scans memory for the first value above a threshold while FU1 counts
//! down a timer — and joins them with an ALL-SS barrier. A VLIW machine
//! would have to interleave the two loops through its single sequencer.
//!
//! Run with: `cargo run --example quickstart`

use ximd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r"
; Two threads: FU0 scans M[100..] for a value > 50 (result -> r1),
; FU1 decrements r4 to zero. An ALL-SS barrier joins them.
.width 2
.reg idx r0
.reg found r1
.reg v r2
.reg timer r4
00:
  fu0: iadd #100,#0,idx ; -> 01:
  fu1: nop              ; -> 05:
; --- FU0: scan loop.
01:
  fu0: load idx,#0,v    ; -> 02:
02:
  fu0: gt v,#50         ; -> 03:
03:
  fu0: iadd idx,#1,idx  ; if cc0 04: | 01:
04:
  fu0: iadd v,#0,found  ; if allss 09: | 04: ; DONE
; --- FU1: timer loop.
05:
  fu1: isub timer,#1,timer ; -> 06:
06:
  fu1: gt timer,#0      ; -> 07:
07:
  fu1: nop              ; if cc1 05: | 08:
08:
  fu1: nop              ; if allss 09: | 08: ; DONE
09:
  all: nop ; halt
";

    // Assemble.
    let assembly = assemble(source)?;
    println!("assembled {} wide instructions\n", assembly.program.len());

    // Set up the machine: data in memory, timer in a register.
    let mut sim = Xsim::new(assembly.program.clone(), MachineConfig::with_width(2))?;
    sim.mem_mut().poke_slice(100, &[12, 9, 33, 77, 4])?;
    sim.write_reg(Reg(4), Value::I32(9));
    sim.enable_trace();

    let summary = sim.run(1_000)?;

    println!("finished in {} cycles", summary.cycles);
    println!("first value > 50: {}", sim.reg(Reg(1)).as_i32());
    println!(
        "max concurrent instruction streams: {}",
        summary.stats.max_concurrent_streams
    );
    println!(
        "issue-slot utilization: {:.1}%",
        summary.stats.utilization() * 100.0
    );

    println!("\naddress trace (paper Figure 10 format):");
    print!("{}", sim.trace().expect("tracing enabled"));
    Ok(())
}
