//! The Figure 13 compilation flow: compile each program thread at several
//! functional-unit widths (tiles), then pack one tile per thread into
//! instruction memory, comparing the naive stacked layout against the
//! skyline packer.
//!
//! Run with: `cargo run --example compile_and_tile`
//!
//! With `XIMD_EMIT_ASM=<dir>` set, additionally writes each thread's
//! compiled XIMD assembly to `<dir>/<name>.xasm` — with its schedule
//! certificate prepended as `// ximd-cert:` lines — plus every suite
//! workload, so the emitted programs can be linted and certified (CI runs
//! `xlint` and `xlint --certify` over them).
//!
//! With `XIMD_EMIT_MUTANTS=<dir>` set, also writes deliberately broken
//! schedules (a dropped op, a rewired modulo kernel) under their original
//! certificates; CI asserts `xlint --certify` rejects every one.

use ximd::compiler::compile;
use ximd::compiler::pack::{pack_skyline, pack_stacked};
use ximd::compiler::tile::menus;

const THREADS: &str = r"
fn scan(n) {
    let best = 0;
    let i = 0;
    while (i < n) {
        if (mem[100 + i] > best) { best = mem[100 + i]; }
        i = i + 1;
    }
    return best;
}
fn blend(a, b, c, d) {
    let e = a + b; let f = c + d;
    let g = a - b; let h = c - d;
    return (e * f) + (g * h);
}
fn powsum(n) {
    let p = 1;
    let s = 0;
    let i = 0;
    while (i < n) { s = s + p; p = p * 2; i = i + 1; }
    return s;
}
fn clampdiff(a, b) {
    let d = a - b;
    if (d < 0) { d = 0 - d; }
    if (d > 100) { d = 100; }
    return d;
}
fn copyrange(n) {
    let i = 0;
    while (i < n) { mem[400 + i] = mem[300 + i]; i = i + 1; }
    return 0;
}
fn poly(x) {
    return ((x * x) * x) + 3 * (x * x) - 7 * x + 42;
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sanity: the first thread actually runs.
    let scan = compile(THREADS, 4)?;
    let (best, _) = scan.run_vliw_with(&[5], 10_000, |sim| {
        sim.mem_mut().poke_slice(100, &[3, 17, 4, 11, 9]).unwrap();
    })?;
    assert_eq!(best, Some(17));

    println!("=== tile menus (one thread compiled at widths 1, 2, 4, 8) ===\n");
    let menus = menus(THREADS, &[1, 2, 4, 8])?;
    for menu in &menus {
        print!("{:<10}", menu.name);
        for t in &menu.options {
            print!(
                "  w{}: {:>3} instrs (density {:.2})",
                t.width,
                t.height,
                t.density()
            );
        }
        println!();
    }

    if let Ok(dir) = std::env::var("XIMD_EMIT_ASM") {
        use ximd::compiler::compile_named;
        use ximd::compiler::forkjoin::{compile_forkjoin, Guard, GuardedLoop};
        use ximd::compiler::ir::{Inst, VReg, Val};
        use ximd::prelude::print_program;
        std::fs::create_dir_all(&dir)?;
        for menu in &menus {
            let f = compile_named(THREADS, &menu.name, 4)?;
            let mut text = f.cert.as_ref().map(|c| c.render()).unwrap_or_default();
            text.push_str(&print_program(&f.ximd_program()));
            let path = std::path::Path::new(&dir).join(format!("{}.xasm", menu.name));
            std::fs::write(&path, text)?;
            println!("emitted {}", path.display());
        }
        // The suite workloads (including the software-pipelined kernels),
        // each with its schedule certificate, so CI can run translation
        // validation over exactly what the compiler claims it scheduled.
        for w in &ximd::compiler::suite::SUITE {
            let (f, _) = w.compile(4)?;
            let cert = f
                .cert
                .as_ref()
                .expect("compiled output carries a certificate");
            let mut text = cert.render();
            text.push_str(&print_program(&f.ximd_program()));
            let path = std::path::Path::new(&dir).join(format!("{}.xasm", w.name));
            std::fs::write(&path, text)?;
            println!("emitted {}", path.display());
        }
        // A genuinely multi-stream program too: a fork/join guard loop,
        // with the generator's region hint prepended so xlint can
        // cross-check its SSET inference against codegen's intent.
        let (ind, trips, v) = (VReg(0), VReg(1), VReg(2));
        let fj = compile_forkjoin(
            &GuardedLoop {
                prologue: vec![Inst::Load {
                    base: Val::Const(99),
                    off: ind.into(),
                    d: v,
                }],
                guards: (0..3)
                    .map(|i| Guard {
                        op: ximd::isa::CmpOp::Ge,
                        a: v.into(),
                        b: Val::Const(i * 25),
                        body: vec![Inst::Bin {
                            op: ximd::isa::AluOp::Iadd,
                            a: VReg(3 + i as u32).into(),
                            b: Val::Const(1),
                            d: VReg(3 + i as u32),
                        }],
                    })
                    .collect(),
                induction: ind,
                start: 1,
                step: 1,
                trips,
            },
            4,
        )?;
        let hint = fj.region.expect("XIMD fork/join always has a region");
        let path = std::path::Path::new(&dir).join("forkjoin.xasm");
        std::fs::write(
            &path,
            format!("{}\n{}", hint.comment(), print_program(&fj.program)),
        )?;
        println!("emitted {}", path.display());
    }

    if let Ok(dir) = std::env::var("XIMD_EMIT_MUTANTS") {
        use ximd::isa::{ControlOp, DataOp, FuId};
        use ximd::prelude::print_program;
        std::fs::create_dir_all(&dir)?;

        // A schedule that lost an op: the middle data op becomes a nop.
        let (f, _) = ximd::compiler::suite::MINMAX.compile(4)?;
        let cert = f.cert.as_ref().expect("certificate").render();
        let mut program = f.ximd_program();
        let cells: Vec<_> = program
            .iter()
            .flat_map(|(addr, wide)| {
                wide.iter()
                    .enumerate()
                    .filter(|(_, p)| !p.data.is_nop())
                    .map(move |(fu, _)| (addr, FuId(fu as u8)))
                    .collect::<Vec<_>>()
            })
            .collect();
        let (addr, fu) = cells[cells.len() / 2];
        program.parcel_mut(addr, fu).expect("cell exists").data = DataOp::Nop;
        let path = std::path::Path::new(&dir).join("minmax_dropped.xasm");
        std::fs::write(&path, cert + &print_program(&program))?;
        println!("emitted mutant {}", path.display());

        // A modulo kernel whose loop-back edge was rewired one row late.
        let (f, _) = ximd::compiler::suite::SAXPY.compile(4)?;
        let cert = f.cert.as_ref().expect("certificate").render();
        let mut program = f.ximd_program();
        let back = program
            .iter()
            .find_map(|(addr, wide)| match wide[0].ctrl {
                ControlOp::Branch { taken, .. } if taken < addr => Some(addr),
                _ => None,
            })
            .expect("pipelined saxpy has a loop-back branch");
        for fu in 0..program.width() {
            let p = program.parcel_mut(back, FuId(fu as u8)).expect("parcel");
            if let ControlOp::Branch { taken, .. } = &mut p.ctrl {
                taken.0 += 1;
            }
        }
        let path = std::path::Path::new(&dir).join("saxpy_retargeted.xasm");
        std::fs::write(&path, cert + &print_program(&program))?;
        println!("emitted mutant {}", path.display());
    }

    println!("\n=== packing into an 8-FU instruction memory (Figure 13) ===\n");
    let stacked = pack_stacked(&menus, 8);
    let deps = [(0usize, 2usize), (1, 3)]; // example data dependencies between threads
    let skyline = pack_skyline(&menus, 8, &deps);
    assert!(stacked.is_valid() && skyline.is_valid() && skyline.respects(&deps));

    println!(
        "solution 1 (stacked, full width): {:>4} words, op density {:.2}",
        stacked.total_height(),
        stacked.op_density()
    );
    println!(
        "solution 2 (skyline, min-area tiles, 2 deps): {:>4} words, op density {:.2}",
        skyline.total_height(),
        skyline.op_density()
    );
    println!(
        "\nstatic code size reduction: {:.1}%",
        100.0 * (1.0 - skyline.total_height() as f64 / stacked.total_height() as f64)
    );

    println!("\nplacements (thread @ col..col+w, rows r..r+h):");
    for p in &skyline.placements {
        println!(
            "  {:<10} w{} cols {}..{}  rows {:>3}..{:<3}",
            menus[p.thread].name,
            p.width,
            p.col,
            p.col + p.width,
            p.row,
            p.end_row()
        );
    }
    Ok(())
}
