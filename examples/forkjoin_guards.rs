//! Fork/join code generation (the paper's §3.2 technique, generalized):
//! a histogram-style loop with G independent guarded updates is compiled
//! two ways — multi-stream XIMD (one FU per guard, equal-length paths) and
//! serialized VLIW — and the cycle counts are compared as G grows.
//!
//! Run with: `cargo run --example forkjoin_guards`

use ximd::compiler::forkjoin::{compile_forkjoin, compile_forkjoin_vliw, Guard, GuardedLoop};
use ximd::compiler::ir::{Inst, VReg, Val};
use ximd::isa::AluOp;
use ximd::prelude::*;
use ximd::workloads::gen;

fn classify_loop(guards: usize) -> GuardedLoop {
    let ind = VReg(0);
    let trips = VReg(1);
    let v = VReg(2);
    GuardedLoop {
        prologue: vec![Inst::Load {
            base: Val::Const(99),
            off: ind.into(),
            d: v,
        }],
        guards: (0..guards)
            .map(|i| {
                let counter = VReg(3 + i as u32);
                Guard {
                    op: CmpOp::Ge,
                    a: v.into(),
                    b: Val::Const((i as i32) * 100 / guards as i32),
                    body: vec![Inst::Bin {
                        op: AluOp::Iadd,
                        a: counter.into(),
                        b: Val::Const(1),
                        d: counter,
                    }],
                }
            })
            .collect(),
        induction: ind,
        start: 1,
        step: 1,
        trips,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64usize;
    let data = gen::uniform_ints(17, n, 0, 100);
    println!("classifying {n} values into cumulative >= buckets\n");
    println!(
        "{:>7} {:>12} {:>12} {:>9} {:>9}",
        "guards", "xsim cycles", "vsim cycles", "speedup", "streams"
    );

    for guards in [2usize, 3, 4, 5, 6, 7] {
        let spec = classify_loop(guards);
        let fj = compile_forkjoin(&spec, guards + 1)?;
        let vl = compile_forkjoin_vliw(&spec, guards + 1)?;

        let mut xs = Xsim::new(fj.program.clone(), MachineConfig::with_width(fj.width))?;
        xs.mem_mut().poke_slice(100, &data)?;
        xs.write_reg(fj.trips_reg, (n as i32).into());
        xs.enable_trace();
        let xc = xs.run(1_000_000)?.cycles;

        let mut vs = Xsim::new(vl.program.clone(), MachineConfig::with_width(vl.width))?;
        vs.mem_mut().poke_slice(100, &data)?;
        vs.write_reg(vl.trips_reg, (n as i32).into());
        let vc = vs.run(1_000_000)?.cycles;

        // Verify both against the oracle.
        for i in 0..guards {
            let bound = (i as i32) * 100 / guards as i32;
            let expect = data.iter().filter(|&&x| x >= bound).count() as i32;
            let c = VReg(3 + i as u32);
            assert_eq!(xs.reg(fj.reg_of[&c]).as_i32(), expect);
            assert_eq!(vs.reg(vl.reg_of[&c]).as_i32(), expect);
        }

        println!(
            "{guards:>7} {xc:>12} {vc:>12} {:>8.2}x {:>9}",
            vc as f64 / xc as f64,
            xs.trace().unwrap().max_streams()
        );
    }

    println!("\nXIMD executes all guard branches in one cycle and re-joins by equal-length");
    println!("paths (implicit barrier); the single-sequencer baseline pays one branch cycle");
    println!("per guard — the control-flow bottleneck of section 1.3, measured.");
    Ok(())
}
