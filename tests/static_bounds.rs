//! Differential soundness for the static cycle-bound oracle.
//!
//! For every workload × timing model the static bound from
//! [`ximd_analysis::cycle_bounds`] must *dominate* the simulator: a finite
//! bound is an upper bound on measured cycles, and a reported trip count
//! covers the iterations an address trace actually records. An `unbounded`
//! verdict is always sound (and several XIMD-form workloads honestly earn
//! one: their streams diverge, so no static mate crediting applies).
//!
//! The random-program property at the bottom checks the other acceptance
//! direction: an *executed* out-of-bounds access never escapes the
//! `oob-memory-access` lint.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use ximd::analysis::{cycle_bounds, AnalysisConfig, BoundsConfig, BoundsReport, Check, Lockstep};
use ximd::models::randprog;
use ximd::prelude::*;
use ximd::sim::TimingSpec;
use ximd::workloads::{
    bitcount, gen, livermore, minmax, nonblocking, race, saxpy, tproc, with_timing, RunSpec,
};

/// The acceptance matrix's timing column: ideal, a latency table, banking.
fn timing_specs() -> Vec<TimingSpec> {
    ["ideal", "latency:mem=4", "banked:2"]
        .iter()
        .map(|s| TimingSpec::parse(s).expect("spec parses"))
        .collect()
}

/// Analysis config matching the default simulator machine under `spec`,
/// with entry assumptions for seeded registers.
fn analysis_config(spec: &TimingSpec, assume: &[(Reg, i32, i32)]) -> AnalysisConfig {
    let mut config = AnalysisConfig::default();
    config.geometry.banks = spec.banks().unwrap_or(1);
    config.assume = assume.to_vec();
    config
}

fn bound(
    program: &Program,
    spec: &TimingSpec,
    lockstep: Lockstep,
    assume: &[(Reg, i32, i32)],
) -> BoundsReport {
    let config = analysis_config(spec, assume);
    let bounds = BoundsConfig {
        timing: spec.clone(),
        lockstep,
    };
    cycle_bounds(program, &config, &bounds)
}

/// One workload in the differential: its program, a fresh seeded simulator,
/// and the analysis-side facts that mirror the seeding.
struct Case {
    name: &'static str,
    program: Program,
    prepare: Box<dyn Fn() -> (Xsim, RunSpec)>,
    lockstep: Lockstep,
    assume: Vec<(Reg, i32, i32)>,
}

fn cases() -> Vec<Case> {
    let minmax_data = [5, 3, 4, 7];
    let bitcount_data = gen::bit_weighted_ints(13, 48, 24);
    let livermore_y = gen::livermore_y(5, 64);
    let livermore_n = livermore_y.len() as i32 - 1;
    let scenario = nonblocking::Scenario::with_seed(3);
    let race_data = gen::uniform_ints(11, 64, -100, 100);
    let race_target = race_data[40];

    vec![
        Case {
            name: "tproc",
            program: tproc::ximd_assembly().program,
            prepare: Box::new(|| tproc::prepared(9, -4, 3, 12).expect("tproc prepares")),
            lockstep: Lockstep::Auto,
            assume: vec![],
        },
        Case {
            name: "minmax",
            program: minmax::ximd_assembly().program,
            prepare: Box::new(move || minmax::prepared(&minmax_data).expect("minmax prepares")),
            lockstep: Lockstep::Auto,
            assume: vec![(minmax::REG_N, 4, 4)],
        },
        Case {
            name: "bitcount",
            program: bitcount::ximd_assembly().program,
            prepare: Box::new(move || {
                bitcount::prepared(&bitcount_data).expect("bitcount prepares")
            }),
            lockstep: Lockstep::Auto,
            assume: vec![],
        },
        Case {
            name: "livermore12",
            program: livermore::ximd_program(),
            prepare: Box::new(move || livermore::prepared(&livermore_y).expect("ll12 prepares")),
            lockstep: Lockstep::Auto,
            assume: vec![
                (livermore::REG_K, 0, 0),
                (livermore::REG_N, livermore_n, livermore_n),
            ],
        },
        // The same schedule bounded as the single-sequencer word machine it
        // was compiled as: lockstep holds under any timing model, so the
        // oracle may credit whole-word facts and prove the loop finite.
        Case {
            name: "livermore12/lockstep",
            program: livermore::ximd_program(),
            prepare: Box::new(move || {
                livermore::prepared(&gen::livermore_y(5, 64)).expect("ll12 prepares")
            }),
            lockstep: Lockstep::Assume,
            assume: vec![
                (livermore::REG_K, 0, 0),
                (livermore::REG_N, livermore_n, livermore_n),
            ],
        },
        Case {
            name: "nonblocking/sync",
            program: nonblocking::sync_assembly().program,
            prepare: Box::new(move || {
                nonblocking::prepared_sync(&scenario).expect("figure 12 prepares")
            }),
            lockstep: Lockstep::Auto,
            assume: vec![],
        },
        Case {
            name: "race",
            program: race::ximd_assembly().program,
            prepare: Box::new(move || {
                let mut sim = Xsim::new(
                    race::ximd_assembly().program,
                    MachineConfig::with_width(race::WIDTH),
                )
                .expect("race builds");
                sim.mem_mut()
                    .poke_slice(race::BASE as i64, &race_data)
                    .expect("race data fits");
                sim.write_reg(race::REG_TARGET, Value::I32(race_target));
                sim.write_reg(race::REG_N, Value::I32(race_data.len() as i32));
                sim.write_reg(race::REG_RESULT_FWD, Value::I32(-1));
                sim.write_reg(race::REG_RESULT_BWD, Value::I32(-1));
                (sim, RunSpec::Run(40 + 8 * race_data.len() as u64))
            }),
            lockstep: Lockstep::Auto,
            assume: vec![],
        },
    ]
}

/// The tentpole acceptance check: for every workload × timing model, a
/// finite static bound is never beaten by the machine it abstracts.
#[test]
fn static_bound_dominates_simulated_cycles() {
    for case in cases() {
        for spec in timing_specs() {
            let (mut sim, run) = with_timing((case.prepare)(), &spec).expect("timing spec applies");
            let summary = match run.drive(&mut sim) {
                Ok(summary) => summary,
                // Cycle-counting XIMD schedules embed ideal-timing
                // assumptions (see `with_timing`'s docs); a workload that
                // cannot converge under a model has no measured cycle count
                // to compare against, so that matrix cell is vacuous.
                Err(SimError::CycleLimit { .. }) => continue,
                Err(e) => panic!("{} under {spec} must complete: {e}", case.name),
            };
            let report = bound(&case.program, &spec, case.lockstep, &case.assume);
            if let Some(total) = report.total {
                assert!(
                    total >= summary.cycles,
                    "{} under {spec}: static bound {total} < simulated {} cycles",
                    case.name,
                    summary.cycles
                );
            }
        }
    }
}

/// SAXPY's modulo-scheduled VLIW pipeline, bounded as the word machine it
/// is: lockstep is architectural on vsim, so `Lockstep::Assume` applies
/// under every timing model.
#[test]
fn saxpy_bound_dominates_vliw_pipeline() {
    let a = 2.5f32;
    let x = saxpy::float_vec(1, 64);
    let y = saxpy::float_vec(2, 64);
    let pipe = ximd::compiler::pipeline::modulo_schedule(&saxpy::spec(), 8)
        .expect("saxpy schedules at width 8");
    let program = pipe.vliw.to_ximd();
    let trips_reg = pipe.reg_of[&saxpy::spec().trips];
    let n = x.len() as i32;

    for spec in timing_specs() {
        let (_, outcome) = saxpy::run_timed(a, &x, &y, 8, &spec).expect("saxpy runs");
        let report = bound(&program, &spec, Lockstep::Assume, &[(trips_reg, n, n)]);
        if let Some(total) = report.total {
            assert!(
                total >= outcome.cycles,
                "saxpy under {spec}: static bound {total} < simulated {} cycles",
                outcome.cycles
            );
        }
    }
}

/// Straight-line TPROC is fully boundable: the oracle proves a finite bound
/// under every timing model, and under ideal timing it is *exact* — the
/// pinned 6-cycle schedule of Example 1.
#[test]
fn tproc_bound_is_finite_and_ideal_exact() {
    let program = tproc::ximd_assembly().program;
    for spec in timing_specs() {
        let report = bound(&program, &spec, Lockstep::Auto, &[]);
        assert!(
            report.total.is_some(),
            "tproc (loop-free) must bound under {spec}"
        );
    }
    let ideal = bound(&program, &TimingSpec::Ideal, Lockstep::Auto, &[]);
    assert_eq!(ideal.total, Some(6), "ideal bound matches the 6-cycle pin");
}

/// Under the lockstep (single-sequencer) reading with entry facts for the
/// seeded registers, Livermore Loop 12's trip count is proved and the whole
/// program gets a finite bound that covers the measured 131 cycles.
#[test]
fn livermore_lockstep_bound_is_finite() {
    let y = gen::livermore_y(5, 64);
    let n = y.len() as i32 - 1;
    let assume = [(livermore::REG_K, 0, 0), (livermore::REG_N, n, n)];

    let (mut sim, run) = livermore::prepared(&y).expect("ll12 prepares");
    let cycles = run.drive(&mut sim).expect("ll12 runs").cycles;

    let report = bound(
        &livermore::ximd_program(),
        &TimingSpec::Ideal,
        Lockstep::Assume,
        &assume,
    );
    let total = report
        .total
        .expect("lockstep + entry facts must bound loop 12");
    assert!(total >= cycles, "bound {total} < measured {cycles}");
    assert!(
        report.loops.iter().any(|l| l.trips.is_some()),
        "the k-loop's trip count must be proved"
    );
}

/// Trip-count soundness against address traces: wherever the oracle claims
/// `trips <= T`, the trace visits that loop head at most `T` times.
#[test]
fn static_trips_cover_traced_iterations() {
    // MINMAX, the paper's Figure 10 program (honest `unbounded` verdicts
    // still participate: `None` covers any visit count).
    let (_, trace) = minmax::run_ximd_traced(&[5, 3, 4, 7]).expect("minmax runs traced");
    let report = bound(
        &minmax::ximd_assembly().program,
        &TimingSpec::Ideal,
        Lockstep::Auto,
        &[(minmax::REG_N, 4, 4)],
    );
    assert_trips_cover(&report, &trace, "minmax");

    // Loop 12 under the lockstep reading: here the trip count is finite,
    // so the coverage check has real teeth.
    let y = gen::livermore_y(5, 64);
    let n = y.len() as i32 - 1;
    let (mut sim, run) = livermore::prepared(&y).expect("ll12 prepares");
    sim.enable_trace();
    run.drive(&mut sim).expect("ll12 runs");
    let trace = sim.trace().expect("tracing enabled").clone();
    let report = bound(
        &livermore::ximd_program(),
        &TimingSpec::Ideal,
        Lockstep::Assume,
        &[(livermore::REG_K, 0, 0), (livermore::REG_N, n, n)],
    );
    assert!(
        report.loops.iter().any(|l| l.trips.is_some()),
        "need at least one finite trip count for a non-vacuous check"
    );
    assert_trips_cover(&report, &trace, "livermore12");
}

fn assert_trips_cover(report: &BoundsReport, trace: &ximd::sim::Trace, name: &str) {
    for l in &report.loops {
        let Some(trips) = l.trips else { continue };
        let visits = trace
            .rows()
            .iter()
            .filter(|row| row.pcs[l.fu.0 as usize] == Some(l.head))
            .count() as u64;
        assert!(
            trips >= visits,
            "{name}: fu{} loop at {} claims trips <= {trips} but the trace \
             visits the head {visits} times",
            l.fu.0,
            l.head
        );
    }
}

// ---------------------------------------------------------------------------
// Random-program OOB property
// ---------------------------------------------------------------------------

const MEM_WORDS: u32 = 32;
const NUM_REGS: u16 = 8;

/// A single-FU straight-line program mixing safe register ops with memory
/// traffic whose addresses straddle the `MEM_WORDS` boundary. Registers
/// start at the reset value (0), which the analysis mirrors via `assume`.
fn mem_program(seed: u64, len: usize) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut program = Program::new(1);
    let reg = |rng: &mut SmallRng| Reg(rng.gen_range(0..NUM_REGS));
    for i in 0..len {
        let data = match rng.gen_range(0..10) {
            0..=2 => DataOp::Load {
                a: Operand::imm_i32(rng.gen_range(-8..(MEM_WORDS as i32 + 8))),
                b: Operand::Reg(reg(&mut rng)),
                d: reg(&mut rng),
            },
            3 | 4 => DataOp::Store {
                a: Operand::Reg(reg(&mut rng)),
                b: Operand::imm_i32(rng.gen_range(-8..(MEM_WORDS as i32 + 8))),
            },
            _ => randprog::random_data_op(&mut rng, NUM_REGS),
        };
        program.push(vec![Parcel::data(
            data,
            ControlOp::Goto(Addr(i as u32 + 1)),
        )]);
    }
    program.push(vec![Parcel::halt()]);
    program
}

fn oob_findings(program: &Program) -> usize {
    let mut config = AnalysisConfig::default();
    config.geometry.words = MEM_WORDS;
    config.assume = (0..NUM_REGS).map(|r| (Reg(r), 0, 0)).collect();
    // Loaded values are unknown to the analysis; an address computed from
    // one cannot be proven safe, so have the lint flag it rather than let
    // an executed fault slip through silently.
    config.flag_unknown_mem = true;
    ximd::analysis::analyze(program, &config)
        .diagnostics
        .iter()
        .filter(|d| d.check == Check::OobMemoryAccess)
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The ISSUE's acceptance property: a random program whose execution
    /// faults on memory ALWAYS carries at least one `oob-memory-access`
    /// finding. (The reverse needn't hold — `flag_unknown_mem` warnings are
    /// allowed on clean runs.)
    #[test]
    fn executed_oob_never_escapes_the_lint(seed in 0u64..4096) {
        let len = 3 + (seed as usize % 13);
        let program = mem_program(seed, len);

        let mut sim = Xsim::new(
            program.clone(),
            MachineConfig::with_width(1).mem_words(MEM_WORDS),
        )
        .expect("generated program is valid");
        let faulted = match sim.run(10 * (len as u64 + 2)) {
            Err(SimError::MemoryOutOfRange { .. }) => true,
            Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
            Ok(_) => false,
        };

        if faulted {
            prop_assert!(
                oob_findings(&program) > 0,
                "seed {}: simulator faulted on memory but the lint is silent",
                seed
            );
        }
    }
}

/// Deterministic anchor for the property above: a store past the end of
/// memory is caught as an *error* (always out of bounds), and the machine
/// indeed faults on it.
#[test]
fn constant_oob_store_is_an_error() {
    let mut program = Program::new(1);
    program.push(vec![Parcel::data(
        DataOp::Store {
            a: Operand::Reg(Reg(0)),
            b: Operand::imm_i32(MEM_WORDS as i32 + 8),
        },
        ControlOp::Goto(Addr(1)),
    )]);
    program.push(vec![Parcel::halt()]);

    let mut sim = Xsim::new(
        program.clone(),
        MachineConfig::with_width(1).mem_words(MEM_WORDS),
    )
    .expect("program is valid");
    assert!(matches!(
        sim.run(10),
        Err(SimError::MemoryOutOfRange { .. })
    ));

    let mut config = AnalysisConfig::default();
    config.geometry.words = MEM_WORDS;
    let analysis = ximd::analysis::analyze(&program, &config);
    assert!(
        analysis
            .diagnostics
            .iter()
            .any(|d| d.check == Check::OobMemoryAccess
                && d.severity == ximd::analysis::Severity::Error),
        "constant OOB store must be an error: {:?}",
        analysis.diagnostics
    );
}
