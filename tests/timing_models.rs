//! Timing-layer integration: the `Ideal` model is pinned bit-exact to the
//! seed interpreter, and every other way of driving the same machine —
//! decoded fast path, the not-short-circuited unit-latency table — must be
//! indistinguishable from it, workload by workload, down to every counter.
//!
//! The cycle/op/stream numbers below were captured from the tree as it
//! stood before the timing layer landed (the "seed" interpreter). They pin
//! the refactor: if splitting semantics from timing shifts any workload by
//! a single cycle, op, or stream, a pin here fails.
//!
//! Non-ideal models are then exercised where their results are defined:
//! single-sequencer (vsim) forms and explicit-sync programs stay correct
//! under any model (whole-word stalls preserve lockstep), and the
//! memory-heavy SAXPY kernel demonstrates bank contention — nonzero
//! `contention_stalls`, strictly more cycles than ideal, identical output.

use proptest::prelude::*;
use ximd::models::randprog;
use ximd::prelude::*;
use ximd::sim::TimingSpec;
use ximd::workloads::{
    bitcount, gen, livermore, livermore_ext, minmax, nonblocking, race, saxpy, tproc, with_timing,
    RunSpec,
};

/// Words of memory compared after each run — covers every workload's data
/// region (the largest base is livermore's `X_BASE = 4999`).
const MEM_WINDOW: usize = 6000;

fn assert_same_state(name: &str, a: &Xsim, b: &Xsim) {
    let num_regs = a.config().num_regs;
    for r in 0..num_regs as u16 {
        assert_eq!(a.reg(Reg(r)), b.reg(Reg(r)), "{name}: register r{r}");
    }
    assert_eq!(a.pcs(), b.pcs(), "{name}: program counters");
    assert_eq!(a.ccs(), b.ccs(), "{name}: condition codes");
    assert_eq!(a.stats(), b.stats(), "{name}: statistics counters");
    assert_eq!(
        a.mem().peek_slice(0, MEM_WINDOW).unwrap(),
        b.mem().peek_slice(0, MEM_WINDOW).unwrap(),
        "{name}: memory window"
    );
}

/// Runs one prepared workload three ways — seed interpreter (ideal),
/// decoded fast path, and the unit-latency table (which is *not*
/// short-circuited to `Ideal`: it runs the stalling engine with every
/// extra-cycle count zero) — pins the first against the seed numbers and
/// requires the other two to match it in full machine state.
fn pin(
    name: &str,
    prepared: impl Fn() -> (Xsim, RunSpec),
    cycles: u64,
    ops: u64,
    streams: usize,
    sset_cycle_sum: u64,
) {
    let (mut interp, spec) = prepared();
    let a = spec.drive(&mut interp).unwrap();
    assert_eq!(a.cycles, cycles, "{name}: seed cycle pin");
    assert_eq!(interp.stats().ops, ops, "{name}: seed op pin");
    assert_eq!(
        interp.stats().max_concurrent_streams,
        streams,
        "{name}: seed stream pin"
    );
    assert_eq!(
        interp.stats().sset_cycle_sum,
        sset_cycle_sum,
        "{name}: seed SSET pin"
    );
    assert_eq!(interp.stats().stall_cycles, 0, "{name}: ideal never stalls");
    assert_eq!(
        interp.stats().contention_stalls,
        0,
        "{name}: ideal never queues"
    );

    let (mut fast, spec) = prepared();
    let b = spec.drive_decoded(&mut fast).unwrap();
    assert_eq!(a, b, "{name}: decoded summary");
    assert_same_state(name, &interp, &fast);

    let unit = TimingSpec::parse("latency:mem=1").unwrap();
    assert!(!unit.is_ideal(), "unit table must take the stalling path");
    let (mut timed, spec) = with_timing(prepared(), &unit).unwrap();
    let c = spec.drive(&mut timed).unwrap();
    assert_eq!(a, c, "{name}: unit-latency summary");
    assert_same_state(name, &interp, &timed);
}

#[test]
fn tproc_pins_to_seed() {
    pin(
        "tproc",
        || tproc::prepared(9, -4, 3, 12).unwrap(),
        6,
        11,
        1,
        6,
    );
}

#[test]
fn minmax_figure10_pins_to_seed() {
    pin(
        "minmax/fig10",
        || minmax::prepared(&[5, 3, 4, 7]).unwrap(),
        14,
        26,
        3,
        22,
    );
}

#[test]
fn minmax_large_pins_to_seed() {
    let data = gen::uniform_ints(8, 96, -10_000, 10_000);
    pin(
        "minmax/96",
        || minmax::prepared(&data).unwrap(),
        289,
        495,
        3,
        481,
    );
}

#[test]
fn bitcount_pins_to_seed() {
    let data = gen::bit_weighted_ints(13, 48, 24);
    pin(
        "bitcount/48",
        || bitcount::prepared(&data).unwrap(),
        1736,
        4857,
        4,
        4874,
    );
}

#[test]
fn livermore12_pins_to_seed() {
    let y = gen::livermore_y(5, 64);
    pin(
        "livermore12/64",
        || livermore::prepared(&y).unwrap(),
        131,
        513,
        1,
        131,
    );
}

#[test]
fn nonblocking_pins_to_seed() {
    let scenario = nonblocking::Scenario::with_seed(3);
    pin(
        "nonblocking/seed3",
        || nonblocking::prepared_sync(&scenario).unwrap(),
        42,
        124,
        8,
        329,
    );
}

#[test]
fn compiled_workload_cycles_pin_to_seed() {
    let x = saxpy::float_vec(1, 64);
    let y = saxpy::float_vec(2, 64);
    let (_, c8, _) = saxpy::run(2.5, &x, &y, 8).unwrap();
    let (_, c4, _) = saxpy::run(2.5, &x, &y, 4).unwrap();
    assert_eq!((c8, c4), (132, 197), "saxpy width-8/width-4 cycle pins");

    assert_eq!(livermore_ext::run_loop1(8, 64, 7).unwrap().cycles, 197);
    assert_eq!(livermore_ext::run_loop3(8, 64, 7).unwrap().cycles, 132);
    assert_eq!(livermore_ext::run_loop5(8, 64, 7).unwrap().cycles, 258);

    let data = gen::uniform_ints(11, 64, -100, 100);
    assert_eq!(race::run(&data, data[40]).unwrap().cycles, 31);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random straight-line program runs identically under the ideal
    /// model and the unit-latency table — summary, registers and stats.
    #[test]
    fn randprog_unit_latency_is_ideal(seed in 0u64..4096) {
        let width = 1 + (seed as usize % 8);
        let len = 3 + (seed as usize % 13);
        let vliw = randprog::straight_line_vliw(seed, width, len, 24);
        let budget = 10 * (len as u64 + 2);

        let config = MachineConfig::with_width(width);
        let mut ideal = Xsim::new(vliw.to_ximd(), config.clone()).unwrap();
        let a = ideal.run(budget);

        let unit = TimingSpec::parse("latency:mem=1").unwrap();
        let mut timed = Xsim::new(vliw.to_ximd(), config.timing(unit)).unwrap();
        let b = timed.run(budget);

        prop_assert_eq!(&a, &b, "seed {}", seed);
        for r in 0..24u16 {
            prop_assert_eq!(ideal.reg(Reg(r)), timed.reg(Reg(r)), "seed {} r{}", seed, r);
        }
        prop_assert_eq!(ideal.pcs(), timed.pcs());
        prop_assert_eq!(ideal.stats(), timed.stats());
    }
}

/// The ISSUE's acceptance check: `banked:2` on a memory-heavy workload
/// reports nonzero contention stalls and strictly more cycles than ideal,
/// with bit-identical results.
#[test]
fn banked_memory_contends_on_saxpy() {
    let a = 2.5f32;
    let x = saxpy::float_vec(1, 64);
    let y = saxpy::float_vec(2, 64);
    let (_, ideal) = saxpy::run_timed(a, &x, &y, 8, &TimingSpec::Ideal).unwrap();
    let banked_spec = TimingSpec::parse("banked:2").unwrap();
    let (z, banked) = saxpy::run_timed(a, &x, &y, 8, &banked_spec).unwrap();

    assert!(
        banked.stats.contention_stalls > 0,
        "no contention: {:?}",
        banked.stats
    );
    assert!(banked.cycles > ideal.cycles, "contention must cost cycles");
    let oracle = saxpy::oracle(a, &x, &y);
    assert_eq!(
        z.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        oracle.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "timing must never change results"
    );
}

/// Lockstep-safe workloads stay correct under whatever model `XIMD_TIMING`
/// names (CI sets it to a non-ideal spec; defaults to `latency:mem=3`).
#[test]
fn env_selected_timing_keeps_lockstep_workloads_correct() {
    let spec = std::env::var("XIMD_TIMING").unwrap_or_else(|_| "latency:mem=3".into());
    let spec = TimingSpec::parse(&spec).unwrap();

    let data = gen::uniform_ints(21, 48, -10_000, 10_000);
    let (out, _) = minmax::run_vliw_timed(&data, &spec).unwrap();
    assert_eq!(
        (out.min, out.max),
        minmax::oracle(&data),
        "minmax under {spec}"
    );

    let y = gen::livermore_y(9, 48);
    let (out, _) = livermore::run_vliw_timed(&y, &spec).unwrap();
    assert_eq!(out.x, livermore::oracle(&y), "livermore12 under {spec}");

    let (a, x, yv) = (1.5f32, saxpy::float_vec(3, 48), saxpy::float_vec(4, 48));
    let (z, _) = saxpy::run_timed(a, &x, &yv, 8, &spec).unwrap();
    let oracle = saxpy::oracle(a, &x, &yv);
    assert_eq!(
        z.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        oracle.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "saxpy under {spec}"
    );
}
