//! Snapshot round-trip properties: suspending a run at an arbitrary cycle
//! and resuming it from the serialized image must be invisible — the
//! resumed machine's full state (one byte image covers registers, memory,
//! sequencers, condition codes, ports, statistics and the completion
//! flag) equals an uninterrupted run's, across every execution engine and
//! timing model.
//!
//! The comparison is deliberately blunt: both sessions are re-serialized
//! after finishing and the images must be byte-identical. Anything the
//! snapshot codec carries — which is everything the machine is — is
//! therefore covered by one equality.

use proptest::prelude::*;
use ximd_serve::jobs;
use ximd_sim::{EngineKind, Session, TimingSpec};
use ximd_workloads::RunSpec;

const WORKLOADS: &[&str] = &["bitcount", "livermore", "minmax", "tproc"];
const TIMINGS: &[&str] = &["ideal", "latency:mem=4", "banked:2"];
const ENGINES: &[EngineKind] = &[EngineKind::Interp, EngineKind::Decoded, EngineKind::Lanes];

/// Builds the same seeded machine twice (workload generators are
/// deterministic in `(n, seed)`) plus its drive spec.
fn twin_machines(
    workload: &str,
    n: usize,
    seed: u64,
    timing: &TimingSpec,
) -> (ximd_sim::Xsim, ximd_sim::Xsim, RunSpec) {
    let t = (!timing.is_ideal()).then_some(timing);
    let (a, spec) = jobs::prepare_timed(workload, n, seed, t).expect("workload prepares");
    let (b, _) = jobs::prepare_timed(workload, n, seed, t).expect("workload prepares");
    (a, b, spec)
}

fn park_of(spec: RunSpec) -> Option<ximd_isa::Addr> {
    match spec {
        RunSpec::Run(_) => None,
        RunSpec::Parked(p, _) => Some(p),
    }
}

/// One round trip: drive a twin uninterrupted; drive the other to cycle
/// `k`, serialize, restore, finish; compare the final byte images.
///
/// Some combinations never finish (bitcount's barrier livelocks under
/// memory stalls — only the lockstep-safe workloads are guaranteed to
/// terminate on a non-ideal machine), so budget exhaustion is part of the
/// property too: both runs must then report the same `CycleLimit` and
/// still land in identical machine states.
fn assert_roundtrip(workload: &str, n: usize, seed: u64, k: u64, engine: EngineKind, timing: &str) {
    let timing = TimingSpec::parse(timing).expect("timing parses");
    let (solo_sim, split_sim, spec) = twin_machines(workload, n, seed, &timing);
    let (park, budget) = (park_of(spec), spec.budget().saturating_mul(2));
    let tag = format!(
        "{workload} n={n} seed={seed} k={k} engine={} timing={timing}",
        engine.name()
    );

    let mut solo = Session::from_machine(solo_sim);
    let solo_run = solo.finish(park, budget, engine);

    let mut split = Session::from_machine(split_sim);
    split.advance_to(park, k.min(budget)).expect("advance");
    let image = split.snapshot().expect("snapshot");
    let mut resumed = Session::restore(&image).expect("restore");
    let resumed_run = resumed.finish(park, budget, engine);

    match (&solo_run, &resumed_run) {
        (Ok(_), Ok(_)) => assert!(solo.complete() && resumed.complete(), "{tag}"),
        (Err(a), Err(b)) => assert_eq!(format!("{a:?}"), format!("{b:?}"), "{tag}"),
        _ => panic!("{tag}: one run finished, the other did not: {solo_run:?} vs {resumed_run:?}"),
    }
    assert_eq!(resumed.cycle(), solo.cycle(), "{tag}");
    assert_eq!(
        resumed.snapshot().expect("final image"),
        solo.snapshot().expect("final image"),
        "{tag}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Suspend + resume ≡ uninterrupted run, for a random workload,
    /// input size, seed and suspension cycle, on every engine under
    /// every timing model.
    #[test]
    fn snapshot_roundtrip_is_bit_exact(
        which in 0usize..4,
        n in 1usize..24,
        seed in any::<u64>(),
        k in 0u64..400,
        eng in 0usize..3,
        t in 0usize..3,
    ) {
        assert_roundtrip(WORKLOADS[which], n, seed, k, ENGINES[eng], TIMINGS[t]);
    }

    /// The same property for a whole lane-batch session: every lane's
    /// state survives one shared suspend/resume.
    #[test]
    fn lane_batch_snapshot_roundtrip_is_bit_exact(
        which in 0usize..4,
        lanes in 2usize..5,
        n in 1usize..16,
        seed in any::<u64>(),
        k in 0u64..200,
    ) {
        let workload = WORKLOADS[which];
        let mut solo_sims = Vec::new();
        let mut split_sims = Vec::new();
        let mut budget = 0u64;
        let mut park = None;
        for lane in 0..lanes as u64 {
            let timing = TimingSpec::Ideal; // the lane engine is ideal-only
            let (a, b, spec) = twin_machines(workload, n, seed ^ lane, &timing);
            solo_sims.push(a);
            split_sims.push(b);
            budget = budget.max(spec.budget());
            park = park_of(spec);
        }

        let mut solo = Session::from_instances(&solo_sims).expect("batch");
        solo.finish(park, budget, EngineKind::Lanes).expect("solo batch");

        let mut split = Session::from_instances(&split_sims).expect("batch");
        split.advance_to(park, k.min(budget)).expect("advance");
        let image = split.snapshot().expect("snapshot");
        let mut resumed = Session::restore(&image).expect("restore");
        resumed.finish(park, budget, EngineKind::Lanes).expect("resumed batch");

        prop_assert_eq!(
            resumed.snapshot().expect("final image"),
            solo.snapshot().expect("final image")
        );
    }
}

/// The deterministic corners the random sweep may miss: k = 0 (suspend
/// before the first cycle) and a k past the program's end (the session is
/// already complete when suspended; resuming must not re-drive it).
#[test]
fn snapshot_roundtrip_corner_cycles() {
    for engine in ENGINES {
        for timing in TIMINGS {
            assert_roundtrip("minmax", 8, 7, 0, *engine, timing);
            assert_roundtrip("minmax", 8, 7, u64::MAX, *engine, timing);
        }
    }
}
