//! Snapshot round-trip properties: suspending a run at an arbitrary cycle
//! and resuming it from the serialized image must be invisible — the
//! resumed machine's full state (one byte image covers registers, memory,
//! sequencers, condition codes, ports, statistics and the completion
//! flag) equals an uninterrupted run's, across every execution backend in
//! the registry and every timing model the backend is capable of.
//!
//! The backends come from `ximd_sim::backend` through trait objects — the
//! built-ins plus the bench crate's out-of-tree `shadow` differential
//! backend — and every step (prepare, advance, snapshot, restore, finish)
//! goes through the trait, so the property also pins the trait's default
//! snapshot plumbing. Backend × timing combinations the backend's declared
//! capabilities reject (the decoded family is ideal-only) are skipped via
//! the same [`BackendRequest`] check the CLI and daemon use.
//!
//! The comparison is deliberately blunt: both sessions are re-serialized
//! after finishing and the images must be byte-identical. Anything the
//! snapshot codec carries — which is everything the machine is — is
//! therefore covered by one equality.

use proptest::prelude::*;
use ximd_serve::jobs;
use ximd_sim::backend::{self, BackendHandle, BackendRequest};
use ximd_sim::TimingSpec;
use ximd_workloads::RunSpec;

const WORKLOADS: &[&str] = &["bitcount", "livermore", "minmax", "tproc"];
const TIMINGS: &[&str] = &["ideal", "latency:mem=4", "banked:2"];
/// Every backend the suite drives. Pinned by name (rather than taking
/// whatever `backend::all()` holds) so a registry regression that silently
/// drops one of them fails loudly here.
const BACKENDS: &[&str] = &["interp", "decoded", "lanes", "shadow"];

/// The registry handles for [`BACKENDS`], with the out-of-crate `shadow`
/// differential backend registered first.
fn backends() -> Vec<BackendHandle> {
    ximd_bench::shadow::register();
    BACKENDS
        .iter()
        .map(|name| backend::lookup(name).expect("suite backend is registered"))
        .collect()
}

/// Builds the same seeded machine twice (workload generators are
/// deterministic in `(n, seed)`) plus its drive spec.
fn twin_machines(
    workload: &str,
    n: usize,
    seed: u64,
    timing: &TimingSpec,
) -> (ximd_sim::Xsim, ximd_sim::Xsim, RunSpec) {
    let t = (!timing.is_ideal()).then_some(timing);
    let (a, spec) = jobs::prepare_timed(workload, n, seed, t).expect("workload prepares");
    let (b, _) = jobs::prepare_timed(workload, n, seed, t).expect("workload prepares");
    (a, b, spec)
}

fn park_of(spec: RunSpec) -> Option<ximd_isa::Addr> {
    match spec {
        RunSpec::Run(_) => None,
        RunSpec::Parked(p, _) => Some(p),
    }
}

/// One round trip: drive a twin uninterrupted; drive the other to cycle
/// `k`, serialize, restore, finish; compare the final byte images. Every
/// session operation goes through the backend trait object.
///
/// Combinations the backend's capabilities reject (non-ideal timing on
/// the decoded family) are skipped — the skip predicate is the same
/// `Capabilities::supports` check `--backend NAME` validation uses.
///
/// Some combinations never finish (bitcount's barrier livelocks under
/// memory stalls — only the lockstep-safe workloads are guaranteed to
/// terminate on a non-ideal machine), so budget exhaustion is part of the
/// property too: both runs must then report the same `CycleLimit` and
/// still land in identical machine states.
fn assert_roundtrip(workload: &str, n: usize, seed: u64, k: u64, be: &BackendHandle, timing: &str) {
    let timing = TimingSpec::parse(timing).expect("timing parses");
    let request = BackendRequest {
        non_ideal_timing: !timing.is_ideal(),
        snapshot: true,
        ..BackendRequest::default()
    };
    if !be.capabilities().supports(&request) {
        return;
    }
    let (solo_sim, split_sim, spec) = twin_machines(workload, n, seed, &timing);
    let (park, budget) = (park_of(spec), spec.budget().saturating_mul(2));
    let tag = format!(
        "{workload} n={n} seed={seed} k={k} backend={} timing={timing}",
        be.name()
    );

    let mut solo = be.prepare(vec![solo_sim], None).expect("prepare");
    let solo_run = be.finish(&mut solo, park, budget);

    let mut split = be.prepare(vec![split_sim], None).expect("prepare");
    be.advance_to(&mut split, park, k.min(budget))
        .expect("advance");
    let image = be.snapshot(&split).expect("snapshot");
    let mut resumed = be.restore(&image).expect("restore");
    let resumed_run = be.finish(&mut resumed, park, budget);

    match (&solo_run, &resumed_run) {
        (Ok(_), Ok(_)) => assert!(solo.complete() && resumed.complete(), "{tag}"),
        (Err(a), Err(b)) => assert_eq!(format!("{a:?}"), format!("{b:?}"), "{tag}"),
        _ => panic!("{tag}: one run finished, the other did not: {solo_run:?} vs {resumed_run:?}"),
    }
    assert_eq!(resumed.cycle(), solo.cycle(), "{tag}");
    assert_eq!(
        be.snapshot(&resumed).expect("final image"),
        be.snapshot(&solo).expect("final image"),
        "{tag}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Suspend + resume ≡ uninterrupted run, for a random workload,
    /// input size, seed and suspension cycle, on every registered backend
    /// under every timing model it supports.
    #[test]
    fn snapshot_roundtrip_is_bit_exact(
        which in 0usize..4,
        n in 1usize..24,
        seed in any::<u64>(),
        k in 0u64..400,
        be in 0usize..4,
        t in 0usize..3,
    ) {
        assert_roundtrip(WORKLOADS[which], n, seed, k, &backends()[be], TIMINGS[t]);
    }

    /// The same property for a whole lane-batch session: every lane's
    /// state survives one shared suspend/resume.
    #[test]
    fn lane_batch_snapshot_roundtrip_is_bit_exact(
        which in 0usize..4,
        lanes in 2usize..5,
        n in 1usize..16,
        seed in any::<u64>(),
        k in 0u64..200,
    ) {
        let workload = WORKLOADS[which];
        let mut solo_sims = Vec::new();
        let mut split_sims = Vec::new();
        let mut budget = 0u64;
        let mut park = None;
        for lane in 0..lanes as u64 {
            let timing = TimingSpec::Ideal; // the lane engine is ideal-only
            let (a, b, spec) = twin_machines(workload, n, seed ^ lane, &timing);
            solo_sims.push(a);
            split_sims.push(b);
            budget = budget.max(spec.budget());
            park = park_of(spec);
        }
        let be = backend::lookup("lanes").expect("built-in");

        let mut solo = be.prepare(solo_sims, None).expect("batch");
        be.finish(&mut solo, park, budget).expect("solo batch");

        let mut split = be.prepare(split_sims, None).expect("batch");
        be.advance_to(&mut split, park, k.min(budget)).expect("advance");
        let image = be.snapshot(&split).expect("snapshot");
        let mut resumed = be.restore(&image).expect("restore");
        be.finish(&mut resumed, park, budget).expect("resumed batch");

        prop_assert_eq!(
            be.snapshot(&resumed).expect("final image"),
            be.snapshot(&solo).expect("final image")
        );
    }
}

/// The deterministic corners the random sweep may miss: k = 0 (suspend
/// before the first cycle) and a k past the program's end (the session is
/// already complete when suspended; resuming must not re-drive it).
#[test]
fn snapshot_roundtrip_corner_cycles() {
    for be in &backends() {
        for timing in TIMINGS {
            assert_roundtrip("minmax", 8, 7, 0, be, timing);
            assert_roundtrip("minmax", 8, 7, u64::MAX, be, timing);
        }
    }
}

/// Every suite backend declares the snapshot capability; otherwise the
/// round-trip properties above would silently skip it.
#[test]
fn suite_backends_all_declare_snapshotting() {
    for be in &backends() {
        assert!(
            be.capabilities().snapshotting,
            "{} cannot snapshot; the round-trip suite would skip it",
            be.name()
        );
    }
}
