//! Decoded fast path vs interpreter, across the repo's program sources.
//!
//! The `crates/sim` unit and property tests cover hand-built and branchy
//! random programs; this suite closes the loop at the workspace level:
//! `ximd-models::randprog` sweeps (the generators the emulation theorems
//! use) and every paper workload, each run twice — interpreter and decoded
//! engine — and compared on `RunSummary` (cycle-exact, every `SimStats`
//! counter), final registers, PCs, CCs, and the low memory region the
//! workloads write.

use ximd::models::randprog;
use ximd::prelude::*;
use ximd::sim::LaneXsim;
use ximd::workloads::{bitcount, gen, lane_batch, livermore, minmax, nonblocking, tproc, RunSpec};

/// Words of memory compared after each run — covers every workload's data
/// region (the largest base is livermore's `X_BASE = 4999`).
const MEM_WINDOW: usize = 6000;

fn assert_equivalent(mut interp: Xsim, mut fast: Xsim, spec: RunSpec) {
    let a = spec.drive(&mut interp);
    let b = spec.drive_decoded(&mut fast);
    assert_eq!(a, b, "RunSummary diverged");
    let num_regs = interp.config().num_regs;
    for r in 0..num_regs as u16 {
        assert_eq!(interp.reg(Reg(r)), fast.reg(Reg(r)), "register r{r}");
    }
    assert_eq!(interp.pcs(), fast.pcs(), "program counters");
    assert_eq!(interp.ccs(), fast.ccs(), "condition codes");
    assert_eq!(interp.stats(), fast.stats(), "statistics counters");
    assert_eq!(
        interp.mem().peek_slice(0, MEM_WINDOW).unwrap(),
        fast.mem().peek_slice(0, MEM_WINDOW).unwrap(),
        "memory window"
    );
    let written = |sim: &Xsim| -> Vec<Vec<i32>> {
        sim.ports()
            .iter()
            .map(|p| p.written().iter().map(|e| e.value.as_i32()).collect())
            .collect()
    };
    assert_eq!(written(&interp), written(&fast), "port output events");
}

/// Batches the prepared instances on the lane engine, runs the batch, and
/// asserts every lane's full final state — summary (cycle-exact, every
/// `SimStats` counter), registers, PCs, CCs, the memory window and port
/// traffic — matches an independent decoded run of the same instance.
fn assert_lanes_equivalent(prepared: Vec<(Xsim, RunSpec)>) {
    let solos: Vec<(Xsim, RunSpec)> = prepared.clone();
    let (mut lanes, spec) = lane_batch(prepared).expect("lane batch assembles");
    spec.drive_lanes(&mut lanes).expect("lane batch runs");
    for (l, (mut solo, solo_spec)) in solos.into_iter().enumerate() {
        let summary = solo_spec.drive_decoded(&mut solo).expect("solo run");
        assert_eq!(lanes.summary(l), Some(&summary), "lane {l} summary");
        let num_regs = solo.config().num_regs;
        for r in 0..num_regs as u16 {
            assert_eq!(lanes.reg(l, Reg(r)), solo.reg(Reg(r)), "lane {l} r{r}");
        }
        assert_eq!(lanes.pcs(l), solo.pcs(), "lane {l} program counters");
        assert_eq!(lanes.ccs(l), solo.ccs(), "lane {l} condition codes");
        assert_eq!(
            lanes.mem_peek_slice(l, 0, MEM_WINDOW).unwrap(),
            solo.mem().peek_slice(0, MEM_WINDOW).unwrap(),
            "lane {l} memory window"
        );
        let events = |ports: &[IoPort]| -> Vec<Vec<(u64, i32)>> {
            ports
                .iter()
                .map(|p| {
                    p.written()
                        .iter()
                        .map(|e| (e.cycle, e.value.as_i32()))
                        .collect()
                })
                .collect()
        };
        assert_eq!(
            events(lanes.ports(l)),
            events(solo.ports()),
            "lane {l} port output events"
        );
    }
}

#[test]
fn randprog_sweeps_are_cycle_and_register_exact() {
    for seed in 0..24u64 {
        let width = 1 + (seed as usize % 8);
        let len = 3 + (seed as usize % 13);
        let vliw = randprog::straight_line_vliw(seed, width, len, 24);
        let config = MachineConfig::with_width(width);
        let interp = Xsim::new(vliw.to_ximd(), config.clone()).unwrap();
        let fast = Xsim::new(vliw.to_ximd(), config).unwrap();
        assert_equivalent(interp, fast, RunSpec::Run(10 * (len as u64 + 2)));
    }
}

#[test]
fn randprog_sweeps_match_on_vsim_too() {
    for seed in 100..112u64 {
        let width = 1 + (seed as usize % 6);
        let vliw = randprog::straight_line_vliw(seed, width, 9, 16);
        let config = MachineConfig::with_width(width);
        let mut interp = Vsim::new(vliw.clone(), config.clone()).unwrap();
        let mut fast = Vsim::new(vliw, config).unwrap();
        let a = interp.run(200);
        let b = fast.run_decoded(200);
        assert_eq!(a, b, "seed {seed}");
        for r in 0..16u16 {
            assert_eq!(interp.reg(Reg(r)), fast.reg(Reg(r)), "seed {seed} r{r}");
        }
        assert_eq!(interp.pc(), fast.pc());
        assert_eq!(interp.stats(), fast.stats());
    }
}

#[test]
fn tproc_decoded_matches() {
    for (a, b, c, d) in [(1, 2, 3, 4), (9, -4, 3, 12), (-7, 11, 5, 2)] {
        let (interp, spec) = tproc::prepared(a, b, c, d).unwrap();
        let (fast, _) = tproc::prepared(a, b, c, d).unwrap();
        assert_equivalent(interp, fast, spec);
    }
}

#[test]
fn livermore_decoded_matches() {
    let y = gen::livermore_y(5, 64);
    let (interp, spec) = livermore::prepared(&y).unwrap();
    let (fast, _) = livermore::prepared(&y).unwrap();
    assert_equivalent(interp, fast, spec);
}

#[test]
fn minmax_decoded_matches_through_run_until_parked() {
    // MINMAX parks rather than halting — this exercises the decoded
    // `run_until_parked` path end to end, including the Figure 10 input.
    for data in [vec![5, 3, 4, 7], gen::uniform_ints(8, 96, -10_000, 10_000)] {
        let (interp, spec) = minmax::prepared(&data).unwrap();
        let (fast, _) = minmax::prepared(&data).unwrap();
        assert!(matches!(spec, RunSpec::Parked(..)));
        assert_equivalent(interp, fast, spec);
    }
}

#[test]
fn bitcount_decoded_matches() {
    let data = gen::bit_weighted_ints(13, 48, 24);
    let (interp, spec) = bitcount::prepared(&data).unwrap();
    let (fast, _) = bitcount::prepared(&data).unwrap();
    assert_equivalent(interp, fast, spec);
}

#[test]
fn minmax_lane_batch_matches_independent_runs() {
    // Per-lane data of different sizes and values: the comparison tree's
    // branches diverge across lanes and each lane parks at its own cycle —
    // the divergence-heaviest workload the repo has.
    let prepared = (0..12u64)
        .map(|lane| {
            let n = 8 + 11 * lane as usize;
            let data = gen::uniform_ints(40 + lane, n, -10_000, 10_000);
            minmax::prepared(&data).expect("minmax prepares")
        })
        .collect();
    assert_lanes_equivalent(prepared);
}

#[test]
fn bitcount_lane_batch_matches_independent_runs() {
    // Per-lane bit weights give each FU a different trip count, so lanes
    // hit the explicit ALL-SS barrier at different cycles.
    let prepared = (0..8u64)
        .map(|lane| {
            let data = gen::bit_weighted_ints(70 + lane, 32, 1 + 3 * lane as u32 % 24);
            bitcount::prepared(&data).expect("bitcount prepares")
        })
        .collect();
    assert_lanes_equivalent(prepared);
}

#[test]
fn tproc_lane_batch_matches_independent_runs() {
    // Identical program, per-lane register inputs: stays uniform end to
    // end, the pure vectorized path.
    let prepared = [(1, 2, 3, 4), (9, -4, 3, 12), (-7, 11, 5, 2), (0, 0, 0, 1)]
        .into_iter()
        .map(|(a, b, c, d)| tproc::prepared(a, b, c, d).expect("tproc prepares"))
        .collect();
    assert_lanes_equivalent(prepared);
}

#[test]
fn randprog_lane_batches_match_with_per_lane_register_seeds() {
    // Straight-line random programs shared across a batch whose lanes
    // differ only in initial register state.
    for seed in 0..12u64 {
        let width = 1 + (seed as usize % 8);
        let len = 3 + (seed as usize % 13);
        let vliw = randprog::straight_line_vliw(seed, width, len, 24);
        let config = MachineConfig::with_width(width);
        let spec = RunSpec::Run(10 * (len as u64 + 2));
        let prepared: Vec<(Xsim, RunSpec)> = (0..6u16)
            .map(|lane| {
                let mut sim = Xsim::new(vliw.to_ximd(), config.clone()).unwrap();
                for r in 0..24u16 {
                    sim.write_reg(Reg(r), Value::I32(i32::from(lane * 131 + r * 17) - 900));
                }
                (sim, spec)
            })
            .collect();
        assert_lanes_equivalent(prepared);
    }
}

#[test]
fn mixed_lane_batches_are_rejected() {
    // Batching two different workloads is a configuration error, caught at
    // assembly with the offending lane.
    let (a, sa) = tproc::prepared(1, 2, 3, 4).unwrap();
    let (b, sb) = bitcount::prepared(&[1, 2, 3]).unwrap();
    let err = lane_batch(vec![(a, sa), (b, sb)]).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::Config(ximd::sim::ConfigError::LaneMismatch { .. })
        ),
        "{err}"
    );
}

#[test]
fn uniform_lane_replication_matches_one_decoded_run() {
    // N identical lanes of one prepared machine: every lane must finish
    // with exactly the single decoded run's state.
    let data = gen::bit_weighted_ints(13, 48, 24);
    let (proto, spec) = bitcount::prepared(&data).unwrap();
    let mut lanes = LaneXsim::replicate(&proto, 16).unwrap();
    spec.drive_lanes(&mut lanes).unwrap();
    let mut solo = proto.clone();
    let summary = spec.drive_decoded(&mut solo).unwrap();
    for l in 0..16 {
        assert_eq!(lanes.summary(l), Some(&summary), "lane {l}");
        assert_eq!(lanes.pcs(l), solo.pcs(), "lane {l}");
        assert_eq!(
            lanes.mem_peek_slice(l, 0, MEM_WINDOW).unwrap(),
            solo.mem().peek_slice(0, MEM_WINDOW).unwrap(),
            "lane {l}"
        );
    }
}

#[test]
fn nonblocking_decoded_matches_with_ports() {
    // Port arrival schedules are keyed off the cycle counter, so any cycle
    // skew between the engines surfaces as different port traffic.
    for seed in [0u64, 3, 11] {
        let scenario = nonblocking::Scenario::with_seed(seed);
        let (interp, spec) = nonblocking::prepared_sync(&scenario).unwrap();
        let (fast, _) = nonblocking::prepared_sync(&scenario).unwrap();
        assert_equivalent(interp, fast, spec);
    }
}
