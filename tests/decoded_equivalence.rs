//! Decoded fast path vs interpreter, across the repo's program sources.
//!
//! The `crates/sim` unit and property tests cover hand-built and branchy
//! random programs; this suite closes the loop at the workspace level:
//! `ximd-models::randprog` sweeps (the generators the emulation theorems
//! use) and every paper workload, each run twice — interpreter and decoded
//! engine — and compared on `RunSummary` (cycle-exact, every `SimStats`
//! counter), final registers, PCs, CCs, and the low memory region the
//! workloads write.

use ximd::models::randprog;
use ximd::prelude::*;
use ximd::workloads::{bitcount, gen, livermore, minmax, nonblocking, tproc, RunSpec};

/// Words of memory compared after each run — covers every workload's data
/// region (the largest base is livermore's `X_BASE = 4999`).
const MEM_WINDOW: usize = 6000;

fn assert_equivalent(mut interp: Xsim, mut fast: Xsim, spec: RunSpec) {
    let a = spec.drive(&mut interp);
    let b = spec.drive_decoded(&mut fast);
    assert_eq!(a, b, "RunSummary diverged");
    let num_regs = interp.config().num_regs;
    for r in 0..num_regs as u16 {
        assert_eq!(interp.reg(Reg(r)), fast.reg(Reg(r)), "register r{r}");
    }
    assert_eq!(interp.pcs(), fast.pcs(), "program counters");
    assert_eq!(interp.ccs(), fast.ccs(), "condition codes");
    assert_eq!(interp.stats(), fast.stats(), "statistics counters");
    assert_eq!(
        interp.mem().peek_slice(0, MEM_WINDOW).unwrap(),
        fast.mem().peek_slice(0, MEM_WINDOW).unwrap(),
        "memory window"
    );
    let written = |sim: &Xsim| -> Vec<Vec<i32>> {
        sim.ports()
            .iter()
            .map(|p| p.written().iter().map(|e| e.value.as_i32()).collect())
            .collect()
    };
    assert_eq!(written(&interp), written(&fast), "port output events");
}

#[test]
fn randprog_sweeps_are_cycle_and_register_exact() {
    for seed in 0..24u64 {
        let width = 1 + (seed as usize % 8);
        let len = 3 + (seed as usize % 13);
        let vliw = randprog::straight_line_vliw(seed, width, len, 24);
        let config = MachineConfig::with_width(width);
        let interp = Xsim::new(vliw.to_ximd(), config.clone()).unwrap();
        let fast = Xsim::new(vliw.to_ximd(), config).unwrap();
        assert_equivalent(interp, fast, RunSpec::Run(10 * (len as u64 + 2)));
    }
}

#[test]
fn randprog_sweeps_match_on_vsim_too() {
    for seed in 100..112u64 {
        let width = 1 + (seed as usize % 6);
        let vliw = randprog::straight_line_vliw(seed, width, 9, 16);
        let config = MachineConfig::with_width(width);
        let mut interp = Vsim::new(vliw.clone(), config.clone()).unwrap();
        let mut fast = Vsim::new(vliw, config).unwrap();
        let a = interp.run(200);
        let b = fast.run_decoded(200);
        assert_eq!(a, b, "seed {seed}");
        for r in 0..16u16 {
            assert_eq!(interp.reg(Reg(r)), fast.reg(Reg(r)), "seed {seed} r{r}");
        }
        assert_eq!(interp.pc(), fast.pc());
        assert_eq!(interp.stats(), fast.stats());
    }
}

#[test]
fn tproc_decoded_matches() {
    for (a, b, c, d) in [(1, 2, 3, 4), (9, -4, 3, 12), (-7, 11, 5, 2)] {
        let (interp, spec) = tproc::prepared(a, b, c, d).unwrap();
        let (fast, _) = tproc::prepared(a, b, c, d).unwrap();
        assert_equivalent(interp, fast, spec);
    }
}

#[test]
fn livermore_decoded_matches() {
    let y = gen::livermore_y(5, 64);
    let (interp, spec) = livermore::prepared(&y).unwrap();
    let (fast, _) = livermore::prepared(&y).unwrap();
    assert_equivalent(interp, fast, spec);
}

#[test]
fn minmax_decoded_matches_through_run_until_parked() {
    // MINMAX parks rather than halting — this exercises the decoded
    // `run_until_parked` path end to end, including the Figure 10 input.
    for data in [vec![5, 3, 4, 7], gen::uniform_ints(8, 96, -10_000, 10_000)] {
        let (interp, spec) = minmax::prepared(&data).unwrap();
        let (fast, _) = minmax::prepared(&data).unwrap();
        assert!(matches!(spec, RunSpec::Parked(..)));
        assert_equivalent(interp, fast, spec);
    }
}

#[test]
fn bitcount_decoded_matches() {
    let data = gen::bit_weighted_ints(13, 48, 24);
    let (interp, spec) = bitcount::prepared(&data).unwrap();
    let (fast, _) = bitcount::prepared(&data).unwrap();
    assert_equivalent(interp, fast, spec);
}

#[test]
fn nonblocking_decoded_matches_with_ports() {
    // Port arrival schedules are keyed off the cycle counter, so any cycle
    // skew between the engines surfaces as different port traffic.
    for seed in [0u64, 3, 11] {
        let scenario = nonblocking::Scenario::with_seed(seed);
        let (interp, spec) = nonblocking::prepared_sync(&scenario).unwrap();
        let (fast, _) = nonblocking::prepared_sync(&scenario).unwrap();
        assert_equivalent(interp, fast, spec);
    }
}
