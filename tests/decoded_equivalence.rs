//! Pairwise execution-backend equivalence, across the repo's program
//! sources.
//!
//! The `crates/sim` unit and property tests cover hand-built and branchy
//! random programs; this suite closes the loop at the workspace level,
//! generically over the backend registry: `ximd-models::randprog` sweeps
//! (the generators the emulation theorems use) and every paper workload
//! run once per registered backend capable of the request — the built-in
//! interpreter, decoded and lane engines plus the bench crate's
//! out-of-tree `shadow` differential backend — and every backend pair is
//! compared on the full observable state: `RunSummary` (cycle-exact,
//! every `SimStats` counter), [`backend::state_digest`] (registers, PCs,
//! CCs, statistics, all of memory) and port output events (the one
//! observable the digest excludes).
//!
//! The lane-batch sections additionally pin the SoA engine's per-lane
//! state against independent decoded runs, which the single-machine
//! pairwise sweep cannot see.

use ximd::models::randprog;
use ximd::prelude::*;
use ximd::sim::backend::{self, state_digest, BackendHandle, BackendRequest};
use ximd::sim::{LaneXsim, RunSummary, Session};
use ximd::workloads::{bitcount, gen, lane_batch, livermore, minmax, nonblocking, tproc, RunSpec};

/// Words of memory compared after each lane-batch run — covers every
/// workload's data region (the largest base is livermore's `X_BASE =
/// 4999`). The pairwise sweep needs no window: `state_digest` hashes the
/// whole backing store.
const MEM_WINDOW: usize = 6000;

/// Every backend the pairwise sweep must cover. Pinned by name so a
/// registry regression that silently drops one fails loudly rather than
/// shrinking the sweep.
const SUITE_BACKENDS: &[&str] = &["interp", "decoded", "lanes", "shadow"];

/// All registered backends capable of `request`, with the out-of-crate
/// `shadow` differential backend registered alongside the built-ins.
fn capable_backends(request: &BackendRequest) -> Vec<BackendHandle> {
    ximd_bench::shadow::register();
    let capable: Vec<BackendHandle> = backend::all()
        .into_iter()
        .filter(|b| b.capabilities().supports(request))
        .collect();
    for name in SUITE_BACKENDS {
        assert!(
            capable.iter().any(|b| b.name() == *name),
            "suite backend {name} missing from the capable set"
        );
    }
    capable
}

/// Port output events per port: the observable `state_digest` excludes.
fn port_events(sim: &Xsim) -> Vec<Vec<(u64, i32)>> {
    sim.ports()
        .iter()
        .map(|p| {
            p.written()
                .iter()
                .map(|e| (e.cycle, e.value.as_i32()))
                .collect()
        })
        .collect()
}

/// Runs one prepared machine through a backend trait object.
fn drive_with(be: &BackendHandle, sim: &Xsim, spec: RunSpec) -> (Session, Option<RunSummary>) {
    let (park, budget) = match spec {
        RunSpec::Run(b) => (None, b),
        RunSpec::Parked(p, b) => (Some(p), b),
    };
    let mut session = be
        .prepare(vec![sim.clone()], None)
        .unwrap_or_else(|e| panic!("{} prepare: {e}", be.name()));
    let summary = be
        .finish(&mut session, park, budget)
        .unwrap_or_else(|e| panic!("{} finish: {e}", be.name()));
    (session, summary)
}

/// Drives `proto` on every capable registered backend and asserts every
/// pair agrees on summary, state digest and port traffic.
fn assert_pairwise_equivalent(proto: &Xsim, spec: RunSpec, tag: &str) {
    let request = BackendRequest::for_instances(std::slice::from_ref(proto));
    let mut runs = Vec::new();
    for be in capable_backends(&request) {
        let (session, summary) = drive_with(&be, proto, spec);
        let digest = state_digest(&session);
        let ports = port_events(session.machine().expect("single-machine session"));
        runs.push((be.name(), summary, digest, ports));
    }
    for i in 0..runs.len() {
        for j in i + 1..runs.len() {
            let (a, b) = (&runs[i], &runs[j]);
            let pair = format!("{tag}: {} vs {}", a.0, b.0);
            assert_eq!(a.1, b.1, "{pair}: RunSummary diverged");
            assert_eq!(a.2, b.2, "{pair}: state digest diverged");
            assert_eq!(a.3, b.3, "{pair}: port output events diverged");
        }
    }
}

/// Batches the prepared instances on the lane engine, runs the batch, and
/// asserts every lane's full final state — summary (cycle-exact, every
/// `SimStats` counter), registers, PCs, CCs, the memory window and port
/// traffic — matches an independent decoded run of the same instance.
fn assert_lanes_equivalent(prepared: Vec<(Xsim, RunSpec)>) {
    let solos: Vec<(Xsim, RunSpec)> = prepared.clone();
    let (mut lanes, spec) = lane_batch(prepared).expect("lane batch assembles");
    spec.drive_lanes(&mut lanes).expect("lane batch runs");
    for (l, (mut solo, solo_spec)) in solos.into_iter().enumerate() {
        let summary = solo_spec.drive_decoded(&mut solo).expect("solo run");
        assert_eq!(lanes.summary(l), Some(&summary), "lane {l} summary");
        let num_regs = solo.config().num_regs;
        for r in 0..num_regs as u16 {
            assert_eq!(lanes.reg(l, Reg(r)), solo.reg(Reg(r)), "lane {l} r{r}");
        }
        assert_eq!(lanes.pcs(l), solo.pcs(), "lane {l} program counters");
        assert_eq!(lanes.ccs(l), solo.ccs(), "lane {l} condition codes");
        assert_eq!(
            lanes.mem_peek_slice(l, 0, MEM_WINDOW).unwrap(),
            solo.mem().peek_slice(0, MEM_WINDOW).unwrap(),
            "lane {l} memory window"
        );
        let events = |ports: &[IoPort]| -> Vec<Vec<(u64, i32)>> {
            ports
                .iter()
                .map(|p| {
                    p.written()
                        .iter()
                        .map(|e| (e.cycle, e.value.as_i32()))
                        .collect()
                })
                .collect()
        };
        assert_eq!(
            events(lanes.ports(l)),
            events(solo.ports()),
            "lane {l} port output events"
        );
    }
}

#[test]
fn randprog_sweeps_are_cycle_and_register_exact_on_every_backend() {
    for seed in 0..24u64 {
        let width = 1 + (seed as usize % 8);
        let len = 3 + (seed as usize % 13);
        let vliw = randprog::straight_line_vliw(seed, width, len, 24);
        let config = MachineConfig::with_width(width);
        let proto = Xsim::new(vliw.to_ximd(), config).unwrap();
        let spec = RunSpec::Run(10 * (len as u64 + 2));
        assert_pairwise_equivalent(&proto, spec, &format!("randprog seed {seed}"));
    }
}

#[test]
fn randprog_sweeps_match_on_vsim_too() {
    for seed in 100..112u64 {
        let width = 1 + (seed as usize % 6);
        let vliw = randprog::straight_line_vliw(seed, width, 9, 16);
        let config = MachineConfig::with_width(width);
        let mut interp = Vsim::new(vliw.clone(), config.clone()).unwrap();
        let mut fast = Vsim::new(vliw, config).unwrap();
        let a = interp.run(200);
        let b = fast.run_decoded(200);
        assert_eq!(a, b, "seed {seed}");
        for r in 0..16u16 {
            assert_eq!(interp.reg(Reg(r)), fast.reg(Reg(r)), "seed {seed} r{r}");
        }
        assert_eq!(interp.pc(), fast.pc());
        assert_eq!(interp.stats(), fast.stats());
    }
}

#[test]
fn tproc_all_backends_agree() {
    for (a, b, c, d) in [(1, 2, 3, 4), (9, -4, 3, 12), (-7, 11, 5, 2)] {
        let (proto, spec) = tproc::prepared(a, b, c, d).unwrap();
        assert_pairwise_equivalent(&proto, spec, &format!("tproc({a},{b},{c},{d})"));
    }
}

#[test]
fn livermore_all_backends_agree() {
    let y = gen::livermore_y(5, 64);
    let (proto, spec) = livermore::prepared(&y).unwrap();
    assert_pairwise_equivalent(&proto, spec, "livermore");
}

#[test]
fn minmax_all_backends_agree_through_run_until_parked() {
    // MINMAX parks rather than halting — this exercises every backend's
    // run-until-parked path end to end, including the Figure 10 input.
    for data in [vec![5, 3, 4, 7], gen::uniform_ints(8, 96, -10_000, 10_000)] {
        let (proto, spec) = minmax::prepared(&data).unwrap();
        assert!(matches!(spec, RunSpec::Parked(..)));
        assert_pairwise_equivalent(&proto, spec, "minmax");
    }
}

#[test]
fn bitcount_all_backends_agree() {
    let data = gen::bit_weighted_ints(13, 48, 24);
    let (proto, spec) = bitcount::prepared(&data).unwrap();
    assert_pairwise_equivalent(&proto, spec, "bitcount");
}

#[test]
fn nonblocking_all_backends_agree_with_ports() {
    // Port arrival schedules are keyed off the cycle counter, so any cycle
    // skew between backends surfaces as different port traffic.
    for seed in [0u64, 3, 11] {
        let scenario = nonblocking::Scenario::with_seed(seed);
        let (proto, spec) = nonblocking::prepared_sync(&scenario).unwrap();
        assert_pairwise_equivalent(&proto, spec, &format!("nonblocking seed {seed}"));
    }
}

#[test]
fn minmax_lane_batch_matches_independent_runs() {
    // Per-lane data of different sizes and values: the comparison tree's
    // branches diverge across lanes and each lane parks at its own cycle —
    // the divergence-heaviest workload the repo has.
    let prepared = (0..12u64)
        .map(|lane| {
            let n = 8 + 11 * lane as usize;
            let data = gen::uniform_ints(40 + lane, n, -10_000, 10_000);
            minmax::prepared(&data).expect("minmax prepares")
        })
        .collect();
    assert_lanes_equivalent(prepared);
}

#[test]
fn bitcount_lane_batch_matches_independent_runs() {
    // Per-lane bit weights give each FU a different trip count, so lanes
    // hit the explicit ALL-SS barrier at different cycles.
    let prepared = (0..8u64)
        .map(|lane| {
            let data = gen::bit_weighted_ints(70 + lane, 32, 1 + 3 * lane as u32 % 24);
            bitcount::prepared(&data).expect("bitcount prepares")
        })
        .collect();
    assert_lanes_equivalent(prepared);
}

#[test]
fn tproc_lane_batch_matches_independent_runs() {
    // Identical program, per-lane register inputs: stays uniform end to
    // end, the pure vectorized path.
    let prepared = [(1, 2, 3, 4), (9, -4, 3, 12), (-7, 11, 5, 2), (0, 0, 0, 1)]
        .into_iter()
        .map(|(a, b, c, d)| tproc::prepared(a, b, c, d).expect("tproc prepares"))
        .collect();
    assert_lanes_equivalent(prepared);
}

#[test]
fn randprog_lane_batches_match_with_per_lane_register_seeds() {
    // Straight-line random programs shared across a batch whose lanes
    // differ only in initial register state.
    for seed in 0..12u64 {
        let width = 1 + (seed as usize % 8);
        let len = 3 + (seed as usize % 13);
        let vliw = randprog::straight_line_vliw(seed, width, len, 24);
        let config = MachineConfig::with_width(width);
        let spec = RunSpec::Run(10 * (len as u64 + 2));
        let prepared: Vec<(Xsim, RunSpec)> = (0..6u16)
            .map(|lane| {
                let mut sim = Xsim::new(vliw.to_ximd(), config.clone()).unwrap();
                for r in 0..24u16 {
                    sim.write_reg(Reg(r), Value::I32(i32::from(lane * 131 + r * 17) - 900));
                }
                (sim, spec)
            })
            .collect();
        assert_lanes_equivalent(prepared);
    }
}

#[test]
fn mixed_lane_batches_are_rejected() {
    // Batching two different workloads is a configuration error, caught at
    // assembly with the offending lane.
    let (a, sa) = tproc::prepared(1, 2, 3, 4).unwrap();
    let (b, sb) = bitcount::prepared(&[1, 2, 3]).unwrap();
    let err = lane_batch(vec![(a, sa), (b, sb)]).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::Config(ximd::sim::ConfigError::LaneMismatch { .. })
        ),
        "{err}"
    );
}

#[test]
fn uniform_lane_replication_matches_one_decoded_run() {
    // N identical lanes of one prepared machine: every lane must finish
    // with exactly the single decoded run's state.
    let data = gen::bit_weighted_ints(13, 48, 24);
    let (proto, spec) = bitcount::prepared(&data).unwrap();
    let mut lanes = LaneXsim::replicate(&proto, 16).unwrap();
    spec.drive_lanes(&mut lanes).unwrap();
    let mut solo = proto.clone();
    let summary = spec.drive_decoded(&mut solo).unwrap();
    for l in 0..16 {
        assert_eq!(lanes.summary(l), Some(&summary), "lane {l}");
        assert_eq!(lanes.pcs(l), solo.pcs(), "lane {l}");
        assert_eq!(
            lanes.mem_peek_slice(l, 0, MEM_WINDOW).unwrap(),
            solo.mem().peek_slice(0, MEM_WINDOW).unwrap(),
            "lane {l}"
        );
    }
}
