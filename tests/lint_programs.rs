//! xlint over every bundled `programs/*.xasm` listing.
//!
//! The expected results are snapshotted: three of the four paper programs
//! verify completely clean, and MINMAX draws exactly two cross-stream
//! warnings — real ones. The paper's Example 2 hands `tz` from FU0's
//! stream to FU2/FU3's in the same cycle (`03: load …,tz` while
//! `04: iadd tz,#0,min`), relying on synchronous clocking and
//! read-old-value semantics across streams the partition rule cannot
//! prove synchronous. xlint is right to call that out, and the listing is
//! the paper's, so the warnings are pinned here rather than "fixed".

use ximd::analysis::{lint_assembly, AnalysisConfig, Check, Severity};
use ximd::asm::assemble;

fn lint(name: &str) -> ximd::analysis::Analysis {
    let path = format!("{}/../../programs/{name}.xasm", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let assembly = assemble(&source).expect("program assembles");
    lint_assembly(&assembly, &AnalysisConfig::default())
}

#[test]
fn tproc_lints_clean_with_one_stream() {
    let analysis = lint("tproc");
    assert!(analysis.is_clean(), "{analysis}");
    assert_eq!(analysis.max_live_streams, 1, "TPROC is pure VLIW lockstep");
}

#[test]
fn minmax_draws_exactly_the_two_known_timing_warnings() {
    let analysis = lint("minmax");
    assert!(!analysis.has_errors(), "{analysis}");
    let races: Vec<_> = analysis.diagnostics.iter().collect();
    assert_eq!(races.len(), 2, "{analysis}");
    for d in &races {
        assert_eq!(d.check, Check::CrossStreamRace);
        assert_eq!(d.severity, Severity::Warning);
        // FU0's next-element load overlapping the min/max update's read.
        assert!(d.message.contains("r3"), "{}", d.message);
        assert!(d.line.is_some(), "warning carries a source span");
    }
    // Figure 10's trace shows at most three concurrent streams.
    assert_eq!(analysis.max_live_streams, 3);
}

#[test]
fn bitcount_lints_clean_with_four_streams() {
    let analysis = lint("bitcount");
    assert!(analysis.is_clean(), "{analysis}");
    assert_eq!(analysis.max_live_streams, 4, "Figure 11: four streams");
}

#[test]
fn nonblocking_sync_is_proved_race_free() {
    // Figure 12's point: sync signals replace memory flags. Exact sync
    // evaluation proves the handshake keeps producers' writes and
    // consumers' reads out of each other's cycles — no race findings.
    let analysis = lint("nonblocking_sync");
    assert!(analysis.is_clean(), "{analysis}");
    assert_eq!(analysis.max_live_streams, 8);
}

#[test]
fn workload_sources_have_no_lint_errors() {
    // Every assembly listing a workload embeds must at least be free of
    // error-severity findings.
    for (name, source) in [
        ("tproc", ximd::workloads::tproc::SOURCE),
        ("minmax", ximd::workloads::minmax::SOURCE),
        ("bitcount", ximd::workloads::bitcount::SOURCE),
        (
            "nonblocking-sync",
            ximd::workloads::nonblocking::SOURCE_SYNC,
        ),
        (
            "nonblocking-flags",
            ximd::workloads::nonblocking::SOURCE_FLAGS,
        ),
        ("race", ximd::workloads::race::SOURCE),
    ] {
        let assembly = assemble(source).unwrap_or_else(|e| panic!("{name}: {e}"));
        let analysis = lint_assembly(&assembly, &AnalysisConfig::default());
        assert!(!analysis.has_errors(), "{name}:\n{analysis}");
    }
}
