//! Integration tests spanning crates: assembler → simulator, compiler →
//! both simulators, workloads → oracles, models → machines.

use ximd::compiler;
use ximd::prelude::*;
use ximd::workloads::{bitcount, gen, livermore, minmax, nonblocking, tproc};

#[test]
fn figure10_reproduces_from_the_umbrella_crate() {
    let (outcome, trace) = minmax::run_ximd_traced(&[5, 3, 4, 7]).unwrap();
    assert_eq!((outcome.min, outcome.max, outcome.cycles), (3, 7, 14));
    assert!(minmax::diff_figure10(&trace).is_none(), "{trace}");
}

#[test]
fn all_paper_workloads_match_their_oracles() {
    // TPROC.
    let t = tproc::run_ximd(9, -4, 3, 12).unwrap();
    assert_eq!(t.result, tproc::oracle(9, -4, 3, 12));

    // MINMAX.
    let data = gen::uniform_ints(3, 57, -500, 500);
    let m = minmax::run_ximd(&data).unwrap();
    assert_eq!((m.min, m.max), minmax::oracle(&data));

    // BITCOUNT1.
    let bits = gen::bit_weighted_ints(4, 21, 20);
    let b = bitcount::run_ximd(&bits).unwrap();
    assert_eq!(b.b, bitcount::oracle(&bits));

    // Livermore Loop 12.
    let y = gen::livermore_y(5, 30);
    let l = livermore::run_ximd(&y).unwrap();
    assert_eq!(l.x, livermore::oracle(&y));
}

#[test]
fn paper_workloads_beat_their_vliw_baselines_where_claimed() {
    // Branchy workloads: XIMD wins.
    let data = gen::uniform_ints(8, 96, -100, 100);
    let (x, v) = (
        minmax::run_ximd(&data).unwrap(),
        minmax::run_vliw(&data).unwrap(),
    );
    assert!(x.cycles < v.cycles, "minmax: {} vs {}", x.cycles, v.cycles);

    let bits = gen::bit_weighted_ints(9, 48, 24);
    let (xb, vb) = (
        bitcount::run_ximd(&bits).unwrap(),
        bitcount::run_vliw(&bits).unwrap(),
    );
    assert!(
        xb.cycles * 3 < vb.cycles * 2,
        "bitcount: {} vs {}",
        xb.cycles,
        vb.cycles
    );

    // Synchronous workloads: exact tie (§3.1).
    let y = gen::livermore_y(6, 24);
    assert_eq!(
        livermore::run_ximd(&y).unwrap(),
        livermore::run_vliw(&y).unwrap()
    );
    let (xt, vt) = (
        tproc::run_ximd(1, 2, 3, 4).unwrap(),
        tproc::run_vliw(1, 2, 3, 4).unwrap(),
    );
    assert_eq!(xt, vt);
}

#[test]
fn assembled_programs_roundtrip_and_run() {
    // MINMAX source → program → printed source → program: identical, and
    // the reassembled program still reproduces Figure 10.
    let original = minmax::ximd_assembly().program;
    let printed = ximd::asm::print_program(&original);
    let back = assemble(&printed).unwrap().program;
    assert_eq!(back, original);
}

#[test]
fn compiled_minmax_runs_on_both_machines() {
    // The compiler's own minmax, from mini-C source, checked against the
    // workload oracle on both simulators.
    let src = r"
fn minmax(n) {
    let mn = 2147483647;
    let mx = 0 - 2147483647 - 1;
    let i = 0;
    while (i < n) {
        let v = mem[100 + i];
        if (v < mn) { mn = v; }
        if (v > mx) { mx = v; }
        i = i + 1;
    }
    mem[50] = mn;
    mem[51] = mx;
    return 0;
}
";
    let data = gen::uniform_ints(11, 40, -9999, 9999);
    let (emin, emax) = minmax::oracle(&data);
    let compiled = compiler::compile(src, 4).unwrap();

    let mut vs = Vsim::new(compiled.vliw.clone(), MachineConfig::with_width(4)).unwrap();
    vs.write_reg(compiled.param_regs[0], Value::I32(data.len() as i32));
    vs.mem_mut().poke_slice(100, &data).unwrap();
    vs.run(1_000_000).unwrap();
    assert_eq!(vs.mem().peek_slice(50, 2).unwrap(), vec![emin, emax]);

    let mut xs = Xsim::new(compiled.ximd_program(), MachineConfig::with_width(4)).unwrap();
    xs.write_reg(compiled.param_regs[0], Value::I32(data.len() as i32));
    xs.mem_mut().poke_slice(100, &data).unwrap();
    xs.run(1_000_000).unwrap();
    assert_eq!(xs.mem().peek_slice(50, 2).unwrap(), vec![emin, emax]);

    assert_eq!(
        vs.cycle(),
        xs.cycle(),
        "compiled code is VLIW-style: cycle-exact on XIMD"
    );
}

#[test]
fn pipelined_loop12_matches_handwritten_schedule_performance() {
    // The compiler's modulo scheduler should match the hand-written II=2
    // software pipeline from the workloads crate on the same computation.
    use ximd::compiler::ir::{Inst, VReg, Val};
    use ximd::compiler::pipeline::{modulo_schedule, CountedLoop};
    use ximd_isa::AluOp;

    let spec = CountedLoop {
        body: vec![
            Inst::Bin {
                op: AluOp::Iadd,
                a: VReg(0).into(),
                b: Val::Const(livermore::X_BASE),
                d: VReg(5),
            },
            Inst::Load {
                base: Val::Const(livermore::Y_BASE),
                off: VReg(0).into(),
                d: VReg(2),
            },
            Inst::Load {
                base: Val::Const(livermore::Y_BASE + 1),
                off: VReg(0).into(),
                d: VReg(3),
            },
            Inst::Bin {
                op: AluOp::Isub,
                a: VReg(3).into(),
                b: VReg(2).into(),
                d: VReg(4),
            },
            Inst::Store {
                val: VReg(4).into(),
                addr: VReg(5).into(),
            },
        ],
        induction: VReg(0),
        start: 1,
        step: 1,
        trips: VReg(1),
        assume_no_alias: true,
    };
    let pipe = modulo_schedule(&spec, 4).unwrap();
    assert_eq!(
        pipe.ii, 2,
        "matches the hand schedule's initiation interval"
    );

    let n = 32usize;
    let y = gen::livermore_y(12, n);
    let mut sim = Vsim::new(pipe.vliw.clone(), MachineConfig::with_width(4)).unwrap();
    sim.mem_mut()
        .poke_slice(livermore::Y_BASE as i64 + 1, &y)
        .unwrap();
    sim.write_reg(pipe.reg_of[&VReg(1)], Value::I32(n as i32));
    sim.run(10_000).unwrap();
    assert_eq!(
        sim.mem()
            .peek_slice(livermore::X_BASE as i64 + 1, n)
            .unwrap(),
        livermore::oracle(&y)
    );
}

#[test]
fn nonblocking_sync_outperforms_memory_flags_across_seeds() {
    for seed in [100u64, 200, 300] {
        let s = nonblocking::Scenario::with_seed(seed);
        let sync = nonblocking::run_sync(&s).unwrap();
        let flags = nonblocking::run_flags(&s).unwrap();
        assert!(sync.cycles <= flags.cycles, "seed {seed}");
    }
}

#[test]
fn comparison_report_formats() {
    let data = gen::uniform_ints(2, 32, -50, 50);
    let x = minmax::run_ximd(&data).unwrap();
    let v = minmax::run_vliw(&data).unwrap();
    // Build the §4.1 row via the umbrella type.
    let row = ximd::Comparison {
        name: "minmax".into(),
        ximd: ximd_sim::SimStats {
            cycles: x.cycles,
            ..Default::default()
        },
        vliw: ximd_sim::SimStats {
            cycles: v.cycles,
            ..Default::default()
        },
    };
    assert!(row.speedup() > 1.0);
    assert!(row.to_string().contains("minmax"));
}

#[test]
fn encoded_programs_survive_binary_roundtrip() {
    use ximd_isa::encode::{decode_parcel, encode_parcel};
    let program = bitcount::ximd_assembly().program;
    for (addr, word) in program.iter() {
        for (fu, parcel) in word.iter().enumerate() {
            let bits =
                encode_parcel(parcel).unwrap_or_else(|e| panic!("encode {addr} fu{fu}: {e}"));
            assert_eq!(decode_parcel(bits).unwrap(), *parcel, "{addr} fu{fu}");
        }
    }
}
