//! Cross-crate property tests: invariants that hold for arbitrary
//! programs and workloads, spanning the assembler, both simulators, the
//! compiler and the models.

use proptest::prelude::*;
use ximd::compiler;
use ximd::models::randprog::straight_line_vliw;
use ximd::prelude::*;
use ximd::workloads::{bitcount, minmax};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// MINMAX (the paper's own program) is correct on arbitrary inputs.
    #[test]
    fn minmax_program_is_correct(data in proptest::collection::vec(-10_000i32..10_000, 1..50)) {
        let out = minmax::run_ximd(&data).unwrap();
        let (emin, emax) = minmax::oracle(&data);
        prop_assert_eq!((out.min, out.max), (emin, emax));
    }

    /// BITCOUNT1 (barrier synchronization) is correct on arbitrary
    /// non-negative inputs, at sizes crossing the block/cleanup boundary.
    #[test]
    fn bitcount_program_is_correct(data in proptest::collection::vec(0i32..=i32::MAX, 1..30)) {
        let out = bitcount::run_ximd(&data).unwrap();
        prop_assert_eq!(out.b, bitcount::oracle(&data));
    }

    /// Any straight-line VLIW program produces identical registers and
    /// cycle counts on vsim and on xsim after control duplication, and the
    /// disassemble→reassemble round trip preserves behaviour.
    #[test]
    fn vliw_ximd_and_asm_roundtrip_agree(seed in any::<u64>(), width in 1usize..5, len in 1usize..10) {
        let vliw = straight_line_vliw(seed, width, len, 12);
        let cfg = MachineConfig::with_width(width);

        let mut vs = Vsim::new(vliw.clone(), cfg.clone()).unwrap();
        let mut xs = Xsim::new(vliw.to_ximd(), cfg.clone()).unwrap();
        let printed = ximd::asm::print_program(&vliw.to_ximd());
        let re = assemble(&printed).unwrap().program;
        let mut rs = Xsim::new(re, cfg).unwrap();

        for r in 0..12u16 {
            let v = Value::I32(i32::from(r) * 3 - 11);
            vs.write_reg(Reg(r), v);
            xs.write_reg(Reg(r), v);
            rs.write_reg(Reg(r), v);
        }
        let c1 = vs.run(1000).unwrap().cycles;
        let c2 = xs.run(1000).unwrap().cycles;
        let c3 = rs.run(1000).unwrap().cycles;
        prop_assert_eq!(c1, c2);
        prop_assert_eq!(c2, c3);
        for r in 0..12u16 {
            prop_assert_eq!(vs.reg(Reg(r)), xs.reg(Reg(r)));
            prop_assert_eq!(xs.reg(Reg(r)), rs.reg(Reg(r)));
        }
    }

    /// Compiled arithmetic agrees with a Rust oracle for arbitrary inputs,
    /// at every machine width.
    #[test]
    fn compiled_expression_is_width_independent(a in -1000i32..1000, b in -1000i32..1000) {
        let src = "fn f(a, b) { return (a + b) * (a - b) + ((a & b) | 3); }";
        let oracle = (a.wrapping_add(b)).wrapping_mul(a.wrapping_sub(b)).wrapping_add((a & b) | 3);
        for width in [1usize, 2, 4, 8] {
            let f = compiler::compile(src, width).unwrap();
            prop_assert_eq!(f.run_vliw(&[a, b]).unwrap(), Some(oracle), "width {}", width);
        }
    }

    /// Compiled loops agree with a Rust oracle.
    #[test]
    fn compiled_loop_is_correct(n in 0i32..40) {
        let src = r"
fn f(n) {
    let s = 0;
    let i = 0;
    while (i < n) {
        if (i % 3 == 0) { s = s + i * 2; } else { s = s - i; }
        i = i + 1;
    }
    return s;
}
";
        let mut s = 0i32;
        for i in 0..n {
            if i % 3 == 0 { s += i * 2 } else { s -= i }
        }
        let f = compiler::compile(src, 4).unwrap();
        prop_assert_eq!(f.run_vliw(&[n]).unwrap(), Some(s));
    }

    /// The partition is always a valid partition of all FUs, and a
    /// VLIW-style program never leaves one SSET.
    #[test]
    fn partitions_are_well_formed(seed in any::<u64>(), width in 1usize..5, len in 1usize..8) {
        let vliw = straight_line_vliw(seed, width, len, 12);
        let mut sim = Xsim::new(vliw.to_ximd(), MachineConfig::with_width(width)).unwrap();
        sim.enable_trace();
        sim.run(1000).unwrap();
        for row in sim.trace().unwrap().rows() {
            prop_assert_eq!(row.partition.width(), width);
        }
        prop_assert_eq!(sim.stats().max_concurrent_streams, 1);
    }
}
