//! Simulator-level property tests over random *branchy* XIMD programs.
//!
//! Unlike the models crate's straight-line equivalence tests, these
//! programs contain conditional branches on arbitrary condition sources, so
//! the machine genuinely forks and re-joins. Properties: the simulator
//! never panics, is deterministic, its partition is always a partition, and
//! its statistics are internally consistent.

use proptest::prelude::*;
use ximd_isa::{
    Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, FuId, Operand, Parcel, Program, Reg,
    SyncSignal,
};
use ximd_sim::{LaneXsim, MachineConfig, SimError, Xsim};

const NUM_REGS: u16 = 12;

fn arb_data(width: usize) -> impl Strategy<Value = DataOp> {
    let _ = width;
    prop_oneof![
        3 => Just(DataOp::Nop),
        4 => (
            proptest::sample::select(vec![
                AluOp::Iadd,
                AluOp::Isub,
                AluOp::Imult,
                AluOp::And,
                AluOp::Xor,
            ]),
            0u16..NUM_REGS,
            -20i32..20,
            0u16..NUM_REGS
        )
            .prop_map(|(op, a, imm, d)| DataOp::Alu {
                op,
                a: Operand::Reg(Reg(a)),
                b: Operand::imm_i32(imm),
                d: Reg(d),
            }),
        2 => (
            proptest::sample::select(CmpOp::ALL[..6].to_vec()),
            0u16..NUM_REGS,
            -10i32..10
        )
            .prop_map(|(op, a, imm)| DataOp::Cmp {
                op,
                a: Operand::Reg(Reg(a)),
                b: Operand::imm_i32(imm),
            }),
    ]
}

fn arb_ctrl(len: u32, width: usize) -> impl Strategy<Value = ControlOp> {
    let fu = 0..width as u8;
    prop_oneof![
        3 => (0..len).prop_map(|t| ControlOp::Goto(Addr(t))),
        3 => (
            prop_oneof![
                fu.clone().prop_map(|f| CondSource::Cc(FuId(f))),
                fu.prop_map(|f| CondSource::Sync(FuId(f))),
                Just(CondSource::AllSync),
                Just(CondSource::AnySync),
            ],
            0..len,
            0..len
        )
            .prop_map(|(cond, t1, t2)| ControlOp::branch(cond, Addr(t1), Addr(t2))),
        1 => Just(ControlOp::Halt),
    ]
}

prop_compose! {
    fn arb_program()(width in 1usize..5, len in 2u32..10)(
        width in Just(width),
        len in Just(len),
        rows in proptest::collection::vec(
            proptest::collection::vec(
                (arb_data(4), arb_ctrl(10, 4), any::<bool>()),
                1..5
            ),
            2..10
        ),
    ) -> Program {
        // Shape the raw material into a consistent program: clamp targets to
        // the actual length and FUs to the actual width. Destination
        // registers are remapped into per-FU banks (reg % width == fu) so
        // that no two FUs can ever write one register in the same cycle —
        // with independent PCs, same-cycle writers need not share a row, so
        // row-local dedup would not be enough. Reads stay unrestricted.
        let len = len.min(rows.len() as u32);
        let mut program = Program::new(width);
        for r in 0..len {
            let raw = &rows[r as usize];
            let mut word = Vec::with_capacity(width);
            for fu in 0..width {
                let (data, ctrl, done) = raw[fu % raw.len()];
                let bank = |d: Reg| {
                    let lanes = (NUM_REGS as usize / width).max(1) as u16;
                    Reg((d.0 % lanes) * width as u16 + fu as u16)
                };
                let data = match data {
                    DataOp::Alu { op, a, b, d } => DataOp::Alu { op, a, b, d: bank(d) },
                    other => other,
                };
                let clamp = |a: Addr| Addr(a.0 % len);
                let ctrl = match ctrl {
                    ControlOp::Goto(t) => ControlOp::Goto(clamp(t)),
                    ControlOp::Branch { cond, taken, not_taken } => {
                        let cond = match cond {
                            CondSource::Cc(f) => CondSource::Cc(FuId(f.0 % width as u8)),
                            CondSource::Sync(f) => CondSource::Sync(FuId(f.0 % width as u8)),
                            other => other,
                        };
                        ControlOp::Branch { cond, taken: clamp(taken), not_taken: clamp(not_taken) }
                    }
                    ControlOp::Halt => ControlOp::Halt,
                };
                let sync = if done { SyncSignal::Done } else { SyncSignal::Busy };
                word.push(Parcel { data, ctrl, sync });
            }
            program.push(word);
        }
        program
    }
}

fn run_once(program: &Program, budget: u64) -> Result<(u64, Vec<i32>, Vec<String>), SimError> {
    let width = program.width();
    let mut sim = Xsim::new(program.clone(), MachineConfig::with_width(width))?;
    for r in 0..NUM_REGS {
        sim.write_reg(Reg(r), (i32::from(r) * 5 - 7).into());
    }
    sim.enable_trace();
    let result = sim.run(budget);
    let cycles = match result {
        Ok(summary) => summary.cycles,
        Err(SimError::CycleLimit { .. }) => budget,
        Err(e) => return Err(e),
    };
    let regs = (0..NUM_REGS).map(|r| sim.reg(Reg(r)).as_i32()).collect();
    let parts = sim
        .trace()
        .unwrap()
        .partitions()
        .map(|p| p.to_string())
        .collect();
    Ok((cycles, regs, parts))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Branchy random programs never panic the simulator, and two runs of
    /// the same program are bit-identical (cycles, registers, partitions).
    #[test]
    fn simulation_is_deterministic(program in arb_program()) {
        let budget = 300;
        let a = run_once(&program, budget).expect("only cycle-limit errors allowed");
        let b = run_once(&program, budget).expect("only cycle-limit errors allowed");
        prop_assert_eq!(a, b);
    }

    /// The decoded fast path is indistinguishable from the interpreter on
    /// branchy random programs: identical `RunSummary` (every counter in
    /// `SimStats`, not just cycles), registers, PCs, CCs and partition.
    #[test]
    fn decoded_path_matches_interpreter(program in arb_program()) {
        let width = program.width();
        let config = MachineConfig::with_width(width);
        let budget = 300;
        let mut interp = Xsim::new(program.clone(), config.clone()).unwrap();
        let mut fast = Xsim::new(program, config).unwrap();
        for r in 0..NUM_REGS {
            interp.write_reg(Reg(r), (i32::from(r) * 5 - 7).into());
            fast.write_reg(Reg(r), (i32::from(r) * 5 - 7).into());
        }
        let a = interp.run(budget);
        let b = fast.run_decoded(budget);
        prop_assert_eq!(a.clone(), b);
        if matches!(a, Ok(_) | Err(SimError::CycleLimit { .. })) {
            for r in 0..NUM_REGS {
                prop_assert_eq!(interp.reg(Reg(r)), fast.reg(Reg(r)));
            }
            prop_assert_eq!(interp.pcs(), fast.pcs());
            prop_assert_eq!(interp.ccs(), fast.ccs());
            prop_assert_eq!(interp.partition(), fast.partition());
            prop_assert_eq!(interp.stats(), fast.stats());
            prop_assert_eq!(interp.cycle(), fast.cycle());
        }
    }

    /// The lane engine on branchy random programs: a batch whose lanes
    /// differ only in initial register state finishes with every lane
    /// bit-identical to its own independent decoded run — summary (every
    /// `SimStats` counter), registers, PCs and CCs. A batch abort must
    /// carry the first failing lane's own error.
    #[test]
    fn lane_batches_match_independent_decoded_runs(
        program in arb_program(),
        seeds in proptest::collection::vec(-50i32..50, 2..6),
    ) {
        let width = program.width();
        let config = MachineConfig::with_width(width);
        let budget = 300;
        let mk = |seed: i32| {
            let mut sim = Xsim::new(program.clone(), config.clone()).unwrap();
            for r in 0..NUM_REGS {
                sim.write_reg(Reg(r), (i32::from(r) * 3 + seed).into());
            }
            sim
        };

        let instances: Vec<Xsim> = seeds.iter().map(|&s| mk(s)).collect();
        let mut lanes = LaneXsim::from_instances(&instances).unwrap();
        let batch = lanes.run(budget);

        // The oracle: each lane as its own independent decoded run.
        let solos: Vec<(Xsim, Result<_, SimError>)> = seeds
            .iter()
            .map(|&s| {
                let mut solo = mk(s);
                let r = solo.run_decoded(budget);
                (solo, r)
            })
            .collect();

        match batch {
            Ok(_) => {
                for (l, (solo, result)) in solos.iter().enumerate() {
                    let summary = result
                        .as_ref()
                        .expect("batch succeeded, so every independent run must");
                    prop_assert_eq!(lanes.summary(l), Some(summary), "lane {}", l);
                    for r in 0..NUM_REGS {
                        prop_assert_eq!(lanes.reg(l, Reg(r)), solo.reg(Reg(r)), "lane {} r{}", l, r);
                    }
                    prop_assert_eq!(lanes.pcs(l), solo.pcs(), "lane {}", l);
                    prop_assert_eq!(lanes.ccs(l), solo.ccs(), "lane {}", l);
                }
            }
            Err(SimError::Lane { lane, error }) => {
                let first = solos
                    .iter()
                    .position(|(_, r)| r.is_err())
                    .expect("batch failed, so some independent run must");
                prop_assert_eq!(lane, first, "error attributed to the wrong lane");
                let solo_err = solos[first].1.as_ref().unwrap_err();
                prop_assert_eq!(&*error, solo_err, "lane {}", lane);
            }
            Err(e) => {
                return Err(TestCaseError::fail(format!("unattributed batch error: {e}")));
            }
        }
    }

    /// The per-cycle partition always covers exactly the machine's FUs, and
    /// statistics stay consistent with the trace.
    #[test]
    fn partitions_and_stats_are_consistent(program in arb_program()) {
        let width = program.width();
        let mut sim = Xsim::new(program, MachineConfig::with_width(width)).unwrap();
        sim.enable_trace();
        match sim.run(300) {
            Ok(_) | Err(SimError::CycleLimit { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected machine check: {e}"))),
        }
        let stats = sim.stats().clone();
        let trace = sim.trace().unwrap();
        for row in trace.rows() {
            prop_assert_eq!(row.partition.width(), width);
            prop_assert!(row.partition.num_ssets() >= 1);
            prop_assert!(row.partition.num_ssets() <= width);
        }
        prop_assert_eq!(trace.len() as u64, stats.cycles);
        prop_assert!(stats.max_concurrent_streams <= width);
        // Per-FU op counts sum to the total.
        prop_assert_eq!(stats.ops_per_fu.iter().sum::<u64>(), stats.ops);
    }
}
