//! Address traces in the paper's Figure 10 format.
//!
//! Figure 10 tabulates, for each cycle of a MINMAX run: the per-FU program
//! counters, the condition-code registers "as they exist at the beginning of
//! each cycle" (`X` when never yet written), and the XIMD partition in that
//! cycle. [`Trace`] records exactly those columns plus the sync signals, and
//! renders them in the same layout.

use std::fmt;

use serde::{Deserialize, Serialize};

use ximd_isa::{Addr, SyncSignal};

use crate::partition::Partition;

/// One cycle's machine state snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRow {
    /// Cycle number (0-based, as in Figure 10).
    pub cycle: u64,
    /// Program counter of each FU at the start of the cycle (`None` once
    /// halted).
    pub pcs: Vec<Option<Addr>>,
    /// Condition codes at the start of the cycle; `None` renders as the
    /// paper's `X` (never written).
    pub ccs: Vec<Option<bool>>,
    /// Sync signals exported *during* the cycle (combinational).
    pub ss: Vec<SyncSignal>,
    /// Which FUs spent the cycle stalled by the timing model (occupied by
    /// an earlier multi-cycle parcel, not fetching). Always all-false under
    /// ideal timing.
    pub stalls: Vec<bool>,
    /// The SSET partition in effect during the cycle.
    pub partition: Partition,
}

impl TraceRow {
    /// Renders the condition codes in the paper's compact `TTFX` form.
    pub fn cc_string(&self) -> String {
        self.ccs
            .iter()
            .map(|cc| match cc {
                None => 'X',
                Some(true) => 'T',
                Some(false) => 'F',
            })
            .collect()
    }

    /// Renders the sync signals compactly (`B`/`D` per FU).
    pub fn ss_string(&self) -> String {
        self.ss
            .iter()
            .map(|s| if s.is_done() { 'D' } else { 'B' })
            .collect()
    }

    /// Renders the stall markers compactly (`S` stalled / `.` not).
    pub fn stall_string(&self) -> String {
        self.stalls
            .iter()
            .map(|&s| if s { 'S' } else { '.' })
            .collect()
    }

    /// True if any FU was stalled this cycle.
    pub fn any_stall(&self) -> bool {
        self.stalls.iter().any(|&s| s)
    }
}

impl fmt::Display for TraceRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycle {:<4}", self.cycle)?;
        for pc in &self.pcs {
            match pc {
                Some(a) => write!(f, " {a}")?,
                None => write!(f, " --:")?,
            }
        }
        write!(f, "  {}  {}", self.cc_string(), self.partition)?;
        if self.any_stall() {
            write!(f, "  [{}]", self.stall_string())?;
        }
        Ok(())
    }
}

/// A complete address trace of a run.
///
/// # Example
///
/// ```
/// use ximd_sim::Trace;
///
/// let trace = Trace::new(4);
/// assert!(trace.is_empty());
/// assert_eq!(trace.width(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    width: usize,
    rows: Vec<TraceRow>,
}

impl Trace {
    /// Creates an empty trace for a machine of `width` FUs.
    pub fn new(width: usize) -> Trace {
        Trace {
            width,
            rows: Vec::new(),
        }
    }

    /// Machine width the trace was captured on.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Appends a row.
    pub fn push(&mut self, row: TraceRow) {
        debug_assert_eq!(row.pcs.len(), self.width);
        self.rows.push(row);
    }

    /// The recorded rows in cycle order.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Number of recorded cycles.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The partition sequence (one entry per cycle) — the rightmost column
    /// of Figure 10.
    pub fn partitions(&self) -> impl Iterator<Item = &Partition> {
        self.rows.iter().map(|r| &r.partition)
    }

    /// Largest number of concurrent streams observed.
    pub fn max_streams(&self) -> usize {
        self.partitions()
            .map(Partition::num_ssets)
            .max()
            .unwrap_or(0)
    }

    /// Renders the trace as CSV
    /// (`cycle,pc0..pcN,ccs,ss,stalls,partition,streams`) for external
    /// tooling; halted PCs are empty cells.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("cycle");
        for fu in 0..self.width {
            out.push_str(&format!(",pc{fu}"));
        }
        out.push_str(",ccs,ss,stalls,partition,streams\n");
        for row in &self.rows {
            out.push_str(&row.cycle.to_string());
            for pc in &row.pcs {
                match pc {
                    Some(a) => out.push_str(&format!(",{:#x}", a.0)),
                    None => out.push(','),
                }
            }
            out.push_str(&format!(
                ",{},{},{},{},{}\n",
                row.cc_string(),
                row.ss_string(),
                row.stall_string(),
                row.partition,
                row.partition.num_ssets()
            ));
        }
        out
    }

    /// Renders the whole trace as a Figure-10-style table, one line per
    /// cycle with a header.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("Cycle    ");
        for fu in 0..self.width {
            out.push_str(&format!(" FU{fu} "));
        }
        out.push_str("  CCs");
        out.push_str(&" ".repeat(self.width.saturating_sub(3) + 2));
        out.push_str("Partition\n");
        for row in &self.rows {
            out.push_str(&row.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ximd_isa::FuId;

    fn row(cycle: u64) -> TraceRow {
        TraceRow {
            cycle,
            pcs: vec![Some(Addr(0)), Some(Addr(0)), Some(Addr(0)), Some(Addr(0))],
            ccs: vec![None, Some(true), Some(false), None],
            ss: vec![SyncSignal::Busy; 4],
            stalls: vec![false; 4],
            partition: Partition::single(4),
        }
    }

    #[test]
    fn cc_string_uses_paper_letters() {
        assert_eq!(row(0).cc_string(), "XTFX");
    }

    #[test]
    fn ss_string_is_b_and_d() {
        let mut r = row(0);
        r.ss[2] = SyncSignal::Done;
        assert_eq!(r.ss_string(), "BBDB");
    }

    #[test]
    fn row_display_matches_figure_10_layout() {
        let r = row(3);
        let s = r.to_string();
        assert!(s.starts_with("Cycle 3"));
        assert!(s.contains("00: 00: 00: 00:"));
        assert!(s.contains("XTFX"));
        assert!(s.ends_with("{0,1,2,3}"));
    }

    #[test]
    fn halted_pc_renders_as_dashes() {
        let mut r = row(0);
        r.pcs[1] = None;
        assert!(r.to_string().contains("00: --: 00:"));
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let mut t = Trace::new(4);
        t.push(row(0));
        let mut r1 = row(1);
        r1.pcs[2] = None;
        t.push(r1);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "cycle,pc0,pc1,pc2,pc3,ccs,ss,stalls,partition,streams"
        );
        assert!(lines[1].starts_with("0,0x0,0x0,0x0,0x0,XTFX,BBBB,....,"));
        assert!(lines[2].contains(",,"), "halted PC is an empty cell");
    }

    #[test]
    fn stall_markers_render_only_when_present() {
        let quiet = row(0);
        assert_eq!(quiet.stall_string(), "....");
        assert!(!quiet.any_stall());
        assert!(!quiet.to_string().contains('['));
        let mut stalled = row(1);
        stalled.stalls[2] = true;
        assert!(stalled.any_stall());
        assert!(stalled.to_string().ends_with("[..S.]"));
    }

    #[test]
    fn trace_accumulates_and_summarizes() {
        let mut t = Trace::new(4);
        t.push(row(0));
        let mut r1 = row(1);
        r1.partition =
            Partition::from_ssets(vec![vec![FuId(0), FuId(1)], vec![FuId(2)], vec![FuId(3)]]);
        t.push(r1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.max_streams(), 3);
        let table = t.to_table();
        assert!(table.contains("FU0"));
        assert!(table.contains("{0,1}{2}{3}"));
    }
}
