//! Machine configuration.

use serde::{Deserialize, Serialize};

use ximd_isa::{READS_PER_FU, WRITES_PER_FU, XIMD1_NUM_FUS, XIMD1_NUM_REGS};

use crate::error::{ConfigError, SimError};
use crate::timing::TimingSpec;

/// Policy for same-cycle write conflicts, which the paper leaves undefined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ConflictPolicy {
    /// Abort the run with a machine check (default; surfaces compiler bugs).
    #[default]
    Trap,
    /// Let the highest-numbered FU win and count the event in the
    /// statistics. Matches what a real register file with prioritized write
    /// ports would do, and is occasionally useful for fault-injection
    /// studies.
    LastWins,
}

/// The data-memory geometry a machine enforces: how many words exist and
/// how they interleave across banks.
///
/// This is the single shared surface between the simulator's runtime checks
/// and static analysis: `memory.rs` rejects exactly the addresses outside
/// [`MemGeometry::contains`], and the banked timing model queues exactly the
/// accesses that collide under [`MemGeometry::bank_of`]. The analysis crate
/// consumes this struct instead of re-hardcoding sizes, so a static
/// `oob-memory-access` or `bank-conflict-hotspot` finding can never disagree
/// with what the machine would do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemGeometry {
    /// Data-memory size in 32-bit words; valid addresses are `0..words`.
    pub words: u32,
    /// Number of interleaved banks (≥ 1); word `a` lives in bank
    /// `a mod banks` (stride 1, word-interleaved).
    pub banks: u32,
}

impl MemGeometry {
    /// True iff `addr` names an existing memory word — the same predicate
    /// the simulator's memory range check enforces.
    pub fn contains(self, addr: i64) -> bool {
        addr >= 0 && addr < i64::from(self.words)
    }

    /// The bank servicing word `addr` (Euclidean, so negative addresses map
    /// to a valid bank rather than a negative index — matching the banked
    /// timing model's queues exactly).
    pub fn bank_of(self, addr: i64) -> u32 {
        addr.rem_euclid(i64::from(self.banks.max(1))) as u32
    }
}

/// Parameters of a simulated machine.
///
/// The defaults describe the XIMD-1 research model: 8 homogeneous FUs,
/// 256 global registers, an idealized 1-cycle shared memory (1 Mi words
/// here), and trapping machine checks for the behaviours the paper calls
/// undefined.
///
/// # Example
///
/// ```
/// use ximd_sim::MachineConfig;
///
/// let cfg = MachineConfig::ximd1();
/// assert_eq!(cfg.width, 8);
/// assert_eq!(cfg.num_regs, 256);
///
/// let narrow = MachineConfig::with_width(4);
/// assert_eq!(narrow.width, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of functional units.
    pub width: usize,
    /// Global register-file size.
    pub num_regs: usize,
    /// Shared-memory size in 32-bit words.
    pub mem_words: u32,
    /// What to do when two FUs write one register in the same cycle.
    pub reg_conflicts: ConflictPolicy,
    /// What to do when two FUs write one memory word in the same cycle.
    pub mem_conflicts: ConflictPolicy,
    /// Register-file read ports per FU. The ISA's two-source parcel format
    /// assumes 2 (the XIMD-1 register chip has 16 read ports for 8 FUs).
    pub reg_read_ports: usize,
    /// Register-file write ports per FU (1 on XIMD-1).
    pub reg_write_ports: usize,
    /// The microarchitecture timing model (see [`TimingSpec`]).
    pub timing: TimingSpec,
}

impl MachineConfig {
    /// The XIMD-1 research model (8 FUs, 256 registers).
    pub fn ximd1() -> MachineConfig {
        MachineConfig::default()
    }

    /// A machine of `width` functional units, other parameters at XIMD-1
    /// defaults. The paper's code examples use `width == 4` "for clarity".
    pub fn with_width(width: usize) -> MachineConfig {
        MachineConfig {
            width,
            ..MachineConfig::default()
        }
    }

    /// Sets the memory size in words (builder style).
    #[must_use]
    pub fn mem_words(mut self, words: u32) -> MachineConfig {
        self.mem_words = words;
        self
    }

    /// Sets both conflict policies (builder style).
    #[must_use]
    pub fn conflicts(mut self, policy: ConflictPolicy) -> MachineConfig {
        self.reg_conflicts = policy;
        self.mem_conflicts = policy;
        self
    }

    /// Sets the timing model (builder style).
    #[must_use]
    pub fn timing(mut self, spec: TimingSpec) -> MachineConfig {
        self.timing = spec;
        self
    }

    /// The memory geometry this machine enforces: its word count plus the
    /// bank interleaving of its timing model (1 bank unless the model is
    /// banked). This is what the analysis crate should consume for OOB and
    /// bank-conflict reasoning.
    pub fn mem_geometry(&self) -> MemGeometry {
        MemGeometry {
            words: self.mem_words,
            banks: self.timing.banks().unwrap_or(1),
        }
    }

    /// Sets the per-FU register-file port counts (builder style).
    #[must_use]
    pub fn reg_ports(mut self, read: usize, write: usize) -> MachineConfig {
        self.reg_read_ports = read;
        self.reg_write_ports = write;
        self
    }

    /// Checks the configuration for shapes no machine could have. Every
    /// simulator constructor calls this, so a zero-FU machine or an
    /// inconsistent port declaration is a typed [`SimError::Config`] before
    /// the first cycle rather than a mid-run panic.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.width == 0 {
            return Err(ConfigError::ZeroWidth.into());
        }
        if self.num_regs == 0 {
            return Err(ConfigError::ZeroRegisters.into());
        }
        if self.reg_read_ports == 0 {
            return Err(ConfigError::ZeroReadPorts.into());
        }
        if self.reg_write_ports == 0 {
            return Err(ConfigError::ZeroWritePorts.into());
        }
        if self.reg_write_ports > self.reg_read_ports {
            return Err(ConfigError::PortImbalance {
                read_ports: self.reg_read_ports,
                write_ports: self.reg_write_ports,
            }
            .into());
        }
        self.timing.validate()
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            width: XIMD1_NUM_FUS,
            num_regs: XIMD1_NUM_REGS,
            mem_words: 1 << 20,
            reg_conflicts: ConflictPolicy::default(),
            mem_conflicts: ConflictPolicy::default(),
            reg_read_ports: READS_PER_FU,
            reg_write_ports: WRITES_PER_FU,
            timing: TimingSpec::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ximd1_defaults_match_paper() {
        let cfg = MachineConfig::ximd1();
        assert_eq!(cfg.width, 8);
        assert_eq!(cfg.num_regs, 256);
        assert_eq!(cfg.reg_conflicts, ConflictPolicy::Trap);
        assert_eq!(cfg.mem_conflicts, ConflictPolicy::Trap);
    }

    #[test]
    fn builders_compose() {
        let cfg = MachineConfig::with_width(4)
            .mem_words(1024)
            .conflicts(ConflictPolicy::LastWins)
            .timing(TimingSpec::Banked { banks: 4 });
        assert_eq!(cfg.width, 4);
        assert_eq!(cfg.mem_words, 1024);
        assert_eq!(cfg.reg_conflicts, ConflictPolicy::LastWins);
        assert_eq!(cfg.mem_conflicts, ConflictPolicy::LastWins);
        assert_eq!(cfg.timing, TimingSpec::Banked { banks: 4 });
    }

    #[test]
    fn defaults_validate_and_match_hardware_ports() {
        let cfg = MachineConfig::ximd1();
        assert_eq!(cfg.reg_read_ports, 2);
        assert_eq!(cfg.reg_write_ports, 1);
        assert_eq!(cfg.timing, TimingSpec::Ideal);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_fu_machines() {
        let err = MachineConfig::with_width(0).validate().unwrap_err();
        assert_eq!(err, SimError::Config(ConfigError::ZeroWidth));
    }

    #[test]
    fn validate_rejects_degenerate_register_files() {
        let mut cfg = MachineConfig::ximd1();
        cfg.num_regs = 0;
        assert_eq!(
            cfg.validate().unwrap_err(),
            SimError::Config(ConfigError::ZeroRegisters)
        );
    }

    #[test]
    fn validate_rejects_inconsistent_port_counts() {
        let cfg = MachineConfig::ximd1().reg_ports(0, 1);
        assert_eq!(
            cfg.validate().unwrap_err(),
            SimError::Config(ConfigError::ZeroReadPorts)
        );
        let cfg = MachineConfig::ximd1().reg_ports(2, 0);
        assert_eq!(
            cfg.validate().unwrap_err(),
            SimError::Config(ConfigError::ZeroWritePorts)
        );
        let cfg = MachineConfig::ximd1().reg_ports(1, 3);
        assert_eq!(
            cfg.validate().unwrap_err(),
            SimError::Config(ConfigError::PortImbalance {
                read_ports: 1,
                write_ports: 3,
            })
        );
    }

    #[test]
    fn mem_geometry_reflects_size_and_banking() {
        let flat = MachineConfig::ximd1();
        assert_eq!(
            flat.mem_geometry(),
            MemGeometry {
                words: 1 << 20,
                banks: 1
            }
        );
        let banked = MachineConfig::with_width(4)
            .mem_words(64)
            .timing(TimingSpec::Banked { banks: 4 });
        let geo = banked.mem_geometry();
        assert_eq!((geo.words, geo.banks), (64, 4));
        // Latency tables do not bank the memory.
        let latency = MachineConfig::ximd1().timing(TimingSpec::parse("latency:mem=4").unwrap());
        assert_eq!(latency.mem_geometry().banks, 1);
    }

    #[test]
    fn geometry_contains_matches_range_check() {
        let geo = MemGeometry { words: 8, banks: 2 };
        assert!(geo.contains(0) && geo.contains(7));
        assert!(!geo.contains(-1) && !geo.contains(8));
    }

    #[test]
    fn geometry_bank_of_is_euclidean() {
        let geo = MemGeometry {
            words: 64,
            banks: 4,
        };
        assert_eq!(geo.bank_of(5), 1);
        assert_eq!(geo.bank_of(-1), 3);
        let degenerate = MemGeometry {
            words: 64,
            banks: 0,
        };
        assert_eq!(degenerate.bank_of(9), 0);
    }

    #[test]
    fn validate_delegates_to_timing_spec() {
        let cfg = MachineConfig::ximd1().timing(TimingSpec::Banked { banks: 0 });
        assert_eq!(
            cfg.validate().unwrap_err(),
            SimError::Config(ConfigError::ZeroBanks)
        );
    }
}
