//! Machine configuration.

use serde::{Deserialize, Serialize};

use ximd_isa::{XIMD1_NUM_FUS, XIMD1_NUM_REGS};

/// Policy for same-cycle write conflicts, which the paper leaves undefined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ConflictPolicy {
    /// Abort the run with a machine check (default; surfaces compiler bugs).
    #[default]
    Trap,
    /// Let the highest-numbered FU win and count the event in the
    /// statistics. Matches what a real register file with prioritized write
    /// ports would do, and is occasionally useful for fault-injection
    /// studies.
    LastWins,
}

/// Parameters of a simulated machine.
///
/// The defaults describe the XIMD-1 research model: 8 homogeneous FUs,
/// 256 global registers, an idealized 1-cycle shared memory (1 Mi words
/// here), and trapping machine checks for the behaviours the paper calls
/// undefined.
///
/// # Example
///
/// ```
/// use ximd_sim::MachineConfig;
///
/// let cfg = MachineConfig::ximd1();
/// assert_eq!(cfg.width, 8);
/// assert_eq!(cfg.num_regs, 256);
///
/// let narrow = MachineConfig::with_width(4);
/// assert_eq!(narrow.width, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of functional units.
    pub width: usize,
    /// Global register-file size.
    pub num_regs: usize,
    /// Shared-memory size in 32-bit words.
    pub mem_words: u32,
    /// What to do when two FUs write one register in the same cycle.
    pub reg_conflicts: ConflictPolicy,
    /// What to do when two FUs write one memory word in the same cycle.
    pub mem_conflicts: ConflictPolicy,
}

impl MachineConfig {
    /// The XIMD-1 research model (8 FUs, 256 registers).
    pub fn ximd1() -> MachineConfig {
        MachineConfig::default()
    }

    /// A machine of `width` functional units, other parameters at XIMD-1
    /// defaults. The paper's code examples use `width == 4` "for clarity".
    pub fn with_width(width: usize) -> MachineConfig {
        MachineConfig {
            width,
            ..MachineConfig::default()
        }
    }

    /// Sets the memory size in words (builder style).
    #[must_use]
    pub fn mem_words(mut self, words: u32) -> MachineConfig {
        self.mem_words = words;
        self
    }

    /// Sets both conflict policies (builder style).
    #[must_use]
    pub fn conflicts(mut self, policy: ConflictPolicy) -> MachineConfig {
        self.reg_conflicts = policy;
        self.mem_conflicts = policy;
        self
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            width: XIMD1_NUM_FUS,
            num_regs: XIMD1_NUM_REGS,
            mem_words: 1 << 20,
            reg_conflicts: ConflictPolicy::default(),
            mem_conflicts: ConflictPolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ximd1_defaults_match_paper() {
        let cfg = MachineConfig::ximd1();
        assert_eq!(cfg.width, 8);
        assert_eq!(cfg.num_regs, 256);
        assert_eq!(cfg.reg_conflicts, ConflictPolicy::Trap);
        assert_eq!(cfg.mem_conflicts, ConflictPolicy::Trap);
    }

    #[test]
    fn builders_compose() {
        let cfg = MachineConfig::with_width(4)
            .mem_words(1024)
            .conflicts(ConflictPolicy::LastWins);
        assert_eq!(cfg.width, 4);
        assert_eq!(cfg.mem_words, 1024);
        assert_eq!(cfg.reg_conflicts, ConflictPolicy::LastWins);
        assert_eq!(cfg.mem_conflicts, ConflictPolicy::LastWins);
    }
}
