//! Pluggable microarchitecture timing models.
//!
//! The XIMD-1 research model idealizes the machine: every universal FU
//! completes any operation in one cycle and the shared memory services all
//! eight ports conflict-free. The execution *semantics* (what a parcel
//! computes) live in the crate-private `engine` module shared by every
//! simulator; this module layers *timing* (how many
//! cycles a parcel occupies its FU) on top, so the same engine core can
//! reproduce the paper's idealized counts or explore realistic regimes.
//!
//! # Contract
//!
//! A [`TimingModel`] is consulted once per issued parcel. Its [`Issue`]
//! answer says how many **extra** cycles (beyond the architectural single
//! cycle) the parcel occupies its functional unit:
//!
//! * The parcel's data semantics still execute at issue — operand reads,
//!   staged writes, the CC update and the control decision all happen in the
//!   issue cycle exactly as under [`Ideal`]. What stretches is *occupancy*:
//!   the FU then blocks for `extra_cycles`, holding its program counter,
//!   holding (re-asserting) the sync signal the issued parcel drove, and
//!   remaining in the same SSET for partition accounting. The buffered
//!   control outcome is applied when the occupancy expires.
//! * This keeps architectural values timing-independent for race-free
//!   programs while cycle counts, stall statistics and SS-handshake waiting
//!   respond to the model: an FU stalled on a long-latency operation keeps
//!   its `BUSY`/`DONE` signal asserted, so partners spinning at an `ALL-SS`
//!   barrier simply spin longer — the paper's non-blocking synchronization
//!   composes with variable latency without any new architectural state.
//! * A model must return `extra_cycles == 0` for [`LatencyClass::Fixed`]
//!   operations (control-only parcels, `nop`); the per-FU sequencers
//!   advance every cycle regardless of the data path.
//!
//! Models see issues in ascending FU order within a cycle, bracketed by
//! [`TimingModel::begin_cycle`]; arbitration (e.g. bank queues) may rely on
//! that order, which mirrors the hardware's fixed port priority.

use std::fmt;

use serde::{Deserialize, Serialize};

use ximd_isa::{DataOp, FuId, LatencyClass};

use crate::error::{ConfigError, SimError};

/// A timing model's answer for one issued parcel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Issue {
    /// FU-occupancy cycles beyond the architectural single cycle.
    pub extra_cycles: u64,
    /// The subset of `extra_cycles` attributable to structural contention
    /// (bank queues, port arbitration) rather than intrinsic latency.
    /// Must not exceed `extra_cycles`.
    pub contention_stalls: u64,
}

impl Issue {
    /// The single-cycle answer: no extra occupancy, no contention.
    pub const IDEAL: Issue = Issue {
        extra_cycles: 0,
        contention_stalls: 0,
    };
}

/// A pluggable microarchitecture timing layer (see the module docs for the
/// full contract).
pub trait TimingModel: fmt::Debug + Send + Sync {
    /// Short human-readable name, used for trace banners and bench tags
    /// (e.g. `"ideal"`, `"banked:2"`).
    fn name(&self) -> String;

    /// True iff this model always answers [`Issue::IDEAL`]. The decoded
    /// fast path is only valid for ideal models.
    fn is_ideal(&self) -> bool {
        false
    }

    /// Called once at the start of every machine cycle, before any `issue`.
    fn begin_cycle(&mut self, _cycle: u64) {}

    /// Called once per parcel issued this cycle, in ascending FU order.
    /// `mem_addr` is the effective word address for loads/stores, `None`
    /// for non-memory operations.
    fn issue(&mut self, fu: FuId, op: &DataOp, mem_addr: Option<i64>) -> Issue;

    /// Clones the model into a fresh box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn TimingModel>;
}

impl Clone for Box<dyn TimingModel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The paper's research model: every operation single-cycle, memory
/// conflict-free. Bit-exact with the pre-timing-layer simulators.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ideal;

impl TimingModel for Ideal {
    fn name(&self) -> String {
        "ideal".to_string()
    }

    fn is_ideal(&self) -> bool {
        true
    }

    fn issue(&mut self, _fu: FuId, _op: &DataOp, _mem_addr: Option<i64>) -> Issue {
        Issue::IDEAL
    }

    fn clone_box(&self) -> Box<dyn TimingModel> {
        Box::new(*self)
    }
}

/// Total per-class operation latencies, in cycles (minimum 1).
///
/// A latency of 1 means single-cycle (no extra occupancy); the all-ones
/// [`LatencyConfig::unit`] table therefore reproduces ideal cycle counts
/// through the stall machinery — a useful differential check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// Integer add/sub/logic/shift and compares.
    pub alu: u64,
    /// Integer multiply.
    pub imul: u64,
    /// Integer divide / modulo.
    pub idiv: u64,
    /// Float add/sub/min/max and int↔float conversion.
    pub fadd: u64,
    /// Float multiply.
    pub fmul: u64,
    /// Float divide.
    pub fdiv: u64,
    /// Shared-memory load/store.
    pub mem: u64,
    /// I/O port transfer.
    pub io: u64,
}

impl LatencyConfig {
    /// All classes single-cycle (equivalent to [`Ideal`] cycle counts).
    pub fn unit() -> LatencyConfig {
        LatencyConfig {
            alu: 1,
            imul: 1,
            idiv: 1,
            fadd: 1,
            fmul: 1,
            fdiv: 1,
            mem: 1,
            io: 1,
        }
    }

    /// Total latency for a class. [`LatencyClass::Fixed`] is always 1.
    pub fn latency_of(&self, class: LatencyClass) -> u64 {
        match class {
            LatencyClass::Fixed => 1,
            LatencyClass::Alu => self.alu,
            LatencyClass::IntMul => self.imul,
            LatencyClass::IntDiv => self.idiv,
            LatencyClass::FloatAdd => self.fadd,
            LatencyClass::FloatMul => self.fmul,
            LatencyClass::FloatDiv => self.fdiv,
            LatencyClass::Memory => self.mem,
            LatencyClass::Io => self.io,
        }
    }

    /// Largest latency in the table (worst-case per-cycle stretch; useful
    /// for scaling cycle budgets when swapping timing models).
    pub fn max_latency(&self) -> u64 {
        LatencyClass::ALL
            .into_iter()
            .map(|c| self.latency_of(c))
            .max()
            .unwrap_or(1)
    }

    fn set(&mut self, class: LatencyClass, cycles: u64) {
        match class {
            LatencyClass::Fixed => {}
            LatencyClass::Alu => self.alu = cycles,
            LatencyClass::IntMul => self.imul = cycles,
            LatencyClass::IntDiv => self.idiv = cycles,
            LatencyClass::FloatAdd => self.fadd = cycles,
            LatencyClass::FloatMul => self.fmul = cycles,
            LatencyClass::FloatDiv => self.fdiv = cycles,
            LatencyClass::Memory => self.mem = cycles,
            LatencyClass::Io => self.io = cycles,
        }
    }

    fn is_unit(&self) -> bool {
        *self == LatencyConfig::unit()
    }

    fn validate(&self) -> Result<(), SimError> {
        for class in LatencyClass::ALL {
            if self.latency_of(class) == 0 {
                return Err(SimError::Config(ConfigError::ZeroLatency { class }));
            }
        }
        Ok(())
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig::unit()
    }
}

impl fmt::Display for LatencyConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unit() {
            return write!(f, "unit");
        }
        let mut first = true;
        for class in LatencyClass::ALL {
            if class == LatencyClass::Fixed {
                continue;
            }
            let cycles = self.latency_of(class);
            if cycles != 1 {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{}={cycles}", class.key())?;
                first = false;
            }
        }
        Ok(())
    }
}

/// Per-opcode multi-cycle latencies: an issued parcel occupies its FU for
/// the full class latency of its data operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyClasses {
    /// The latency table.
    pub latencies: LatencyConfig,
}

impl LatencyClasses {
    /// A model over the given latency table.
    pub fn new(latencies: LatencyConfig) -> LatencyClasses {
        LatencyClasses { latencies }
    }
}

impl TimingModel for LatencyClasses {
    fn name(&self) -> String {
        format!("latency:{}", self.latencies)
    }

    fn issue(&mut self, _fu: FuId, op: &DataOp, _mem_addr: Option<i64>) -> Issue {
        Issue {
            extra_cycles: self.latencies.latency_of(op.latency_class()) - 1,
            contention_stalls: 0,
        }
    }

    fn clone_box(&self) -> Box<dyn TimingModel> {
        Box::new(*self)
    }
}

/// N-bank shared memory with per-bank queues: word addresses interleave
/// across banks (`bank = addr mod n`), each bank services one access per
/// cycle, and same-cycle accesses to one bank queue behind each other in FU
/// order. Non-memory operations stay single-cycle.
///
/// This is the MASIM-style first-order contention model: an FU whose access
/// lands `k`-th in its bank's queue stalls `k` extra cycles, all of them
/// counted as contention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankedMemory {
    /// Number of banks (≥ 1).
    pub banks: u32,
    /// Accesses claimed per bank in the current cycle.
    claims: Vec<u32>,
}

impl BankedMemory {
    /// A banked memory with `banks` banks.
    pub fn new(banks: u32) -> BankedMemory {
        BankedMemory {
            banks,
            claims: vec![0; banks.max(1) as usize],
        }
    }
}

impl TimingModel for BankedMemory {
    fn name(&self) -> String {
        format!("banked:{}", self.banks)
    }

    fn begin_cycle(&mut self, _cycle: u64) {
        self.claims.fill(0);
    }

    fn issue(&mut self, _fu: FuId, _op: &DataOp, mem_addr: Option<i64>) -> Issue {
        let Some(addr) = mem_addr else {
            return Issue::IDEAL;
        };
        // The shared geometry surface is the one source of truth for the
        // address→bank map; static bank-conflict analysis uses the same
        // function, so the two can never disagree.
        let geo = crate::config::MemGeometry {
            words: 0,
            banks: self.banks,
        };
        let bank = geo.bank_of(addr) as usize;
        let queued = u64::from(self.claims[bank]);
        self.claims[bank] += 1;
        Issue {
            extra_cycles: queued,
            contention_stalls: queued,
        }
    }

    fn clone_box(&self) -> Box<dyn TimingModel> {
        Box::new(self.clone())
    }
}

/// Declarative timing-model selection, part of [`crate::MachineConfig`].
///
/// Parses from and displays as the CLI syntax:
///
/// * `ideal` — the paper's single-cycle model;
/// * `latency:<class>=<cycles>,...` — per-class latencies over a unit base
///   table (classes: `alu`, `imul`, `idiv`, `fadd`, `fmul`, `fdiv`, `mem`,
///   `io`); `latency:unit` (or bare `latency`) is the all-ones table;
/// * `banked:<n>` — `n`-bank shared memory with contention queues.
///
/// ```
/// use ximd_sim::TimingSpec;
///
/// let spec = TimingSpec::parse("latency:mem=4,fdiv=12").unwrap();
/// assert_eq!(spec.to_string(), "latency:fdiv=12,mem=4");
/// assert!(TimingSpec::parse("ideal").unwrap().is_ideal());
/// assert!(TimingSpec::parse("banked:0").is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TimingSpec {
    /// Single-cycle everything (the default; decoded fast path eligible).
    #[default]
    Ideal,
    /// Per-opcode-class latencies.
    Latency(LatencyConfig),
    /// Banked shared memory with contention queues.
    Banked {
        /// Number of banks.
        banks: u32,
    },
}

impl TimingSpec {
    /// Parses the CLI syntax described on the type.
    pub fn parse(spec: &str) -> Result<TimingSpec, SimError> {
        let bad = |reason: &'static str| {
            Err(SimError::Config(ConfigError::InvalidTimingSpec {
                spec: spec.to_string(),
                reason,
            }))
        };
        let (model, rest) = match spec.split_once(':') {
            Some((model, rest)) => (model, Some(rest)),
            None => (spec, None),
        };
        match model {
            "ideal" => match rest {
                None | Some("") => Ok(TimingSpec::Ideal),
                Some(_) => bad("`ideal` takes no parameters"),
            },
            "latency" => {
                let mut cfg = LatencyConfig::unit();
                let rest = rest.unwrap_or("unit");
                if rest != "unit" && !rest.is_empty() {
                    for pair in rest.split(',') {
                        let Some((key, value)) = pair.split_once('=') else {
                            return bad("expected `<class>=<cycles>` pairs");
                        };
                        let Some(class) = LatencyClass::ALL
                            .into_iter()
                            .find(|c| *c != LatencyClass::Fixed && c.key() == key)
                        else {
                            return bad("unknown latency class");
                        };
                        let Ok(cycles) = value.parse::<u64>() else {
                            return bad("cycle count is not a number");
                        };
                        if cycles == 0 {
                            return bad("latencies must be at least 1 cycle");
                        }
                        cfg.set(class, cycles);
                    }
                }
                Ok(TimingSpec::Latency(cfg))
            }
            "banked" => {
                let Some(rest) = rest else {
                    return bad("expected `banked:<n>`");
                };
                let Ok(banks) = rest.parse::<u32>() else {
                    return bad("bank count is not a number");
                };
                if banks == 0 {
                    return bad("bank count must be at least 1");
                }
                Ok(TimingSpec::Banked { banks })
            }
            _ => bad("unknown model (expected ideal, latency:<spec> or banked:<n>)"),
        }
    }

    /// True for specs whose model is ideal (including the unit latency
    /// table, which produces identical cycle counts by construction but is
    /// deliberately *not* short-circuited: it exercises the stall
    /// machinery).
    pub fn is_ideal(&self) -> bool {
        matches!(self, TimingSpec::Ideal)
    }

    /// The bank count this spec implies for the shared memory: `Some(n)`
    /// for `banked:<n>`, `None` for models that leave the memory flat.
    pub fn banks(&self) -> Option<u32> {
        match self {
            TimingSpec::Banked { banks } => Some(*banks),
            TimingSpec::Ideal | TimingSpec::Latency(_) => None,
        }
    }

    /// Checks the spec for nonsensical parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        match self {
            TimingSpec::Ideal => Ok(()),
            TimingSpec::Latency(cfg) => cfg.validate(),
            TimingSpec::Banked { banks } => {
                if *banks == 0 {
                    Err(SimError::Config(ConfigError::ZeroBanks))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Instantiates the model this spec describes.
    pub fn build(&self) -> Box<dyn TimingModel> {
        match self {
            TimingSpec::Ideal => Box::new(Ideal),
            TimingSpec::Latency(cfg) => Box::new(LatencyClasses::new(*cfg)),
            TimingSpec::Banked { banks } => Box::new(BankedMemory::new(*banks)),
        }
    }
}

// `Display` round-trips through `parse`; keep the two in sync.
impl fmt::Display for TimingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingSpec::Ideal => write!(f, "ideal"),
            TimingSpec::Latency(cfg) => write!(f, "latency:{cfg}"),
            TimingSpec::Banked { banks } => write!(f, "banked:{banks}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ximd_isa::{AluOp, Operand, Reg};

    fn alu_op() -> DataOp {
        DataOp::alu(
            AluOp::Iadd,
            Operand::Reg(Reg(0)),
            Operand::Reg(Reg(1)),
            Reg(2),
        )
    }

    fn load_op() -> DataOp {
        DataOp::load(Operand::Reg(Reg(0)), Operand::imm_i32(0), Reg(1))
    }

    #[test]
    fn ideal_always_single_cycle() {
        let mut m = Ideal;
        assert!(m.is_ideal());
        assert_eq!(m.issue(FuId(0), &load_op(), Some(7)), Issue::IDEAL);
        assert_eq!(m.name(), "ideal");
    }

    #[test]
    fn latency_classes_charge_class_latency() {
        let mut cfg = LatencyConfig::unit();
        cfg.mem = 4;
        let mut m = LatencyClasses::new(cfg);
        assert!(!m.is_ideal());
        let issue = m.issue(FuId(0), &load_op(), Some(7));
        assert_eq!(issue.extra_cycles, 3);
        assert_eq!(issue.contention_stalls, 0);
        assert_eq!(m.issue(FuId(1), &alu_op(), None), Issue::IDEAL);
    }

    #[test]
    fn unit_latency_table_is_single_cycle_but_not_ideal_flagged() {
        let mut m = LatencyClasses::new(LatencyConfig::unit());
        assert!(!m.is_ideal());
        assert_eq!(m.issue(FuId(0), &load_op(), Some(7)), Issue::IDEAL);
        assert_eq!(m.name(), "latency:unit");
    }

    #[test]
    fn banked_memory_queues_same_bank_accesses() {
        let mut m = BankedMemory::new(2);
        m.begin_cycle(0);
        // Three accesses: banks 0, 0, 1. Second bank-0 access queues.
        assert_eq!(m.issue(FuId(0), &load_op(), Some(4)).extra_cycles, 0);
        let second = m.issue(FuId(1), &load_op(), Some(10));
        assert_eq!(second.extra_cycles, 1);
        assert_eq!(second.contention_stalls, 1);
        assert_eq!(m.issue(FuId(2), &load_op(), Some(5)).extra_cycles, 0);
        // Non-memory ops never touch the banks.
        assert_eq!(m.issue(FuId(3), &alu_op(), None), Issue::IDEAL);
        // Queues drain at the cycle boundary.
        m.begin_cycle(1);
        assert_eq!(m.issue(FuId(0), &load_op(), Some(4)).extra_cycles, 0);
    }

    #[test]
    fn banked_memory_negative_addresses_use_euclidean_bank() {
        let mut m = BankedMemory::new(4);
        m.begin_cycle(0);
        // -1 maps to bank 3, not a negative index.
        assert_eq!(m.issue(FuId(0), &load_op(), Some(-1)).extra_cycles, 0);
        assert_eq!(m.issue(FuId(1), &load_op(), Some(3)).extra_cycles, 1);
    }

    #[test]
    fn spec_parse_round_trips_through_display() {
        for text in ["ideal", "latency:unit", "latency:fdiv=12,mem=4", "banked:2"] {
            let spec = TimingSpec::parse(text).unwrap();
            assert_eq!(spec.to_string(), text);
            assert_eq!(TimingSpec::parse(&spec.to_string()).unwrap(), spec);
        }
        // Entries render in canonical class order regardless of input order.
        assert_eq!(
            TimingSpec::parse("latency:mem=4,fdiv=12")
                .unwrap()
                .to_string(),
            "latency:fdiv=12,mem=4"
        );
        assert_eq!(
            TimingSpec::parse("latency").unwrap(),
            TimingSpec::Latency(LatencyConfig::unit())
        );
    }

    #[test]
    fn spec_parse_rejects_malformed_input() {
        for text in [
            "warp-drive",
            "ideal:3",
            "latency:mem",
            "latency:teleport=2",
            "latency:mem=zero",
            "latency:mem=0",
            "banked",
            "banked:0",
            "banked:two",
        ] {
            let err = TimingSpec::parse(text).unwrap_err();
            assert!(
                matches!(err, SimError::Config(ConfigError::InvalidTimingSpec { .. })),
                "{text}: {err:?}"
            );
            assert!(err.to_string().contains(text.split(':').next().unwrap()));
        }
    }

    #[test]
    fn spec_validate_catches_programmatic_zeroes() {
        assert!(TimingSpec::Banked { banks: 0 }.validate().is_err());
        let mut cfg = LatencyConfig::unit();
        cfg.fdiv = 0;
        assert!(TimingSpec::Latency(cfg).validate().is_err());
        assert!(TimingSpec::Ideal.validate().is_ok());
    }

    #[test]
    fn build_produces_matching_models() {
        assert!(TimingSpec::Ideal.build().is_ideal());
        assert_eq!(
            TimingSpec::parse("banked:3").unwrap().build().name(),
            "banked:3"
        );
        assert_eq!(
            TimingSpec::parse("latency:imul=2").unwrap().build().name(),
            "latency:imul=2"
        );
    }

    #[test]
    fn boxed_models_clone() {
        let boxed: Box<dyn TimingModel> = Box::new(BankedMemory::new(2));
        let cloned = boxed.clone();
        assert_eq!(cloned.name(), "banked:2");
    }
}
