//! Execution backends: one trait, declared capabilities, a named registry.
//!
//! The paper's claim is that one XIMD machine subsumes many execution
//! regimes; this module is the code-side mirror of that claim. Every way
//! of *running* a program — the cycle-accurate interpreter, the decoded
//! fast path, the SoA lane engine, and any future translation/JIT engine —
//! implements [`ExecutionBackend`] and registers under a name. Consumers
//! (the CLI, the job daemon, the benchmark harness, the test suites) stop
//! hard-coding engine enums and instead ask the registry for a backend by
//! name, or let [`select`] pick the most capable one for a request.
//!
//! # Capabilities and selection
//!
//! A backend declares what it can do in a [`Capabilities`] record:
//! non-ideal timing models, lane batching, snapshot/restore, per-cycle
//! trace emission. A caller describes what it needs in a
//! [`BackendRequest`]. Selection is mechanical:
//!
//! 1. drop every backend whose capabilities do not cover the request;
//! 2. among the survivors pick the highest [`Capabilities::rank`]
//!    (ties go to the earlier registration).
//!
//! The interpreter declares every semantic capability at rank 0, so it is
//! the universal fallback: any satisfiable request resolves to *something*.
//! Explicitly naming a backend that cannot satisfy the request is a
//! uniform [`ConfigError::CapabilityMismatch`] — the one spelling that
//! replaces the ad-hoc `DecodedRequiresIdeal`-style guards that used to be
//! scattered across the consumers.
//!
//! # Registering a third-party backend
//!
//! A JIT (or any out-of-crate engine) implements the trait against the
//! public [`Session`] API and calls [`register`] once at startup:
//!
//! ```
//! use std::sync::Arc;
//! use ximd_isa::Addr;
//! use ximd_sim::backend::{self, Capabilities, ExecutionBackend};
//! use ximd_sim::{RunSummary, Session, SimError};
//!
//! struct MyJit;
//!
//! impl ExecutionBackend for MyJit {
//!     fn name(&self) -> &'static str {
//!         "myjit"
//!     }
//!     fn capabilities(&self) -> Capabilities {
//!         Capabilities {
//!             rank: 4, // prefer over the decoded path when capable
//!             ..backend::lookup("decoded").unwrap().capabilities()
//!         }
//!     }
//!     fn finish(
//!         &self,
//!         session: &mut Session,
//!         park: Option<Addr>,
//!         max_cycles: u64,
//!     ) -> Result<Option<RunSummary>, SimError> {
//!         // a real JIT would run compiled code; delegating is legal too
//!         backend::lookup("decoded").unwrap().finish(session, park, max_cycles)
//!     }
//! }
//!
//! backend::register(Arc::new(MyJit));
//! assert!(backend::names().contains(&"myjit".to_string()));
//! ```

use std::sync::{Arc, Mutex, OnceLock};

use ximd_isa::Addr;

use crate::decoded::DecodedProgram;
use crate::error::{ConfigError, SimError};
use crate::session::Session;
use crate::snapshot::SnapshotError;
use crate::stats::SimStats;
use crate::xsim::{RunSummary, Xsim};

/// What a backend declares it can do. Selection and explicit-name
/// validation both reduce to comparing one of these against a
/// [`BackendRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// Implements non-ideal timing models (latency classes, banked
    /// memory) natively. Backends without it are ideal-machine only.
    pub non_ideal_timing: bool,
    /// Runs many same-program instances as one lockstep batch.
    pub lane_batching: bool,
    /// Sessions driven by this backend can suspend to a byte image and
    /// resume bit-exactly.
    pub snapshotting: bool,
    /// Emits per-cycle address traces (the paper's Figure 10 format).
    pub trace_emission: bool,
    /// Consumes pre-lowered decode tables when offered (the artifact
    /// cache uses this to decide whether lowering is worth caching).
    pub uses_decoded_tables: bool,
    /// Auto-selection preference among capable backends; higher wins.
    pub rank: u8,
}

impl Capabilities {
    /// The first capability in `request` this record lacks, as the noun
    /// phrase used in error messages; `None` when fully capable.
    #[must_use]
    pub fn missing(&self, request: &BackendRequest) -> Option<&'static str> {
        if request.non_ideal_timing && !self.non_ideal_timing {
            Some("non-ideal timing models")
        } else if request.lanes > 1 && !self.lane_batching {
            Some("lane batching")
        } else if request.trace && !self.trace_emission {
            Some("trace emission")
        } else if request.snapshot && !self.snapshotting {
            Some("snapshot/restore")
        } else {
            None
        }
    }

    /// True when every capability in `request` is covered.
    #[must_use]
    pub fn supports(&self, request: &BackendRequest) -> bool {
        self.missing(request).is_none()
    }
}

/// What a caller needs from a backend. Build one from the run parameters
/// (CLI flags, wire headers) or from an existing session via
/// [`Session::backend_request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendRequest {
    /// The machine runs under a non-ideal timing model.
    pub non_ideal_timing: bool,
    /// Number of lockstep instances (`<= 1` means a single machine).
    pub lanes: usize,
    /// The run wants a per-cycle trace.
    pub trace: bool,
    /// The run will be suspended/resumed through snapshots.
    pub snapshot: bool,
}

impl BackendRequest {
    /// The common case: one machine, ideal timing, no trace.
    #[must_use]
    pub fn single_ideal() -> BackendRequest {
        BackendRequest::default()
    }

    /// Derives the request implied by a set of prepared machine
    /// instances: their count and their (shared) timing model.
    #[must_use]
    pub fn for_instances(sims: &[Xsim]) -> BackendRequest {
        BackendRequest {
            non_ideal_timing: sims.first().is_some_and(|s| !s.config().timing.is_ideal()),
            lanes: sims.len(),
            ..BackendRequest::default()
        }
    }
}

/// One way of executing XIMD programs: prepare machines into a
/// [`Session`], drive it (to a cycle mark or to completion), and move it
/// through snapshots. All methods except [`ExecutionBackend::finish`]
/// have defaults that delegate to the session layer, so a minimal backend
/// is `name` + `capabilities` + `finish`.
pub trait ExecutionBackend: Send + Sync {
    /// The registry/CLI/wire name (`interp`, `decoded`, `lanes`, ...).
    fn name(&self) -> &'static str;

    /// What this backend can do; see [`Capabilities`].
    fn capabilities(&self) -> Capabilities;

    /// Builds a session from machine instances (one instance = a
    /// single-machine session, several = a lane batch), optionally seeded
    /// with pre-lowered decode tables from an artifact cache. The default
    /// validates the implied [`BackendRequest`] against this backend's
    /// capabilities and rejects mismatches uniformly.
    ///
    /// # Errors
    ///
    /// [`ConfigError::CapabilityMismatch`] when the instances need
    /// something this backend lacks; any [`SimError`] from batch assembly.
    fn prepare(
        &self,
        sims: Vec<Xsim>,
        tables: Option<Arc<DecodedProgram>>,
    ) -> Result<Session, SimError> {
        self.check(&BackendRequest::for_instances(&sims))?;
        if sims.is_empty() {
            return Err(ConfigError::ZeroLanes.into());
        }
        if sims.len() == 1 {
            let sim = sims.into_iter().next().expect("one instance");
            Ok(match tables {
                Some(t) => Session::from_machine_cached(sim, t),
                None => Session::from_machine(sim),
            })
        } else {
            Session::from_instances_cached(&sims, tables)
        }
    }

    /// Advances a session to the absolute cycle mark `upto_cycle` (the
    /// suspension point), with the session layer's park-overshoot rules.
    ///
    /// # Errors
    ///
    /// Any [`SimError`] from the underlying steps.
    fn advance_to(
        &self,
        session: &mut Session,
        park: Option<Addr>,
        upto_cycle: u64,
    ) -> Result<(), SimError> {
        session.advance_to(park, upto_cycle)
    }

    /// Drives the session to completion under an **absolute** cycle
    /// budget (see [`Session::finish`] for the exact semantics).
    ///
    /// # Errors
    ///
    /// [`ConfigError::CapabilityMismatch`] if the session needs something
    /// this backend lacks; otherwise the underlying engine's errors.
    fn finish(
        &self,
        session: &mut Session,
        park: Option<Addr>,
        max_cycles: u64,
    ) -> Result<Option<RunSummary>, SimError>;

    /// Serializes the session into a self-describing byte image.
    ///
    /// # Errors
    ///
    /// The snapshot codec's encoding errors.
    fn snapshot(&self, session: &Session) -> Result<Vec<u8>, SnapshotError> {
        session.snapshot()
    }

    /// Restores a session from a snapshot image.
    ///
    /// # Errors
    ///
    /// The snapshot codec's decoding errors.
    fn restore(&self, image: &[u8]) -> Result<Session, SnapshotError> {
        Session::restore(image)
    }

    /// The session's final statistics (the machine's, or lane 0's for a
    /// batch — per-lane numbers come from [`Session::batch`]).
    fn stats<'s>(&self, session: &'s Session) -> &'s SimStats {
        session.stats()
    }

    /// Validates a request against this backend's capabilities; the
    /// uniform replacement for ad-hoc "engine X requires Y" guards.
    ///
    /// # Errors
    ///
    /// [`ConfigError::CapabilityMismatch`] naming the first unmet need.
    fn check(&self, request: &BackendRequest) -> Result<(), ConfigError> {
        match self.capabilities().missing(request) {
            None => Ok(()),
            Some(capability) => Err(ConfigError::CapabilityMismatch {
                backend: self.name().to_string(),
                capability,
            }),
        }
    }
}

/// A stable digest of a session's observable state: cycle, registers,
/// PCs, condition codes, statistics and memory (per lane, for batches).
/// Two sessions that ran the same program the same number of cycles must
/// digest equal no matter which backend drove them — differential
/// backends (and the pairwise equivalence suite) compare these.
///
/// Engine-internal bookkeeping (pending occupancy keys, trace buffers,
/// I/O-port event logs) is deliberately excluded: it is not part of the
/// cross-engine equivalence contract.
#[must_use]
pub fn state_digest(session: &Session) -> u64 {
    // FNV-1a over Debug renderings, the same construction the artifact
    // store keys on. Debug formats are stable within one build, which is
    // the only scope digests are ever compared in.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut put = |piece: &dyn std::fmt::Debug| {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(s, "{piece:?}/");
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(PRIME);
        }
    };
    match session.machine() {
        Some(sim) => {
            put(&sim.cycle());
            put(&sim.regs.snapshot());
            put(&sim.pcs());
            put(&sim.ccs());
            put(&sim.stats());
            // The backing store iterates in hash order, which a snapshot
            // round-trip does not preserve; sort so twin sessions with
            // identical contents digest equal.
            let mut words: Vec<_> = sim.mem.iter_words().collect();
            words.sort_unstable();
            put(&words);
        }
        None => {
            let batch = session.batch().expect("machine or batch");
            for lane in 0..batch.lanes() {
                put(&batch.cycle(lane));
                put(&batch.pcs(lane));
                put(&batch.ccs(lane));
                put(&batch.stats(lane));
            }
        }
    }
    h
}

/// The cycle-accurate interpreter: every timing model, trace-capable,
/// snapshot-capable — the universal fallback at rank 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterpBackend;

impl ExecutionBackend for InterpBackend {
    fn name(&self) -> &'static str {
        "interp"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            non_ideal_timing: true,
            lane_batching: false,
            snapshotting: true,
            trace_emission: true,
            uses_decoded_tables: false,
            rank: 0,
        }
    }

    fn finish(
        &self,
        session: &mut Session,
        park: Option<Addr>,
        max_cycles: u64,
    ) -> Result<Option<RunSummary>, SimError> {
        self.check(&session.backend_request())?;
        session.finish_interp(park, max_cycles)
    }
}

/// The decoded fast path: ideal timing only, single machines, the
/// highest-throughput single-instance engine (rank 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct DecodedBackend;

impl ExecutionBackend for DecodedBackend {
    fn name(&self) -> &'static str {
        "decoded"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            non_ideal_timing: false,
            lane_batching: false,
            snapshotting: true,
            trace_emission: false,
            uses_decoded_tables: true,
            rank: 3,
        }
    }

    fn finish(
        &self,
        session: &mut Session,
        park: Option<Addr>,
        max_cycles: u64,
    ) -> Result<Option<RunSummary>, SimError> {
        self.check(&session.backend_request())?;
        session.finish_decoded(park, max_cycles)
    }
}

/// The SoA lane engine: ideal timing only, lockstep batches. On a
/// single-machine session it degenerates to the decoded fast path (a
/// one-lane batch and the decoded path are the same computation).
#[derive(Debug, Clone, Copy, Default)]
pub struct LanesBackend;

impl ExecutionBackend for LanesBackend {
    fn name(&self) -> &'static str {
        "lanes"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            non_ideal_timing: false,
            lane_batching: true,
            snapshotting: true,
            trace_emission: false,
            uses_decoded_tables: true,
            rank: 2,
        }
    }

    fn finish(
        &self,
        session: &mut Session,
        park: Option<Addr>,
        max_cycles: u64,
    ) -> Result<Option<RunSummary>, SimError> {
        self.check(&session.backend_request())?;
        if session.batch().is_some() {
            session.finish_lanes(park, max_cycles)
        } else {
            session.finish_decoded(park, max_cycles)
        }
    }
}

impl std::fmt::Debug for dyn ExecutionBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ExecutionBackend({})", self.name())
    }
}

/// The backend handle every registry call hands out.
pub type BackendHandle = Arc<dyn ExecutionBackend>;

fn registry() -> &'static Mutex<Vec<BackendHandle>> {
    static REGISTRY: OnceLock<Mutex<Vec<BackendHandle>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(vec![
            Arc::new(InterpBackend),
            Arc::new(DecodedBackend),
            Arc::new(LanesBackend),
        ])
    })
}

/// Registers a backend (process-wide). Re-registering a name replaces the
/// previous entry, so tests and plugins can swap implementations.
pub fn register(backend: BackendHandle) {
    let mut reg = registry().lock().expect("backend registry poisoned");
    if let Some(slot) = reg.iter_mut().find(|b| b.name() == backend.name()) {
        *slot = backend;
    } else {
        reg.push(backend);
    }
}

/// Looks a backend up by its registered name. `None` for unknown names —
/// use [`resolve`] to get the usage-error spelling.
#[must_use]
pub fn lookup(name: &str) -> Option<BackendHandle> {
    registry()
        .lock()
        .expect("backend registry poisoned")
        .iter()
        .find(|b| b.name() == name)
        .cloned()
}

/// Every registered backend, in registration order.
#[must_use]
pub fn all() -> Vec<BackendHandle> {
    registry()
        .lock()
        .expect("backend registry poisoned")
        .clone()
}

/// Registered backend names, in registration order.
#[must_use]
pub fn names() -> Vec<String> {
    all().iter().map(|b| b.name().to_string()).collect()
}

/// Auto-selection: the highest-ranked registered backend whose
/// capabilities cover `request` (ties go to the earlier registration).
/// The interpreter's universal semantic capabilities make this total for
/// every single-machine request; an unsatisfiable request (e.g. a lane
/// batch under non-ideal timing) reports the closest backend's first
/// missing capability.
///
/// # Errors
///
/// [`ConfigError::CapabilityMismatch`] when no registered backend covers
/// the request.
pub fn select(request: &BackendRequest) -> Result<BackendHandle, ConfigError> {
    let all = all();
    let best = all
        .iter()
        .filter(|b| b.capabilities().supports(request))
        .max_by_key(|b| b.capabilities().rank);
    match best {
        Some(b) => Ok(Arc::clone(b)),
        None => {
            // Report against the backend that comes closest (fewest unmet
            // needs), so "lanes + non-ideal timing" blames the timing.
            let closest = all
                .iter()
                .min_by_key(|b| {
                    let caps = b.capabilities();
                    let mut miss = 0u32;
                    let mut probe = *request;
                    while let Some(_c) = caps.missing(&probe) {
                        miss += 1;
                        // Clear the reported need and look for the next.
                        if probe.non_ideal_timing && !caps.non_ideal_timing {
                            probe.non_ideal_timing = false;
                        } else if probe.lanes > 1 && !caps.lane_batching {
                            probe.lanes = 1;
                        } else if probe.trace && !caps.trace_emission {
                            probe.trace = false;
                        } else {
                            probe.snapshot = false;
                        }
                    }
                    // Ties go to the higher-ranked backend, so "lanes +
                    // non-ideal timing" blames the lane engine's timing
                    // limit rather than the interpreter's batching one.
                    (miss, u8::MAX - caps.rank)
                })
                .expect("registry always holds the built-ins");
            Err(ConfigError::CapabilityMismatch {
                backend: closest.name().to_string(),
                capability: closest
                    .capabilities()
                    .missing(request)
                    .unwrap_or("the request"),
            })
        }
    }
}

/// Resolves a CLI/wire backend spec: `"auto"` runs [`select`]; any other
/// spelling must name a registered backend whose capabilities cover the
/// request.
///
/// # Errors
///
/// [`ConfigError::UnknownBackend`] for unregistered names,
/// [`ConfigError::CapabilityMismatch`] when the named backend cannot
/// satisfy the request.
pub fn resolve(spec: &str, request: &BackendRequest) -> Result<BackendHandle, ConfigError> {
    if spec == "auto" {
        return select(request);
    }
    let backend = lookup(spec).ok_or_else(|| ConfigError::UnknownBackend {
        name: spec.to_string(),
        registered: names().join(", "),
    })?;
    backend.check(request).map(|()| backend)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use ximd_isa::{Parcel, Program};

    fn tiny_machine() -> Xsim {
        let mut p = Program::new(1);
        p.push(vec![Parcel::goto(Addr(1))]);
        p.push(vec![Parcel::goto(Addr(1))]); // parks at 1
        Xsim::new(p, MachineConfig::with_width(1)).unwrap()
    }

    #[test]
    fn built_ins_are_registered_in_order() {
        let names = names();
        assert_eq!(&names[..3], &["interp", "decoded", "lanes"]);
    }

    #[test]
    fn auto_selection_follows_the_capability_policy() {
        // Single-instance ideal: the decoded fast path wins.
        let b = select(&BackendRequest::single_ideal()).unwrap();
        assert_eq!(b.name(), "decoded");

        // A lane batch: only the lane engine batches.
        let b = select(&BackendRequest {
            lanes: 8,
            ..BackendRequest::default()
        })
        .unwrap();
        assert_eq!(b.name(), "lanes");

        // Non-ideal timing: the interpreter is the universal fallback.
        let b = select(&BackendRequest {
            non_ideal_timing: true,
            ..BackendRequest::default()
        })
        .unwrap();
        assert_eq!(b.name(), "interp");

        // Tracing likewise.
        let b = select(&BackendRequest {
            trace: true,
            ..BackendRequest::default()
        })
        .unwrap();
        assert_eq!(b.name(), "interp");
    }

    #[test]
    fn unsatisfiable_requests_blame_the_closest_backend() {
        let err = select(&BackendRequest {
            lanes: 4,
            non_ideal_timing: true,
            ..BackendRequest::default()
        })
        .unwrap_err();
        assert!(
            matches!(
                &err,
                ConfigError::CapabilityMismatch { backend, capability }
                    if (backend == "lanes" && *capability == "non-ideal timing models")
                        || (backend == "interp" && *capability == "lane batching")
            ),
            "got {err}"
        );
    }

    #[test]
    fn explicit_names_resolve_or_reject_uniformly() {
        assert_eq!(
            resolve("interp", &BackendRequest::single_ideal())
                .unwrap()
                .name(),
            "interp"
        );
        let err = resolve(
            "decoded",
            &BackendRequest {
                non_ideal_timing: true,
                ..BackendRequest::default()
            },
        )
        .unwrap_err();
        assert_eq!(
            err.to_string(),
            "backend \"decoded\" does not support non-ideal timing models"
        );
        let err = resolve("warp", &BackendRequest::single_ideal()).unwrap_err();
        assert!(err.to_string().starts_with("unknown backend \"warp\""));
    }

    #[test]
    fn every_builtin_finishes_the_tiny_run_identically() {
        let mut digests = Vec::new();
        for backend in all().into_iter().filter(|b| b.name() != "interp") {
            let mut session = backend.prepare(vec![tiny_machine()], None).unwrap();
            backend.finish(&mut session, Some(Addr(1)), 100).unwrap();
            if session.machine().is_some() {
                digests.push((backend.name(), state_digest(&session)));
            }
        }
        let interp = lookup("interp").unwrap();
        let mut session = interp.prepare(vec![tiny_machine()], None).unwrap();
        interp.finish(&mut session, Some(Addr(1)), 100).unwrap();
        let reference = state_digest(&session);
        for (name, digest) in digests {
            assert_eq!(digest, reference, "{name} diverges from interp");
        }
    }

    #[test]
    fn registration_replaces_same_name_entries() {
        // Use a throwaway name so other tests sharing the process-wide
        // registry are unaffected.
        #[derive(Debug)]
        struct Probe(u8);
        impl ExecutionBackend for Probe {
            fn name(&self) -> &'static str {
                "probe-replaced"
            }
            fn capabilities(&self) -> Capabilities {
                Capabilities {
                    non_ideal_timing: false,
                    lane_batching: false,
                    snapshotting: false,
                    trace_emission: false,
                    uses_decoded_tables: false,
                    rank: self.0,
                }
            }
            fn finish(
                &self,
                _session: &mut Session,
                _park: Option<Addr>,
                _max_cycles: u64,
            ) -> Result<Option<RunSummary>, SimError> {
                unimplemented!("probe backend never runs")
            }
        }
        register(Arc::new(Probe(1)));
        register(Arc::new(Probe(9)));
        let found = lookup("probe-replaced").unwrap();
        assert_eq!(found.capabilities().rank, 9);
        assert_eq!(names().iter().filter(|n| *n == "probe-replaced").count(), 1);
    }
}
