//! Data-path execution shared by xsim and vsim.
//!
//! Both simulators use identical functional units; only the control path
//! differs. This module evaluates one data operation with start-of-cycle
//! reads and end-of-cycle (staged) writes.

use ximd_isa::{DataOp, FuId, IsaError, Operand, Value};

use crate::device::IoPort;
use crate::error::SimError;
use crate::memory::Memory;
use crate::regfile::RegisterFile;
use crate::stats::SimStats;

/// Executes `op` on behalf of `fu`, staging register and memory writes.
///
/// Returns the new condition-code value if the operation was a compare.
pub(crate) fn execute_data(
    fu: FuId,
    op: &DataOp,
    cycle: u64,
    regs: &mut RegisterFile,
    mem: &mut Memory,
    ports: &mut [IoPort],
    stats: &mut SimStats,
) -> Result<Option<bool>, SimError> {
    let read = |o: Operand, regs: &RegisterFile| -> Value {
        match o {
            Operand::Reg(r) => regs.read(r),
            Operand::Imm(v) => v,
        }
    };
    let fault = |e: IsaError| SimError::DataFault {
        fu,
        cycle,
        fault: e,
    };

    if !op.is_nop() {
        if let Some(slot) = stats.ops_per_fu.get_mut(fu.index()) {
            *slot += 1;
        }
    }
    match *op {
        DataOp::Nop => {
            stats.nops += 1;
            Ok(None)
        }
        DataOp::Alu { op, a, b, d } => {
            stats.ops += 1;
            let result = op.eval(read(a, regs), read(b, regs)).map_err(fault)?;
            regs.stage_write(fu, d, result);
            Ok(None)
        }
        DataOp::Un { op, a, d } => {
            stats.ops += 1;
            let result = op.eval(read(a, regs));
            regs.stage_write(fu, d, result);
            Ok(None)
        }
        DataOp::Cmp { op, a, b } => {
            stats.ops += 1;
            stats.compares += 1;
            Ok(Some(op.eval(read(a, regs), read(b, regs))))
        }
        DataOp::Load { a, b, d } => {
            stats.ops += 1;
            stats.loads += 1;
            let addr = read(a, regs).as_i32() as i64 + read(b, regs).as_i32() as i64;
            let value = mem.read(addr)?;
            regs.stage_write(fu, d, value);
            Ok(None)
        }
        DataOp::Store { a, b } => {
            stats.ops += 1;
            stats.stores += 1;
            let value = read(a, regs);
            let addr = read(b, regs).as_i32() as i64;
            mem.stage_write(fu, addr, value)?;
            Ok(None)
        }
        DataOp::PortIn { port, d } => {
            stats.ops += 1;
            let count = ports.len();
            let device = ports
                .get_mut(port as usize)
                .ok_or(SimError::PortOutOfRange { port, count })?;
            let value = device.read(cycle);
            regs.stage_write(fu, d, value);
            Ok(None)
        }
        DataOp::PortOut { port, a } => {
            stats.ops += 1;
            let value = read(a, regs);
            let count = ports.len();
            let device = ports
                .get_mut(port as usize)
                .ok_or(SimError::PortOutOfRange { port, count })?;
            device.write(cycle, value);
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConflictPolicy;
    use ximd_isa::{AluOp, CmpOp, Reg, UnOp};

    fn setup() -> (RegisterFile, Memory, Vec<IoPort>, SimStats) {
        (
            RegisterFile::new(8),
            Memory::new(64),
            vec![IoPort::new()],
            SimStats::default(),
        )
    }

    #[test]
    fn alu_stages_result() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        regs.poke(Reg(0), Value::I32(4));
        let op = DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(3), Reg(1));
        let cc =
            execute_data(FuId(0), &op, 0, &mut regs, &mut mem, &mut ports, &mut stats).unwrap();
        assert_eq!(cc, None);
        regs.commit(ConflictPolicy::Trap, 0).unwrap();
        assert_eq!(regs.read(Reg(1)).as_i32(), 7);
        assert_eq!(stats.ops, 1);
    }

    #[test]
    fn cmp_returns_cc_without_register_write() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        let op = DataOp::cmp(CmpOp::Lt, Operand::imm_i32(1), Operand::imm_i32(2));
        let cc =
            execute_data(FuId(2), &op, 0, &mut regs, &mut mem, &mut ports, &mut stats).unwrap();
        assert_eq!(cc, Some(true));
        assert_eq!(stats.compares, 1);
    }

    #[test]
    fn load_uses_base_plus_offset() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        mem.poke(12, Value::I32(99)).unwrap();
        regs.poke(Reg(0), Value::I32(10));
        let op = DataOp::load(Reg(0).into(), Operand::imm_i32(2), Reg(1));
        execute_data(FuId(0), &op, 0, &mut regs, &mut mem, &mut ports, &mut stats).unwrap();
        regs.commit(ConflictPolicy::Trap, 0).unwrap();
        assert_eq!(regs.read(Reg(1)).as_i32(), 99);
        assert_eq!(stats.loads, 1);
    }

    #[test]
    fn store_stages_to_memory() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        regs.poke(Reg(0), Value::I32(7));
        let op = DataOp::store(Reg(0).into(), Operand::imm_i32(20));
        execute_data(FuId(0), &op, 0, &mut regs, &mut mem, &mut ports, &mut stats).unwrap();
        assert_eq!(mem.read(20).unwrap().as_i32(), 0);
        mem.commit(ConflictPolicy::Trap, 0).unwrap();
        assert_eq!(mem.read(20).unwrap().as_i32(), 7);
        assert_eq!(stats.stores, 1);
    }

    #[test]
    fn divide_by_zero_is_attributed() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        let op = DataOp::alu(
            AluOp::Idiv,
            Operand::imm_i32(1),
            Operand::imm_i32(0),
            Reg(0),
        );
        let err =
            execute_data(FuId(3), &op, 9, &mut regs, &mut mem, &mut ports, &mut stats).unwrap_err();
        assert!(matches!(
            err,
            SimError::DataFault {
                fu: FuId(3),
                cycle: 9,
                ..
            }
        ));
    }

    #[test]
    fn port_roundtrip_and_missing_port() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        ports[0].schedule(0, Value::I32(5));
        let op = DataOp::PortIn { port: 0, d: Reg(2) };
        execute_data(FuId(0), &op, 0, &mut regs, &mut mem, &mut ports, &mut stats).unwrap();
        regs.commit(ConflictPolicy::Trap, 0).unwrap();
        assert_eq!(regs.read(Reg(2)).as_i32(), 5);

        let bad = DataOp::PortOut {
            port: 7,
            a: Operand::imm_i32(1),
        };
        let err = execute_data(
            FuId(0),
            &bad,
            0,
            &mut regs,
            &mut mem,
            &mut ports,
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::PortOutOfRange { port: 7, .. }));
    }

    #[test]
    fn unary_op_executes() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        let op = DataOp::un(UnOp::Ineg, Operand::imm_i32(6), Reg(4));
        execute_data(FuId(1), &op, 0, &mut regs, &mut mem, &mut ports, &mut stats).unwrap();
        regs.commit(ConflictPolicy::Trap, 0).unwrap();
        assert_eq!(regs.read(Reg(4)).as_i32(), -6);
    }

    #[test]
    fn nop_counts_but_does_nothing() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        execute_data(
            FuId(0),
            &DataOp::Nop,
            0,
            &mut regs,
            &mut mem,
            &mut ports,
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.nops, 1);
        assert_eq!(stats.ops, 0);
    }
}
