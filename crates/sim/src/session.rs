//! Suspendable simulation sessions.
//!
//! A [`Session`] wraps either a single [`Xsim`] machine or a whole
//! [`LaneXsim`] batch behind one lifecycle: advance to a cycle mark,
//! suspend into a byte image ([`Session::snapshot`]), restore later —
//! possibly in another process — and drive to completion, with the
//! snapshot module's bit-exactness guarantee end to end: *suspend + resume
//! ≡ uninterrupted run*.
//!
//! The subtlety the session layer exists to manage is **park overshoot**.
//! The run loop observes the park condition *before* a step and still
//! executes that one parked cycle (the paper's Figure 10 convention), so a
//! machine that already finished by parking must never be re-driven — one
//! more `run_until_parked` would execute a second parked cycle and break
//! bit-exactness. The session records completion when it happens, persists
//! the flag inside the snapshot, and makes every later drive a no-op.
//!
//! Cycle budgets are **absolute**, matching [`Xsim::run`]: a session
//! advanced to cycle *k* and then finished with budget *n* executes the
//! same cycles an uninterrupted `run(n)` would, because the run loop
//! compares the machine's own cycle counter against the budget.

use std::sync::Arc;

use ximd_isa::{Addr, Program};

use crate::backend::{BackendRequest, ExecutionBackend};
use crate::config::MachineConfig;
use crate::decoded::DecodedProgram;
use crate::engine::Engine as _;
use crate::error::SimError;
use crate::lanes::LaneXsim;
use crate::snapshot::{self, SnapshotError, SnapshotKind};
use crate::stats::SimStats;
use crate::xsim::{RunSummary, StepStatus, Xsim};

enum State {
    Machine {
        sim: Box<Xsim>,
        complete: bool,
        /// Pre-lowered decode tables from an artifact cache; consulted by
        /// the decoded backend, never serialized (a restored session
        /// lowers on the fly, which changes timing, not results).
        tables: Option<Arc<DecodedProgram>>,
    },
    Lanes {
        batch: Box<LaneXsim>,
        program: Program,
        config: MachineConfig,
    },
}

/// A suspendable run of one machine or one lane batch. See the module
/// docs for the lifecycle and the bit-exactness contract.
///
/// # Example
///
/// ```
/// use ximd_isa::{Addr, ControlOp, Parcel, Program};
/// use ximd_sim::{MachineConfig, Session, Xsim};
///
/// let mut program = Program::new(1);
/// program.push(vec![Parcel::goto(Addr(1))]);
/// program.push(vec![Parcel::goto(Addr(1))]); // self-loop: parks at 1
///
/// let sim = Xsim::new(program, MachineConfig::with_width(1))?;
/// let mut session = Session::from_machine(sim);
/// session.advance_to(None, 1)?;               // run one cycle...
/// let image = session.snapshot()?;            // ...suspend...
/// let mut resumed = Session::restore(&image)?; // ...resume elsewhere...
/// let backend = ximd_sim::backend::lookup("interp").unwrap();
/// resumed.finish(Some(Addr(1)), 100, backend.as_ref())?;
/// assert!(resumed.complete());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Session {
    state: State,
}

impl Session {
    /// Wraps a (possibly mid-run) machine in a session.
    pub fn from_machine(sim: Xsim) -> Session {
        Session {
            state: State::Machine {
                sim: Box::new(sim),
                complete: false,
                tables: None,
            },
        }
    }

    /// [`Session::from_machine`] with pre-lowered decode tables from an
    /// artifact cache: a decoded-backend finish skips lowering when the
    /// tables match the machine's program.
    pub fn from_machine_cached(sim: Xsim, tables: Arc<DecodedProgram>) -> Session {
        Session {
            state: State::Machine {
                sim: Box::new(sim),
                complete: false,
                tables: Some(tables),
            },
        }
    }

    /// Builds a lane-batch session from independent machine instances (all
    /// running the same program under the same configuration).
    ///
    /// # Errors
    ///
    /// The [`LaneXsim::from_instances`] validation errors.
    pub fn from_instances(sims: &[Xsim]) -> Result<Session, SimError> {
        Session::from_instances_cached(sims, None)
    }

    /// [`Session::from_instances`] with optional pre-lowered decode tables
    /// (the per-batch decode is skipped when they match).
    ///
    /// # Errors
    ///
    /// The [`LaneXsim::from_instances`] validation errors.
    pub fn from_instances_cached(
        sims: &[Xsim],
        tables: Option<Arc<DecodedProgram>>,
    ) -> Result<Session, SimError> {
        let batch = match tables {
            Some(t) => LaneXsim::from_instances_cached(sims, &t)?,
            None => LaneXsim::from_instances(sims)?,
        };
        let first = &sims[0];
        Ok(Session {
            state: State::Lanes {
                program: first.program().clone(),
                config: first.config().clone(),
                batch: Box::new(batch),
            },
        })
    }

    /// The wrapped machine, if this is a single-machine session.
    pub fn machine(&self) -> Option<&Xsim> {
        match &self.state {
            State::Machine { sim, .. } => Some(sim),
            State::Lanes { .. } => None,
        }
    }

    /// Mutable access to the wrapped machine (test setup: poking inputs,
    /// attaching ports before the first advance).
    pub fn machine_mut(&mut self) -> Option<&mut Xsim> {
        match &mut self.state {
            State::Machine { sim, .. } => Some(sim),
            State::Lanes { .. } => None,
        }
    }

    /// The wrapped lane batch, if this is a batch session.
    pub fn batch(&self) -> Option<&LaneXsim> {
        match &self.state {
            State::Machine { .. } => None,
            State::Lanes { batch, .. } => Some(batch),
        }
    }

    /// True once the run has finished (halted or parked out). A complete
    /// session ignores further drives — that is the park-overshoot guard.
    pub fn complete(&self) -> bool {
        match &self.state {
            State::Machine { complete, .. } => *complete,
            State::Lanes { batch, .. } => batch.all_done(),
        }
    }

    /// The session's cycle counter: the machine's cycle, or the furthest
    /// lane's cycle for a batch.
    pub fn cycle(&self) -> u64 {
        match &self.state {
            State::Machine { sim, .. } => sim.cycle(),
            State::Lanes { batch, .. } => (0..batch.lanes())
                .map(|l| batch.cycle(l))
                .max()
                .unwrap_or(0),
        }
    }

    /// Advances to the absolute cycle mark `upto_cycle` (the suspension
    /// point), stopping earlier if the run completes. Replicates the run
    /// loop's rules exactly — park observed before the step, the parked
    /// cycle still executes — so that `advance_to(k)` + `finish(n)` is
    /// indistinguishable from an uninterrupted `finish(n)`.
    ///
    /// # Errors
    ///
    /// A machine check ([`SimError`]) from the underlying step.
    pub fn advance_to(&mut self, park: Option<Addr>, upto_cycle: u64) -> Result<(), SimError> {
        match &mut self.state {
            State::Machine { sim, complete, .. } => {
                while !*complete && sim.cycle() < upto_cycle {
                    let parked = park.is_some_and(|p| sim.all_parked(p));
                    let status = sim.step()?;
                    if parked || status == StepStatus::AllHalted {
                        *complete = true;
                    }
                }
                Ok(())
            }
            State::Lanes { batch, .. } => batch.run_for(park, upto_cycle),
        }
    }

    /// Drives the run to completion under an **absolute** cycle budget,
    /// exactly [`Xsim::run`] / [`Xsim::run_until_parked`] semantics
    /// continued from wherever the session stands, on the given execution
    /// backend (a registry handle — see [`crate::backend`]). No-op if
    /// already complete. Returns the machine's summary (single-machine
    /// sessions) or `None` (batch sessions report per-lane via
    /// [`LaneXsim::summary`]).
    ///
    /// # Errors
    ///
    /// [`ConfigError::CapabilityMismatch`](crate::ConfigError) if this
    /// session needs something the backend lacks; otherwise a machine
    /// check or [`SimError::CycleLimit`] if the budget expires first.
    pub fn finish(
        &mut self,
        park: Option<Addr>,
        max_cycles: u64,
        backend: &dyn ExecutionBackend,
    ) -> Result<Option<RunSummary>, SimError> {
        backend.finish(self, park, max_cycles)
    }

    /// The request this session's shape implies: its lane count and timing
    /// model. Backends validate their capabilities against it before
    /// driving; auto-selection on a restored session starts here.
    #[must_use]
    pub fn backend_request(&self) -> BackendRequest {
        match &self.state {
            State::Machine { sim, .. } => BackendRequest {
                non_ideal_timing: !sim.config().timing.is_ideal(),
                lanes: 1,
                ..BackendRequest::default()
            },
            // Lane batches are assembled ideal-only; only the count matters.
            State::Lanes { batch, .. } => BackendRequest {
                lanes: batch.lanes().max(2),
                ..BackendRequest::default()
            },
        }
    }

    /// The run's statistics so far: the machine's, or lane 0's for a batch
    /// (per-lane numbers come from [`Session::batch`]).
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        match &self.state {
            State::Machine { sim, .. } => sim.stats(),
            State::Lanes { batch, .. } => batch.stats(0),
        }
    }

    /// The interpreter drive: [`Xsim::run`] / [`Xsim::run_until_parked`]
    /// semantics. Backend implementations call this; everyone else goes
    /// through [`Session::finish`] with a registry handle.
    pub(crate) fn finish_interp(
        &mut self,
        park: Option<Addr>,
        max_cycles: u64,
    ) -> Result<Option<RunSummary>, SimError> {
        self.finish_machine(park, max_cycles, false)
    }

    /// The decoded-fast-path drive, consulting cached tables when present.
    pub(crate) fn finish_decoded(
        &mut self,
        park: Option<Addr>,
        max_cycles: u64,
    ) -> Result<Option<RunSummary>, SimError> {
        self.finish_machine(park, max_cycles, true)
    }

    fn finish_machine(
        &mut self,
        park: Option<Addr>,
        max_cycles: u64,
        decoded: bool,
    ) -> Result<Option<RunSummary>, SimError> {
        let State::Machine {
            sim,
            complete,
            tables,
        } = &mut self.state
        else {
            return Err(SimError::Backend {
                backend: (if decoded { "decoded" } else { "interp" }).to_string(),
                detail: "single-machine backend driving a lane-batch session".to_string(),
            });
        };
        if *complete {
            return Ok(Some(RunSummary {
                cycles: sim.cycle(),
                stats: sim.stats().clone(),
            }));
        }
        let summary = match (decoded, &tables, park) {
            (false, _, None) => sim.run(max_cycles)?,
            (false, _, Some(p)) => sim.run_until_parked(p, max_cycles)?,
            (true, Some(t), _) => sim.run_decoded_cached(t, park, max_cycles)?,
            (true, None, None) => sim.run_decoded(max_cycles)?,
            (true, None, Some(p)) => sim.run_decoded_until_parked(p, max_cycles)?,
        };
        *complete = true;
        Ok(Some(summary))
    }

    /// The lane-engine drive for batch sessions.
    pub(crate) fn finish_lanes(
        &mut self,
        park: Option<Addr>,
        max_cycles: u64,
    ) -> Result<Option<RunSummary>, SimError> {
        let State::Lanes { batch, .. } = &mut self.state else {
            return Err(SimError::Backend {
                backend: "lanes".to_string(),
                detail: "lane-batch drive on a single-machine session".to_string(),
            });
        };
        match park {
            None => batch.run(max_cycles)?,
            Some(p) => batch.run_until_parked(p, max_cycles)?,
        };
        Ok(None)
    }

    /// Serializes the session into a self-describing byte image (see the
    /// [`snapshot`] module for the format).
    ///
    /// # Errors
    ///
    /// The snapshot module's encoding errors.
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        match &self.state {
            State::Machine { sim, complete, .. } => snapshot::encode_machine(sim, *complete),
            State::Lanes {
                batch,
                program,
                config,
            } => snapshot::encode_lanes(batch, program, config),
        }
    }

    /// Restores a session from a snapshot image, machine or batch alike.
    ///
    /// # Errors
    ///
    /// The snapshot module's decoding errors.
    pub fn restore(bytes: &[u8]) -> Result<Session, SnapshotError> {
        match snapshot::kind(bytes)? {
            SnapshotKind::Machine => {
                let (sim, complete) = snapshot::decode_machine(bytes)?;
                Ok(Session {
                    state: State::Machine {
                        sim: Box::new(sim),
                        complete,
                        tables: None,
                    },
                })
            }
            SnapshotKind::Lanes => {
                let (batch, program, config) = snapshot::decode_lanes(bytes)?;
                Ok(Session {
                    state: State::Lanes {
                        batch: Box::new(batch),
                        program,
                        config,
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{lookup, BackendHandle};
    use ximd_isa::{AluOp, ControlOp, DataOp, Operand, Parcel, Reg, Value};

    fn backend(name: &str) -> BackendHandle {
        lookup(name).expect("built-in backend")
    }

    fn spin_program() -> Program {
        // FU0 counts r0 down to zero and parks on the self-loop at 2:
        // 0: compare, 1: decrement and branch on the latched CC.
        let mut p = Program::new(1);
        p.push(vec![Parcel {
            data: DataOp::Cmp {
                op: ximd_isa::CmpOp::Le,
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(Value::I32(0)),
            },
            ctrl: ControlOp::Goto(Addr(1)),
            sync: ximd_isa::SyncSignal::Busy,
        }]);
        p.push(vec![Parcel {
            data: DataOp::Alu {
                op: AluOp::Isub,
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(Value::I32(1)),
                d: Reg(0),
            },
            ctrl: ControlOp::Branch {
                cond: ximd_isa::CondSource::Cc(ximd_isa::FuId(0)),
                taken: Addr(2),
                not_taken: Addr(0),
            },
            sync: ximd_isa::SyncSignal::Busy,
        }]);
        p.push(vec![Parcel::goto(Addr(2))]); // 2: park
        p
    }

    fn machine(iters: i32) -> Xsim {
        let mut sim = Xsim::new(spin_program(), MachineConfig::with_width(1)).unwrap();
        sim.write_reg(Reg(0), Value::I32(iters));
        sim
    }

    #[test]
    fn suspended_session_matches_uninterrupted_parked_run() {
        let park = Some(Addr(2));
        let mut baseline = Session::from_machine(machine(6));
        let base_summary = baseline
            .finish(park, 1000, backend("interp").as_ref())
            .unwrap();

        let mut session = Session::from_machine(machine(6));
        session.advance_to(park, 5).unwrap();
        let image = session.snapshot().unwrap();
        let mut resumed = Session::restore(&image).unwrap();
        let summary = resumed
            .finish(park, 1000, backend("interp").as_ref())
            .unwrap();

        assert_eq!(summary, base_summary);
        let (a, b) = (resumed.machine().unwrap(), baseline.machine().unwrap());
        assert_eq!(a.regs.snapshot(), b.regs.snapshot());
        assert_eq!(a.pcs(), b.pcs());
        assert_eq!(a.cycle(), b.cycle());
    }

    #[test]
    fn complete_session_is_not_redriven() {
        let park = Some(Addr(2));
        let mut session = Session::from_machine(machine(3));
        session
            .finish(park, 1000, backend("interp").as_ref())
            .unwrap();
        assert!(session.complete());
        let cycle = session.cycle();

        // Round-trip the completed session and drive it again: the
        // completion flag must survive and suppress the extra parked cycle.
        let resumed = Session::restore(&session.snapshot().unwrap());
        let mut resumed = resumed.unwrap();
        assert!(resumed.complete());
        resumed
            .finish(park, 1000, backend("interp").as_ref())
            .unwrap();
        resumed.advance_to(park, cycle + 10).unwrap();
        assert_eq!(resumed.cycle(), cycle);
    }

    #[test]
    fn single_machine_backends_reject_batch_sessions() {
        let sims: Vec<Xsim> = [3, 9].iter().map(|&n| machine(n)).collect();
        let mut session = Session::from_instances(&sims).unwrap();
        for name in ["interp", "decoded"] {
            let err = session
                .finish(Some(Addr(2)), 1000, backend(name).as_ref())
                .unwrap_err();
            assert!(
                matches!(
                    &err,
                    SimError::Config(crate::error::ConfigError::CapabilityMismatch {
                        capability: "lane batching",
                        ..
                    })
                ),
                "{name}: {err}"
            );
        }
    }

    #[test]
    fn batch_session_round_trips() {
        let sims: Vec<Xsim> = [3, 9, 6].iter().map(|&n| machine(n)).collect();
        let mut baseline = Session::from_instances(&sims).unwrap();
        baseline
            .finish(Some(Addr(2)), 1000, backend("lanes").as_ref())
            .unwrap();

        let mut session = Session::from_instances(&sims).unwrap();
        session.advance_to(Some(Addr(2)), 4).unwrap();
        let mut resumed = Session::restore(&session.snapshot().unwrap()).unwrap();
        resumed
            .finish(Some(Addr(2)), 1000, backend("lanes").as_ref())
            .unwrap();

        let (a, b) = (resumed.batch().unwrap(), baseline.batch().unwrap());
        for lane in 0..a.lanes() {
            assert_eq!(a.summary(lane), b.summary(lane), "lane {lane}");
            assert_eq!(a.pcs(lane), b.pcs(lane), "lane {lane}");
        }
        assert!(resumed.complete());
    }
}
