//! Suspendable simulation sessions.
//!
//! A [`Session`] wraps either a single [`Xsim`] machine or a whole
//! [`LaneXsim`] batch behind one lifecycle: advance to a cycle mark,
//! suspend into a byte image ([`Session::snapshot`]), restore later —
//! possibly in another process — and drive to completion, with the
//! snapshot module's bit-exactness guarantee end to end: *suspend + resume
//! ≡ uninterrupted run*.
//!
//! The subtlety the session layer exists to manage is **park overshoot**.
//! The run loop observes the park condition *before* a step and still
//! executes that one parked cycle (the paper's Figure 10 convention), so a
//! machine that already finished by parking must never be re-driven — one
//! more `run_until_parked` would execute a second parked cycle and break
//! bit-exactness. The session records completion when it happens, persists
//! the flag inside the snapshot, and makes every later drive a no-op.
//!
//! Cycle budgets are **absolute**, matching [`Xsim::run`]: a session
//! advanced to cycle *k* and then finished with budget *n* executes the
//! same cycles an uninterrupted `run(n)` would, because the run loop
//! compares the machine's own cycle counter against the budget.

use ximd_isa::{Addr, Program};

use crate::config::MachineConfig;
use crate::engine::Engine as _;
use crate::error::SimError;
use crate::lanes::LaneXsim;
use crate::snapshot::{self, SnapshotError, SnapshotKind};
use crate::xsim::{RunSummary, StepStatus, Xsim};

/// Which execution engine a [`Session::finish`] dispatches to.
///
/// For a lane-batch session the engine is always the lane engine and this
/// choice is ignored. For a single-machine session, `Lanes` degenerates to
/// `Decoded` (a one-lane batch and the decoded fast path are the same
/// computation; the decoded path avoids the batch setup cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The cycle-accurate interpreter — any timing model, trace-capable.
    #[default]
    Interp,
    /// The decoded fast path — ideal timing only (the interpreter is used
    /// automatically where the fast path does not apply).
    Decoded,
    /// The SoA lane engine — ideal timing only, lockstep batches.
    Lanes,
}

impl EngineKind {
    /// Parses the CLI/wire spelling (`interp` / `decoded` / `lanes`).
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "interp" => Some(EngineKind::Interp),
            "decoded" => Some(EngineKind::Decoded),
            "lanes" => Some(EngineKind::Lanes),
            _ => None,
        }
    }

    /// The CLI/wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Interp => "interp",
            EngineKind::Decoded => "decoded",
            EngineKind::Lanes => "lanes",
        }
    }
}

enum State {
    Machine {
        sim: Box<Xsim>,
        complete: bool,
    },
    Lanes {
        batch: Box<LaneXsim>,
        program: Program,
        config: MachineConfig,
    },
}

/// A suspendable run of one machine or one lane batch. See the module
/// docs for the lifecycle and the bit-exactness contract.
///
/// # Example
///
/// ```
/// use ximd_isa::{Addr, ControlOp, Parcel, Program};
/// use ximd_sim::{MachineConfig, Session, Xsim};
///
/// let mut program = Program::new(1);
/// program.push(vec![Parcel::goto(Addr(1))]);
/// program.push(vec![Parcel::goto(Addr(1))]); // self-loop: parks at 1
///
/// let sim = Xsim::new(program, MachineConfig::with_width(1))?;
/// let mut session = Session::from_machine(sim);
/// session.advance_to(None, 1)?;               // run one cycle...
/// let image = session.snapshot()?;            // ...suspend...
/// let mut resumed = Session::restore(&image)?; // ...resume elsewhere...
/// resumed.finish(Some(Addr(1)), 100, Default::default())?;
/// assert!(resumed.complete());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Session {
    state: State,
}

impl Session {
    /// Wraps a (possibly mid-run) machine in a session.
    pub fn from_machine(sim: Xsim) -> Session {
        Session {
            state: State::Machine {
                sim: Box::new(sim),
                complete: false,
            },
        }
    }

    /// Builds a lane-batch session from independent machine instances (all
    /// running the same program under the same configuration).
    ///
    /// # Errors
    ///
    /// The [`LaneXsim::from_instances`] validation errors.
    pub fn from_instances(sims: &[Xsim]) -> Result<Session, SimError> {
        let batch = LaneXsim::from_instances(sims)?;
        let first = &sims[0];
        Ok(Session {
            state: State::Lanes {
                program: first.program().clone(),
                config: first.config().clone(),
                batch: Box::new(batch),
            },
        })
    }

    /// The wrapped machine, if this is a single-machine session.
    pub fn machine(&self) -> Option<&Xsim> {
        match &self.state {
            State::Machine { sim, .. } => Some(sim),
            State::Lanes { .. } => None,
        }
    }

    /// Mutable access to the wrapped machine (test setup: poking inputs,
    /// attaching ports before the first advance).
    pub fn machine_mut(&mut self) -> Option<&mut Xsim> {
        match &mut self.state {
            State::Machine { sim, .. } => Some(sim),
            State::Lanes { .. } => None,
        }
    }

    /// The wrapped lane batch, if this is a batch session.
    pub fn batch(&self) -> Option<&LaneXsim> {
        match &self.state {
            State::Machine { .. } => None,
            State::Lanes { batch, .. } => Some(batch),
        }
    }

    /// True once the run has finished (halted or parked out). A complete
    /// session ignores further drives — that is the park-overshoot guard.
    pub fn complete(&self) -> bool {
        match &self.state {
            State::Machine { complete, .. } => *complete,
            State::Lanes { batch, .. } => batch.all_done(),
        }
    }

    /// The session's cycle counter: the machine's cycle, or the furthest
    /// lane's cycle for a batch.
    pub fn cycle(&self) -> u64 {
        match &self.state {
            State::Machine { sim, .. } => sim.cycle(),
            State::Lanes { batch, .. } => (0..batch.lanes())
                .map(|l| batch.cycle(l))
                .max()
                .unwrap_or(0),
        }
    }

    /// Advances to the absolute cycle mark `upto_cycle` (the suspension
    /// point), stopping earlier if the run completes. Replicates the run
    /// loop's rules exactly — park observed before the step, the parked
    /// cycle still executes — so that `advance_to(k)` + `finish(n)` is
    /// indistinguishable from an uninterrupted `finish(n)`.
    ///
    /// # Errors
    ///
    /// A machine check ([`SimError`]) from the underlying step.
    pub fn advance_to(&mut self, park: Option<Addr>, upto_cycle: u64) -> Result<(), SimError> {
        match &mut self.state {
            State::Machine { sim, complete } => {
                while !*complete && sim.cycle() < upto_cycle {
                    let parked = park.is_some_and(|p| sim.all_parked(p));
                    let status = sim.step()?;
                    if parked || status == StepStatus::AllHalted {
                        *complete = true;
                    }
                }
                Ok(())
            }
            State::Lanes { batch, .. } => batch.run_for(park, upto_cycle),
        }
    }

    /// Drives the run to completion under an **absolute** cycle budget,
    /// exactly [`Xsim::run`] / [`Xsim::run_until_parked`] semantics
    /// continued from wherever the session stands. No-op if already
    /// complete. Returns the machine's summary (single-machine sessions)
    /// or `None` (batch sessions report per-lane via
    /// [`LaneXsim::summary`]).
    ///
    /// # Errors
    ///
    /// A machine check or [`SimError::CycleLimit`] if the budget expires
    /// first.
    pub fn finish(
        &mut self,
        park: Option<Addr>,
        max_cycles: u64,
        engine: EngineKind,
    ) -> Result<Option<RunSummary>, SimError> {
        match &mut self.state {
            State::Machine { sim, complete } => {
                if *complete {
                    return Ok(Some(RunSummary {
                        cycles: sim.cycle(),
                        stats: sim.stats().clone(),
                    }));
                }
                let summary = match (engine, park) {
                    (EngineKind::Interp, None) => sim.run(max_cycles)?,
                    (EngineKind::Interp, Some(p)) => sim.run_until_parked(p, max_cycles)?,
                    (EngineKind::Decoded | EngineKind::Lanes, None) => {
                        sim.run_decoded(max_cycles)?
                    }
                    (EngineKind::Decoded | EngineKind::Lanes, Some(p)) => {
                        sim.run_decoded_until_parked(p, max_cycles)?
                    }
                };
                *complete = true;
                Ok(Some(summary))
            }
            State::Lanes { batch, .. } => {
                match park {
                    None => batch.run(max_cycles)?,
                    Some(p) => batch.run_until_parked(p, max_cycles)?,
                };
                Ok(None)
            }
        }
    }

    /// Serializes the session into a self-describing byte image (see the
    /// [`snapshot`] module for the format).
    ///
    /// # Errors
    ///
    /// The snapshot module's encoding errors.
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        match &self.state {
            State::Machine { sim, complete } => snapshot::encode_machine(sim, *complete),
            State::Lanes {
                batch,
                program,
                config,
            } => snapshot::encode_lanes(batch, program, config),
        }
    }

    /// Restores a session from a snapshot image, machine or batch alike.
    ///
    /// # Errors
    ///
    /// The snapshot module's decoding errors.
    pub fn restore(bytes: &[u8]) -> Result<Session, SnapshotError> {
        match snapshot::kind(bytes)? {
            SnapshotKind::Machine => {
                let (sim, complete) = snapshot::decode_machine(bytes)?;
                Ok(Session {
                    state: State::Machine {
                        sim: Box::new(sim),
                        complete,
                    },
                })
            }
            SnapshotKind::Lanes => {
                let (batch, program, config) = snapshot::decode_lanes(bytes)?;
                Ok(Session {
                    state: State::Lanes {
                        batch: Box::new(batch),
                        program,
                        config,
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ximd_isa::{AluOp, ControlOp, DataOp, Operand, Parcel, Reg, Value};

    fn spin_program() -> Program {
        // FU0 counts r0 down to zero and parks on the self-loop at 2:
        // 0: compare, 1: decrement and branch on the latched CC.
        let mut p = Program::new(1);
        p.push(vec![Parcel {
            data: DataOp::Cmp {
                op: ximd_isa::CmpOp::Le,
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(Value::I32(0)),
            },
            ctrl: ControlOp::Goto(Addr(1)),
            sync: ximd_isa::SyncSignal::Busy,
        }]);
        p.push(vec![Parcel {
            data: DataOp::Alu {
                op: AluOp::Isub,
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(Value::I32(1)),
                d: Reg(0),
            },
            ctrl: ControlOp::Branch {
                cond: ximd_isa::CondSource::Cc(ximd_isa::FuId(0)),
                taken: Addr(2),
                not_taken: Addr(0),
            },
            sync: ximd_isa::SyncSignal::Busy,
        }]);
        p.push(vec![Parcel::goto(Addr(2))]); // 2: park
        p
    }

    fn machine(iters: i32) -> Xsim {
        let mut sim = Xsim::new(spin_program(), MachineConfig::with_width(1)).unwrap();
        sim.write_reg(Reg(0), Value::I32(iters));
        sim
    }

    #[test]
    fn suspended_session_matches_uninterrupted_parked_run() {
        let park = Some(Addr(2));
        let mut baseline = Session::from_machine(machine(6));
        let base_summary = baseline.finish(park, 1000, EngineKind::Interp).unwrap();

        let mut session = Session::from_machine(machine(6));
        session.advance_to(park, 5).unwrap();
        let image = session.snapshot().unwrap();
        let mut resumed = Session::restore(&image).unwrap();
        let summary = resumed.finish(park, 1000, EngineKind::Interp).unwrap();

        assert_eq!(summary, base_summary);
        let (a, b) = (resumed.machine().unwrap(), baseline.machine().unwrap());
        assert_eq!(a.regs.snapshot(), b.regs.snapshot());
        assert_eq!(a.pcs(), b.pcs());
        assert_eq!(a.cycle(), b.cycle());
    }

    #[test]
    fn complete_session_is_not_redriven() {
        let park = Some(Addr(2));
        let mut session = Session::from_machine(machine(3));
        session.finish(park, 1000, EngineKind::Interp).unwrap();
        assert!(session.complete());
        let cycle = session.cycle();

        // Round-trip the completed session and drive it again: the
        // completion flag must survive and suppress the extra parked cycle.
        let resumed = Session::restore(&session.snapshot().unwrap());
        let mut resumed = resumed.unwrap();
        assert!(resumed.complete());
        resumed.finish(park, 1000, EngineKind::Interp).unwrap();
        resumed.advance_to(park, cycle + 10).unwrap();
        assert_eq!(resumed.cycle(), cycle);
    }

    #[test]
    fn batch_session_round_trips() {
        let sims: Vec<Xsim> = [3, 9, 6].iter().map(|&n| machine(n)).collect();
        let mut baseline = Session::from_instances(&sims).unwrap();
        baseline
            .finish(Some(Addr(2)), 1000, EngineKind::Lanes)
            .unwrap();

        let mut session = Session::from_instances(&sims).unwrap();
        session.advance_to(Some(Addr(2)), 4).unwrap();
        let mut resumed = Session::restore(&session.snapshot().unwrap()).unwrap();
        resumed
            .finish(Some(Addr(2)), 1000, EngineKind::Lanes)
            .unwrap();

        let (a, b) = (resumed.batch().unwrap(), baseline.batch().unwrap());
        for lane in 0..a.lanes() {
            assert_eq!(a.summary(lane), b.summary(lane), "lane {lane}");
            assert_eq!(a.pcs(lane), b.pcs(lane), "lane {lane}");
        }
        assert!(resumed.complete());
    }
}
