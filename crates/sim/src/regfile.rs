//! The global multi-ported register file.
//!
//! XIMD-1's register file supports two reads and one write per functional
//! unit per cycle (16 reads / 8 writes total on the 8-wide machine). The ISA
//! structurally guarantees each operation needs at most two reads and one
//! write, so port capacity can never be exceeded; this model therefore
//! focuses on *timing*: reads observe start-of-cycle state, writes are
//! staged during the cycle and committed at the end, and same-cycle write
//! conflicts are detected per the machine-check policy.

use ximd_isa::{FuId, Reg, Value};

use crate::config::ConflictPolicy;
use crate::error::SimError;

/// The global register file with end-of-cycle write commit.
///
/// # Example
///
/// ```
/// use ximd_isa::{FuId, Reg, Value};
/// use ximd_sim::RegisterFile;
/// use ximd_sim::config::ConflictPolicy;
///
/// let mut rf = RegisterFile::new(8);
/// rf.poke(Reg(0), Value::I32(7));
/// rf.stage_write(FuId(0), Reg(1), rf.read(Reg(0)));
/// assert_eq!(rf.read(Reg(1)).as_i32(), 0); // not yet committed
/// rf.commit(ConflictPolicy::Trap, 0).unwrap();
/// assert_eq!(rf.read(Reg(1)).as_i32(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct RegisterFile {
    regs: Vec<Value>,
    staged: Vec<(FuId, Reg, Value)>,
    /// Count of write conflicts resolved by [`ConflictPolicy::LastWins`].
    conflicts_resolved: u64,
}

impl RegisterFile {
    /// Creates a register file of `num_regs` registers, all zero.
    pub fn new(num_regs: usize) -> RegisterFile {
        RegisterFile {
            regs: vec![Value::ZERO; num_regs],
            staged: Vec::new(),
            conflicts_resolved: 0,
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Returns `true` if the file has no registers (degenerate machines).
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Reads a register as of the start of the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range; programs are validated before
    /// execution.
    #[inline]
    pub fn read(&self, reg: Reg) -> Value {
        self.regs[reg.index()]
    }

    /// Directly sets a register, outside the cycle model (test setup,
    /// initial machine state).
    pub fn poke(&mut self, reg: Reg, value: Value) {
        self.regs[reg.index()] = value;
    }

    /// Stages a write to commit at end of cycle.
    pub fn stage_write(&mut self, fu: FuId, reg: Reg, value: Value) {
        self.staged.push((fu, reg, value));
    }

    /// Commits all staged writes.
    ///
    /// # Errors
    ///
    /// With [`ConflictPolicy::Trap`], returns
    /// [`SimError::RegisterWriteConflict`] if two FUs staged writes to the
    /// same register this cycle. With [`ConflictPolicy::LastWins`] the
    /// highest-numbered FU's value is kept and the event is counted.
    pub fn commit(&mut self, policy: ConflictPolicy, cycle: u64) -> Result<(), SimError> {
        // Detect conflicts: sort by (reg, fu) so duplicates are adjacent and
        // the winning (highest-FU) write lands last.
        self.staged.sort_by_key(|&(fu, reg, _)| (reg, fu));
        for pair in self.staged.windows(2) {
            if pair[0].1 == pair[1].1 {
                match policy {
                    ConflictPolicy::Trap => {
                        let reg = pair[0].1;
                        let fus = self
                            .staged
                            .iter()
                            .filter(|w| w.1 == reg)
                            .map(|w| w.0)
                            .collect();
                        self.staged.clear();
                        return Err(SimError::RegisterWriteConflict { reg, fus, cycle });
                    }
                    ConflictPolicy::LastWins => self.conflicts_resolved += 1,
                }
            }
        }
        for &(_, reg, value) in &self.staged {
            self.regs[reg.index()] = value;
        }
        self.staged.clear();
        Ok(())
    }

    /// Number of conflicts resolved under [`ConflictPolicy::LastWins`].
    pub fn conflicts_resolved(&self) -> u64 {
        self.conflicts_resolved
    }

    /// Overwrites the resolved-conflict counter (fast-path write-back: the
    /// decoded engine tracks the count itself and restores it here).
    pub(crate) fn force_conflicts_resolved(&mut self, n: u64) {
        self.conflicts_resolved = n;
    }

    /// A snapshot of all register values (for dumps and assertions).
    pub fn snapshot(&self) -> &[Value] {
        &self.regs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_start_of_cycle_state() {
        let mut rf = RegisterFile::new(4);
        rf.poke(Reg(0), Value::I32(1));
        rf.stage_write(FuId(0), Reg(0), Value::I32(2));
        assert_eq!(rf.read(Reg(0)).as_i32(), 1);
        rf.commit(ConflictPolicy::Trap, 0).unwrap();
        assert_eq!(rf.read(Reg(0)).as_i32(), 2);
    }

    #[test]
    fn distinct_registers_commit_together() {
        let mut rf = RegisterFile::new(4);
        rf.stage_write(FuId(0), Reg(0), Value::I32(10));
        rf.stage_write(FuId(1), Reg(1), Value::I32(11));
        rf.stage_write(FuId(2), Reg(2), Value::I32(12));
        rf.commit(ConflictPolicy::Trap, 0).unwrap();
        assert_eq!(rf.read(Reg(0)).as_i32(), 10);
        assert_eq!(rf.read(Reg(1)).as_i32(), 11);
        assert_eq!(rf.read(Reg(2)).as_i32(), 12);
    }

    #[test]
    fn conflict_traps_by_default() {
        let mut rf = RegisterFile::new(4);
        rf.stage_write(FuId(0), Reg(3), Value::I32(1));
        rf.stage_write(FuId(2), Reg(3), Value::I32(2));
        let err = rf.commit(ConflictPolicy::Trap, 42).unwrap_err();
        assert_eq!(
            err,
            SimError::RegisterWriteConflict {
                reg: Reg(3),
                fus: vec![FuId(0), FuId(2)],
                cycle: 42
            }
        );
        // Nothing committed and the pipeline is clean for the next cycle.
        assert_eq!(rf.read(Reg(3)).as_i32(), 0);
        rf.commit(ConflictPolicy::Trap, 43).unwrap();
    }

    #[test]
    fn conflict_last_wins_keeps_highest_fu() {
        let mut rf = RegisterFile::new(4);
        rf.stage_write(FuId(2), Reg(3), Value::I32(22));
        rf.stage_write(FuId(0), Reg(3), Value::I32(20));
        rf.commit(ConflictPolicy::LastWins, 0).unwrap();
        assert_eq!(rf.read(Reg(3)).as_i32(), 22);
        assert_eq!(rf.conflicts_resolved(), 1);
    }

    #[test]
    fn three_way_conflict_lists_all_writers() {
        let mut rf = RegisterFile::new(4);
        for fu in 0..3 {
            rf.stage_write(FuId(fu), Reg(1), Value::I32(fu as i32));
        }
        match rf.commit(ConflictPolicy::Trap, 0).unwrap_err() {
            SimError::RegisterWriteConflict { fus, .. } => {
                assert_eq!(fus, vec![FuId(0), FuId(1), FuId(2)]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn snapshot_reflects_committed_state() {
        let mut rf = RegisterFile::new(2);
        rf.poke(Reg(1), Value::F32(1.5));
        assert_eq!(rf.snapshot()[1].as_f32(), 1.5);
        assert_eq!(rf.len(), 2);
        assert!(!rf.is_empty());
    }
}
