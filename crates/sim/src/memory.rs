//! Idealized shared memory.
//!
//! The paper's research scope (§2.3) assumes an idealized shared memory:
//! every functional unit can read or write one word per cycle, all ports
//! share a single address space, operations complete in one cycle, and
//! "multiple writes to the same location in one cycle are undefined". This
//! model implements exactly that, storing raw 32-bit words sparsely.

use std::collections::HashMap;

use ximd_isa::{FuId, Value};

use crate::config::ConflictPolicy;
use crate::error::SimError;

/// Idealized single-cycle shared memory with end-of-cycle write commit.
///
/// Addresses are *word* addresses, as in the paper's examples where array
/// element `IZ(k)` lives at `z + k`.
///
/// # Example
///
/// ```
/// use ximd_isa::{FuId, Value};
/// use ximd_sim::Memory;
/// use ximd_sim::config::ConflictPolicy;
///
/// let mut mem = Memory::new(1024);
/// mem.poke(100, Value::I32(5))?;
/// assert_eq!(mem.read(100)?.as_i32(), 5);
/// assert_eq!(mem.read(101)?.as_i32(), 0); // uninitialized words read zero
/// # Ok::<(), ximd_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    words: HashMap<u32, u32>,
    size: u32,
    staged: Vec<(FuId, u32, u32)>,
    conflicts_resolved: u64,
}

impl Memory {
    /// Creates a memory of `size` 32-bit words, all zero.
    pub fn new(size: u32) -> Memory {
        Memory {
            words: HashMap::new(),
            size,
            staged: Vec::new(),
            conflicts_resolved: 0,
        }
    }

    /// Memory size in words.
    pub fn size(&self) -> u32 {
        self.size
    }

    fn check(&self, addr: i64) -> Result<u32, SimError> {
        if addr < 0 || addr >= self.size as i64 {
            Err(SimError::MemoryOutOfRange {
                addr,
                size: self.size,
            })
        } else {
            Ok(addr as u32)
        }
    }

    /// Reads the word at `addr` as of the start of the current cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryOutOfRange`] if `addr` is outside memory.
    pub fn read(&self, addr: i64) -> Result<Value, SimError> {
        let addr = self.check(addr)?;
        Ok(Value::from_bits_int(
            self.words.get(&addr).copied().unwrap_or(0),
        ))
    }

    /// Directly writes a word outside the cycle model (test setup, loading
    /// workload arrays).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryOutOfRange`] if `addr` is outside memory.
    pub fn poke(&mut self, addr: i64, value: Value) -> Result<(), SimError> {
        let addr = self.check(addr)?;
        self.words.insert(addr, value.bits());
        Ok(())
    }

    /// Copies a slice of integers into consecutive words starting at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryOutOfRange`] if the slice does not fit.
    pub fn poke_slice(&mut self, base: i64, values: &[i32]) -> Result<(), SimError> {
        for (i, &v) in values.iter().enumerate() {
            self.poke(base + i as i64, Value::I32(v))?;
        }
        Ok(())
    }

    /// Reads `len` consecutive integers starting at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryOutOfRange`] if the range does not fit.
    pub fn peek_slice(&self, base: i64, len: usize) -> Result<Vec<i32>, SimError> {
        (0..len)
            .map(|i| self.read(base + i as i64).map(Value::as_i32))
            .collect()
    }

    /// Stages a write to commit at end of cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MemoryOutOfRange`] if `addr` is outside memory.
    pub fn stage_write(&mut self, fu: FuId, addr: i64, value: Value) -> Result<(), SimError> {
        let addr = self.check(addr)?;
        self.staged.push((fu, addr, value.bits()));
        Ok(())
    }

    /// Commits all staged writes.
    ///
    /// # Errors
    ///
    /// With [`ConflictPolicy::Trap`], returns
    /// [`SimError::MemoryWriteConflict`] if two FUs wrote one word this
    /// cycle.
    pub fn commit(&mut self, policy: ConflictPolicy, cycle: u64) -> Result<(), SimError> {
        self.staged.sort_by_key(|&(fu, addr, _)| (addr, fu));
        for pair in self.staged.windows(2) {
            if pair[0].1 == pair[1].1 {
                match policy {
                    ConflictPolicy::Trap => {
                        let addr = pair[0].1;
                        let fus = self
                            .staged
                            .iter()
                            .filter(|w| w.1 == addr)
                            .map(|w| w.0)
                            .collect();
                        self.staged.clear();
                        return Err(SimError::MemoryWriteConflict { addr, fus, cycle });
                    }
                    ConflictPolicy::LastWins => self.conflicts_resolved += 1,
                }
            }
        }
        for &(_, addr, bits) in &self.staged {
            self.words.insert(addr, bits);
        }
        self.staged.clear();
        Ok(())
    }

    /// Number of conflicts resolved under [`ConflictPolicy::LastWins`].
    pub fn conflicts_resolved(&self) -> u64 {
        self.conflicts_resolved
    }

    /// Iterates over the non-zero words (the lane engine seeds its slabs
    /// from this without densifying the sparse map).
    pub(crate) fn iter_words(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.words.iter().map(|(&addr, &bits)| (addr, bits))
    }

    /// Overwrites the resolved-conflict counter (snapshot restore).
    pub(crate) fn force_conflicts_resolved(&mut self, n: u64) {
        self.conflicts_resolved = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninitialized_memory_reads_zero() {
        let mem = Memory::new(16);
        assert_eq!(mem.read(0).unwrap().as_i32(), 0);
        assert_eq!(mem.read(15).unwrap().as_i32(), 0);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut mem = Memory::new(16);
        assert!(matches!(
            mem.read(16),
            Err(SimError::MemoryOutOfRange { .. })
        ));
        assert!(matches!(
            mem.read(-1),
            Err(SimError::MemoryOutOfRange { .. })
        ));
        assert!(mem.poke(16, Value::I32(1)).is_err());
        assert!(mem.stage_write(FuId(0), -5, Value::I32(1)).is_err());
    }

    #[test]
    fn geometry_contains_agrees_with_range_check() {
        // `MemGeometry` is the static mirror of this module's range check:
        // an address is accepted by `read` iff the geometry contains it.
        let mem = Memory::new(16);
        let geo = crate::config::MemGeometry {
            words: 16,
            banks: 2,
        };
        for addr in -3i64..20 {
            assert_eq!(mem.read(addr).is_ok(), geo.contains(addr), "addr {addr}");
        }
    }

    #[test]
    fn staged_writes_commit_at_end_of_cycle() {
        let mut mem = Memory::new(16);
        mem.stage_write(FuId(0), 3, Value::I32(9)).unwrap();
        assert_eq!(mem.read(3).unwrap().as_i32(), 0);
        mem.commit(ConflictPolicy::Trap, 0).unwrap();
        assert_eq!(mem.read(3).unwrap().as_i32(), 9);
    }

    #[test]
    fn same_word_conflict_traps() {
        let mut mem = Memory::new(16);
        mem.stage_write(FuId(0), 5, Value::I32(1)).unwrap();
        mem.stage_write(FuId(1), 5, Value::I32(2)).unwrap();
        let err = mem.commit(ConflictPolicy::Trap, 8).unwrap_err();
        assert_eq!(
            err,
            SimError::MemoryWriteConflict {
                addr: 5,
                fus: vec![FuId(0), FuId(1)],
                cycle: 8
            }
        );
        assert_eq!(mem.read(5).unwrap().as_i32(), 0);
    }

    #[test]
    fn last_wins_policy_counts_conflicts() {
        let mut mem = Memory::new(16);
        mem.stage_write(FuId(3), 5, Value::I32(33)).unwrap();
        mem.stage_write(FuId(1), 5, Value::I32(11)).unwrap();
        mem.commit(ConflictPolicy::LastWins, 0).unwrap();
        assert_eq!(mem.read(5).unwrap().as_i32(), 33);
        assert_eq!(mem.conflicts_resolved(), 1);
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let mut mem = Memory::new(64);
        mem.poke_slice(10, &[5, 3, 4, 7]).unwrap();
        assert_eq!(mem.peek_slice(10, 4).unwrap(), vec![5, 3, 4, 7]);
        assert!(mem.poke_slice(62, &[1, 2, 3]).is_err());
    }

    #[test]
    fn float_bits_roundtrip_through_memory() {
        let mut mem = Memory::new(4);
        mem.poke(0, Value::F32(2.5)).unwrap();
        assert_eq!(mem.read(0).unwrap().as_f32(), 2.5);
    }
}
