//! Pre-decoded fast-path execution engine.
//!
//! [`Xsim::step`] re-interprets every parcel on every cycle: operand shapes
//! are matched (`Operand::Reg` vs `Operand::Imm`), control operations are
//! re-summarized into [`DecisionKey`]s, and a fresh [`Partition`] — three
//! nested `Vec`s — is allocated per cycle. All of that work is static per
//! program. This module hoists it out of the cycle loop:
//!
//! * [`DecodedProgram`] lowers a [`Program`] once into a dense
//!   `len × width` parcel table. Every operand becomes an index into a
//!   *value pool* whose first `num_regs` slots mirror the architectural
//!   register file and whose tail holds the program's interned immediates —
//!   after decode there is no `Reg`/`Imm` distinction left to test.
//!   Control operations become flat discriminants with pre-resolved branch
//!   targets, sync exports become per-parcel bits, and decision keys are
//!   interned to small integers (the per-cycle partition statistic reduces
//!   to counting distinct ids).
//! * [`FastXsim`] executes from those tables with zero per-cycle heap
//!   allocation: condition codes and sync signals live in `u64` bitsets,
//!   register writes are staged in a reused buffer, and the partition is
//!   only materialized on demand (when the run finishes and state is copied
//!   back into an [`Xsim`]).
//!
//! # Why the fast path cannot change observable semantics
//!
//! The lowering is a bijection on the information the cycle loop consumes:
//! pool index `r` (`r < num_regs`) reads exactly what `Operand::Reg(r)`
//! read, an interned constant slot is never written so it reads exactly
//! what `Operand::Imm` produced, and the commit/conflict logic is the same
//! sort-by-`(reg, fu)` adjacency scan as [`RegisterFile::commit`]
//! (memory reuses [`Memory`] outright). Statistics counters are updated at
//! the same points in the same order. The equivalence is pinned by property
//! tests (`proptest_sim.rs`, `decoded_equivalence.rs`) comparing cycle
//! counts, every counter in [`SimStats`], final registers, PCs, CCs and
//! the final partition against the interpreter.
//!
//! [`RegisterFile::commit`]: crate::RegisterFile::commit
//! [`Memory`]: crate::Memory

use std::collections::HashMap;

use ximd_isa::{
    Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, FuId, Operand, Program, Reg, SyncSignal,
    UnOp, Value,
};

use crate::config::{ConflictPolicy, MachineConfig};
use crate::device::IoPort;
use crate::engine::{self, CycleMem, Engine};
use crate::error::{ConfigError, SimError};
use crate::memory::Memory;
use crate::partition::{DecisionKey, Partition};
use crate::stats::SimStats;
use crate::vsim::Vsim;
use crate::xsim::{RunSummary, StepStatus, Xsim};

/// Widest machine the bitset representation supports. [`Xsim::run_decoded`]
/// falls back to the interpreter above this; the paper's machine is 8 wide.
pub const MAX_FAST_WIDTH: usize = 64;

/// Interned id of [`DecisionKey::Halted`] (always slot 0 of the key table).
pub(crate) const HALTED_KEY: u32 = 0;

/// A data operation with every operand resolved to a value-pool index.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FastOp {
    Nop,
    Alu { op: AluOp, a: u32, b: u32, d: u16 },
    Un { op: UnOp, a: u32, d: u16 },
    Cmp { op: CmpOp, a: u32, b: u32 },
    Load { a: u32, b: u32, d: u16 },
    Store { a: u32, b: u32 },
    PortIn { port: u8, d: u16 },
    PortOut { port: u8, a: u32 },
}

/// A control operation with pre-resolved targets and bit-test conditions.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FastCtrl {
    Goto(u32),
    Branch {
        cond: FastCond,
        taken: u32,
        not_taken: u32,
    },
    Halt,
}

/// Condition evaluation over the CC/SS bitsets.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FastCond {
    Cc(u8),
    Sync(u8),
    AllSync,
    AnySync,
}

impl FastCond {
    #[inline]
    pub(crate) fn eval(self, cc_bits: u64, ss_bits: u64, full_mask: u64) -> bool {
        match self {
            FastCond::Cc(j) => cc_bits >> j & 1 != 0,
            FastCond::Sync(j) => ss_bits >> j & 1 != 0,
            FastCond::AllSync => ss_bits & full_mask == full_mask,
            FastCond::AnySync => ss_bits & full_mask != 0,
        }
    }
}

/// One decoded parcel: resolved data op, flat control, sync bit, key id.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FastParcel {
    pub(crate) op: FastOp,
    pub(crate) ctrl: FastCtrl,
    pub(crate) sync_done: bool,
    pub(crate) key: u32,
}

/// Interns operands and decision keys while lowering a program.
struct Decoder {
    pool: Vec<Value>,
    consts: HashMap<u64, u32>,
    key_table: Vec<DecisionKey>,
    key_ids: HashMap<DecisionKey, u32>,
}

impl Decoder {
    fn new(num_regs: usize) -> Decoder {
        let mut d = Decoder {
            pool: vec![Value::ZERO; num_regs],
            consts: HashMap::new(),
            key_table: Vec::new(),
            key_ids: HashMap::new(),
        };
        // Slot 0 of the key table is reserved for halted units so the
        // control loop can tag them without a lookup.
        let id = d.intern_key(DecisionKey::Halted);
        debug_assert_eq!(id, HALTED_KEY);
        d
    }

    fn intern_value(&mut self, v: Value) -> u32 {
        // Distinguish I32(bits) from F32(bits): faithful write-back of the
        // pool depends on the variant, not just the bit pattern.
        let tag = match v {
            Value::I32(_) => 0u64,
            Value::F32(_) => 1u64,
        };
        let key = tag << 32 | u64::from(v.bits());
        if let Some(&idx) = self.consts.get(&key) {
            return idx;
        }
        let idx = self.pool.len() as u32;
        self.pool.push(v);
        self.consts.insert(key, idx);
        idx
    }

    fn operand(&mut self, o: Operand) -> u32 {
        match o {
            Operand::Reg(r) => u32::from(r.0),
            Operand::Imm(v) => self.intern_value(v),
        }
    }

    fn intern_key(&mut self, key: DecisionKey) -> u32 {
        if let Some(&id) = self.key_ids.get(&key) {
            return id;
        }
        let id = self.key_table.len() as u32;
        self.key_table.push(key);
        self.key_ids.insert(key, id);
        id
    }

    fn data(&mut self, op: &DataOp) -> FastOp {
        match *op {
            DataOp::Nop => FastOp::Nop,
            DataOp::Alu { op, a, b, d } => FastOp::Alu {
                op,
                a: self.operand(a),
                b: self.operand(b),
                d: d.0,
            },
            DataOp::Un { op, a, d } => FastOp::Un {
                op,
                a: self.operand(a),
                d: d.0,
            },
            DataOp::Cmp { op, a, b } => FastOp::Cmp {
                op,
                a: self.operand(a),
                b: self.operand(b),
            },
            DataOp::Load { a, b, d } => FastOp::Load {
                a: self.operand(a),
                b: self.operand(b),
                d: d.0,
            },
            DataOp::Store { a, b } => FastOp::Store {
                a: self.operand(a),
                b: self.operand(b),
            },
            DataOp::PortIn { port, d } => FastOp::PortIn { port, d: d.0 },
            DataOp::PortOut { port, a } => FastOp::PortOut {
                port,
                a: self.operand(a),
            },
        }
    }

    fn ctrl(&mut self, op: &ControlOp) -> (FastCtrl, u32) {
        let key = self.intern_key(DecisionKey::of(op));
        let fast = match *op {
            ControlOp::Goto(t) => FastCtrl::Goto(t.0),
            ControlOp::Branch {
                cond,
                taken,
                not_taken,
            } => FastCtrl::Branch {
                cond: match cond {
                    CondSource::Cc(fu) => FastCond::Cc(fu.0),
                    CondSource::Sync(fu) => FastCond::Sync(fu.0),
                    CondSource::AllSync => FastCond::AllSync,
                    CondSource::AnySync => FastCond::AnySync,
                },
                taken: taken.0,
                not_taken: not_taken.0,
            },
            ControlOp::Halt => FastCtrl::Halt,
        };
        (fast, key)
    }
}

/// A program lowered into dense per-FU tables (see the module docs).
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    pub(crate) width: usize,
    pub(crate) len: u32,
    pub(crate) num_regs: usize,
    /// `len × width` parcels, row-major: `parcels[addr * width + fu]`.
    pub(crate) parcels: Vec<FastParcel>,
    /// Initial value pool: `num_regs` zeros, then the interned immediates.
    pub(crate) pool_init: Vec<Value>,
    /// Interned decision keys; `key_table[id]` recovers the [`DecisionKey`].
    pub(crate) key_table: Vec<DecisionKey>,
}

impl DecodedProgram {
    /// Lowers a validated program. Infallible: every register, target and
    /// FU reference was already range-checked by `Program::validate`.
    ///
    /// Public so artifact caches can lower once and replay the tables
    /// across many runs ([`Xsim::run_decoded_cached`],
    /// [`crate::LaneXsim::from_instances_cached`]); the engines lower on
    /// the fly when no cache is involved.
    pub fn lower(program: &Program, num_regs: usize) -> DecodedProgram {
        let width = program.width();
        let mut dec = Decoder::new(num_regs);
        let mut parcels = Vec::with_capacity(program.len() * width);
        for (_, word) in program.iter() {
            for parcel in word {
                let op = dec.data(&parcel.data);
                let (ctrl, key) = dec.ctrl(&parcel.ctrl);
                parcels.push(FastParcel {
                    op,
                    ctrl,
                    sync_done: parcel.sync == SyncSignal::Done,
                    key,
                });
            }
        }
        DecodedProgram {
            width,
            len: program.len() as u32,
            num_regs,
            parcels,
            pool_init: dec.pool,
            key_table: dec.key_table,
        }
    }

    /// Machine width the tables were lowered for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Program length in wide instructions.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` for the empty program.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct interned immediates.
    pub fn num_consts(&self) -> usize {
        self.pool_init.len() - self.num_regs
    }

    /// Register-file size the tables were lowered for.
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// True when these tables could have been lowered from `program` on a
    /// machine with `num_regs` registers — the cheap dimensional check the
    /// cached-decode entry points gate on (callers pair tables with
    /// programs by content hash; this guards against plumbing mistakes).
    pub fn matches(&self, program: &Program, num_regs: usize) -> bool {
        self.width == program.width() && self.num_regs == num_regs && self.len() == program.len()
    }
}

/// The fast-path XIMD simulator: executes a [`DecodedProgram`] with no
/// per-cycle allocation or operand-shape matching.
///
/// Semantics are cycle- and register-exact with [`Xsim`]; the interpreter
/// remains the oracle (see the module docs). The one observable difference
/// is error recovery: after a machine check the interpreter stops
/// mid-cycle, while [`Xsim::run_decoded`] leaves the machine at the last
/// completed cycle boundary.
///
/// # Example
///
/// ```
/// use ximd_isa::{Addr, Parcel, Program};
/// use ximd_sim::{FastXsim, MachineConfig};
///
/// let mut program = Program::new(2);
/// program.push(vec![Parcel::goto(Addr(1)), Parcel::goto(Addr(1))]);
/// program.push(vec![Parcel::halt(), Parcel::halt()]);
///
/// let mut fast = FastXsim::new(&program, &MachineConfig::with_width(2))?;
/// assert_eq!(fast.run(10)?.cycles, 2);
/// # Ok::<(), ximd_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FastXsim {
    decoded: DecodedProgram,
    reg_policy: ConflictPolicy,
    mem_policy: ConflictPolicy,
    /// Registers (first `num_regs` slots) followed by interned constants.
    pool: Vec<Value>,
    mem: Memory,
    ports: Vec<IoPort>,
    pcs: Vec<Option<u32>>,
    cc_bits: u64,
    cc_known: u64,
    ss_bits: u64,
    full_mask: u64,
    cycle: u64,
    stats: SimStats,
    reg_conflicts: u64,
    /// Reused staging buffer for register writes: `(fu, reg, value)`.
    staged: Vec<(u8, u16, Value)>,
    /// Reused buffer of condition-code updates to latch at cycle end.
    cc_upd: Vec<(u8, bool)>,
    /// Per-FU interned decision key of the last executed cycle.
    keys_now: Vec<u32>,
    ran_any: bool,
}

impl FastXsim {
    /// Builds a fast simulator for `program`, decoding it on the spot.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Isa`] on the same validation failures as
    /// [`Xsim::new`], or [`ConfigError::CapabilityMismatch`] when the
    /// config selects a non-ideal timing model — the fast path hard-codes
    /// single-cycle occupancy ([`Xsim::run_decoded`] checks and falls back
    /// to the interpreter instead).
    ///
    /// # Panics
    ///
    /// Panics if `config.width` exceeds [`MAX_FAST_WIDTH`] (the bitset
    /// representation); [`Xsim::run_decoded`] checks and falls back instead.
    pub fn new(program: &Program, config: &MachineConfig) -> Result<FastXsim, SimError> {
        assert!(
            config.width <= MAX_FAST_WIDTH,
            "FastXsim supports widths up to {MAX_FAST_WIDTH}"
        );
        config.validate()?;
        if !config.timing.is_ideal() {
            return Err(ConfigError::CapabilityMismatch {
                backend: "decoded".to_string(),
                capability: "non-ideal timing models",
            }
            .into());
        }
        if program.width() != config.width {
            return Err(SimError::Isa(ximd_isa::IsaError::WidthMismatch {
                got: program.width(),
                expected: config.width,
            }));
        }
        program.validate(config.num_regs)?;
        let decoded = DecodedProgram::lower(program, config.num_regs);
        let width = config.width;
        Ok(FastXsim {
            pool: decoded.pool_init.clone(),
            mem: Memory::new(config.mem_words),
            ports: Vec::new(),
            pcs: vec![Some(0); width],
            cc_bits: 0,
            cc_known: 0,
            ss_bits: 0,
            full_mask: full_mask(width),
            cycle: 0,
            stats: SimStats {
                width,
                ops_per_fu: vec![0; width],
                ..SimStats::default()
            },
            reg_conflicts: 0,
            staged: Vec::with_capacity(width),
            cc_upd: Vec::with_capacity(width),
            keys_now: vec![HALTED_KEY; width],
            ran_any: false,
            reg_policy: config.reg_conflicts,
            mem_policy: config.mem_conflicts,
            decoded,
        })
    }

    /// Snapshots a (possibly mid-run) interpreter into the fast
    /// representation. The program was already validated by [`Xsim::new`].
    ///
    /// # Panics
    ///
    /// Panics if the machine is wider than [`MAX_FAST_WIDTH`].
    pub fn from_xsim(sim: &Xsim) -> FastXsim {
        let decoded = DecodedProgram::lower(&sim.program, sim.config.num_regs);
        FastXsim::from_xsim_decoded(sim, decoded)
    }

    /// Like [`FastXsim::from_xsim`] but reuses already-lowered tables
    /// (the artifact-cache decode-skip path) instead of lowering again.
    /// The caller must pass tables lowered from this machine's own program
    /// and register count — pair them by content hash and verify with
    /// [`DecodedProgram::matches`].
    ///
    /// # Panics
    ///
    /// Panics if the machine is wider than [`MAX_FAST_WIDTH`] or the
    /// tables' dimensions do not match the machine.
    pub fn from_xsim_cached(sim: &Xsim, decoded: &DecodedProgram) -> FastXsim {
        assert!(
            decoded.matches(&sim.program, sim.config.num_regs),
            "cached tables do not match the machine"
        );
        FastXsim::from_xsim_decoded(sim, decoded.clone())
    }

    fn from_xsim_decoded(sim: &Xsim, decoded: DecodedProgram) -> FastXsim {
        let config = &sim.config;
        let width = config.width;
        assert!(
            width <= MAX_FAST_WIDTH,
            "FastXsim supports widths up to {MAX_FAST_WIDTH}"
        );
        let mut pool = decoded.pool_init.clone();
        pool[..config.num_regs].copy_from_slice(sim.regs.snapshot());
        let mut cc_bits = 0u64;
        let mut cc_known = 0u64;
        for (fu, cc) in sim.ccs.iter().enumerate() {
            if let Some(c) = *cc {
                cc_known |= 1 << fu;
                cc_bits |= u64::from(c) << fu;
            }
        }
        let mut ss_bits = 0u64;
        for (fu, ss) in sim.ss.iter().enumerate() {
            ss_bits |= u64::from(*ss == SyncSignal::Done) << fu;
        }
        FastXsim {
            pool,
            mem: sim.mem.clone(),
            ports: sim.ports.clone(),
            pcs: sim.pcs.iter().map(|pc| pc.map(|a| a.0)).collect(),
            cc_bits,
            cc_known,
            ss_bits,
            full_mask: full_mask(width),
            cycle: sim.cycle,
            stats: sim.stats.clone(),
            reg_conflicts: sim.regs.conflicts_resolved(),
            staged: Vec::with_capacity(width),
            cc_upd: Vec::with_capacity(width),
            keys_now: vec![HALTED_KEY; width],
            ran_any: false,
            reg_policy: config.reg_conflicts,
            mem_policy: config.mem_conflicts,
            decoded,
        }
    }

    /// Copies the machine state back into `sim` (registers, memory, ports,
    /// PCs, CCs, sync signals, partition, cycle count and statistics).
    pub(crate) fn write_back(self, sim: &mut Xsim) {
        for (i, v) in self.pool[..self.decoded.num_regs].iter().enumerate() {
            sim.regs.poke(Reg(i as u16), *v);
        }
        sim.regs.force_conflicts_resolved(self.reg_conflicts);
        sim.mem = self.mem;
        sim.ports = self.ports;
        sim.pcs = self.pcs.iter().map(|pc| pc.map(Addr)).collect();
        for fu in 0..self.decoded.width {
            sim.ccs[fu] = if self.cc_known >> fu & 1 != 0 {
                Some(self.cc_bits >> fu & 1 != 0)
            } else {
                None
            };
            sim.ss[fu] = if self.ss_bits >> fu & 1 != 0 {
                SyncSignal::Done
            } else {
                SyncSignal::Busy
            };
        }
        if self.ran_any {
            let keys: Vec<DecisionKey> = self
                .keys_now
                .iter()
                .map(|&id| self.decoded.key_table[id as usize])
                .collect();
            sim.partition = Partition::from_decisions(&keys);
        }
        sim.cycle = self.cycle;
        sim.stats = self.stats;
    }

    /// Reads a register.
    pub fn reg(&self, reg: Reg) -> Value {
        self.pool[reg.index()]
    }

    /// Sets a register (machine setup).
    pub fn write_reg(&mut self, reg: Reg, value: Value) {
        assert!(reg.index() < self.decoded.num_regs, "register out of range");
        self.pool[reg.index()] = value;
    }

    /// Shared memory (read access).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Shared memory (setup access).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Attaches an I/O port device, returning its port number.
    pub fn attach_port(&mut self, port: IoPort) -> u8 {
        self.ports.push(port);
        (self.ports.len() - 1) as u8
    }

    /// The attached I/O ports.
    pub fn ports(&self) -> &[IoPort] {
        &self.ports
    }

    /// Current cycle number (cycles completed so far).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Returns `true` once every FU has halted.
    pub fn all_halted(&self) -> bool {
        self.pcs.iter().all(Option::is_none)
    }

    /// Executes one machine cycle (same semantics as [`Xsim::step`]).
    ///
    /// # Errors
    ///
    /// The same machine checks as [`Xsim::step`]. After an error the fast
    /// machine is left mid-cycle and should be discarded.
    pub fn step(&mut self) -> Result<StepStatus, SimError> {
        if self.all_halted() {
            return Ok(StepStatus::AllHalted);
        }
        let width = self.decoded.width;
        let len = self.decoded.len;

        // Fetch + combinational sync-signal update. Branch targets are
        // validated at decode time, so a PC can only be out of range when
        // the program is empty — and then the first running FU reports it
        // before any sync signal changes, exactly like the interpreter.
        for fu in 0..width {
            if let Some(pc) = self.pcs[fu] {
                if pc >= len {
                    return Err(SimError::PcOutOfRange {
                        fu: FuId(fu as u8),
                        pc: Addr(pc),
                        len,
                    });
                }
                let done = self.decoded.parcels[pc as usize * width + fu].sync_done;
                self.ss_bits = self.ss_bits & !(1 << fu) | u64::from(done) << fu;
            }
        }

        // Data phase: reads observe start-of-cycle pool state, writes are
        // staged into the reused buffer.
        self.cc_upd.clear();
        self.staged.clear();
        for fu in 0..width {
            let Some(pc) = self.pcs[fu] else {
                self.stats.halted_fu_cycles += 1;
                continue;
            };
            let parcel = self.decoded.parcels[pc as usize * width + fu];
            if let Some(cc) = exec_op(
                parcel.op,
                fu as u8,
                self.cycle,
                &self.pool,
                &mut self.staged,
                &mut self.mem,
                &mut self.ports,
                &mut self.stats,
            )? {
                self.cc_upd.push((fu as u8, cc));
            }
        }
        commit_pool(
            &mut self.staged,
            &mut self.pool,
            self.reg_policy,
            self.cycle,
            &mut self.reg_conflicts,
        )?;
        self.mem.commit(self.mem_policy, self.cycle)?;
        self.stats.conflicts_resolved = self.reg_conflicts + self.mem.conflicts_resolved();

        // Control phase: branches see start-of-cycle CCs (the latched
        // bitset) and this cycle's combinational SS bits.
        for fu in 0..width {
            let Some(pc) = self.pcs[fu] else {
                self.keys_now[fu] = HALTED_KEY;
                continue;
            };
            let parcel = self.decoded.parcels[pc as usize * width + fu];
            self.keys_now[fu] = parcel.key;
            let next = match parcel.ctrl {
                FastCtrl::Goto(t) => Some(t),
                FastCtrl::Branch {
                    cond,
                    taken,
                    not_taken,
                } => {
                    self.stats.cond_branches += 1;
                    if cond.eval(self.cc_bits, self.ss_bits, self.full_mask) {
                        self.stats.branches_taken += 1;
                        Some(taken)
                    } else {
                        Some(not_taken)
                    }
                }
                FastCtrl::Halt => None,
            };
            if next == Some(pc) {
                self.stats.spin_cycles += 1;
            }
            self.pcs[fu] = next;
        }
        self.ran_any = true;

        // Latch condition codes at the cycle boundary.
        for &(fu, cc) in &self.cc_upd {
            self.cc_known |= 1 << fu;
            self.cc_bits = self.cc_bits & !(1 << fu) | u64::from(cc) << fu;
        }

        self.cycle += 1;
        self.stats.cycles = self.cycle;
        // Streams this cycle = distinct decision keys; O(width²) beats any
        // hashing for width ≤ 8 and matches `Partition::from_decisions`.
        let mut streams = 0usize;
        for i in 0..width {
            let mut first = true;
            for j in 0..i {
                if self.keys_now[j] == self.keys_now[i] {
                    first = false;
                    break;
                }
            }
            streams += usize::from(first);
        }
        self.stats.max_concurrent_streams = self.stats.max_concurrent_streams.max(streams);
        self.stats.sset_cycle_sum += streams as u64;

        if self.all_halted() {
            Ok(StepStatus::AllHalted)
        } else {
            Ok(StepStatus::Running)
        }
    }

    /// Runs until every FU halts or `max_cycles` elapse (same contract as
    /// [`Xsim::run`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] if the budget is exhausted first, or
    /// any machine check raised by [`FastXsim::step`].
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, SimError> {
        engine::run_loop(self, None, max_cycles)
    }

    /// Runs until every FU is parked on the self-loop at `park` (or has
    /// halted), then executes one final cycle — the same contract as
    /// [`Xsim::run_until_parked`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] if the budget is exhausted first, or
    /// any machine check raised by [`FastXsim::step`].
    pub fn run_until_parked(
        &mut self,
        park: Addr,
        max_cycles: u64,
    ) -> Result<RunSummary, SimError> {
        engine::run_loop(self, Some(park), max_cycles)
    }

    fn summary(&self) -> RunSummary {
        RunSummary {
            cycles: self.cycle,
            stats: self.stats.clone(),
        }
    }
}

impl Engine for FastXsim {
    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn step(&mut self) -> Result<StepStatus, SimError> {
        FastXsim::step(self)
    }

    fn all_parked(&self, park: Addr) -> bool {
        self.pcs.iter().all(|pc| pc.is_none_or(|a| a == park.0))
    }

    fn finished(&self) -> bool {
        self.all_halted()
    }

    fn summary(&self) -> RunSummary {
        FastXsim::summary(self)
    }
}

pub(crate) fn full_mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Executes one decoded data operation: start-of-cycle reads from the pool,
/// register writes staged into `staged`, memory/port effects as in
/// `engine::execute_data`, statistics updated at the identical points.
/// Generic over [`CycleMem`] so the lane engine can route the same code at
/// one lane's slab of a batched memory.
#[inline]
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_op<M: CycleMem>(
    op: FastOp,
    fu: u8,
    cycle: u64,
    pool: &[Value],
    staged: &mut Vec<(u8, u16, Value)>,
    mem: &mut M,
    ports: &mut [IoPort],
    stats: &mut SimStats,
) -> Result<Option<bool>, SimError> {
    if !matches!(op, FastOp::Nop) {
        if let Some(slot) = stats.ops_per_fu.get_mut(fu as usize) {
            *slot += 1;
        }
    }
    match op {
        FastOp::Nop => {
            stats.nops += 1;
            Ok(None)
        }
        FastOp::Alu { op, a, b, d } => {
            stats.ops += 1;
            let result = op
                .eval(pool[a as usize], pool[b as usize])
                .map_err(|fault| SimError::DataFault {
                    fu: FuId(fu),
                    cycle,
                    fault,
                })?;
            staged.push((fu, d, result));
            Ok(None)
        }
        FastOp::Un { op, a, d } => {
            stats.ops += 1;
            staged.push((fu, d, op.eval(pool[a as usize])));
            Ok(None)
        }
        FastOp::Cmp { op, a, b } => {
            stats.ops += 1;
            stats.compares += 1;
            Ok(Some(op.eval(pool[a as usize], pool[b as usize])))
        }
        FastOp::Load { a, b, d } => {
            stats.ops += 1;
            stats.loads += 1;
            let addr = i64::from(pool[a as usize].as_i32()) + i64::from(pool[b as usize].as_i32());
            let value = mem.read(addr)?;
            staged.push((fu, d, value));
            Ok(None)
        }
        FastOp::Store { a, b } => {
            stats.ops += 1;
            stats.stores += 1;
            let value = pool[a as usize];
            let addr = i64::from(pool[b as usize].as_i32());
            mem.stage_write(FuId(fu), addr, value)?;
            Ok(None)
        }
        FastOp::PortIn { port, d } => {
            stats.ops += 1;
            let count = ports.len();
            let device = ports
                .get_mut(port as usize)
                .ok_or(SimError::PortOutOfRange { port, count })?;
            staged.push((fu, d, device.read(cycle)));
            Ok(None)
        }
        FastOp::PortOut { port, a } => {
            stats.ops += 1;
            let value = pool[a as usize];
            let count = ports.len();
            let device = ports
                .get_mut(port as usize)
                .ok_or(SimError::PortOutOfRange { port, count })?;
            device.write(cycle, value);
            Ok(None)
        }
    }
}

/// Commits staged register writes into the pool with the exact conflict
/// semantics of `RegisterFile::commit`: sort by `(reg, fu)`, adjacent
/// duplicates are conflicts, `Trap` reports the ascending writer list and
/// clears the stage, `LastWins` keeps the highest FU and counts one event
/// per adjacent pair.
pub(crate) fn commit_pool(
    staged: &mut Vec<(u8, u16, Value)>,
    pool: &mut [Value],
    policy: ConflictPolicy,
    cycle: u64,
    conflicts_resolved: &mut u64,
) -> Result<(), SimError> {
    staged.sort_unstable_by_key(|&(fu, reg, _)| (reg, fu));
    let mut resolved = 0u64;
    let mut trapped: Option<u16> = None;
    for pair in staged.windows(2) {
        if pair[0].1 == pair[1].1 {
            match policy {
                ConflictPolicy::Trap => {
                    trapped = Some(pair[0].1);
                    break;
                }
                ConflictPolicy::LastWins => resolved += 1,
            }
        }
    }
    if let Some(reg) = trapped {
        let fus = staged
            .iter()
            .filter(|w| w.1 == reg)
            .map(|w| FuId(w.0))
            .collect();
        staged.clear();
        return Err(SimError::RegisterWriteConflict {
            reg: Reg(reg),
            fus,
            cycle,
        });
    }
    *conflicts_resolved += resolved;
    for &(_, reg, value) in staged.iter() {
        pool[reg as usize] = value;
    }
    staged.clear();
    Ok(())
}

/// Decoded single-sequencer engine for [`Vsim::run_decoded`]: the same
/// pool/bitset machinery as [`FastXsim`] with vsim's control semantics (one
/// control op per cycle, CC conditions only, `max_concurrent_streams == 1`).
#[derive(Debug, Clone)]
struct FastVsim {
    width: usize,
    len: u32,
    num_regs: usize,
    reg_policy: ConflictPolicy,
    mem_policy: ConflictPolicy,
    /// `len × width` data ops, row-major, plus one control per word.
    ops: Vec<FastOp>,
    ctrls: Vec<FastCtrl>,
    pool: Vec<Value>,
    mem: Memory,
    ports: Vec<IoPort>,
    pc: Option<u32>,
    cc_bits: u64,
    cc_known: u64,
    cycle: u64,
    stats: SimStats,
    reg_conflicts: u64,
    staged: Vec<(u8, u16, Value)>,
    cc_upd: Vec<(u8, bool)>,
}

impl FastVsim {
    /// Snapshots a (possibly mid-run) VLIW interpreter, lowering its program
    /// on the spot. The program was already validated by [`Vsim::new`].
    fn from_vsim(sim: &Vsim) -> FastVsim {
        let width = sim.config.width;
        let num_regs = sim.config.num_regs;
        let mut dec = Decoder::new(num_regs);
        let mut ops = Vec::with_capacity(sim.program.len() * width);
        let mut ctrls = Vec::with_capacity(sim.program.len());
        for (_, instr) in sim.program.iter() {
            for op in &instr.ops {
                ops.push(dec.data(op));
            }
            ctrls.push(dec.ctrl(&instr.ctrl).0);
        }
        let mut pool = dec.pool;
        pool[..num_regs].copy_from_slice(sim.regs.snapshot());
        let mut cc_bits = 0u64;
        let mut cc_known = 0u64;
        for (fu, cc) in sim.ccs.iter().enumerate() {
            if let Some(c) = *cc {
                cc_known |= 1 << fu;
                cc_bits |= u64::from(c) << fu;
            }
        }
        FastVsim {
            width,
            len: ctrls.len() as u32,
            num_regs,
            reg_policy: sim.config.reg_conflicts,
            mem_policy: sim.config.mem_conflicts,
            ops,
            ctrls,
            pool,
            mem: sim.mem.clone(),
            ports: sim.ports.clone(),
            pc: sim.pc.map(|a| a.0),
            cc_bits,
            cc_known,
            cycle: sim.cycle,
            stats: sim.stats.clone(),
            reg_conflicts: sim.regs.conflicts_resolved(),
            staged: Vec::with_capacity(width),
            cc_upd: Vec::with_capacity(width),
        }
    }

    /// Copies the machine state back into `sim`.
    fn write_back(self, sim: &mut Vsim) {
        for (i, v) in self.pool[..self.num_regs].iter().enumerate() {
            sim.regs.poke(Reg(i as u16), *v);
        }
        sim.regs.force_conflicts_resolved(self.reg_conflicts);
        sim.mem = self.mem;
        sim.ports = self.ports;
        sim.pc = self.pc.map(Addr);
        for fu in 0..self.width {
            sim.ccs[fu] = if self.cc_known >> fu & 1 != 0 {
                Some(self.cc_bits >> fu & 1 != 0)
            } else {
                None
            };
        }
        sim.cycle = self.cycle;
        sim.stats = self.stats;
    }

    /// Executes one wide instruction (same semantics as [`Vsim::step`]).
    fn step(&mut self) -> Result<StepStatus, SimError> {
        let Some(at) = self.pc else {
            return Ok(StepStatus::AllHalted);
        };
        if at >= self.len {
            return Err(SimError::PcOutOfRange {
                fu: FuId(0),
                pc: Addr(at),
                len: self.len,
            });
        }
        let width = self.width;

        self.cc_upd.clear();
        self.staged.clear();
        for fu in 0..width {
            if let Some(cc) = exec_op(
                self.ops[at as usize * width + fu],
                fu as u8,
                self.cycle,
                &self.pool,
                &mut self.staged,
                &mut self.mem,
                &mut self.ports,
                &mut self.stats,
            )? {
                self.cc_upd.push((fu as u8, cc));
            }
        }
        commit_pool(
            &mut self.staged,
            &mut self.pool,
            self.reg_policy,
            self.cycle,
            &mut self.reg_conflicts,
        )?;
        self.mem.commit(self.mem_policy, self.cycle)?;
        self.stats.conflicts_resolved = self.reg_conflicts + self.mem.conflicts_resolved();

        let next = match self.ctrls[at as usize] {
            FastCtrl::Goto(t) => Some(t),
            FastCtrl::Branch {
                cond,
                taken,
                not_taken,
            } => {
                self.stats.cond_branches += 1;
                // Validation restricts vsim conditions to CCs; the sync
                // bitset is permanently empty.
                if cond.eval(self.cc_bits, 0, full_mask(width)) {
                    self.stats.branches_taken += 1;
                    Some(taken)
                } else {
                    Some(not_taken)
                }
            }
            FastCtrl::Halt => None,
        };
        if next == Some(at) {
            self.stats.spin_cycles += 1;
        }
        self.pc = next;

        for &(fu, cc) in &self.cc_upd {
            self.cc_known |= 1 << fu;
            self.cc_bits = self.cc_bits & !(1 << fu) | u64::from(cc) << fu;
        }

        self.cycle += 1;
        self.stats.cycles = self.cycle;
        self.stats.max_concurrent_streams = 1;
        self.stats.sset_cycle_sum += 1;

        if self.pc.is_none() {
            Ok(StepStatus::AllHalted)
        } else {
            Ok(StepStatus::Running)
        }
    }
}

impl Engine for FastVsim {
    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn step(&mut self) -> Result<StepStatus, SimError> {
        FastVsim::step(self)
    }

    fn all_parked(&self, park: Addr) -> bool {
        self.pc.is_none_or(|a| a == park.0)
    }

    fn finished(&self) -> bool {
        self.pc.is_none()
    }

    fn summary(&self) -> RunSummary {
        RunSummary {
            cycles: self.cycle,
            stats: self.stats.clone(),
        }
    }
}

/// Decoded single-sequencer execution for [`Vsim::run_decoded`]. Falls back
/// to the interpreter for machines the bitsets cannot represent and for
/// non-ideal timing models (the fast path hard-codes single-cycle
/// occupancy).
pub(crate) fn run_vsim_decoded(sim: &mut Vsim, max_cycles: u64) -> Result<RunSummary, SimError> {
    if sim.config.width > MAX_FAST_WIDTH || !sim.config.timing.is_ideal() {
        return sim.run(max_cycles);
    }
    engine::run_fast_path(
        sim,
        None,
        max_cycles,
        FastVsim::from_vsim,
        FastVsim::write_back,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ximd_isa::{Operand, Parcel};

    fn addp(a: u16, b: i32, d: u16, ctrl: ControlOp) -> Parcel {
        Parcel::data(
            DataOp::alu(AluOp::Iadd, Reg(a).into(), Operand::imm_i32(b), Reg(d)),
            ctrl,
        )
    }

    /// Interpreter and fast path on the same program + budget must agree on
    /// everything observable.
    fn assert_equivalent(program: Program, budget: u64) {
        let width = program.width();
        let config = MachineConfig::with_width(width);
        let mut interp = Xsim::new(program.clone(), config.clone()).unwrap();
        let mut fast = Xsim::new(program, config.clone()).unwrap();
        let a = interp.run(budget);
        let b = fast.run_decoded(budget);
        assert_eq!(a, b);
        for r in 0..config.num_regs as u16 {
            assert_eq!(interp.reg(Reg(r)), fast.reg(Reg(r)), "r{r}");
        }
        assert_eq!(interp.pcs(), fast.pcs());
        assert_eq!(interp.ccs(), fast.ccs());
        assert_eq!(interp.partition(), fast.partition());
        assert_eq!(interp.stats(), fast.stats());
        assert_eq!(interp.cycle(), fast.cycle());
    }

    #[test]
    fn straight_line_matches_interpreter() {
        let mut p = Program::new(1);
        p.push(vec![addp(0, 5, 1, ControlOp::Goto(Addr(1)))]);
        p.push(vec![addp(1, 10, 2, ControlOp::Halt)]);
        assert_equivalent(p, 10);
    }

    #[test]
    fn barrier_fork_join_matches_interpreter() {
        let mut p = Program::new(2);
        let barrier = ControlOp::branch(CondSource::AllSync, Addr(2), Addr(1));
        p.push(vec![
            Parcel::data(DataOp::Nop, ControlOp::Goto(Addr(1))),
            addp(0, 1, 0, ControlOp::Goto(Addr(1))),
        ]);
        p.push(vec![
            Parcel::data(DataOp::Nop, barrier).done(),
            Parcel::data(DataOp::Nop, barrier).done(),
        ]);
        p.push(vec![Parcel::halt(), Parcel::halt()]);
        assert_equivalent(p, 10);
    }

    #[test]
    fn cycle_limit_state_matches_interpreter() {
        // Infinite spin: both engines hit the budget; the decoded path must
        // still write the advanced state back.
        let mut p = Program::new(1);
        p.push(vec![addp(0, 1, 0, ControlOp::Goto(Addr(0)))]);
        assert_equivalent(p, 7);
    }

    #[test]
    fn cc_latch_timing_matches_interpreter() {
        let mut p = Program::new(1);
        p.push(vec![Parcel::data(
            DataOp::cmp(CmpOp::Eq, Operand::imm_i32(1), Operand::imm_i32(1)),
            ControlOp::branch(CondSource::Cc(FuId(0)), Addr(2), Addr(1)),
        )]);
        p.push(vec![Parcel::data(
            DataOp::Nop,
            ControlOp::branch(CondSource::Cc(FuId(0)), Addr(2), Addr(3)),
        )]);
        p.push(vec![addp(1, 42, 1, ControlOp::Halt)]);
        p.push(vec![Parcel::halt()]);
        assert_equivalent(p, 10);
    }

    #[test]
    fn register_conflict_traps_like_interpreter() {
        let mut p = Program::new(2);
        p.push(vec![
            addp(0, 1, 5, ControlOp::Halt),
            addp(0, 2, 5, ControlOp::Halt),
        ]);
        let config = MachineConfig::with_width(2);
        let mut interp = Xsim::new(p.clone(), config.clone()).unwrap();
        let mut fast = FastXsim::new(&p, &config).unwrap();
        let a = interp.step();
        let b = fast.step();
        assert!(matches!(a, Err(SimError::RegisterWriteConflict { .. })));
        assert_eq!(a, b.map(|_| StepStatus::Running));
    }

    #[test]
    fn last_wins_conflicts_match_interpreter() {
        let mut p = Program::new(2);
        p.push(vec![
            addp(0, 1, 5, ControlOp::Halt),
            addp(0, 2, 5, ControlOp::Halt),
        ]);
        let config =
            MachineConfig::with_width(2).conflicts(crate::config::ConflictPolicy::LastWins);
        let mut interp = Xsim::new(p.clone(), config.clone()).unwrap();
        let mut fast = Xsim::new(p, config).unwrap();
        assert_eq!(interp.run(10), fast.run_decoded(10));
        assert_eq!(interp.reg(Reg(5)), fast.reg(Reg(5)));
        assert_eq!(interp.stats().conflicts_resolved, 1);
    }

    #[test]
    fn ports_match_interpreter() {
        let mut p = Program::new(1);
        p.push(vec![Parcel::data(
            DataOp::PortIn { port: 0, d: Reg(0) },
            ControlOp::Goto(Addr(1)),
        )]);
        p.push(vec![Parcel::data(
            DataOp::cmp(CmpOp::Ne, Reg(0).into(), Operand::imm_i32(0)),
            ControlOp::Goto(Addr(2)),
        )]);
        p.push(vec![Parcel::data(
            DataOp::Nop,
            ControlOp::branch(CondSource::Cc(FuId(0)), Addr(3), Addr(0)),
        )]);
        p.push(vec![Parcel::data(
            DataOp::PortOut {
                port: 0,
                a: Reg(0).into(),
            },
            ControlOp::Halt,
        )]);
        let config = MachineConfig::with_width(1);
        let seeded = |mut sim: Xsim| {
            let mut port = IoPort::new();
            port.schedule(4, Value::I32(77));
            sim.attach_port(port);
            sim
        };
        let mut interp = seeded(Xsim::new(p.clone(), config.clone()).unwrap());
        let mut fast = seeded(Xsim::new(p, config).unwrap());
        assert_eq!(interp.run(100), fast.run_decoded(100));
        assert_eq!(interp.reg(Reg(0)).as_i32(), 77);
        assert_eq!(interp.ports()[0].written(), fast.ports()[0].written());
    }

    #[test]
    fn empty_program_reports_pc_out_of_range() {
        let p = Program::new(1);
        let config = MachineConfig::with_width(1);
        let mut interp = Xsim::new(p.clone(), config.clone()).unwrap();
        let mut fast = Xsim::new(p, config).unwrap();
        assert_eq!(interp.run(5), fast.run_decoded(5));
        assert!(matches!(
            fast.run_decoded(5),
            Err(SimError::PcOutOfRange { .. })
        ));
    }

    #[test]
    fn run_decoded_resumes_mid_run_state() {
        // Step the interpreter halfway, then finish on the fast path; the
        // result must match an all-interpreter run.
        let mut p = Program::new(1);
        for i in 0..4u16 {
            p.push(vec![addp(
                i,
                3,
                i + 1,
                ControlOp::Goto(Addr(u32::from(i) + 1)),
            )]);
        }
        p.push(vec![Parcel::halt()]);
        let config = MachineConfig::with_width(1);
        let mut full = Xsim::new(p.clone(), config.clone()).unwrap();
        full.write_reg(Reg(0), Value::I32(9));
        let a = full.run(100);

        let mut mixed = Xsim::new(p, config).unwrap();
        mixed.write_reg(Reg(0), Value::I32(9));
        mixed.step().unwrap();
        mixed.step().unwrap();
        let b = mixed.run_decoded(100);
        assert_eq!(a, b);
        for r in 0..6u16 {
            assert_eq!(full.reg(Reg(r)), mixed.reg(Reg(r)));
        }
    }

    #[test]
    fn run_until_parked_decoded_matches_interpreter() {
        // Both FUs converge on a self-loop at 1.
        let mut p = Program::new(2);
        p.push(vec![
            addp(0, 1, 0, ControlOp::Goto(Addr(1))),
            addp(0, 2, 1, ControlOp::Goto(Addr(1))),
        ]);
        p.push(vec![Parcel::goto(Addr(1)), Parcel::goto(Addr(1))]);
        let config = MachineConfig::with_width(2);
        let mut interp = Xsim::new(p.clone(), config.clone()).unwrap();
        let mut fast = Xsim::new(p, config).unwrap();
        assert_eq!(
            interp.run_until_parked(Addr(1), 50),
            fast.run_decoded_until_parked(Addr(1), 50)
        );
        assert_eq!(interp.reg(Reg(0)), fast.reg(Reg(0)));
        assert_eq!(interp.stats(), fast.stats());
    }

    #[test]
    fn tracing_falls_back_to_interpreter() {
        let mut p = Program::new(1);
        p.push(vec![Parcel::goto(Addr(1))]);
        p.push(vec![Parcel::halt()]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(1)).unwrap();
        sim.enable_trace();
        sim.run_decoded(10).unwrap();
        assert_eq!(sim.trace().unwrap().len(), 2, "trace rows were captured");
    }

    #[test]
    fn decoded_program_interns_immediates() {
        let mut p = Program::new(1);
        // The same immediate (#5) twice, plus #7: two distinct constants.
        p.push(vec![addp(0, 5, 1, ControlOp::Goto(Addr(1)))]);
        p.push(vec![Parcel::data(
            DataOp::alu(
                AluOp::Iadd,
                Operand::imm_i32(5),
                Operand::imm_i32(7),
                Reg(2),
            ),
            ControlOp::Halt,
        )]);
        let d = DecodedProgram::lower(&p, 8);
        assert_eq!(d.num_consts(), 2);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.width(), 1);
    }

    #[test]
    fn vsim_decoded_matches_interpreter() {
        use crate::vliw::{VliwInstruction, VliwProgram};
        let mut p = VliwProgram::new(2);
        p.push(VliwInstruction {
            ops: vec![
                DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(1), Reg(0)),
                DataOp::cmp(CmpOp::Eq, Reg(0).into(), Operand::imm_i32(4)),
            ],
            ctrl: ControlOp::Goto(Addr(1)),
        });
        p.push(VliwInstruction {
            ops: vec![DataOp::Nop, DataOp::Nop],
            ctrl: ControlOp::branch(CondSource::Cc(FuId(1)), Addr(2), Addr(0)),
        });
        p.push(VliwInstruction::halt(2));
        let config = MachineConfig::with_width(2);
        let mut interp = Vsim::new(p.clone(), config.clone()).unwrap();
        let mut fast = Vsim::new(p, config).unwrap();
        assert_eq!(interp.run(100), fast.run_decoded(100));
        assert_eq!(interp.reg(Reg(0)), fast.reg(Reg(0)));
        assert_eq!(interp.pc(), fast.pc());
        assert_eq!(interp.stats(), fast.stats());
    }

    #[test]
    fn vsim_decoded_cycle_limit_matches() {
        use crate::vliw::{VliwInstruction, VliwProgram};
        let mut p = VliwProgram::new(1);
        p.push(VliwInstruction::goto(1, Addr(0)));
        let config = MachineConfig::with_width(1);
        let mut interp = Vsim::new(p.clone(), config.clone()).unwrap();
        let mut fast = Vsim::new(p, config).unwrap();
        assert_eq!(interp.run(3), fast.run_decoded(3));
        assert_eq!(interp.stats(), fast.stats());
        assert_eq!(interp.cycle(), fast.cycle());
    }

    #[test]
    fn fast_xsim_requires_ideal_timing() {
        use crate::error::ConfigError;
        use crate::timing::TimingSpec;
        let mut p = Program::new(1);
        p.push(vec![Parcel::halt()]);
        let config = MachineConfig::with_width(1).timing(TimingSpec::Banked { banks: 2 });
        let err = FastXsim::new(&p, &config).unwrap_err();
        assert!(matches!(
            err,
            SimError::Config(ConfigError::CapabilityMismatch { ref backend, .. }) if backend == "decoded"
        ));
    }

    #[test]
    fn non_ideal_timing_falls_back_to_interpreter() {
        // `run_decoded` under a multi-cycle memory model must report the
        // stretched (interpreter) schedule, not the fast path's ideal one.
        use crate::timing::TimingSpec;
        let mut p = Program::new(1);
        p.push(vec![Parcel::data(
            DataOp::load(Operand::imm_i32(0), Operand::imm_i32(0), Reg(0)),
            ControlOp::Halt,
        )]);
        let config =
            MachineConfig::with_width(1).timing(TimingSpec::parse("latency:mem=3").unwrap());
        let mut interp = Xsim::new(p.clone(), config.clone()).unwrap();
        let mut fast = Xsim::new(p, config).unwrap();
        let a = interp.run(100).unwrap();
        let b = fast.run_decoded(100).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.cycles, 3, "load occupies its FU for three cycles");
        assert_eq!(b.stats.stall_cycles, 2);
    }

    #[test]
    fn vsim_decoded_with_timing_matches_interpreter() {
        use crate::timing::TimingSpec;
        use crate::vliw::{VliwInstruction, VliwProgram};
        let mut p = VliwProgram::new(1);
        p.push(VliwInstruction {
            ops: vec![DataOp::load(
                Operand::imm_i32(0),
                Operand::imm_i32(0),
                Reg(0),
            )],
            ctrl: ControlOp::Goto(Addr(1)),
        });
        p.push(VliwInstruction::halt(1));
        let config =
            MachineConfig::with_width(1).timing(TimingSpec::parse("latency:mem=4").unwrap());
        let mut interp = Vsim::new(p.clone(), config.clone()).unwrap();
        let mut fast = Vsim::new(p, config).unwrap();
        let a = interp.run(100).unwrap();
        let b = fast.run_decoded(100).unwrap();
        assert_eq!(a, b);
        assert!(b.stats.stall_cycles > 0, "fallback kept the stall schedule");
        assert_eq!(interp.stats(), fast.stats());
    }
}
