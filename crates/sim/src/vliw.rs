//! VLIW program representation.
//!
//! The paper's companion simulator **vsim** models "a VLIW processor with
//! similar characteristics": the same functional units and register file,
//! but a *single* instruction sequencer executing one control operation per
//! cycle (§1.3: "a VLIW processor only contains a single program counter and
//! branch mechanism, only one control operation can be executed each
//! cycle").

use serde::{Deserialize, Serialize};

use ximd_isa::{Addr, CondSource, ControlOp, DataOp, IsaError, Parcel, Program, SyncSignal};

/// One VLIW instruction: a data operation per FU plus one control op.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VliwInstruction {
    /// Data operations, one per functional unit.
    pub ops: Vec<DataOp>,
    /// The single control operation for the global sequencer.
    pub ctrl: ControlOp,
}

impl VliwInstruction {
    /// A word of nops that branches to `target`.
    pub fn goto(width: usize, target: Addr) -> VliwInstruction {
        VliwInstruction {
            ops: vec![DataOp::Nop; width],
            ctrl: ControlOp::Goto(target),
        }
    }

    /// A word of nops that halts the machine.
    pub fn halt(width: usize) -> VliwInstruction {
        VliwInstruction {
            ops: vec![DataOp::Nop; width],
            ctrl: ControlOp::Halt,
        }
    }
}

/// A VLIW program: single-sequencer instruction memory.
///
/// # Example
///
/// ```
/// use ximd_isa::Addr;
/// use ximd_sim::{VliwInstruction, VliwProgram};
///
/// let mut p = VliwProgram::new(4);
/// p.push(VliwInstruction::goto(4, Addr(1)));
/// p.push(VliwInstruction::halt(4));
/// assert_eq!(p.len(), 2);
///
/// // Any VLIW program maps onto XIMD by replicating the control field into
/// // every parcel (paper §3.1).
/// let ximd = p.to_ximd();
/// assert_eq!(ximd.width(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct VliwProgram {
    width: usize,
    instrs: Vec<VliwInstruction>,
}

impl VliwProgram {
    /// Creates an empty program for a machine of `width` FUs.
    pub fn new(width: usize) -> VliwProgram {
        VliwProgram {
            width,
            instrs: Vec::new(),
        }
    }

    /// Machine width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Appends an instruction, returning its address.
    ///
    /// # Panics
    ///
    /// Panics if the instruction's op count differs from the program width.
    pub fn push(&mut self, instr: VliwInstruction) -> Addr {
        assert_eq!(instr.ops.len(), self.width, "instruction width mismatch");
        let addr = Addr(self.instrs.len() as u32);
        self.instrs.push(instr);
        addr
    }

    /// The instruction at `addr`.
    pub fn get(&self, addr: Addr) -> Option<&VliwInstruction> {
        self.instrs.get(addr.index())
    }

    /// Iterates over `(Addr, &VliwInstruction)`.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &VliwInstruction)> {
        self.instrs
            .iter()
            .enumerate()
            .map(|(i, w)| (Addr(i as u32), w))
    }

    /// Validates registers, branch targets and condition sources.
    ///
    /// A VLIW machine has no sync signals, so control conditions must be
    /// condition codes.
    ///
    /// # Errors
    ///
    /// Returns the first range violation, or [`IsaError::Decode`] for a
    /// sync-based condition.
    pub fn validate(&self, num_regs: usize) -> Result<(), IsaError> {
        let len = self.instrs.len() as u32;
        for instr in &self.instrs {
            if instr.ops.len() != self.width {
                return Err(IsaError::WidthMismatch {
                    got: instr.ops.len(),
                    expected: self.width,
                });
            }
            for op in &instr.ops {
                op.validate(num_regs)?;
            }
            instr.ctrl.validate(len, self.width)?;
            if let Some(CondSource::Sync(_) | CondSource::AllSync | CondSource::AnySync) =
                instr.ctrl.cond()
            {
                return Err(IsaError::Decode {
                    field: "vliw condition",
                    raw: 0,
                });
            }
        }
        Ok(())
    }

    /// Lowers this VLIW program to an XIMD program by replicating the
    /// control fields into every instruction parcel, exactly as the paper
    /// describes for running VLIW-style code on XIMD: "the control path
    /// instruction fields must be duplicated in each instruction parcel, so
    /// that each functional unit will execute the same control" (§3.1).
    pub fn to_ximd(&self) -> Program {
        let mut program = Program::new(self.width);
        for instr in &self.instrs {
            let word = instr
                .ops
                .iter()
                .map(|&data| Parcel {
                    data,
                    ctrl: instr.ctrl,
                    sync: SyncSignal::Busy,
                })
                .collect();
            program.push(word);
        }
        program
    }

    /// Attempts the inverse of [`VliwProgram::to_ximd`]: succeeds iff every
    /// wide instruction's parcels share one control operation (the program
    /// is "VLIW-style").
    pub fn from_ximd(program: &Program) -> Option<VliwProgram> {
        let mut out = VliwProgram::new(program.width());
        for (_, word) in program.iter() {
            let ctrl = word.first()?.ctrl;
            if word.iter().any(|p| p.ctrl != ctrl) {
                return None;
            }
            out.push(VliwInstruction {
                ops: word.iter().map(|p| p.data).collect(),
                ctrl,
            });
        }
        Some(out)
    }

    /// Total number of non-nop data operations (static count).
    pub fn static_ops(&self) -> usize {
        self.instrs
            .iter()
            .flat_map(|i| &i.ops)
            .filter(|o| !o.is_nop())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ximd_isa::{AluOp, FuId, Operand, Reg};

    fn sample() -> VliwProgram {
        let mut p = VliwProgram::new(2);
        p.push(VliwInstruction {
            ops: vec![
                DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(1), Reg(0)),
                DataOp::Nop,
            ],
            ctrl: ControlOp::Goto(Addr(1)),
        });
        p.push(VliwInstruction::halt(2));
        p
    }

    #[test]
    fn push_and_get() {
        let p = sample();
        assert_eq!(p.len(), 2);
        assert!(p.get(Addr(1)).is_some());
        assert!(p.get(Addr(2)).is_none());
        assert_eq!(p.static_ops(), 1);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn push_rejects_wrong_width() {
        VliwProgram::new(2).push(VliwInstruction::halt(3));
    }

    #[test]
    fn validate_rejects_sync_conditions() {
        let mut p = VliwProgram::new(1);
        p.push(VliwInstruction {
            ops: vec![DataOp::Nop],
            ctrl: ControlOp::branch(CondSource::AllSync, Addr(0), Addr(0)),
        });
        assert!(p.validate(8).is_err());

        let mut ok = VliwProgram::new(1);
        ok.push(VliwInstruction {
            ops: vec![DataOp::Nop],
            ctrl: ControlOp::branch(CondSource::Cc(FuId(0)), Addr(0), Addr(0)),
        });
        assert!(ok.validate(8).is_ok());
    }

    #[test]
    fn to_ximd_replicates_control() {
        let ximd = sample().to_ximd();
        assert_eq!(ximd.len(), 2);
        let w0 = ximd.get(Addr(0)).unwrap();
        assert_eq!(w0[0].ctrl, w0[1].ctrl);
        assert_eq!(w0[0].ctrl, ControlOp::Goto(Addr(1)));
    }

    #[test]
    fn from_ximd_roundtrip() {
        let vliw = sample();
        let back = VliwProgram::from_ximd(&vliw.to_ximd()).unwrap();
        assert_eq!(back, vliw);
    }

    #[test]
    fn from_ximd_rejects_divergent_control() {
        let mut program = Program::new(2);
        program.push(vec![Parcel::goto(Addr(0)), Parcel::halt()]);
        assert!(VliwProgram::from_ximd(&program).is_none());
    }
}
