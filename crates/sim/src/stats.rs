//! Execution statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated over a simulation run.
///
/// Utilization and control-parallelism figures drive the paper-style
/// XIMD-vs-VLIW comparison: a VLIW run reports `max_concurrent_streams == 1`
/// by construction, while XIMD runs show where the machine forked.
///
/// # Example
///
/// ```
/// use ximd_sim::SimStats;
///
/// let stats = SimStats::default();
/// assert_eq!(stats.cycles, 0);
/// assert_eq!(stats.utilization(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Cycles executed.
    pub cycles: u64,
    /// Machine width the run used.
    pub width: usize,
    /// Non-nop data operations executed (dynamic).
    pub ops: u64,
    /// Nop data slots executed by running (non-halted) FUs.
    pub nops: u64,
    /// Memory loads executed.
    pub loads: u64,
    /// Memory stores executed.
    pub stores: u64,
    /// Compare operations executed (condition-code writes).
    pub compares: u64,
    /// Conditional branches executed.
    pub cond_branches: u64,
    /// Conditional branches whose condition held (took `T1`).
    pub branches_taken: u64,
    /// Cycles a running FU spent re-executing its own address (busy-wait
    /// loops at barriers and port polls).
    pub spin_cycles: u64,
    /// FU-cycles in which the unit had already halted.
    pub halted_fu_cycles: u64,
    /// Largest number of concurrent SSETs seen in any cycle.
    pub max_concurrent_streams: usize,
    /// Sum over cycles of the number of SSETs (for the average).
    pub sset_cycle_sum: u64,
    /// Same-cycle write conflicts resolved under the `LastWins` policy.
    pub conflicts_resolved: u64,
    /// FU-cycles spent blocked by the timing model: the unit held an issued
    /// multi-cycle parcel and could not fetch. Always 0 under `ideal`.
    pub stall_cycles: u64,
    /// Stall cycles charged to structural contention (e.g. bank queues)
    /// rather than intrinsic operation latency. At most `stall_cycles`.
    pub contention_stalls: u64,
    /// Non-nop data operations executed by each functional unit.
    pub ops_per_fu: Vec<u64>,
}

impl SimStats {
    /// Fraction of issue slots (cycles × width) holding useful data
    /// operations.
    pub fn utilization(&self) -> f64 {
        let slots = self.cycles.saturating_mul(self.width as u64);
        if slots == 0 {
            0.0
        } else {
            self.ops as f64 / slots as f64
        }
    }

    /// Average number of concurrent instruction streams per cycle.
    pub fn avg_streams(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.sset_cycle_sum as f64 / self.cycles as f64
        }
    }

    /// Dynamic operations per cycle (the paper's headline throughput
    /// metric for a fixed-width machine).
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops as f64 / self.cycles as f64
        }
    }

    /// Fraction of issue slots (cycles × width) lost to timing-model
    /// stalls. Zero under `ideal` timing.
    pub fn stall_fraction(&self) -> f64 {
        let slots = self.cycles.saturating_mul(self.width as u64);
        if slots == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / slots as f64
        }
    }

    /// Per-FU utilization (useful ops / cycles), one entry per unit.
    pub fn fu_utilization(&self) -> Vec<f64> {
        if self.cycles == 0 {
            return vec![0.0; self.ops_per_fu.len()];
        }
        self.ops_per_fu
            .iter()
            .map(|&o| o as f64 / self.cycles as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_counts_useful_slots_only() {
        let stats = SimStats {
            cycles: 10,
            width: 4,
            ops: 20,
            ..SimStats::default()
        };
        assert_eq!(stats.utilization(), 0.5);
        assert_eq!(stats.ops_per_cycle(), 2.0);
    }

    #[test]
    fn zero_cycles_yield_zero_rates() {
        let stats = SimStats::default();
        assert_eq!(stats.utilization(), 0.0);
        assert_eq!(stats.avg_streams(), 0.0);
        assert_eq!(stats.ops_per_cycle(), 0.0);
    }

    #[test]
    fn stall_fraction_over_issue_slots() {
        let stats = SimStats {
            cycles: 10,
            width: 4,
            stall_cycles: 10,
            contention_stalls: 4,
            ..SimStats::default()
        };
        assert_eq!(stats.stall_fraction(), 0.25);
        assert_eq!(SimStats::default().stall_fraction(), 0.0);
    }

    #[test]
    fn avg_streams() {
        let stats = SimStats {
            cycles: 4,
            sset_cycle_sum: 10,
            ..SimStats::default()
        };
        assert_eq!(stats.avg_streams(), 2.5);
    }

    #[test]
    fn fu_utilization_per_unit() {
        let stats = SimStats {
            cycles: 10,
            ops_per_fu: vec![10, 5, 0],
            ..SimStats::default()
        };
        assert_eq!(stats.fu_utilization(), vec![1.0, 0.5, 0.0]);
        assert!(SimStats::default().fu_utilization().is_empty());
    }
}
