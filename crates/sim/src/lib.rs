//! Cycle-accurate simulators for the XIMD-1 research machine.
//!
//! The paper's evaluation infrastructure consists of two companion
//! simulators: **xsim**, which models the XIMD-1 variable-instruction-stream
//! machine, and **vsim**, which models a VLIW processor "with similar
//! characteristics" (identical datapath, single sequencer). This crate
//! provides both, plus the shared substrate they run on:
//!
//! * [`MachineConfig`] — machine parameters (width, register file, memory,
//!   machine-check policies);
//! * [`Xsim`] — the XIMD simulator: per-FU program counters, distributed
//!   condition codes and sync signals, dynamic SSET [`Partition`] tracking,
//!   Figure-10-style address tracing;
//! * [`Vsim`] — the VLIW companion: one sequencer, one control operation per
//!   cycle, same functional units and register file;
//! * [`Memory`], [`RegisterFile`] — idealized single-cycle storage with
//!   multi-write machine checks ("multiple writes to the same location in
//!   one cycle are undefined", paper §2.3);
//! * [`IoPort`] — the bounded-but-non-deterministic peripheral model used by
//!   the paper's Figure 12 non-blocking synchronization example;
//! * [`Trace`] — per-cycle address traces in the exact format of the paper's
//!   Figure 10;
//! * [`LaneXsim`] — the wide-batch lane engine: N instances of one decoded
//!   program stepped in lockstep over structure-of-arrays state, with
//!   per-lane masking and a scalar fallback when lanes diverge (ideal
//!   timing only);
//! * [`backend`] — the execution-backend layer: every way of running a
//!   program (interpreter, decoded fast path, lane engine, third-party
//!   plugins) behind one capability-declaring trait and a named registry
//!   with auto-selection.
//!
//! # Timing model
//!
//! Execution *semantics* are derived from the paper's §2.2 description and
//! validated against the published MINMAX trace (Figure 10):
//!
//! * Register and memory reads observe start-of-cycle state; writes commit
//!   at end of cycle.
//! * Compares write the issuing FU's condition code at end of cycle; a
//!   branch in cycle *t* therefore sees condition codes produced in cycles
//!   `< t`.
//! * Sync signals are **combinational**: `SS_i` during cycle *t* is the sync
//!   field of the parcel FU *i* executes in cycle *t* (halted FUs hold their
//!   last value). This is what lets an `ALL-SS` barrier release in the same
//!   cycle the last thread arrives.
//!
//! *When* operations complete is delegated to a pluggable [`TimingModel`]
//! selected by [`MachineConfig::timing`](config::MachineConfig::timing) via
//! [`TimingSpec`]:
//!
//! * [`Ideal`] (the default) — every operation completes in one cycle,
//!   reproducing the paper's idealized machine bit-exactly;
//! * [`LatencyClasses`] — per-class multi-cycle operation latencies
//!   (`latency:mem=4,fdiv=12`); an issuing FU holds its parcel, PC and sync
//!   signal for the extra cycles;
//! * [`BankedMemory`] — an `N`-bank memory with per-bank, per-cycle
//!   arbitration (`banked:2`); same-cycle accesses to one bank queue up and
//!   the losers stall.
//!
//! Timing models stretch FU occupancy but never change what an operation
//! computes; stalls surface in [`SimStats::stall_cycles`],
//! [`SimStats::contention_stalls`] and the per-cycle [`Trace`] stall
//! markers.
//!
//! # Example
//!
//! ```
//! use ximd_isa::{Addr, AluOp, ControlOp, DataOp, Operand, Parcel, Program, Reg};
//! use ximd_sim::{MachineConfig, Xsim};
//!
//! // One FU computes r1 = r0 + 5 and halts.
//! let mut program = Program::new(1);
//! program.push(vec![Parcel::data(
//!     DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(5), Reg(1)),
//!     ControlOp::Halt,
//! )]);
//!
//! let mut sim = Xsim::new(program, MachineConfig::with_width(1))?;
//! sim.write_reg(Reg(0), 37i32.into());
//! let summary = sim.run(100)?;
//! assert_eq!(summary.cycles, 1);
//! assert_eq!(sim.reg(Reg(1)).as_i32(), 42);
//! # Ok::<(), ximd_sim::SimError>(())
//! ```

pub mod backend;
pub mod config;
pub mod decoded;
pub mod device;
mod engine;
pub mod error;
pub mod lanes;
pub mod memory;
pub mod partition;
pub mod regfile;
pub mod session;
pub mod snapshot;
pub mod stats;
pub mod timing;
pub mod trace;
pub mod vliw;
pub mod vsim;
pub mod xsim;

pub use backend::{BackendHandle, BackendRequest, Capabilities, ExecutionBackend};
pub use config::{MachineConfig, MemGeometry};
pub use decoded::{DecodedProgram, FastXsim};
pub use device::{IoPort, PortEvent};
pub use error::{ConfigError, SimError};
pub use lanes::{LaneRunSummary, LaneXsim};
pub use memory::Memory;
pub use partition::{CondKey, DecisionKey, Partition};
pub use regfile::RegisterFile;
pub use session::Session;
pub use snapshot::{SnapshotError, SnapshotKind};
pub use stats::SimStats;
pub use timing::{
    BankedMemory, Ideal, Issue, LatencyClasses, LatencyConfig, TimingModel, TimingSpec,
};
pub use trace::{Trace, TraceRow};
pub use vliw::{VliwInstruction, VliwProgram};
pub use vsim::Vsim;
pub use xsim::{RunSummary, StepStatus, Xsim};
