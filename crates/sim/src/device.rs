//! I/O port devices.
//!
//! The paper's Figure 12 example synchronizes two processes that "read some
//! data from an I/O port until the port returns a non-zero, valid value" —
//! the canonical *bounded but non-deterministic* peripheral the compiler
//! cannot schedule around (§1.3). We model a port as a queue of values, each
//! becoming ready at a cycle chosen ahead of time (optionally from a seeded
//! RNG so experiments are reproducible). A `PortIn` before the ready cycle
//! returns 0; at or after it, the value is consumed and returned.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use ximd_isa::Value;

/// A value written to a port, with the cycle of the write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortEvent {
    /// Cycle of the `PortOut`.
    pub cycle: u64,
    /// The value written.
    pub value: Value,
}

/// A bounded, non-deterministic I/O port.
///
/// # Example
///
/// ```
/// use ximd_isa::Value;
/// use ximd_sim::IoPort;
///
/// let mut port = IoPort::new();
/// port.schedule(3, Value::I32(42));
/// assert_eq!(port.read(0).as_i32(), 0);  // not ready yet
/// assert_eq!(port.read(3).as_i32(), 42); // ready: consumed
/// assert_eq!(port.read(4).as_i32(), 0);  // queue empty again
/// ```
#[derive(Debug, Clone, Default)]
pub struct IoPort {
    // (ready_cycle, value), kept sorted by ready_cycle.
    incoming: Vec<(u64, Value)>,
    outgoing: Vec<PortEvent>,
    reads: u64,
    polls_empty: u64,
}

impl IoPort {
    /// Creates a port with nothing scheduled.
    pub fn new() -> IoPort {
        IoPort::default()
    }

    /// Schedules `value` to become readable at `ready_cycle`.
    pub fn schedule(&mut self, ready_cycle: u64, value: Value) {
        let pos = self.incoming.partition_point(|&(c, _)| c <= ready_cycle);
        self.incoming.insert(pos, (ready_cycle, value));
    }

    /// Schedules `values` with inter-arrival gaps drawn uniformly from
    /// `latency` using a seeded RNG, starting at cycle `start`. Returns the
    /// ready cycle of the last value.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is an empty range.
    pub fn schedule_random(
        &mut self,
        seed: u64,
        start: u64,
        latency: std::ops::Range<u64>,
        values: impl IntoIterator<Item = Value>,
    ) -> u64 {
        assert!(!latency.is_empty(), "latency range must be non-empty");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut cycle = start;
        for v in values {
            cycle += rng.gen_range(latency.clone());
            self.schedule(cycle, v);
        }
        cycle
    }

    /// Performs a port read at `cycle`: returns and consumes the oldest
    /// ready value, or integer zero if none is ready ("until the port
    /// returns a non-zero, valid value").
    pub fn read(&mut self, cycle: u64) -> Value {
        self.reads += 1;
        if self
            .incoming
            .first()
            .is_some_and(|&(ready, _)| ready <= cycle)
        {
            self.incoming.remove(0).1
        } else {
            self.polls_empty += 1;
            Value::ZERO
        }
    }

    /// Records a port write at `cycle`.
    pub fn write(&mut self, cycle: u64, value: Value) {
        self.outgoing.push(PortEvent { cycle, value });
    }

    /// Values written to this port, in write order.
    pub fn written(&self) -> &[PortEvent] {
        &self.outgoing
    }

    /// Total reads issued against this port.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Reads that polled an empty/not-ready port (busy-wait overhead).
    pub fn polls_empty(&self) -> u64 {
        self.polls_empty
    }

    /// Number of scheduled values not yet consumed.
    pub fn pending(&self) -> usize {
        self.incoming.len()
    }

    /// The full device state for snapshot encoding: scheduled arrivals,
    /// logged writes, and the poll counters.
    pub(crate) fn export(&self) -> (&[(u64, Value)], &[PortEvent], u64, u64) {
        (&self.incoming, &self.outgoing, self.reads, self.polls_empty)
    }

    /// Rebuilds a device from snapshot state (inverse of `export`).
    pub(crate) fn from_parts(
        incoming: Vec<(u64, Value)>,
        outgoing: Vec<PortEvent>,
        reads: u64,
        polls_empty: u64,
    ) -> IoPort {
        IoPort {
            incoming,
            outgoing,
            reads,
            polls_empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_before_ready_returns_zero() {
        let mut p = IoPort::new();
        p.schedule(5, Value::I32(7));
        assert_eq!(p.read(4).as_i32(), 0);
        assert_eq!(p.read(5).as_i32(), 7);
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn values_are_consumed_in_ready_order() {
        let mut p = IoPort::new();
        p.schedule(10, Value::I32(2));
        p.schedule(3, Value::I32(1));
        assert_eq!(p.read(20).as_i32(), 1);
        assert_eq!(p.read(20).as_i32(), 2);
    }

    #[test]
    fn equal_ready_cycles_preserve_schedule_order() {
        let mut p = IoPort::new();
        p.schedule(3, Value::I32(1));
        p.schedule(3, Value::I32(2));
        assert_eq!(p.read(3).as_i32(), 1);
        assert_eq!(p.read(3).as_i32(), 2);
    }

    #[test]
    fn poll_statistics() {
        let mut p = IoPort::new();
        p.schedule(2, Value::I32(9));
        p.read(0);
        p.read(1);
        p.read(2);
        assert_eq!(p.reads(), 3);
        assert_eq!(p.polls_empty(), 2);
    }

    #[test]
    fn writes_are_logged_in_order() {
        let mut p = IoPort::new();
        p.write(1, Value::I32(10));
        p.write(4, Value::I32(11));
        assert_eq!(
            p.written(),
            &[
                PortEvent {
                    cycle: 1,
                    value: Value::I32(10)
                },
                PortEvent {
                    cycle: 4,
                    value: Value::I32(11)
                }
            ]
        );
    }

    #[test]
    fn random_schedule_is_reproducible() {
        let mut a = IoPort::new();
        let mut b = IoPort::new();
        let vals = || (1..=5).map(Value::I32);
        let last_a = a.schedule_random(42, 0, 1..10, vals());
        let last_b = b.schedule_random(42, 0, 1..10, vals());
        assert_eq!(last_a, last_b);
        assert_eq!(a.incoming, b.incoming);
        // Different seed: different schedule (overwhelmingly likely).
        let mut c = IoPort::new();
        c.schedule_random(43, 0, 1..10, vals());
        assert_ne!(a.incoming, c.incoming);
    }

    #[test]
    fn random_schedule_respects_latency_bounds() {
        let mut p = IoPort::new();
        p.schedule_random(7, 100, 5..6, (0..4).map(Value::I32));
        let cycles: Vec<u64> = p.incoming.iter().map(|&(c, _)| c).collect();
        assert_eq!(cycles, vec![105, 110, 115, 120]);
    }
}
