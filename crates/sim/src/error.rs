//! Simulator errors and machine checks.

use std::fmt;

use ximd_isa::{Addr, FuId, IsaError, LatencyClass, Reg};

/// A nonsensical [`MachineConfig`](crate::MachineConfig) or
/// [`TimingSpec`](crate::TimingSpec), rejected up front by
/// [`MachineConfig::validate`](crate::MachineConfig::validate) instead of
/// panicking (or silently misbehaving) mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A machine with zero functional units.
    ZeroWidth,
    /// A machine with an empty register file.
    ZeroRegisters,
    /// A register file with no read ports per FU.
    ZeroReadPorts,
    /// A register file with no write ports per FU.
    ZeroWritePorts,
    /// More write ports than read ports per FU — inconsistent with the
    /// ISA's two-source, one-destination parcel format.
    PortImbalance {
        /// Declared read ports per FU.
        read_ports: usize,
        /// Declared write ports per FU.
        write_ports: usize,
    },
    /// A banked memory with zero banks.
    ZeroBanks,
    /// A latency table entry of zero cycles.
    ZeroLatency {
        /// The offending class.
        class: LatencyClass,
    },
    /// A `--timing` spec string that does not parse.
    InvalidTimingSpec {
        /// The offending spec text.
        spec: String,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// An execution backend was asked for something its declared
    /// [`Capabilities`](crate::backend::Capabilities) do not cover — the
    /// uniform rejection for every "engine X requires Y" condition (the
    /// decoded fast path and the lane engine under non-ideal timing, a
    /// trace request on a non-tracing backend, a lane batch on a
    /// single-machine backend).
    CapabilityMismatch {
        /// The backend that was asked.
        backend: String,
        /// The capability it lacks, as a noun phrase.
        capability: &'static str,
    },
    /// A backend name that is not in the registry.
    UnknownBackend {
        /// The requested name.
        name: String,
        /// The names that are registered, comma-joined.
        registered: String,
    },
    /// A lane batch with zero lanes.
    ZeroLanes,
    /// A lane batch whose instances disagree on program or configuration —
    /// the lane engine shares one decoded program across all lanes.
    LaneMismatch {
        /// The first lane that differs from lane 0.
        lane: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroWidth => write!(f, "machine width must be at least 1 FU"),
            ConfigError::ZeroRegisters => write!(f, "register file must hold at least 1 register"),
            ConfigError::ZeroReadPorts => {
                write!(f, "each FU needs at least 1 register-file read port")
            }
            ConfigError::ZeroWritePorts => {
                write!(f, "each FU needs at least 1 register-file write port")
            }
            ConfigError::PortImbalance {
                read_ports,
                write_ports,
            } => write!(
                f,
                "{write_ports} write ports exceed {read_ports} read ports per FU"
            ),
            ConfigError::ZeroBanks => write!(f, "banked memory needs at least 1 bank"),
            ConfigError::ZeroLatency { class } => {
                write!(f, "latency class `{class}` must be at least 1 cycle")
            }
            ConfigError::InvalidTimingSpec { spec, reason } => {
                write!(f, "bad timing spec `{spec}`: {reason}")
            }
            ConfigError::CapabilityMismatch {
                backend,
                capability,
            } => {
                write!(f, "backend {backend:?} does not support {capability}")
            }
            ConfigError::UnknownBackend { name, registered } => {
                write!(f, "unknown backend {name:?} (registered: {registered})")
            }
            ConfigError::ZeroLanes => write!(f, "lane batch needs at least 1 lane"),
            ConfigError::LaneMismatch { lane } => {
                write!(
                    f,
                    "lane {lane} runs a different program or configuration than lane 0"
                )
            }
        }
    }
}

/// Errors raised during simulation.
///
/// XIMD-1 explicitly defers exception handling, so conditions the hardware
/// leaves *undefined* (multiple same-cycle writes, division by zero) surface
/// as machine checks that abort the run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A structural or encoding error in the program.
    Isa(IsaError),
    /// A functional unit fetched from an address with no instruction.
    PcOutOfRange {
        /// The fetching unit.
        fu: FuId,
        /// Its program counter.
        pc: Addr,
        /// Program length.
        len: u32,
    },
    /// Two or more FUs wrote the same register in one cycle.
    RegisterWriteConflict {
        /// The register.
        reg: Reg,
        /// The writers.
        fus: Vec<FuId>,
        /// The cycle of the conflict.
        cycle: u64,
    },
    /// Two or more FUs wrote the same memory word in one cycle
    /// ("multiple writes to the same location in one cycle are undefined",
    /// paper §2.3).
    MemoryWriteConflict {
        /// The word address.
        addr: u32,
        /// The writers.
        fus: Vec<FuId>,
        /// The cycle of the conflict.
        cycle: u64,
    },
    /// A memory access fell outside the configured memory size.
    MemoryOutOfRange {
        /// The word address.
        addr: i64,
        /// Memory size in words.
        size: u32,
    },
    /// An I/O operation named a port that is not attached.
    PortOutOfRange {
        /// The port number.
        port: u8,
        /// Number of attached ports.
        count: usize,
    },
    /// A data operation raised a machine check (currently only integer
    /// divide by zero), attributed to a functional unit and cycle.
    DataFault {
        /// The faulting unit.
        fu: FuId,
        /// The cycle of the fault.
        cycle: u64,
        /// The underlying fault.
        fault: IsaError,
    },
    /// The run exceeded its cycle budget without every FU halting.
    CycleLimit {
        /// The budget that was exhausted.
        limit: u64,
    },
    /// The machine configuration itself is invalid (checked before the
    /// first cycle, so no partial run ever happens).
    Config(ConfigError),
    /// An error raised by one lane of a batched lane-engine run, attributed
    /// to that lane. The inner error is what an independent run of that
    /// lane's machine would have reported.
    Lane {
        /// The lane whose machine raised the error.
        lane: usize,
        /// The underlying error.
        error: Box<SimError>,
    },
    /// A failure inside an execution backend that is not a machine check —
    /// a differential backend detecting divergence, a plugin's codec
    /// failing. Out-of-crate backends construct this directly.
    Backend {
        /// The reporting backend's registered name.
        backend: String,
        /// What went wrong, in the backend's own words.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Isa(e) => write!(f, "program error: {e}"),
            SimError::PcOutOfRange { fu, pc, len } => {
                write!(f, "{fu} fetched {pc} outside program of {len} instructions")
            }
            SimError::RegisterWriteConflict { reg, fus, cycle } => {
                write!(f, "undefined: {reg} written by {fus:?} in cycle {cycle}")
            }
            SimError::MemoryWriteConflict { addr, fus, cycle } => {
                write!(
                    f,
                    "undefined: M[{addr:#x}] written by {fus:?} in cycle {cycle}"
                )
            }
            SimError::MemoryOutOfRange { addr, size } => {
                write!(f, "memory access at word {addr} outside {size}-word memory")
            }
            SimError::PortOutOfRange { port, count } => {
                write!(f, "i/o port {port} not attached ({count} ports present)")
            }
            SimError::DataFault { fu, cycle, fault } => {
                write!(f, "{fu} faulted in cycle {cycle}: {fault}")
            }
            SimError::CycleLimit { limit } => {
                write!(f, "cycle limit of {limit} reached before all units halted")
            }
            SimError::Config(e) => write!(f, "invalid machine configuration: {e}"),
            SimError::Lane { lane, error } => write!(f, "lane {lane}: {error}"),
            SimError::Backend { backend, detail } => write!(f, "backend {backend}: {detail}"),
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(value: ConfigError) -> Self {
        SimError::Config(value)
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Isa(e) => Some(e),
            SimError::DataFault { fault, .. } => Some(fault),
            SimError::Lane { error, .. } => Some(error.as_ref()),
            _ => None,
        }
    }
}

impl From<IsaError> for SimError {
    fn from(value: IsaError) -> Self {
        SimError::Isa(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<SimError> = vec![
            SimError::Isa(IsaError::DivideByZero),
            SimError::PcOutOfRange {
                fu: FuId(1),
                pc: Addr(9),
                len: 4,
            },
            SimError::RegisterWriteConflict {
                reg: Reg(3),
                fus: vec![FuId(0), FuId(1)],
                cycle: 7,
            },
            SimError::MemoryWriteConflict {
                addr: 16,
                fus: vec![FuId(2), FuId(3)],
                cycle: 9,
            },
            SimError::MemoryOutOfRange {
                addr: -1,
                size: 1024,
            },
            SimError::PortOutOfRange { port: 4, count: 2 },
            SimError::DataFault {
                fu: FuId(0),
                cycle: 3,
                fault: IsaError::DivideByZero,
            },
            SimError::CycleLimit { limit: 1000 },
            SimError::Config(ConfigError::ZeroWidth),
            SimError::Lane {
                lane: 3,
                error: Box::new(SimError::CycleLimit { limit: 10 }),
            },
            SimError::Backend {
                backend: "shadow".to_string(),
                detail: "interp and decoded diverged at cycle 12".to_string(),
            },
        ];
        for err in cases {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn config_error_displays_cover_all_variants() {
        let cases: Vec<ConfigError> = vec![
            ConfigError::ZeroWidth,
            ConfigError::ZeroRegisters,
            ConfigError::ZeroReadPorts,
            ConfigError::ZeroWritePorts,
            ConfigError::PortImbalance {
                read_ports: 1,
                write_ports: 2,
            },
            ConfigError::ZeroBanks,
            ConfigError::ZeroLatency {
                class: LatencyClass::Memory,
            },
            ConfigError::InvalidTimingSpec {
                spec: "warp".to_string(),
                reason: "unknown model",
            },
            ConfigError::CapabilityMismatch {
                backend: "decoded".to_string(),
                capability: "non-ideal timing models",
            },
            ConfigError::UnknownBackend {
                name: "warp".to_string(),
                registered: "interp, decoded, lanes".to_string(),
            },
            ConfigError::ZeroLanes,
            ConfigError::LaneMismatch { lane: 2 },
        ];
        for err in cases {
            let wrapped = SimError::Config(err);
            assert!(wrapped
                .to_string()
                .starts_with("invalid machine configuration"));
        }
    }

    #[test]
    fn source_chains_to_isa_error() {
        use std::error::Error;
        let err = SimError::DataFault {
            fu: FuId(0),
            cycle: 1,
            fault: IsaError::DivideByZero,
        };
        assert!(err.source().is_some());
        assert!(SimError::CycleLimit { limit: 1 }.source().is_none());
    }

    #[test]
    fn from_isa_error() {
        let err: SimError = IsaError::DivideByZero.into();
        assert!(matches!(err, SimError::Isa(_)));
    }
}
