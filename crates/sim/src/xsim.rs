//! **xsim** — the cycle-accurate XIMD-1 simulator.
//!
//! Replicates the paper's research simulator of the same name \[Wolfe89\]:
//! per-FU sequencers with two explicit branch targets, globally distributed
//! condition codes (latched end-of-cycle) and sync signals (combinational),
//! an idealized single-cycle shared memory, and dynamic SSET partition
//! tracking with Figure-10-style address traces.

use ximd_isa::{Addr, FuId, Program, Reg, SyncSignal, Value};

use crate::config::MachineConfig;
use crate::device::IoPort;
use crate::engine::{self, control_next, execute_data, memory_addr, run_loop, Engine};
use crate::error::SimError;
use crate::memory::Memory;
use crate::partition::{DecisionKey, Partition};
use crate::regfile::RegisterFile;
use crate::stats::SimStats;
use crate::timing::{TimingModel, TimingSpec};
use crate::trace::{Trace, TraceRow};

/// Result of a single [`Xsim::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// At least one FU is still running.
    Running,
    /// Every FU has halted; the program is complete.
    AllHalted,
}

/// Summary of a completed [`Xsim::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Total cycles executed.
    pub cycles: u64,
    /// Accumulated statistics.
    pub stats: SimStats,
}

/// The XIMD-1 simulator.
///
/// # Example
///
/// A two-FU fork: FU0 branches on its own condition code while FU1 waits on
/// FU0's sync signal.
///
/// ```
/// use ximd_isa::{Addr, ControlOp, DataOp, Parcel, Program};
/// use ximd_sim::{MachineConfig, Xsim};
///
/// let mut program = Program::new(2);
/// program.push(vec![Parcel::goto(Addr(1)), Parcel::goto(Addr(1))]);
/// program.push(vec![Parcel::halt(), Parcel::halt()]);
///
/// let mut sim = Xsim::new(program, MachineConfig::with_width(2))?;
/// let summary = sim.run(10)?;
/// assert_eq!(summary.cycles, 2);
/// # Ok::<(), ximd_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Xsim {
    pub(crate) config: MachineConfig,
    pub(crate) program: Program,
    pub(crate) regs: RegisterFile,
    pub(crate) mem: Memory,
    pub(crate) ports: Vec<IoPort>,
    pub(crate) pcs: Vec<Option<Addr>>,
    pub(crate) ccs: Vec<Option<bool>>,
    pub(crate) ss: Vec<SyncSignal>,
    pub(crate) partition: Partition,
    pub(crate) cycle: u64,
    pub(crate) stats: SimStats,
    pub(crate) trace: Option<Trace>,
    pub(crate) timing: Box<dyn TimingModel>,
    pub(crate) pending: Vec<Pending>,
}

/// Per-FU occupancy state for multi-cycle parcels: the parcel's semantics
/// ran at issue, but the unit stays busy for `remaining` more cycles,
/// holding its PC, re-asserting its sync signal, and keeping its issued
/// decision key for SSET-partition accounting. `next` is the buffered
/// control outcome, applied when the occupancy expires.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    pub(crate) remaining: u64,
    pub(crate) next: Option<Addr>,
    pub(crate) key: DecisionKey,
}

impl Default for Pending {
    fn default() -> Self {
        Pending {
            remaining: 0,
            next: None,
            key: DecisionKey::Halted,
        }
    }
}

impl Xsim {
    /// Builds a simulator for `program` on a machine described by `config`.
    ///
    /// All FUs start at address `00:` ("assume that in every example
    /// program, all functional units begin execution together at address
    /// 00:"), registers and memory start at zero, condition codes start
    /// unknown (`X`), sync signals start `BUSY`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is nonsensical
    /// (zero FUs, inconsistent register-file ports, a degenerate timing
    /// spec), or [`SimError::Isa`] if the program's width differs from the
    /// machine's or any parcel references an out-of-range register, FU or
    /// branch target.
    pub fn new(program: Program, config: MachineConfig) -> Result<Xsim, SimError> {
        config.validate()?;
        if program.width() != config.width {
            return Err(SimError::Isa(ximd_isa::IsaError::WidthMismatch {
                got: program.width(),
                expected: config.width,
            }));
        }
        program.validate(config.num_regs)?;
        let width = config.width;
        Ok(Xsim {
            regs: RegisterFile::new(config.num_regs),
            mem: Memory::new(config.mem_words),
            ports: Vec::new(),
            pcs: vec![Some(Addr(0)); width],
            ccs: vec![None; width],
            ss: vec![SyncSignal::Busy; width],
            partition: Partition::single(width),
            cycle: 0,
            stats: SimStats {
                width,
                ops_per_fu: vec![0; width],
                ..SimStats::default()
            },
            trace: None,
            timing: config.timing.build(),
            pending: vec![Pending::default(); width],
            config,
            program,
        })
    }

    /// The machine configuration this simulator was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The program loaded into instruction memory.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The sync signals as driven in the last executed cycle (`BUSY` before
    /// the first cycle).
    pub fn ss(&self) -> &[SyncSignal] {
        &self.ss
    }

    /// The active timing model.
    pub fn timing(&self) -> &dyn TimingModel {
        &*self.timing
    }

    /// Replaces the timing model (machine setup; typically before the first
    /// cycle, e.g. when sweeping one prepared workload across specs). Any
    /// in-flight multi-cycle parcels of a previous model are completed
    /// immediately.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for degenerate specs.
    pub fn set_timing(&mut self, spec: &TimingSpec) -> Result<(), SimError> {
        spec.validate()?;
        for fu in 0..self.config.width {
            if self.pending[fu].remaining > 0 {
                self.pending[fu].remaining = 0;
                self.pcs[fu] = self.pending[fu].next;
            }
        }
        self.config.timing = spec.clone();
        self.timing = spec.build();
        Ok(())
    }

    /// Enables per-cycle address tracing (Figure 10 format).
    pub fn enable_trace(&mut self) -> &mut Self {
        if self.trace.is_none() {
            self.trace = Some(Trace::new(self.config.width));
        }
        self
    }

    /// The captured trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Attaches an I/O port device, returning its port number.
    pub fn attach_port(&mut self, port: IoPort) -> u8 {
        self.ports.push(port);
        (self.ports.len() - 1) as u8
    }

    /// The attached I/O ports.
    pub fn ports(&self) -> &[IoPort] {
        &self.ports
    }

    /// Mutable access to an attached port (to schedule arrivals mid-test).
    pub fn port_mut(&mut self, port: u8) -> Option<&mut IoPort> {
        self.ports.get_mut(port as usize)
    }

    /// Reads a register.
    pub fn reg(&self, reg: Reg) -> Value {
        self.regs.read(reg)
    }

    /// Sets a register (machine setup).
    pub fn write_reg(&mut self, reg: Reg, value: Value) {
        self.regs.poke(reg, value);
    }

    /// Shared memory (read access).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Shared memory (setup access).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Current cycle number (cycles completed so far).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Per-FU program counters (`None` once halted).
    pub fn pcs(&self) -> &[Option<Addr>] {
        &self.pcs
    }

    /// Condition codes as latched at the last cycle boundary.
    pub fn ccs(&self) -> &[Option<bool>] {
        &self.ccs
    }

    /// The SSET partition in effect for the upcoming cycle.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Returns `true` once every FU has halted.
    pub fn all_halted(&self) -> bool {
        self.pcs.iter().all(Option::is_none)
    }

    /// Executes one machine cycle.
    ///
    /// # Errors
    ///
    /// Returns a machine check ([`SimError`]) on fetch from an invalid
    /// address, same-cycle write conflicts (under the trapping policy),
    /// memory range violations, or data faults.
    pub fn step(&mut self) -> Result<StepStatus, SimError> {
        if self.all_halted() {
            return Ok(StepStatus::AllHalted);
        }
        let width = self.config.width;
        let len = self.program.len() as u32;
        self.timing.begin_cycle(self.cycle);

        // Fetch. A unit still occupied by an earlier multi-cycle parcel
        // does not fetch; `stalled` marks it for the later phases. Under
        // ideal timing nothing ever stalls and this is exactly the
        // pre-timing-layer fetch.
        let mut parcels = Vec::with_capacity(width);
        let mut stalled = vec![false; width];
        for (fu, stall) in stalled.iter_mut().enumerate() {
            match self.pcs[fu] {
                Some(_) if self.pending[fu].remaining > 0 => {
                    *stall = true;
                    parcels.push(None);
                }
                Some(pc) => {
                    if pc.0 >= len {
                        return Err(SimError::PcOutOfRange {
                            fu: FuId(fu as u8),
                            pc,
                            len,
                        });
                    }
                    parcels.push(Some(
                        *self.program.parcel(pc, FuId(fu as u8)).expect("validated"),
                    ));
                }
                None => parcels.push(None),
            }
        }

        // Sync signals are combinational: the executing parcel drives SS_i
        // this cycle; halted FUs hold their last exported value, and a
        // stalled FU keeps asserting what its in-flight parcel drove (so
        // partners at an ALL-SS barrier wait out the stall).
        for (fu, parcel) in parcels.iter().enumerate() {
            if let Some(p) = parcel {
                self.ss[fu] = p.sync;
            }
        }

        // Record the trace row *before* state changes: PCs and CCs as they
        // exist at the beginning of the cycle (Figure 10's convention), the
        // partition in effect during this cycle, and this cycle's SS.
        if let Some(trace) = &mut self.trace {
            trace.push(TraceRow {
                cycle: self.cycle,
                pcs: self.pcs.clone(),
                ccs: self.ccs.clone(),
                ss: self.ss.clone(),
                stalls: stalled.clone(),
                partition: self.partition.clone(),
            });
        }

        // Data phase: reads observe start-of-cycle state, writes are staged.
        // The timing model is consulted per issued parcel; the parcel's
        // semantics run in full at issue either way (see `crate::timing`).
        let mut cc_updates: Vec<(usize, bool)> = Vec::new();
        let mut extra = vec![0u64; width];
        for (fu, parcel) in parcels.iter().enumerate() {
            let Some(p) = parcel else {
                if stalled[fu] {
                    self.stats.stall_cycles += 1;
                } else {
                    self.stats.halted_fu_cycles += 1;
                }
                continue;
            };
            let issue =
                self.timing
                    .issue(FuId(fu as u8), &p.data, memory_addr(&p.data, &self.regs));
            extra[fu] = issue.extra_cycles;
            self.stats.contention_stalls += issue.contention_stalls;
            if let Some(cc) = execute_data(
                FuId(fu as u8),
                &p.data,
                self.cycle,
                &mut self.regs,
                &mut self.mem,
                &mut self.ports,
                &mut self.stats,
            )? {
                cc_updates.push((fu, cc));
            }
        }
        self.regs.commit(self.config.reg_conflicts, self.cycle)?;
        self.mem.commit(self.config.mem_conflicts, self.cycle)?;
        self.stats.conflicts_resolved =
            self.regs.conflicts_resolved() + self.mem.conflicts_resolved();

        // Control phase: branch conditions see start-of-cycle CCs and this
        // cycle's combinational SS. A multi-cycle parcel decides its branch
        // now but buffers the outcome; a stalled FU keeps its issued
        // decision key so it stays in the same SSET while occupied.
        let cc_now: Vec<bool> = self.ccs.iter().map(|c| c.unwrap_or(false)).collect();
        let mut keys = Vec::with_capacity(width);
        for (fu, parcel) in parcels.iter().enumerate() {
            let Some(p) = parcel else {
                if stalled[fu] {
                    keys.push(self.pending[fu].key);
                    self.pending[fu].remaining -= 1;
                    if self.pending[fu].remaining == 0 {
                        self.pcs[fu] = self.pending[fu].next;
                    }
                } else {
                    keys.push(DecisionKey::Halted);
                }
                continue;
            };
            let key = DecisionKey::of(&p.ctrl);
            keys.push(key);
            let next = control_next(&p.ctrl, &cc_now, &self.ss, &mut self.stats);
            if next == self.pcs[fu] {
                self.stats.spin_cycles += 1;
            }
            if extra[fu] > 0 {
                self.pending[fu] = Pending {
                    remaining: extra[fu],
                    next,
                    key,
                };
            } else {
                self.pcs[fu] = next;
            }
        }
        self.partition = Partition::from_decisions(&keys);

        // Latch condition codes at the cycle boundary.
        for (fu, cc) in cc_updates {
            self.ccs[fu] = Some(cc);
        }

        self.cycle += 1;
        self.stats.cycles = self.cycle;
        let streams = self.partition.num_ssets();
        self.stats.max_concurrent_streams = self.stats.max_concurrent_streams.max(streams);
        self.stats.sset_cycle_sum += streams as u64;

        if self.all_halted() {
            Ok(StepStatus::AllHalted)
        } else {
            Ok(StepStatus::Running)
        }
    }

    /// Runs until every FU is parked on the self-loop at `park`, then
    /// executes one final cycle (so the parked cycle appears in traces, as
    /// in the paper's Figure 10 whose last row shows every FU at the
    /// terminal `0a: -> 0a:`).
    ///
    /// The paper's example programs end in such self-loops rather than
    /// halting; this is the standard way to complete them. Halted FUs also
    /// count as parked, so mixed park/halt programs terminate too.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] if the budget is exhausted first, or
    /// any machine check raised by [`Xsim::step`].
    pub fn run_until_parked(
        &mut self,
        park: Addr,
        max_cycles: u64,
    ) -> Result<RunSummary, SimError> {
        run_loop(self, Some(park), max_cycles)
    }

    /// Runs until every FU halts or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] if the budget is exhausted first, or
    /// any machine check raised by [`Xsim::step`].
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, SimError> {
        run_loop(self, None, max_cycles)
    }

    /// Runs on the pre-decoded fast path ([`crate::decoded`]): same contract
    /// and observable results as [`Xsim::run`], typically several times
    /// faster.
    ///
    /// Falls back to the interpreter when tracing is enabled (the fast path
    /// records no trace rows), the machine is wider than
    /// [`crate::decoded::MAX_FAST_WIDTH`], or a non-ideal timing model is
    /// configured (the fast path is the hot-loop implementation of
    /// [`crate::Ideal`] only).
    ///
    /// On success or cycle-limit exhaustion the machine state (registers,
    /// memory, ports, PCs, CCs, sync signals, partition, statistics) is
    /// identical to what the interpreter would have produced. On any other
    /// machine check the error is identical but the machine is left at the
    /// last *completed* cycle boundary, whereas the interpreter stops
    /// mid-cycle; a trapped run's partial state is unspecified either way.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`Xsim::run`] reports.
    pub fn run_decoded(&mut self, max_cycles: u64) -> Result<RunSummary, SimError> {
        self.run_decoded_inner(None, max_cycles)
    }

    /// Fast-path counterpart of [`Xsim::run_until_parked`]; the same
    /// fallback and state-consistency rules as [`Xsim::run_decoded`].
    ///
    /// # Errors
    ///
    /// Exactly the errors [`Xsim::run_until_parked`] reports.
    pub fn run_decoded_until_parked(
        &mut self,
        park: Addr,
        max_cycles: u64,
    ) -> Result<RunSummary, SimError> {
        self.run_decoded_inner(Some(park), max_cycles)
    }

    fn run_decoded_inner(
        &mut self,
        park: Option<Addr>,
        max_cycles: u64,
    ) -> Result<RunSummary, SimError> {
        if self.trace.is_some()
            || self.config.width > crate::decoded::MAX_FAST_WIDTH
            || !self.config.timing.is_ideal()
        {
            return run_loop(self, park, max_cycles);
        }
        engine::run_fast_path(
            self,
            park,
            max_cycles,
            crate::decoded::FastXsim::from_xsim,
            crate::decoded::FastXsim::write_back,
        )
    }

    /// [`Xsim::run_decoded`] fed from an artifact cache: `decoded` holds
    /// tables already lowered from this machine's program, so the decode
    /// stage is skipped entirely. The caller pairs tables with programs by
    /// content hash; a dimensional mismatch (wrong width, register count or
    /// program length — a plumbing bug, not a corrupt cache) falls back to
    /// lowering on the fly. The interpreter fallback conditions and state
    /// guarantees are exactly those of [`Xsim::run_decoded`].
    ///
    /// # Errors
    ///
    /// Exactly the errors [`Xsim::run`] reports.
    pub fn run_decoded_cached(
        &mut self,
        decoded: &crate::DecodedProgram,
        park: Option<Addr>,
        max_cycles: u64,
    ) -> Result<RunSummary, SimError> {
        if self.trace.is_some()
            || self.config.width > crate::decoded::MAX_FAST_WIDTH
            || !self.config.timing.is_ideal()
        {
            return run_loop(self, park, max_cycles);
        }
        if !decoded.matches(&self.program, self.config.num_regs) {
            return self.run_decoded_inner(park, max_cycles);
        }
        engine::run_fast_path(
            self,
            park,
            max_cycles,
            |sim| crate::decoded::FastXsim::from_xsim_cached(sim, decoded),
            crate::decoded::FastXsim::write_back,
        )
    }
}

impl Engine for Xsim {
    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn step(&mut self) -> Result<StepStatus, SimError> {
        Xsim::step(self)
    }

    fn all_parked(&self, park: Addr) -> bool {
        self.pcs.iter().all(|pc| pc.is_none_or(|a| a == park))
    }

    fn finished(&self) -> bool {
        self.all_halted()
    }

    fn summary(&self) -> RunSummary {
        RunSummary {
            cycles: self.cycle,
            stats: self.stats.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConflictPolicy;
    use ximd_isa::{AluOp, CmpOp, CondSource, ControlOp, DataOp, Operand, Parcel};

    fn addp(a: u16, b: i32, d: u16, ctrl: ControlOp) -> Parcel {
        Parcel::data(
            DataOp::alu(AluOp::Iadd, Reg(a).into(), Operand::imm_i32(b), Reg(d)),
            ctrl,
        )
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let program = Program::new(2);
        assert!(Xsim::new(program, MachineConfig::with_width(4)).is_err());
    }

    #[test]
    fn empty_program_runs_zero_cycles_if_prehalted() {
        // A width-1 program with a single halt parcel: one cycle to halt.
        let mut p = Program::new(1);
        p.push(vec![Parcel::halt()]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(1)).unwrap();
        let summary = sim.run(10).unwrap();
        assert_eq!(summary.cycles, 1);
        assert!(sim.all_halted());
        // Further steps are no-ops.
        assert_eq!(sim.step().unwrap(), StepStatus::AllHalted);
        assert_eq!(sim.cycle(), 1);
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut p = Program::new(1);
        p.push(vec![addp(0, 5, 1, ControlOp::Goto(Addr(1)))]);
        p.push(vec![addp(1, 10, 2, ControlOp::Halt)]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(1)).unwrap();
        sim.write_reg(Reg(0), Value::I32(1));
        let summary = sim.run(10).unwrap();
        assert_eq!(summary.cycles, 2);
        assert_eq!(sim.reg(Reg(1)).as_i32(), 6);
        assert_eq!(sim.reg(Reg(2)).as_i32(), 16);
        assert_eq!(summary.stats.ops, 2);
    }

    #[test]
    fn same_cycle_reads_see_old_values() {
        // FU0 writes r0; FU1 reads r0 in the same cycle and must see the
        // start-of-cycle value (TPROC relies on this).
        let mut p = Program::new(2);
        p.push(vec![
            addp(0, 100, 0, ControlOp::Halt),
            addp(0, 1, 1, ControlOp::Halt),
        ]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(2)).unwrap();
        sim.write_reg(Reg(0), Value::I32(7));
        sim.run(10).unwrap();
        assert_eq!(sim.reg(Reg(0)).as_i32(), 107);
        assert_eq!(sim.reg(Reg(1)).as_i32(), 8); // old r0 + 1
    }

    #[test]
    fn cc_is_latched_not_combinational() {
        // Cycle 0: compare sets cc0; a branch in the same cycle must NOT see
        // it (CC starts unknown = false). Cycle 1: branch sees it.
        let mut p = Program::new(1);
        let cmp = DataOp::cmp(CmpOp::Eq, Operand::imm_i32(1), Operand::imm_i32(1));
        // 00: cmp; if cc0 -> 02 else 01   (cc0 unknown -> 01)
        p.push(vec![Parcel::data(
            cmp,
            ControlOp::branch(CondSource::Cc(FuId(0)), Addr(2), Addr(1)),
        )]);
        // 01: if cc0 -> 02 else 03  (cc0 now TRUE -> 02)
        p.push(vec![Parcel::data(
            DataOp::Nop,
            ControlOp::branch(CondSource::Cc(FuId(0)), Addr(2), Addr(3)),
        )]);
        // 02: r1 = 42; halt
        p.push(vec![addp(1, 42, 1, ControlOp::Halt)]);
        // 03: halt (failure path)
        p.push(vec![Parcel::halt()]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(1)).unwrap();
        sim.run(10).unwrap();
        assert_eq!(sim.reg(Reg(1)).as_i32(), 42);
    }

    #[test]
    fn sync_signals_are_combinational() {
        // FU0 and FU1 both branch on ALL-SS in cycle 0 while both parcels
        // export DONE: the barrier must release immediately.
        let mut p = Program::new(2);
        let barrier = ControlOp::branch(CondSource::AllSync, Addr(1), Addr(0));
        p.push(vec![
            Parcel::data(DataOp::Nop, barrier).done(),
            Parcel::data(DataOp::Nop, barrier).done(),
        ]);
        p.push(vec![Parcel::halt(), Parcel::halt()]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(2)).unwrap();
        let summary = sim.run(10).unwrap();
        assert_eq!(summary.cycles, 2); // barrier + halt, no spin
        assert_eq!(summary.stats.spin_cycles, 0);
    }

    #[test]
    fn barrier_waits_for_latecomer() {
        // FU0 reaches the barrier at cycle 0; FU1 does one extra op first.
        // FU0 must spin exactly once.
        let mut p = Program::new(2);
        let barrier = ControlOp::branch(CondSource::AllSync, Addr(2), Addr(1));
        // 00: FU0 at barrier (DONE); FU1 computes, goes to 01.
        p.push(vec![
            Parcel::data(DataOp::Nop, ControlOp::Goto(Addr(1))),
            addp(0, 1, 0, ControlOp::Goto(Addr(1))),
        ]);
        // 01: both at barrier.
        p.push(vec![
            Parcel::data(DataOp::Nop, barrier).done(),
            Parcel::data(DataOp::Nop, barrier).done(),
        ]);
        // 02: halt.
        p.push(vec![Parcel::halt(), Parcel::halt()]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(2)).unwrap();
        let summary = sim.run(10).unwrap();
        assert_eq!(summary.cycles, 3);
        assert_eq!(sim.reg(Reg(0)).as_i32(), 1);
        assert_eq!(summary.stats.spin_cycles, 0);
    }

    #[test]
    fn true_spin_at_barrier_counts() {
        // FU0 exports DONE at the barrier from cycle 0 but FU1 stays BUSY
        // for 3 cycles in a countdown loop; FU0 spins.
        let mut p = Program::new(2);
        let barrier = ControlOp::branch(CondSource::AllSync, Addr(3), Addr(0));
        // 00: FU0 barrier(DONE); FU1 r0 += 1, if cc1 (r0 == 3) -> 02 else 01
        p.push(vec![
            Parcel::data(DataOp::Nop, barrier).done(),
            Parcel::data(
                DataOp::cmp(CmpOp::Eq, Reg(0).into(), Operand::imm_i32(2)),
                ControlOp::branch(CondSource::Cc(FuId(1)), Addr(2), Addr(1)),
            ),
        ]);
        // 01: FU1 increments and loops back to 00.
        p.push(vec![
            Parcel::halt(),
            addp(0, 1, 0, ControlOp::Goto(Addr(0))),
        ]);
        // 02: FU1 joins barrier.
        p.push(vec![
            Parcel::halt(),
            Parcel::data(DataOp::Nop, barrier).done(),
        ]);
        // 03: both halt.
        p.push(vec![Parcel::halt(), Parcel::halt()]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(2)).unwrap();
        let summary = sim.run(50).unwrap();
        assert!(summary.stats.spin_cycles > 0, "FU0 should have spun");
        assert!(sim.all_halted());
    }

    #[test]
    fn partition_tracks_fork_and_join() {
        // Two FUs: cycle 0 both goto 1 (one SSET); cycle 1 FU0 branches on
        // cc0, FU1 on cc1 (two SSETs); cycle 2 both goto 3 (one SSET).
        let mut p = Program::new(2);
        p.push(vec![Parcel::goto(Addr(1)), Parcel::goto(Addr(1))]);
        p.push(vec![
            Parcel::data(
                DataOp::Nop,
                ControlOp::branch(CondSource::Cc(FuId(0)), Addr(2), Addr(2)),
            ),
            Parcel::data(
                DataOp::Nop,
                ControlOp::branch(CondSource::Cc(FuId(1)), Addr(2), Addr(2)),
            ),
        ]);
        p.push(vec![Parcel::goto(Addr(3)), Parcel::goto(Addr(3))]);
        p.push(vec![Parcel::halt(), Parcel::halt()]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(2)).unwrap();
        sim.enable_trace();
        sim.run(10).unwrap();
        let trace = sim.trace().unwrap();
        let parts: Vec<String> = trace.partitions().map(|p| p.to_string()).collect();
        assert_eq!(parts, vec!["{0,1}", "{0,1}", "{0}{1}", "{0,1}"]);
        assert_eq!(sim.stats().max_concurrent_streams, 2);
    }

    #[test]
    fn register_conflict_traps() {
        let mut p = Program::new(2);
        p.push(vec![
            addp(0, 1, 5, ControlOp::Halt),
            addp(0, 2, 5, ControlOp::Halt),
        ]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(2)).unwrap();
        assert!(matches!(
            sim.step(),
            Err(SimError::RegisterWriteConflict { .. })
        ));
    }

    #[test]
    fn register_conflict_last_wins_when_configured() {
        let mut p = Program::new(2);
        p.push(vec![
            addp(0, 1, 5, ControlOp::Halt),
            addp(0, 2, 5, ControlOp::Halt),
        ]);
        let cfg = MachineConfig::with_width(2).conflicts(ConflictPolicy::LastWins);
        let mut sim = Xsim::new(p, cfg).unwrap();
        sim.run(10).unwrap();
        assert_eq!(sim.reg(Reg(5)).as_i32(), 2); // FU1 wins
        assert_eq!(sim.stats().conflicts_resolved, 1);
    }

    #[test]
    fn memory_conflict_traps() {
        let mut p = Program::new(2);
        let st = |v: i32| {
            Parcel::data(
                DataOp::store(Operand::imm_i32(v), Operand::imm_i32(64)),
                ControlOp::Halt,
            )
        };
        p.push(vec![st(1), st(2)]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(2)).unwrap();
        assert!(matches!(
            sim.step(),
            Err(SimError::MemoryWriteConflict { addr: 64, .. })
        ));
    }

    #[test]
    fn cycle_limit_errors() {
        let mut p = Program::new(1);
        p.push(vec![Parcel::goto(Addr(0))]); // infinite self-loop
        let mut sim = Xsim::new(p, MachineConfig::with_width(1)).unwrap();
        assert_eq!(sim.run(5), Err(SimError::CycleLimit { limit: 5 }));
        assert_eq!(sim.stats().spin_cycles, 5);
    }

    #[test]
    fn run_and_run_until_parked_agree_on_halted_machine() {
        // Regression: with the budget exactly equal to the elapsed cycle
        // count, `run` succeeded on an already-halted machine while
        // `run_until_parked` reported a spurious CycleLimit.
        let mut p = Program::new(1);
        p.push(vec![Parcel::halt()]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(1)).unwrap();
        sim.run(10).unwrap();
        assert!(sim.all_halted());
        let budget = sim.cycle(); // == 1: loop body never entered
        assert_eq!(sim.run(budget), sim.run_until_parked(Addr(0), budget));
    }

    #[test]
    fn trace_records_initial_unknown_ccs() {
        let mut p = Program::new(1);
        p.push(vec![Parcel::data(
            DataOp::cmp(CmpOp::Lt, Operand::imm_i32(1), Operand::imm_i32(2)),
            ControlOp::Goto(Addr(1)),
        )]);
        p.push(vec![Parcel::halt()]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(1)).unwrap();
        sim.enable_trace();
        sim.run(10).unwrap();
        let rows = sim.trace().unwrap().rows();
        assert_eq!(rows[0].cc_string(), "X");
        assert_eq!(rows[1].cc_string(), "T");
    }

    #[test]
    fn halted_units_hold_sync_signal() {
        // FU0 halts exporting DONE; FU1 then branches on SS0 and must still
        // see DONE two cycles later.
        let mut p = Program::new(2);
        // 00: FU0 halts with DONE; FU1 goto 01.
        p.push(vec![Parcel::halt().done(), Parcel::goto(Addr(1))]);
        // 01: FU1 nop, goto 02.
        p.push(vec![Parcel::halt(), Parcel::goto(Addr(2))]);
        // 02: FU1 branch on ss0 -> 03 (success) else 04 (failure).
        p.push(vec![
            Parcel::halt(),
            Parcel::data(
                DataOp::Nop,
                ControlOp::branch(CondSource::Sync(FuId(0)), Addr(3), Addr(4)),
            ),
        ]);
        // 03: r1 = 1; halt.
        p.push(vec![Parcel::halt(), addp(1, 1, 1, ControlOp::Halt)]);
        // 04: halt.
        p.push(vec![Parcel::halt(), Parcel::halt()]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(2)).unwrap();
        sim.run(10).unwrap();
        assert_eq!(sim.reg(Reg(1)).as_i32(), 1);
    }

    #[test]
    fn io_ports_integrate() {
        let mut p = Program::new(1);
        // 00: in p0,r0 ; if cc0(r0 != 0 via compare next cycle)... simpler:
        // poll until non-zero using compare+branch.
        // 00: in p0,r0; goto 01
        p.push(vec![Parcel::data(
            DataOp::PortIn { port: 0, d: Reg(0) },
            ControlOp::Goto(Addr(1)),
        )]);
        // 01: ne r0,#0 ; goto 02
        p.push(vec![Parcel::data(
            DataOp::cmp(CmpOp::Ne, Reg(0).into(), Operand::imm_i32(0)),
            ControlOp::Goto(Addr(2)),
        )]);
        // 02: if cc0 -> 03 else 00
        p.push(vec![Parcel::data(
            DataOp::Nop,
            ControlOp::branch(CondSource::Cc(FuId(0)), Addr(3), Addr(0)),
        )]);
        // 03: out r0,p0 ; halt
        p.push(vec![Parcel::data(
            DataOp::PortOut {
                port: 0,
                a: Reg(0).into(),
            },
            ControlOp::Halt,
        )]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(1)).unwrap();
        let mut port = IoPort::new();
        port.schedule(4, Value::I32(77));
        sim.attach_port(port);
        sim.run(100).unwrap();
        assert_eq!(sim.reg(Reg(0)).as_i32(), 77);
        let events = sim.ports()[0].written();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].value.as_i32(), 77);
    }

    #[test]
    fn fetch_out_of_range_is_reported() {
        // Program length 1 with a goto to 0 — then mutate width-1 program to
        // jump past the end via an unvalidated path is impossible; instead
        // build a program that validates (goto 1 with len 2) and truncate...
        // Simplest: direct construction with validation bypassed is not
        // possible through the public API, so we assert validation catches
        // the bad target instead.
        let mut p = Program::new(1);
        p.push(vec![Parcel::goto(Addr(3))]);
        assert!(Xsim::new(p, MachineConfig::with_width(1)).is_err());
    }

    #[test]
    fn stats_branch_counters() {
        let mut p = Program::new(1);
        p.push(vec![Parcel::data(
            DataOp::cmp(CmpOp::Eq, Operand::imm_i32(1), Operand::imm_i32(1)),
            ControlOp::Goto(Addr(1)),
        )]);
        p.push(vec![Parcel::data(
            DataOp::Nop,
            ControlOp::branch(CondSource::Cc(FuId(0)), Addr(2), Addr(2)),
        )]);
        p.push(vec![Parcel::halt()]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(1)).unwrap();
        let summary = sim.run(10).unwrap();
        assert_eq!(summary.stats.cond_branches, 1);
        assert_eq!(summary.stats.branches_taken, 1);
        assert_eq!(summary.stats.compares, 1);
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let mut p = Program::new(1);
        p.push(vec![Parcel::halt()]);
        let err = Xsim::new(p, MachineConfig::with_width(1).reg_ports(1, 2)).unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
    }

    #[test]
    fn latency_stall_holds_pc_and_buffers_branch() {
        use crate::timing::TimingSpec;
        // 00: load r1 = M[0]; goto 01.   01: halt.
        let mut p = Program::new(1);
        p.push(vec![Parcel::data(
            DataOp::load(Operand::imm_i32(0), Operand::imm_i32(0), Reg(1)),
            ControlOp::Goto(Addr(1)),
        )]);
        p.push(vec![Parcel::halt()]);
        let cfg = MachineConfig::with_width(1).timing(TimingSpec::parse("latency:mem=3").unwrap());
        let mut sim = Xsim::new(p, cfg).unwrap();
        sim.mem_mut().poke(0, Value::I32(42)).unwrap();

        // Cycle 0 issues the load (value commits immediately) and begins a
        // 2-cycle stall with the goto buffered.
        sim.step().unwrap();
        assert_eq!(sim.reg(Reg(1)).as_i32(), 42);
        assert_eq!(sim.pcs(), &[Some(Addr(0))], "stall holds the PC");
        sim.step().unwrap();
        assert_eq!(sim.pcs(), &[Some(Addr(0))]);
        sim.step().unwrap();
        assert_eq!(sim.pcs(), &[Some(Addr(1))], "buffered goto applies");

        let summary = sim.run(10).unwrap();
        assert_eq!(summary.cycles, 4, "2 ideal cycles + 2 stall cycles");
        assert_eq!(summary.stats.stall_cycles, 2);
        assert_eq!(summary.stats.contention_stalls, 0);
    }

    #[test]
    fn stalled_fu_holds_busy_so_barrier_waits_out_the_stall() {
        use crate::timing::TimingSpec;
        // FU0: slow load (BUSY held through the stall), then DONE+halt.
        // FU1: ALL-SS barrier spin until FU0 arrives.
        let mut p = Program::new(2);
        let barrier = ControlOp::branch(CondSource::AllSync, Addr(1), Addr(0));
        p.push(vec![
            Parcel::data(
                DataOp::load(Operand::imm_i32(0), Operand::imm_i32(0), Reg(1)),
                ControlOp::Goto(Addr(1)),
            ),
            Parcel::data(DataOp::Nop, barrier).done(),
        ]);
        p.push(vec![Parcel::halt().done(), Parcel::halt().done()]);
        let cfg = MachineConfig::with_width(2).timing(TimingSpec::parse("latency:mem=5").unwrap());
        let mut sim = Xsim::new(p, cfg).unwrap();
        sim.mem_mut().poke(0, Value::I32(7)).unwrap();
        let summary = sim.run(50).unwrap();
        // Cycle 0 issues the load; cycles 1-4 stall FU0 while FU1 spins;
        // cycle 5 FU0 halts with DONE, releasing FU1; cycle 6 FU1 halts.
        assert_eq!(summary.cycles, 7);
        assert_eq!(summary.stats.stall_cycles, 4);
        assert_eq!(summary.stats.spin_cycles, 5);
        assert_eq!(sim.reg(Reg(1)).as_i32(), 7);
    }

    #[test]
    fn banked_memory_contention_is_counted() {
        use crate::timing::TimingSpec;
        // Two same-cycle loads forced into one bank.
        let mut p = Program::new(2);
        p.push(vec![
            Parcel::data(
                DataOp::load(Operand::imm_i32(0), Operand::imm_i32(0), Reg(1)),
                ControlOp::Halt,
            ),
            Parcel::data(
                DataOp::load(Operand::imm_i32(1), Operand::imm_i32(0), Reg(2)),
                ControlOp::Halt,
            ),
        ]);
        let ideal = {
            let mut sim = Xsim::new(p.clone(), MachineConfig::with_width(2)).unwrap();
            sim.run(10).unwrap().cycles
        };
        let cfg = MachineConfig::with_width(2).timing(TimingSpec::parse("banked:1").unwrap());
        let mut sim = Xsim::new(p, cfg).unwrap();
        let summary = sim.run(10).unwrap();
        assert!(summary.cycles > ideal);
        assert_eq!(summary.stats.contention_stalls, 1);
        assert_eq!(summary.stats.stall_cycles, 1);
    }

    #[test]
    fn unit_latency_matches_ideal_counts() {
        use crate::timing::TimingSpec;
        let mut p = Program::new(1);
        p.push(vec![addp(0, 5, 1, ControlOp::Goto(Addr(1)))]);
        p.push(vec![addp(1, 10, 2, ControlOp::Halt)]);
        let cfg = MachineConfig::with_width(1).timing(TimingSpec::parse("latency:unit").unwrap());
        let mut sim = Xsim::new(p, cfg).unwrap();
        let summary = sim.run(10).unwrap();
        assert_eq!(summary.cycles, 2);
        assert_eq!(summary.stats.stall_cycles, 0);
    }

    #[test]
    fn set_timing_validates_and_swaps_models() {
        let mut p = Program::new(1);
        p.push(vec![Parcel::halt()]);
        let mut sim = Xsim::new(p, MachineConfig::with_width(1)).unwrap();
        assert!(sim
            .set_timing(&crate::TimingSpec::Banked { banks: 0 })
            .is_err());
        sim.set_timing(&crate::TimingSpec::Banked { banks: 2 })
            .unwrap();
        assert_eq!(sim.timing().name(), "banked:2");
        assert_eq!(sim.config().timing, crate::TimingSpec::Banked { banks: 2 });
    }
}
