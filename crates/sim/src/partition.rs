//! SSET partitions.
//!
//! The paper (§2.4) defines a *Synchronous Set* (SSET) as a set of
//! functional units currently executing a single program thread — formally,
//! FUs *i* and *j* are in the same SSET at time *t* iff, given the program
//! and the control state of one, the control state of the other is uniquely
//! determined. A *partition* is the current division of all FUs into SSETs,
//! written `{0,1}{2}{3,6,7}{4,5}`.
//!
//! # How the simulator computes partitions
//!
//! The formal definition quantifies over reachable states, which is not
//! directly computable cycle-by-cycle, so the simulator uses a *decision
//! key* refinement that reproduces the paper's published trace (Figure 10)
//! exactly:
//!
//! Each cycle, every running FU's executed control operation is summarized
//! as a key — `Uncond(target)` for `-> T:`, or `Cond(source, t1, t2)` for a
//! conditional branch. The next cycle's partition groups FUs by key
//! equality:
//!
//! * two FUs executing the same conditional (same condition source, same
//!   target pair) make the same decision, so one's next state determines the
//!   other's — same SSET;
//! * two FUs branching unconditionally to a common target join — this is
//!   the paper's fork/join re-merge (MINMAX cycle 3 → 4);
//! * FUs conditioned on *different* sources (`cc0` vs `cc1`) are split even
//!   when their dynamic targets coincide — exactly why Figure 10 reports
//!   `{0,1}{2}{3}` at cycle 3 although FU2 and FU3 both sit at `04:`;
//! * an `ALL-SS` barrier release merges every FU spinning on it;
//! * halted FUs have constant control state and are grouped into one
//!   (inert) SSET.

use std::fmt;

use serde::{Deserialize, Serialize};

use ximd_isa::{Addr, CondSource, ControlOp, FuId};

/// The decision summary of one FU's control operation in one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DecisionKey {
    /// Unconditional branch to a target.
    Uncond(u32),
    /// Conditional branch on a source with a target pair.
    Cond(CondKey, u32, u32),
    /// The unit halted (or was already halted).
    Halted,
}

/// Orderable mirror of [`CondSource`] for grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CondKey {
    /// Branch on `CC_j`.
    Cc(u8),
    /// Branch on `SS_j`.
    Sync(u8),
    /// Branch on all sync signals.
    AllSync,
    /// Branch on any sync signal.
    AnySync,
}

impl From<CondSource> for CondKey {
    fn from(value: CondSource) -> Self {
        match value {
            CondSource::Cc(fu) => CondKey::Cc(fu.0),
            CondSource::Sync(fu) => CondKey::Sync(fu.0),
            CondSource::AllSync => CondKey::AllSync,
            CondSource::AnySync => CondKey::AnySync,
        }
    }
}

impl DecisionKey {
    /// Summarizes an executed control operation.
    pub fn of(ctrl: &ControlOp) -> DecisionKey {
        match *ctrl {
            ControlOp::Goto(Addr(t)) => DecisionKey::Uncond(t),
            ControlOp::Branch {
                cond,
                taken,
                not_taken,
            } => DecisionKey::Cond(cond.into(), taken.0, not_taken.0),
            ControlOp::Halt => DecisionKey::Halted,
        }
    }
}

/// A partition of the machine's functional units into SSETs.
///
/// Displayed in the paper's brace notation with SSETs ordered by their
/// lowest member: `{0,1}{2}{3}`.
///
/// # Example
///
/// ```
/// use ximd_isa::FuId;
/// use ximd_sim::Partition;
///
/// let p = Partition::single(4);
/// assert_eq!(p.to_string(), "{0,1,2,3}");
/// assert_eq!(p.num_ssets(), 1);
/// assert!(p.same_sset(FuId(0), FuId(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Partition {
    // Invariant: each inner vec is sorted ascending and non-empty; outer vec
    // sorted by first element; the union is exactly 0..width.
    ssets: Vec<Vec<FuId>>,
}

impl Partition {
    /// The partition with all `width` FUs in one SSET (machine start-up:
    /// "assume that in every example program, all functional units begin
    /// execution together at address 00:").
    pub fn single(width: usize) -> Partition {
        Partition {
            ssets: vec![(0..width).map(|i| FuId(i as u8)).collect()],
        }
    }

    /// Builds a partition from explicit SSETs.
    ///
    /// # Panics
    ///
    /// Panics if the sets are not disjoint or non-empty. Intended for tests
    /// and assertions; the simulator builds partitions from decision keys.
    pub fn from_ssets(mut ssets: Vec<Vec<FuId>>) -> Partition {
        let mut seen = std::collections::HashSet::new();
        for s in &mut ssets {
            assert!(!s.is_empty(), "empty SSET");
            s.sort_unstable();
            for fu in s.iter() {
                assert!(seen.insert(*fu), "FU {fu} in two SSETs");
            }
        }
        ssets.sort_by_key(|s| s[0]);
        Partition { ssets }
    }

    /// Computes the partition implied by one cycle's decision keys.
    ///
    /// `keys[i]` is FU *i*'s decision. FUs sharing a key form one SSET.
    pub fn from_decisions(keys: &[DecisionKey]) -> Partition {
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| (keys[i], i));
        let mut ssets: Vec<Vec<FuId>> = Vec::new();
        for &i in &order {
            match ssets.last_mut() {
                Some(last) if keys[last[0].index()] == keys[i] => last.push(FuId(i as u8)),
                _ => ssets.push(vec![FuId(i as u8)]),
            }
        }
        for s in &mut ssets {
            s.sort_unstable();
        }
        ssets.sort_by_key(|s| s[0]);
        Partition { ssets }
    }

    /// Number of SSETs (concurrent instruction streams).
    pub fn num_ssets(&self) -> usize {
        self.ssets.len()
    }

    /// The SSETs, each sorted ascending, ordered by lowest member.
    pub fn ssets(&self) -> &[Vec<FuId>] {
        &self.ssets
    }

    /// Returns `true` if `a` and `b` are currently in the same SSET.
    pub fn same_sset(&self, a: FuId, b: FuId) -> bool {
        self.ssets.iter().any(|s| s.contains(&a) && s.contains(&b))
    }

    /// Total number of FUs covered by the partition.
    pub fn width(&self) -> usize {
        self.ssets.iter().map(Vec::len).sum()
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for sset in &self.ssets {
            write!(f, "{{")?;
            for (i, fu) in sset.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", fu.0)?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ximd_isa::ControlOp;

    fn cc(fu: u8, t1: u32, t2: u32) -> DecisionKey {
        DecisionKey::of(&ControlOp::branch(
            CondSource::Cc(FuId(fu)),
            Addr(t1),
            Addr(t2),
        ))
    }

    fn goto(t: u32) -> DecisionKey {
        DecisionKey::of(&ControlOp::Goto(Addr(t)))
    }

    #[test]
    fn single_partition_display() {
        assert_eq!(Partition::single(8).to_string(), "{0,1,2,3,4,5,6,7}");
        assert_eq!(Partition::single(1).to_string(), "{0}");
    }

    #[test]
    fn paper_notation_for_mixed_partition() {
        let p = Partition::from_ssets(vec![
            vec![FuId(0), FuId(1)],
            vec![FuId(2)],
            vec![FuId(3), FuId(6), FuId(7)],
            vec![FuId(4), FuId(5)],
        ]);
        assert_eq!(p.to_string(), "{0,1}{2}{3,6,7}{4,5}");
        assert_eq!(p.num_ssets(), 4);
        assert_eq!(p.width(), 8);
    }

    #[test]
    #[should_panic(expected = "two SSETs")]
    fn from_ssets_rejects_overlap() {
        Partition::from_ssets(vec![vec![FuId(0)], vec![FuId(0)]]);
    }

    #[test]
    fn minmax_fork_cycle_2_to_3() {
        // MINMAX at address 02: FU0/FU1 `-> 03:`, FU2 `if cc0 04:|03:`,
        // FU3 `if cc1 04:|03:` → partition {0,1}{2}{3} even if the dynamic
        // targets coincide (Figure 10, cycle 3).
        let keys = [goto(3), goto(3), cc(0, 4, 3), cc(1, 4, 3)];
        let p = Partition::from_decisions(&keys);
        assert_eq!(p.to_string(), "{0,1}{2}{3}");
    }

    #[test]
    fn minmax_join_cycle_3_to_4() {
        // All four units `-> 05:` → single SSET again (Figure 10, cycle 4).
        let keys = [goto(5), goto(5), goto(5), goto(5)];
        assert_eq!(Partition::from_decisions(&keys).to_string(), "{0,1,2,3}");
    }

    #[test]
    fn shared_conditional_keeps_units_together() {
        // All four units `if cc2 08:|02:` — one global condition, one SSET
        // (MINMAX loop-back branch).
        let keys = [cc(2, 8, 2); 4];
        assert_eq!(Partition::from_decisions(&keys).num_ssets(), 1);
    }

    #[test]
    fn different_targets_split_even_same_condition() {
        let keys = [cc(0, 8, 2), cc(0, 9, 2)];
        assert_eq!(Partition::from_decisions(&keys).num_ssets(), 2);
    }

    #[test]
    fn barrier_release_merges_all() {
        let all = DecisionKey::of(&ControlOp::branch(
            CondSource::AllSync,
            Addr(0x11),
            Addr(0x10),
        ));
        let keys = [all; 4];
        assert_eq!(Partition::from_decisions(&keys).num_ssets(), 1);
    }

    #[test]
    fn halted_units_form_one_inert_sset() {
        let keys = [DecisionKey::Halted, goto(1), DecisionKey::Halted, goto(1)];
        let p = Partition::from_decisions(&keys);
        assert_eq!(p.to_string(), "{0,2}{1,3}");
    }

    #[test]
    fn same_sset_queries() {
        let keys = [goto(1), goto(1), goto(2), DecisionKey::Halted];
        let p = Partition::from_decisions(&keys);
        assert!(p.same_sset(FuId(0), FuId(1)));
        assert!(!p.same_sset(FuId(0), FuId(2)));
        assert!(!p.same_sset(FuId(2), FuId(3)));
    }

    #[test]
    fn sync_vs_cc_conditions_split() {
        let a = DecisionKey::of(&ControlOp::branch(
            CondSource::Cc(FuId(0)),
            Addr(1),
            Addr(2),
        ));
        let b = DecisionKey::of(&ControlOp::branch(
            CondSource::Sync(FuId(0)),
            Addr(1),
            Addr(2),
        ));
        assert_eq!(Partition::from_decisions(&[a, b]).num_ssets(), 2);
    }
}
