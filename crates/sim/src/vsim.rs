//! **vsim** — the companion VLIW simulator.
//!
//! Identical datapath to [`Xsim`](crate::Xsim) (same functional units,
//! register file, memory, I/O ports and timing), but a single global
//! sequencer: every cycle one wide instruction executes and *one* control
//! operation determines the next PC. Used as the baseline in the paper's
//! XIMD-vs-VLIW comparisons (§4.1).

use ximd_isa::{Addr, FuId, Reg, Value};

use crate::config::MachineConfig;
use crate::device::IoPort;
use crate::engine::{control_next, execute_data, memory_addr, run_loop, Engine};
use crate::error::SimError;
use crate::memory::Memory;
use crate::regfile::RegisterFile;
use crate::stats::SimStats;
use crate::timing::{TimingModel, TimingSpec};
use crate::vliw::VliwProgram;
use crate::xsim::{RunSummary, StepStatus};

/// The VLIW simulator.
///
/// # Example
///
/// ```
/// use ximd_isa::{Addr, AluOp, DataOp, Operand, Reg, ControlOp};
/// use ximd_sim::{MachineConfig, Vsim, VliwInstruction, VliwProgram};
///
/// let mut p = VliwProgram::new(2);
/// p.push(VliwInstruction {
///     ops: vec![
///         DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(1), Reg(1)),
///         DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(2), Reg(2)),
///     ],
///     ctrl: ControlOp::Halt,
/// });
/// let mut sim = Vsim::new(p, MachineConfig::with_width(2))?;
/// sim.write_reg(Reg(0), 10i32.into());
/// sim.run(10)?;
/// assert_eq!(sim.reg(Reg(1)).as_i32(), 11);
/// assert_eq!(sim.reg(Reg(2)).as_i32(), 12);
/// # Ok::<(), ximd_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Vsim {
    pub(crate) config: MachineConfig,
    pub(crate) program: VliwProgram,
    pub(crate) regs: RegisterFile,
    pub(crate) mem: Memory,
    pub(crate) ports: Vec<IoPort>,
    pub(crate) pc: Option<Addr>,
    pub(crate) ccs: Vec<Option<bool>>,
    pub(crate) cycle: u64,
    pub(crate) stats: SimStats,
    pub(crate) timing: Box<dyn TimingModel>,
    /// Whole-word stall state: a VLIW machine advances in lock step, so the
    /// word stalls for the *longest* of its parcels' extra cycles.
    stall_remaining: u64,
    stall_next: Option<Addr>,
}

impl Vsim {
    /// Builds a simulator for `program` on a machine described by `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] if the configuration is nonsensical, or
    /// [`SimError::Isa`] if the program fails validation (width mismatch,
    /// out-of-range references, or sync-signal conditions, which a VLIW
    /// machine does not have).
    pub fn new(program: VliwProgram, config: MachineConfig) -> Result<Vsim, SimError> {
        config.validate()?;
        if program.width() != config.width {
            return Err(SimError::Isa(ximd_isa::IsaError::WidthMismatch {
                got: program.width(),
                expected: config.width,
            }));
        }
        program.validate(config.num_regs)?;
        Ok(Vsim {
            regs: RegisterFile::new(config.num_regs),
            mem: Memory::new(config.mem_words),
            ports: Vec::new(),
            pc: Some(Addr(0)),
            ccs: vec![None; config.width],
            cycle: 0,
            stats: SimStats {
                width: config.width,
                ops_per_fu: vec![0; config.width],
                ..SimStats::default()
            },
            timing: config.timing.build(),
            stall_remaining: 0,
            stall_next: None,
            config,
            program,
        })
    }

    /// The machine configuration the simulator was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The active timing model.
    pub fn timing(&self) -> &dyn TimingModel {
        &*self.timing
    }

    /// Replaces the timing model (machine setup; see
    /// [`Xsim::set_timing`](crate::Xsim::set_timing)).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] for degenerate specs.
    pub fn set_timing(&mut self, spec: &TimingSpec) -> Result<(), SimError> {
        spec.validate()?;
        if self.stall_remaining > 0 {
            self.stall_remaining = 0;
            self.pc = self.stall_next;
        }
        self.config.timing = spec.clone();
        self.timing = spec.build();
        Ok(())
    }

    /// Attaches an I/O port device, returning its port number.
    pub fn attach_port(&mut self, port: IoPort) -> u8 {
        self.ports.push(port);
        (self.ports.len() - 1) as u8
    }

    /// The attached I/O ports.
    pub fn ports(&self) -> &[IoPort] {
        &self.ports
    }

    /// Reads a register.
    pub fn reg(&self, reg: Reg) -> Value {
        self.regs.read(reg)
    }

    /// Sets a register (machine setup).
    pub fn write_reg(&mut self, reg: Reg, value: Value) {
        self.regs.poke(reg, value);
    }

    /// Shared memory (read access).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Shared memory (setup access).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Current cycle number.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The global program counter (`None` once halted).
    pub fn pc(&self) -> Option<Addr> {
        self.pc
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Returns `true` once the machine has halted.
    pub fn halted(&self) -> bool {
        self.pc.is_none()
    }

    /// Executes one machine cycle.
    ///
    /// # Errors
    ///
    /// Returns a machine check on invalid fetch, same-cycle write conflicts
    /// or data faults, exactly as [`Xsim::step`](crate::Xsim::step).
    pub fn step(&mut self) -> Result<StepStatus, SimError> {
        let Some(pc) = self.pc else {
            return Ok(StepStatus::AllHalted);
        };

        // A stalled word holds the whole machine: the VLIW has one
        // sequencer, so every FU waits out the longest parcel latency.
        if self.stall_remaining > 0 {
            self.stall_remaining -= 1;
            self.stats.stall_cycles += self.config.width as u64;
            if self.stall_remaining == 0 {
                self.pc = self.stall_next;
            }
            self.cycle += 1;
            self.stats.cycles = self.cycle;
            self.stats.max_concurrent_streams = 1;
            self.stats.sset_cycle_sum += 1;
            return Ok(if self.pc.is_none() {
                StepStatus::AllHalted
            } else {
                StepStatus::Running
            });
        }

        let len = self.program.len() as u32;
        if pc.0 >= len {
            return Err(SimError::PcOutOfRange {
                fu: FuId(0),
                pc,
                len,
            });
        }
        let instr = self.program.get(pc).expect("bounds checked").clone();
        self.timing.begin_cycle(self.cycle);

        let mut cc_updates: Vec<(usize, bool)> = Vec::new();
        let mut extra = 0u64;
        for (fu, op) in instr.ops.iter().enumerate() {
            let issue = self
                .timing
                .issue(FuId(fu as u8), op, memory_addr(op, &self.regs));
            extra = extra.max(issue.extra_cycles);
            self.stats.contention_stalls += issue.contention_stalls;
            if let Some(cc) = execute_data(
                FuId(fu as u8),
                op,
                self.cycle,
                &mut self.regs,
                &mut self.mem,
                &mut self.ports,
                &mut self.stats,
            )? {
                cc_updates.push((fu, cc));
            }
        }
        self.regs.commit(self.config.reg_conflicts, self.cycle)?;
        self.mem.commit(self.config.mem_conflicts, self.cycle)?;
        self.stats.conflicts_resolved =
            self.regs.conflicts_resolved() + self.mem.conflicts_resolved();

        // VLIW conditions are CC-based only (validated); the empty sync
        // slice is never consulted.
        let cc_now: Vec<bool> = self.ccs.iter().map(|c| c.unwrap_or(false)).collect();
        let next = control_next(&instr.ctrl, &cc_now, &[], &mut self.stats);
        if next == self.pc {
            self.stats.spin_cycles += 1;
        }
        if extra > 0 {
            self.stall_remaining = extra;
            self.stall_next = next;
        } else {
            self.pc = next;
        }

        for (fu, cc) in cc_updates {
            self.ccs[fu] = Some(cc);
        }

        self.cycle += 1;
        self.stats.cycles = self.cycle;
        // A VLIW machine executes exactly one instruction stream.
        self.stats.max_concurrent_streams = 1;
        self.stats.sset_cycle_sum += 1;

        if self.pc.is_none() {
            Ok(StepStatus::AllHalted)
        } else {
            Ok(StepStatus::Running)
        }
    }

    /// Runs until the machine halts or `max_cycles` elapse.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] if the budget is exhausted first, or
    /// any machine check raised by [`Vsim::step`].
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, SimError> {
        run_loop(self, None, max_cycles)
    }

    /// Runs on the pre-decoded fast path: same contract and observable
    /// results as [`Vsim::run`] (see [`crate::decoded`] for the state
    /// consistency rules after an error).
    ///
    /// # Errors
    ///
    /// Exactly the errors [`Vsim::run`] reports.
    pub fn run_decoded(&mut self, max_cycles: u64) -> Result<RunSummary, SimError> {
        crate::decoded::run_vsim_decoded(self, max_cycles)
    }
}

impl Engine for Vsim {
    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn step(&mut self) -> Result<StepStatus, SimError> {
        Vsim::step(self)
    }

    fn all_parked(&self, park: Addr) -> bool {
        self.pc.is_none_or(|a| a == park)
    }

    fn finished(&self) -> bool {
        self.halted()
    }

    fn summary(&self) -> RunSummary {
        RunSummary {
            cycles: self.cycle,
            stats: self.stats.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vliw::VliwInstruction;
    use crate::xsim::Xsim;
    use ximd_isa::{AluOp, CmpOp, CondSource, ControlOp, DataOp, Operand};

    fn counting_loop(n: i32) -> VliwProgram {
        // r0 counts to n: classic compare-branch loop, one control op/cycle.
        let mut p = VliwProgram::new(2);
        // 00: r0 += 1 | cmp r0 == n-1 (sets cc1)  ; goto 01
        p.push(VliwInstruction {
            ops: vec![
                DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(1), Reg(0)),
                DataOp::cmp(CmpOp::Eq, Reg(0).into(), Operand::imm_i32(n - 1)),
            ],
            ctrl: ControlOp::Goto(Addr(1)),
        });
        // 01: if cc1 halt-path else loop
        p.push(VliwInstruction {
            ops: vec![DataOp::Nop, DataOp::Nop],
            ctrl: ControlOp::branch(CondSource::Cc(FuId(1)), Addr(2), Addr(0)),
        });
        // 02: halt
        p.push(VliwInstruction::halt(2));
        p
    }

    #[test]
    fn single_sequencer_executes_wide_words() {
        let mut sim = Vsim::new(counting_loop(4), MachineConfig::with_width(2)).unwrap();
        sim.run(100).unwrap();
        assert!(sim.halted());
        assert_eq!(sim.reg(Reg(0)).as_i32(), 4);
        assert_eq!(sim.stats().max_concurrent_streams, 1);
    }

    #[test]
    fn vsim_matches_xsim_on_vliw_style_programs() {
        // The defining property (§3.1): a VLIW program runs identically on
        // XIMD with duplicated control fields.
        let vliw = counting_loop(7);
        let mut vs = Vsim::new(vliw.clone(), MachineConfig::with_width(2)).unwrap();
        let vsum = vs.run(1000).unwrap();

        let mut xs = Xsim::new(vliw.to_ximd(), MachineConfig::with_width(2)).unwrap();
        let xsum = xs.run(1000).unwrap();

        assert_eq!(vsum.cycles, xsum.cycles);
        assert_eq!(vs.reg(Reg(0)), xs.reg(Reg(0)));
        assert_eq!(vsum.stats.ops, xsum.stats.ops);
        // And the XIMD run never forked.
        assert_eq!(xsum.stats.max_concurrent_streams, 1);
    }

    #[test]
    fn halt_stops_machine() {
        let mut p = VliwProgram::new(1);
        p.push(VliwInstruction::halt(1));
        let mut sim = Vsim::new(p, MachineConfig::with_width(1)).unwrap();
        let summary = sim.run(5).unwrap();
        assert_eq!(summary.cycles, 1);
        assert_eq!(sim.step().unwrap(), StepStatus::AllHalted);
    }

    #[test]
    fn cycle_limit_reported() {
        let mut p = VliwProgram::new(1);
        p.push(VliwInstruction::goto(1, Addr(0)));
        let mut sim = Vsim::new(p, MachineConfig::with_width(1)).unwrap();
        assert_eq!(sim.run(3), Err(SimError::CycleLimit { limit: 3 }));
    }

    #[test]
    fn width_mismatch_rejected() {
        let p = VliwProgram::new(2);
        assert!(Vsim::new(p, MachineConfig::with_width(4)).is_err());
    }

    #[test]
    fn word_level_stall_under_latency_model() {
        // One load in a 2-wide word stalls the whole machine: lock-step
        // sequencing means both FUs wait out the longest parcel latency.
        let mut p = VliwProgram::new(2);
        p.push(VliwInstruction {
            ops: vec![
                DataOp::load(Operand::imm_i32(5), Operand::imm_i32(0), Reg(1)),
                DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(1), Reg(2)),
            ],
            ctrl: ControlOp::Goto(Addr(1)),
        });
        p.push(VliwInstruction::halt(2));
        let cfg = MachineConfig::with_width(2).timing(TimingSpec::parse("latency:mem=4").unwrap());
        let mut sim = Vsim::new(p, cfg).unwrap();
        sim.mem_mut().poke(5, Value::I32(9)).unwrap();
        let summary = sim.run(20).unwrap();
        // 2 ideal cycles + 3 stall cycles for the word.
        assert_eq!(summary.cycles, 5);
        assert_eq!(summary.stats.stall_cycles, 6, "2 FUs x 3 stalled cycles");
        assert_eq!(sim.reg(Reg(1)).as_i32(), 9);
        assert_eq!(sim.reg(Reg(2)).as_i32(), 1);
    }

    #[test]
    fn banked_contention_in_one_word() {
        let mut p = VliwProgram::new(2);
        p.push(VliwInstruction {
            ops: vec![
                DataOp::load(Operand::imm_i32(4), Operand::imm_i32(0), Reg(1)),
                DataOp::load(Operand::imm_i32(6), Operand::imm_i32(0), Reg(2)),
            ],
            ctrl: ControlOp::Halt,
        });
        let cfg = MachineConfig::with_width(2).timing(TimingSpec::parse("banked:2").unwrap());
        let mut sim = Vsim::new(p, cfg).unwrap();
        let summary = sim.run(20).unwrap();
        // Both loads hit bank 0 of 2: the second queues one cycle.
        assert_eq!(summary.stats.contention_stalls, 1);
        assert_eq!(summary.cycles, 2);
    }

    #[test]
    fn invalid_config_rejected() {
        let mut p = VliwProgram::new(1);
        p.push(VliwInstruction::halt(1));
        let err = Vsim::new(p, MachineConfig::with_width(0)).unwrap_err();
        assert!(matches!(err, SimError::Config(_)));
    }

    #[test]
    fn memory_and_ports_available() {
        let mut p = VliwProgram::new(1);
        p.push(VliwInstruction {
            ops: vec![DataOp::load(
                Operand::imm_i32(5),
                Operand::imm_i32(0),
                Reg(1),
            )],
            ctrl: ControlOp::Halt,
        });
        let mut sim = Vsim::new(p, MachineConfig::with_width(1)).unwrap();
        sim.mem_mut().poke(5, Value::I32(55)).unwrap();
        sim.run(5).unwrap();
        assert_eq!(sim.reg(Reg(1)).as_i32(), 55);
    }
}
