//! The execution core shared by every simulator engine.
//!
//! All engines — [`crate::Xsim`], [`crate::Vsim`] and the decoded fast path
//! in [`crate::decoded`] — use identical functional units; what differs is
//! the control path (per-FU sequencers vs. one global sequencer) and the
//! instruction representation (interpreted vs. pre-decoded). This module
//! holds the single definition of the *semantics*:
//!
//! * [`execute_data`] — one data operation, start-of-cycle reads,
//!   end-of-cycle (staged) writes;
//! * [`memory_addr`] — the effective address a memory parcel will touch
//!   (what a [`TimingModel`](crate::TimingModel) arbitrates over);
//! * [`control_next`] — one control operation against latched CCs and this
//!   cycle's combinational sync signals;
//! * [`Engine`] / [`run_loop`] / [`run_fast_path`] — the run-to-completion
//!   and park-detection loop shared by every engine, including the decoded
//!   fast path's build/run/write-back plumbing.
//!
//! Timing lives *outside* this module: a [`crate::TimingModel`] only
//! stretches FU occupancy; it never changes what these functions compute.

use ximd_isa::{Addr, ControlOp, DataOp, FuId, IsaError, Operand, Value};

use crate::device::IoPort;
use crate::error::SimError;
use crate::memory::Memory;
use crate::regfile::RegisterFile;
use crate::stats::SimStats;
use crate::xsim::{RunSummary, StepStatus};

/// The cycle-model memory interface the decoded data phase executes
/// against: start-of-cycle reads, end-of-cycle staged writes. [`Memory`]
/// implements it directly; the lane engine implements it with a per-lane
/// view that routes the same operations at one lane's slab of a batched
/// memory, so `decoded::exec_op` is shared verbatim between the two.
pub(crate) trait CycleMem {
    /// Reads the word at `addr` as of the start of the current cycle.
    fn read(&self, addr: i64) -> Result<Value, SimError>;
    /// Stages a write to commit at end of cycle.
    fn stage_write(&mut self, fu: FuId, addr: i64, value: Value) -> Result<(), SimError>;
}

impl CycleMem for Memory {
    #[inline]
    fn read(&self, addr: i64) -> Result<Value, SimError> {
        Memory::read(self, addr)
    }

    #[inline]
    fn stage_write(&mut self, fu: FuId, addr: i64, value: Value) -> Result<(), SimError> {
        Memory::stage_write(self, fu, addr, value)
    }
}

/// Executes `op` on behalf of `fu`, staging register and memory writes.
///
/// Returns the new condition-code value if the operation was a compare.
pub(crate) fn execute_data(
    fu: FuId,
    op: &DataOp,
    cycle: u64,
    regs: &mut RegisterFile,
    mem: &mut Memory,
    ports: &mut [IoPort],
    stats: &mut SimStats,
) -> Result<Option<bool>, SimError> {
    let read = |o: Operand, regs: &RegisterFile| -> Value {
        match o {
            Operand::Reg(r) => regs.read(r),
            Operand::Imm(v) => v,
        }
    };
    let fault = |e: IsaError| SimError::DataFault {
        fu,
        cycle,
        fault: e,
    };

    if !op.is_nop() {
        if let Some(slot) = stats.ops_per_fu.get_mut(fu.index()) {
            *slot += 1;
        }
    }
    match *op {
        DataOp::Nop => {
            stats.nops += 1;
            Ok(None)
        }
        DataOp::Alu { op, a, b, d } => {
            stats.ops += 1;
            let result = op.eval(read(a, regs), read(b, regs)).map_err(fault)?;
            regs.stage_write(fu, d, result);
            Ok(None)
        }
        DataOp::Un { op, a, d } => {
            stats.ops += 1;
            let result = op.eval(read(a, regs));
            regs.stage_write(fu, d, result);
            Ok(None)
        }
        DataOp::Cmp { op, a, b } => {
            stats.ops += 1;
            stats.compares += 1;
            Ok(Some(op.eval(read(a, regs), read(b, regs))))
        }
        DataOp::Load { a, b, d } => {
            stats.ops += 1;
            stats.loads += 1;
            let addr = read(a, regs).as_i32() as i64 + read(b, regs).as_i32() as i64;
            let value = mem.read(addr)?;
            regs.stage_write(fu, d, value);
            Ok(None)
        }
        DataOp::Store { a, b } => {
            stats.ops += 1;
            stats.stores += 1;
            let value = read(a, regs);
            let addr = read(b, regs).as_i32() as i64;
            mem.stage_write(fu, addr, value)?;
            Ok(None)
        }
        DataOp::PortIn { port, d } => {
            stats.ops += 1;
            let count = ports.len();
            let device = ports
                .get_mut(port as usize)
                .ok_or(SimError::PortOutOfRange { port, count })?;
            let value = device.read(cycle);
            regs.stage_write(fu, d, value);
            Ok(None)
        }
        DataOp::PortOut { port, a } => {
            stats.ops += 1;
            let value = read(a, regs);
            let count = ports.len();
            let device = ports
                .get_mut(port as usize)
                .ok_or(SimError::PortOutOfRange { port, count })?;
            device.write(cycle, value);
            Ok(None)
        }
    }
}

/// The effective word address `op` will touch, computed from start-of-cycle
/// register state (the same reads [`execute_data`] performs). `None` for
/// non-memory operations. This is what bank-aware timing models arbitrate
/// over, *before* the access itself runs.
pub(crate) fn memory_addr(op: &DataOp, regs: &RegisterFile) -> Option<i64> {
    let read = |o: Operand| -> Value {
        match o {
            Operand::Reg(r) => regs.read(r),
            Operand::Imm(v) => v,
        }
    };
    match *op {
        DataOp::Load { a, b, .. } => Some(read(a).as_i32() as i64 + read(b).as_i32() as i64),
        DataOp::Store { b, .. } => Some(read(b).as_i32() as i64),
        _ => None,
    }
}

/// Evaluates one control operation: branch conditions see the latched
/// condition codes in `cc_now` and this cycle's combinational sync signals
/// in `ss` (a VLIW machine passes an empty slice — it has no sync network).
/// Returns the next program counter, `None` on halt, and accumulates the
/// branch statistics.
pub(crate) fn control_next(
    ctrl: &ControlOp,
    cc_now: &[bool],
    ss: &[ximd_isa::SyncSignal],
    stats: &mut SimStats,
) -> Option<Addr> {
    match *ctrl {
        ControlOp::Goto(t) => Some(t),
        ControlOp::Branch {
            cond,
            taken,
            not_taken,
        } => {
            stats.cond_branches += 1;
            if cond.eval(cc_now, ss) {
                stats.branches_taken += 1;
                Some(taken)
            } else {
                Some(not_taken)
            }
        }
        ControlOp::Halt => None,
    }
}

/// The run-loop interface every engine implements (interpreted XIMD,
/// interpreted VLIW, and both decoded fast paths), so the termination,
/// park-detection and cycle-budget rules exist in exactly one place:
/// [`run_loop`].
pub(crate) trait Engine {
    /// Cycles completed so far.
    fn cycle(&self) -> u64;
    /// Executes one machine cycle.
    fn step(&mut self) -> Result<StepStatus, SimError>;
    /// True when every still-running FU sits at `park`.
    fn all_parked(&self, park: Addr) -> bool;
    /// True when every FU has halted.
    fn finished(&self) -> bool;
    /// The summary of the run so far.
    fn summary(&self) -> RunSummary;
}

/// The termination rules of [`run_loop`], factored out so an engine that
/// steps many machines at once (the lane engine) can apply the *identical*
/// budget/park/halt decisions to each lane independently. Keeping the rules
/// in one struct is what makes "lane k behaves exactly like a standalone
/// `run`/`run_until_parked` of machine k" a structural property rather than
/// a re-implementation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Governor {
    park: Option<Addr>,
    max_cycles: u64,
}

impl Governor {
    pub(crate) fn new(park: Option<Addr>, max_cycles: u64) -> Governor {
        Governor { park, max_cycles }
    }

    /// True when a machine at `cycle` has no budget left to step.
    pub(crate) fn out_of_budget(&self, cycle: u64) -> bool {
        cycle >= self.max_cycles
    }

    /// The verdict for a machine whose budget ran out: a machine that
    /// already halted exactly at the budget is a success, anything else is
    /// a [`SimError::CycleLimit`].
    pub(crate) fn budget_verdict(&self, finished: bool) -> Result<(), SimError> {
        if finished {
            Ok(())
        } else {
            Err(SimError::CycleLimit {
                limit: self.max_cycles,
            })
        }
    }

    /// Whether the park condition holds *before* a step. A parked machine
    /// still executes that one final cycle so the parked cycle appears in
    /// traces — the paper's Figure 10 convention.
    pub(crate) fn observes_park(&self, all_parked: impl FnOnce(Addr) -> bool) -> bool {
        self.park.is_some_and(all_parked)
    }
}

/// Runs `sim` until every FU halts, the optional park condition holds (all
/// running FUs at `park`, after which one final cycle executes so the
/// parked cycle appears in traces — the paper's Figure 10 convention), or
/// the cycle budget is exhausted. A machine that already halted exactly at
/// the budget is a success, not a [`SimError::CycleLimit`].
pub(crate) fn run_loop<E: Engine>(
    sim: &mut E,
    park: Option<Addr>,
    max_cycles: u64,
) -> Result<RunSummary, SimError> {
    let gov = Governor::new(park, max_cycles);
    while !gov.out_of_budget(sim.cycle()) {
        let parked = gov.observes_park(|p| sim.all_parked(p));
        let status = sim.step()?;
        if parked || status == StepStatus::AllHalted {
            return Ok(sim.summary());
        }
    }
    gov.budget_verdict(sim.finished()).map(|()| sim.summary())
}

/// The decoded fast-path plumbing shared by `Xsim` and `Vsim`: lower the
/// interpreter into its decoded engine, drive it with [`run_loop`], and
/// write the machine state back on the outcomes where the decoded state is
/// well-defined (success and cycle-limit exhaustion — on any other machine
/// check the interpreter keeps its pre-run state).
pub(crate) fn run_fast_path<S, F: Engine>(
    sim: &mut S,
    park: Option<Addr>,
    max_cycles: u64,
    decode: impl FnOnce(&S) -> F,
    write_back: impl FnOnce(F, &mut S),
) -> Result<RunSummary, SimError> {
    let mut fast = decode(sim);
    let result = run_loop(&mut fast, park, max_cycles);
    if matches!(result, Ok(_) | Err(SimError::CycleLimit { .. })) {
        write_back(fast, sim);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConflictPolicy;
    use ximd_isa::{AluOp, CmpOp, Reg, UnOp};

    fn setup() -> (RegisterFile, Memory, Vec<IoPort>, SimStats) {
        (
            RegisterFile::new(8),
            Memory::new(64),
            vec![IoPort::new()],
            SimStats::default(),
        )
    }

    #[test]
    fn alu_stages_result() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        regs.poke(Reg(0), Value::I32(4));
        let op = DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(3), Reg(1));
        let cc =
            execute_data(FuId(0), &op, 0, &mut regs, &mut mem, &mut ports, &mut stats).unwrap();
        assert_eq!(cc, None);
        regs.commit(ConflictPolicy::Trap, 0).unwrap();
        assert_eq!(regs.read(Reg(1)).as_i32(), 7);
        assert_eq!(stats.ops, 1);
    }

    #[test]
    fn cmp_returns_cc_without_register_write() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        let op = DataOp::cmp(CmpOp::Lt, Operand::imm_i32(1), Operand::imm_i32(2));
        let cc =
            execute_data(FuId(2), &op, 0, &mut regs, &mut mem, &mut ports, &mut stats).unwrap();
        assert_eq!(cc, Some(true));
        assert_eq!(stats.compares, 1);
    }

    #[test]
    fn load_uses_base_plus_offset() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        mem.poke(12, Value::I32(99)).unwrap();
        regs.poke(Reg(0), Value::I32(10));
        let op = DataOp::load(Reg(0).into(), Operand::imm_i32(2), Reg(1));
        execute_data(FuId(0), &op, 0, &mut regs, &mut mem, &mut ports, &mut stats).unwrap();
        regs.commit(ConflictPolicy::Trap, 0).unwrap();
        assert_eq!(regs.read(Reg(1)).as_i32(), 99);
        assert_eq!(stats.loads, 1);
    }

    #[test]
    fn store_stages_to_memory() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        regs.poke(Reg(0), Value::I32(7));
        let op = DataOp::store(Reg(0).into(), Operand::imm_i32(20));
        execute_data(FuId(0), &op, 0, &mut regs, &mut mem, &mut ports, &mut stats).unwrap();
        assert_eq!(mem.read(20).unwrap().as_i32(), 0);
        mem.commit(ConflictPolicy::Trap, 0).unwrap();
        assert_eq!(mem.read(20).unwrap().as_i32(), 7);
        assert_eq!(stats.stores, 1);
    }

    #[test]
    fn divide_by_zero_is_attributed() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        let op = DataOp::alu(
            AluOp::Idiv,
            Operand::imm_i32(1),
            Operand::imm_i32(0),
            Reg(0),
        );
        let err =
            execute_data(FuId(3), &op, 9, &mut regs, &mut mem, &mut ports, &mut stats).unwrap_err();
        assert!(matches!(
            err,
            SimError::DataFault {
                fu: FuId(3),
                cycle: 9,
                ..
            }
        ));
    }

    #[test]
    fn port_roundtrip_and_missing_port() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        ports[0].schedule(0, Value::I32(5));
        let op = DataOp::PortIn { port: 0, d: Reg(2) };
        execute_data(FuId(0), &op, 0, &mut regs, &mut mem, &mut ports, &mut stats).unwrap();
        regs.commit(ConflictPolicy::Trap, 0).unwrap();
        assert_eq!(regs.read(Reg(2)).as_i32(), 5);

        let bad = DataOp::PortOut {
            port: 7,
            a: Operand::imm_i32(1),
        };
        let err = execute_data(
            FuId(0),
            &bad,
            0,
            &mut regs,
            &mut mem,
            &mut ports,
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::PortOutOfRange { port: 7, .. }));
    }

    #[test]
    fn unary_op_executes() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        let op = DataOp::un(UnOp::Ineg, Operand::imm_i32(6), Reg(4));
        execute_data(FuId(1), &op, 0, &mut regs, &mut mem, &mut ports, &mut stats).unwrap();
        regs.commit(ConflictPolicy::Trap, 0).unwrap();
        assert_eq!(regs.read(Reg(4)).as_i32(), -6);
    }

    #[test]
    fn nop_counts_but_does_nothing() {
        let (mut regs, mut mem, mut ports, mut stats) = setup();
        execute_data(
            FuId(0),
            &DataOp::Nop,
            0,
            &mut regs,
            &mut mem,
            &mut ports,
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.nops, 1);
        assert_eq!(stats.ops, 0);
    }

    #[test]
    fn memory_addr_matches_execute_semantics() {
        let (mut regs, ..) = setup();
        regs.poke(Reg(0), Value::I32(10));
        let load = DataOp::load(Reg(0).into(), Operand::imm_i32(2), Reg(1));
        assert_eq!(memory_addr(&load, &regs), Some(12));
        let store = DataOp::store(Reg(0).into(), Operand::imm_i32(20));
        assert_eq!(memory_addr(&store, &regs), Some(20));
        let alu = DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(1), Reg(1));
        assert_eq!(memory_addr(&alu, &regs), None);
        assert_eq!(memory_addr(&DataOp::Nop, &regs), None);
    }

    #[test]
    fn control_next_counts_branches() {
        use ximd_isa::{Addr, CondSource, ControlOp};
        let mut stats = SimStats::default();
        assert_eq!(
            control_next(&ControlOp::Goto(Addr(3)), &[], &[], &mut stats),
            Some(Addr(3))
        );
        assert_eq!(control_next(&ControlOp::Halt, &[], &[], &mut stats), None);
        let br = ControlOp::branch(CondSource::Cc(FuId(0)), Addr(1), Addr(2));
        assert_eq!(control_next(&br, &[true], &[], &mut stats), Some(Addr(1)));
        assert_eq!(control_next(&br, &[false], &[], &mut stats), Some(Addr(2)));
        assert_eq!(stats.cond_branches, 2);
        assert_eq!(stats.branches_taken, 1);
    }
}
