//! Wide-batch SoA lane engine: N machines per core off one decoded program.
//!
//! The decoded fast path ([`FastXsim`](crate::FastXsim)) simulates one
//! machine at a time, so running a population of independent instances —
//! parameter sweeps, per-seed workload batches, Monte-Carlo fault studies —
//! pays the full fetch/decode/dispatch overhead once *per instance per
//! cycle*. But N instances of the *same* program differ only in data state.
//! [`LaneXsim`] exploits that: it lowers the program once and steps all N
//! instances ("lanes") in lockstep over structure-of-arrays state —
//!
//! * register files as one `[lane][reg]`-contiguous value-pool array,
//! * condition codes and sync signals as per-lane `u64` bitsets,
//! * data memory as contiguous per-lane slabs (`LaneMemory`),
//!
//! so a single fetch/decode/dispatch drives every lane and the inner loops
//! are tight strides over flat arrays.
//!
//! # Masking and the scalar fallback
//!
//! While every active lane shares one PC vector the engine runs in
//! **uniform** mode: parcels are fetched once, each operation's dispatch
//! happens once, and only the data loop runs per lane. The moment a
//! conditional branch resolves differently across lanes the engine
//! materializes per-lane PC vectors and drops to a **scalar** fallback that
//! steps each lane exactly like [`FastXsim::step`](crate::FastXsim::step)
//! (it literally shares `exec_op`/`commit_pool` with the decoded engine).
//! When all active lanes land back on one PC vector the engine reconverges
//! to uniform mode. Lanes that halt or park are *masked*: they leave the
//! active set and their registers, memory, ports and statistics are frozen
//! — exactly the state an independent run of that lane would have stopped
//! with.
//!
//! # Validity
//!
//! Like the decoded path, the lane engine hard-codes single-cycle occupancy
//! and is therefore only a valid implementation of the ideal timing model;
//! constructors reject non-ideal configs with
//! [`ConfigError::CapabilityMismatch`]. The interpreter remains the
//! oracle: `tests/decoded_equivalence.rs` and the proptest suite pin
//! full-state per-lane equivalence against N independent decoded runs,
//! including divergence-heavy workloads.
//!
//! # Errors
//!
//! A machine check in any lane aborts the whole batch with
//! [`SimError::Lane`] wrapping the error an independent run of that lane
//! would have reported. As with [`FastXsim`](crate::FastXsim), the batch is
//! left mid-cycle after an error and should be discarded.

use std::collections::HashMap;

use ximd_isa::{Addr, FuId, Program, Reg, SyncSignal, Value};

use crate::config::{ConflictPolicy, MachineConfig};
use crate::decoded::{
    commit_pool, exec_op, full_mask, DecodedProgram, FastCtrl, FastOp, HALTED_KEY, MAX_FAST_WIDTH,
};
use crate::device::IoPort;
use crate::engine::{CycleMem, Governor};
use crate::error::{ConfigError, SimError};
use crate::stats::SimStats;
use crate::xsim::{RunSummary, Xsim};

/// Words per lane kept in the dense slab; addresses beyond this spill to a
/// shared overflow map. 8 Ki words (32 KiB) covers every shipped workload's
/// footprint while keeping a 1024-lane batch at 32 MiB of slab.
const DENSE_WORDS: u32 = 1 << 13;

/// Aggregate result of a batched run: every lane ran to completion under
/// the run's park/halt/budget rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneRunSummary {
    /// Number of lanes in the batch.
    pub lanes: usize,
    /// Sum of the per-lane cycle counters (the aggregate throughput
    /// numerator; per-lane summaries are available via
    /// [`LaneXsim::summary`]).
    pub total_cycles: u64,
}

/// Per-lane data memory: one dense slab per lane for the hot low addresses
/// plus a shared sparse overflow map, with the exact bounds-check and
/// end-of-cycle commit/conflict semantics of [`Memory`](crate::Memory).
#[derive(Debug, Clone)]
struct LaneMemory {
    size: u32,
    dense: u32,
    /// `lanes × dense` words, lane-major.
    slab: Vec<u32>,
    /// Words at `addr >= dense`, keyed `lane << 32 | addr`.
    overflow: HashMap<u64, u32>,
    /// Staged end-of-cycle writes: `(lane, fu, addr, bits)`.
    staged: Vec<(u32, FuId, u32, u32)>,
    /// Per-lane conflicts resolved under [`ConflictPolicy::LastWins`].
    conflicts: Vec<u64>,
}

fn overflow_key(lane: usize, addr: u32) -> u64 {
    (lane as u64) << 32 | u64::from(addr)
}

impl LaneMemory {
    fn new(size: u32, lanes: usize) -> LaneMemory {
        let dense = size.min(DENSE_WORDS);
        LaneMemory {
            size,
            dense,
            slab: vec![0; lanes * dense as usize],
            overflow: HashMap::new(),
            staged: Vec::new(),
            conflicts: vec![0; lanes],
        }
    }

    fn check(&self, addr: i64) -> Result<u32, SimError> {
        if addr < 0 || addr >= i64::from(self.size) {
            Err(SimError::MemoryOutOfRange {
                addr,
                size: self.size,
            })
        } else {
            Ok(addr as u32)
        }
    }

    fn read(&self, lane: usize, addr: i64) -> Result<Value, SimError> {
        let addr = self.check(addr)?;
        let bits = if addr < self.dense {
            self.slab[lane * self.dense as usize + addr as usize]
        } else {
            self.overflow
                .get(&overflow_key(lane, addr))
                .copied()
                .unwrap_or(0)
        };
        Ok(Value::from_bits_int(bits))
    }

    fn stage_write(
        &mut self,
        lane: usize,
        fu: FuId,
        addr: i64,
        value: Value,
    ) -> Result<(), SimError> {
        let addr = self.check(addr)?;
        self.staged.push((lane as u32, fu, addr, value.bits()));
        Ok(())
    }

    fn write(&mut self, lane: usize, addr: u32, bits: u32) {
        if addr < self.dense {
            self.slab[lane * self.dense as usize + addr as usize] = bits;
        } else {
            self.overflow.insert(overflow_key(lane, addr), bits);
        }
    }

    /// Commits all staged writes with `Memory::commit`'s conflict semantics
    /// applied per lane: sort by `(lane, addr, fu)`, adjacent same-word
    /// duplicates within a lane are conflicts, `LastWins` lets the highest
    /// FU win and counts one event per adjacent pair.
    fn commit(&mut self, policy: ConflictPolicy, cycles: &[u64]) -> Result<(), SimError> {
        if self.staged.is_empty() {
            return Ok(());
        }
        self.staged
            .sort_by_key(|&(lane, fu, addr, _)| (lane, addr, fu));
        for pair in self.staged.windows(2) {
            if pair[0].0 == pair[1].0 && pair[0].2 == pair[1].2 {
                match policy {
                    ConflictPolicy::Trap => {
                        let (lane, _, addr, _) = pair[0];
                        let fus = self
                            .staged
                            .iter()
                            .filter(|w| w.0 == lane && w.2 == addr)
                            .map(|w| w.1)
                            .collect();
                        self.staged.clear();
                        return Err(SimError::Lane {
                            lane: lane as usize,
                            error: Box::new(SimError::MemoryWriteConflict {
                                addr,
                                fus,
                                cycle: cycles[lane as usize],
                            }),
                        });
                    }
                    ConflictPolicy::LastWins => self.conflicts[pair[0].0 as usize] += 1,
                }
            }
        }
        for i in 0..self.staged.len() {
            let (lane, _, addr, bits) = self.staged[i];
            self.write(lane as usize, addr, bits);
        }
        self.staged.clear();
        Ok(())
    }

    fn lane_conflicts(&self, lane: usize) -> u64 {
        self.conflicts[lane]
    }
}

/// Routes [`exec_op`]'s memory traffic at one lane's slab, so the scalar
/// fallback shares the decoded engine's data phase verbatim.
struct LaneMemView<'a> {
    mem: &'a mut LaneMemory,
    lane: usize,
}

impl CycleMem for LaneMemView<'_> {
    #[inline]
    fn read(&self, addr: i64) -> Result<Value, SimError> {
        self.mem.read(self.lane, addr)
    }

    #[inline]
    fn stage_write(&mut self, fu: FuId, addr: i64, value: Value) -> Result<(), SimError> {
        self.mem.stage_write(self.lane, fu, addr, value)
    }
}

fn lane_err(lane: usize, error: SimError) -> SimError {
    SimError::Lane {
        lane,
        error: Box::new(error),
    }
}

/// The batched lane engine: N machines running one [`DecodedProgram`] in
/// lockstep over structure-of-arrays state (see the module docs).
///
/// # Example
///
/// ```
/// use ximd_isa::{Addr, Parcel, Program, Reg, Value};
/// use ximd_sim::{LaneXsim, MachineConfig, Xsim};
///
/// let mut program = Program::new(1);
/// program.push(vec![Parcel::goto(Addr(1))]);
/// program.push(vec![Parcel::halt()]);
///
/// let proto = Xsim::new(program, MachineConfig::with_width(1))?;
/// let mut lanes = LaneXsim::replicate(&proto, 4)?;
/// let summary = lanes.run(10)?;
/// assert_eq!(summary.lanes, 4);
/// assert_eq!(summary.total_cycles, 8); // 2 cycles × 4 lanes
/// # Ok::<(), ximd_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LaneXsim {
    decoded: DecodedProgram,
    reg_policy: ConflictPolicy,
    mem_policy: ConflictPolicy,
    lanes: usize,
    pool_len: usize,
    width: usize,
    full_mask: u64,
    /// `lanes × pool_len` values, lane-major: registers then interned
    /// constants (constants are duplicated per lane so every operand index
    /// is a plain `base + idx`).
    pool: Vec<Value>,
    mem: LaneMemory,
    /// Per-lane attached I/O ports.
    ports: Vec<Vec<IoPort>>,
    /// Per-lane PC vectors, `lanes × width` lane-major. Authoritative in
    /// scalar mode; stale for active lanes while `uniform` holds.
    pcs: Vec<Option<u32>>,
    /// The shared PC vector all active lanes agree on in uniform mode.
    upcs: Vec<Option<u32>>,
    uniform: bool,
    /// Per-lane latched condition codes / known mask / sync signals.
    cc_bits: Vec<u64>,
    cc_known: Vec<u64>,
    ss_bits: Vec<u64>,
    /// Per-lane cycle counters (lanes may enter mid-run at different
    /// cycles; active lanes advance together, one cycle per global step).
    cycles: Vec<u64>,
    stats: Vec<SimStats>,
    /// Per-lane register conflicts resolved under `LastWins`.
    reg_conflicts: Vec<u64>,
    /// Static statistics accumulated while in uniform mode (identical for
    /// every active lane), merged into per-lane stats on materialization.
    ustats: SimStats,
    /// Static register-write conflicts accumulated in uniform mode.
    ureg_conflicts: u64,
    /// Ascending lane ids still running.
    active: Vec<usize>,
    done: Vec<bool>,
    summaries: Vec<Option<RunSummary>>,
    // Reused per-cycle scratch (uniform mode).
    unext: Vec<Option<u32>>,
    ukeys: Vec<u32>,
    slot_meta: Vec<(u8, u16)>,
    slot_order: Vec<usize>,
    vvals: Vec<Value>,
    cmp_fus: Vec<u8>,
    vcc: Vec<bool>,
    branch_slots: Vec<(usize, u32, u32, u32)>,
    vtaken: Vec<bool>,
    // Reused per-cycle scratch (scalar mode).
    staged: Vec<(u8, u16, Value)>,
    cc_upd: Vec<(u8, bool)>,
    skeys: Vec<u32>,
    parked_pre: Vec<bool>,
}

impl LaneXsim {
    /// Builds a lane batch from independent (possibly mid-run) interpreter
    /// instances. All instances must run the same program under the same
    /// configuration — the whole point is sharing one decode — but their
    /// data state (registers, memory, ports, CCs, PCs, cycle counts) is
    /// copied per lane verbatim.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroLanes`] for an empty batch,
    /// [`ConfigError::LaneMismatch`] if an instance's program or config
    /// differs from lane 0's, and [`ConfigError::CapabilityMismatch`] for
    /// non-ideal timing (the lane engine, like the decoded path, hard-codes
    /// single-cycle occupancy).
    ///
    /// # Panics
    ///
    /// Panics if the machine is wider than [`MAX_FAST_WIDTH`].
    pub fn from_instances(sims: &[Xsim]) -> Result<LaneXsim, SimError> {
        let refs: Vec<&Xsim> = sims.iter().collect();
        LaneXsim::assemble(&refs, None)
    }

    /// [`LaneXsim::from_instances`] fed from an artifact cache: `decoded`
    /// holds tables already lowered from the instances' shared program, so
    /// the per-batch decode is skipped. A dimensional mismatch falls back to
    /// lowering on the fly (callers pair tables with programs by content
    /// hash; the check only guards plumbing bugs).
    ///
    /// # Errors
    ///
    /// Same as [`LaneXsim::from_instances`].
    ///
    /// # Panics
    ///
    /// Panics if the machine is wider than [`MAX_FAST_WIDTH`].
    pub fn from_instances_cached(
        sims: &[Xsim],
        decoded: &DecodedProgram,
    ) -> Result<LaneXsim, SimError> {
        let refs: Vec<&Xsim> = sims.iter().collect();
        LaneXsim::assemble(&refs, Some(decoded))
    }

    /// Builds a lane batch of `lanes` copies of one prototype machine
    /// (decode once, tile the state). Per-lane inputs are then poked in via
    /// [`LaneXsim::write_reg`] / [`LaneXsim::mem_poke_slice`].
    ///
    /// # Errors
    ///
    /// Same as [`LaneXsim::from_instances`].
    ///
    /// # Panics
    ///
    /// Panics if the machine is wider than [`MAX_FAST_WIDTH`].
    pub fn replicate(proto: &Xsim, lanes: usize) -> Result<LaneXsim, SimError> {
        let refs: Vec<&Xsim> = std::iter::repeat_n(proto, lanes).collect();
        LaneXsim::assemble(&refs, None)
    }

    fn assemble(sims: &[&Xsim], cached: Option<&DecodedProgram>) -> Result<LaneXsim, SimError> {
        let Some(first) = sims.first() else {
            return Err(ConfigError::ZeroLanes.into());
        };
        let config: &MachineConfig = &first.config;
        let width = config.width;
        assert!(
            width <= MAX_FAST_WIDTH,
            "LaneXsim supports widths up to {MAX_FAST_WIDTH}"
        );
        if !config.timing.is_ideal() {
            return Err(ConfigError::CapabilityMismatch {
                backend: "lanes".to_string(),
                capability: "non-ideal timing models",
            }
            .into());
        }
        let first_program: &Program = &first.program;
        for (lane, sim) in sims.iter().enumerate().skip(1) {
            if sim.program != *first_program || sim.config != *config {
                return Err(ConfigError::LaneMismatch { lane }.into());
            }
        }
        let decoded = match cached {
            Some(d) if d.matches(first_program, config.num_regs) => d.clone(),
            _ => DecodedProgram::lower(first_program, config.num_regs),
        };
        let lanes = sims.len();
        let pool_len = decoded.pool_init.len();

        let mut pool = Vec::with_capacity(lanes * pool_len);
        let mut mem = LaneMemory::new(config.mem_words, lanes);
        let mut ports = Vec::with_capacity(lanes);
        let mut pcs = Vec::with_capacity(lanes * width);
        let mut cc_bits = Vec::with_capacity(lanes);
        let mut cc_known = Vec::with_capacity(lanes);
        let mut ss_bits = Vec::with_capacity(lanes);
        let mut cycles = Vec::with_capacity(lanes);
        let mut stats = Vec::with_capacity(lanes);
        let mut reg_conflicts = Vec::with_capacity(lanes);
        for (lane, sim) in sims.iter().enumerate() {
            let start = pool.len();
            pool.extend_from_slice(&decoded.pool_init);
            pool[start..start + config.num_regs].copy_from_slice(sim.regs.snapshot());
            for (addr, bits) in sim.mem.iter_words() {
                mem.write(lane, addr, bits);
            }
            mem.conflicts[lane] = sim.mem.conflicts_resolved();
            ports.push(sim.ports.clone());
            pcs.extend(sim.pcs.iter().map(|pc| pc.map(|a| a.0)));
            let (mut cb, mut ck, mut sb) = (0u64, 0u64, 0u64);
            for (fu, cc) in sim.ccs.iter().enumerate() {
                if let Some(c) = *cc {
                    ck |= 1 << fu;
                    cb |= u64::from(c) << fu;
                }
            }
            for (fu, ss) in sim.ss.iter().enumerate() {
                sb |= u64::from(*ss == SyncSignal::Done) << fu;
            }
            cc_bits.push(cb);
            cc_known.push(ck);
            ss_bits.push(sb);
            cycles.push(sim.cycle);
            stats.push(sim.stats.clone());
            reg_conflicts.push(sim.regs.conflicts_resolved());
        }
        let uniform = pcs.chunks_exact(width).all(|row| row == &pcs[..width]);
        let upcs = pcs[..width].to_vec();
        Ok(LaneXsim {
            reg_policy: config.reg_conflicts,
            mem_policy: config.mem_conflicts,
            lanes,
            pool_len,
            width,
            full_mask: full_mask(width),
            pool,
            mem,
            ports,
            pcs,
            upcs,
            uniform,
            cc_bits,
            cc_known,
            ss_bits,
            cycles,
            stats,
            reg_conflicts,
            ustats: SimStats {
                width,
                ops_per_fu: vec![0; width],
                ..SimStats::default()
            },
            ureg_conflicts: 0,
            active: (0..lanes).collect(),
            done: vec![false; lanes],
            summaries: vec![None; lanes],
            unext: vec![None; width],
            ukeys: vec![HALTED_KEY; width],
            slot_meta: Vec::with_capacity(width),
            slot_order: Vec::with_capacity(width),
            vvals: Vec::new(),
            cmp_fus: Vec::with_capacity(width),
            vcc: Vec::new(),
            branch_slots: Vec::with_capacity(width),
            vtaken: Vec::new(),
            staged: Vec::with_capacity(width),
            cc_upd: Vec::with_capacity(width),
            skeys: vec![HALTED_KEY; width],
            parked_pre: Vec::new(),
            decoded,
        })
    }

    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Machine width the batch was lowered for.
    pub fn width(&self) -> usize {
        self.width
    }

    /// True once lane `lane` has finished (halted, parked or already
    /// summarized by a completed run).
    pub fn done(&self, lane: usize) -> bool {
        self.done[lane]
    }

    /// True once every lane has finished.
    pub fn all_done(&self) -> bool {
        self.active.is_empty()
    }

    /// The finished lane's run summary — exactly what an independent
    /// `run`/`run_until_parked` of that machine would have returned.
    pub fn summary(&self, lane: usize) -> Option<&RunSummary> {
        self.summaries[lane].as_ref()
    }

    /// Reads a register of one lane.
    pub fn reg(&self, lane: usize, reg: Reg) -> Value {
        self.pool[lane * self.pool_len + reg.index()]
    }

    /// Sets a register of one lane (machine setup).
    pub fn write_reg(&mut self, lane: usize, reg: Reg, value: Value) {
        assert!(reg.index() < self.decoded.num_regs, "register out of range");
        self.pool[lane * self.pool_len + reg.index()] = value;
    }

    /// Directly writes one lane's memory word outside the cycle model.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryOutOfRange`] if `addr` is outside memory.
    pub fn mem_poke(&mut self, lane: usize, addr: i64, value: Value) -> Result<(), SimError> {
        let addr = self.mem.check(addr)?;
        self.mem.write(lane, addr, value.bits());
        Ok(())
    }

    /// Copies a slice of integers into one lane's memory starting at `base`.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryOutOfRange`] if the slice does not fit.
    pub fn mem_poke_slice(
        &mut self,
        lane: usize,
        base: i64,
        values: &[i32],
    ) -> Result<(), SimError> {
        for (i, &v) in values.iter().enumerate() {
            self.mem_poke(lane, base + i as i64, Value::I32(v))?;
        }
        Ok(())
    }

    /// Reads `len` consecutive integers from one lane's memory.
    ///
    /// # Errors
    ///
    /// [`SimError::MemoryOutOfRange`] if the range does not fit.
    pub fn mem_peek_slice(&self, lane: usize, base: i64, len: usize) -> Result<Vec<i32>, SimError> {
        (0..len)
            .map(|i| self.mem.read(lane, base + i as i64).map(Value::as_i32))
            .collect()
    }

    /// Attaches an I/O port device to one lane, returning its port number.
    pub fn attach_port(&mut self, lane: usize, port: IoPort) -> u8 {
        self.ports[lane].push(port);
        (self.ports[lane].len() - 1) as u8
    }

    /// One lane's attached I/O ports.
    pub fn ports(&self, lane: usize) -> &[IoPort] {
        &self.ports[lane]
    }

    /// One lane's cycle counter.
    pub fn cycle(&self, lane: usize) -> u64 {
        self.cycles[lane]
    }

    /// Sum of the per-lane cycle counters.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// One lane's statistics.
    pub fn stats(&self, lane: usize) -> &SimStats {
        &self.stats[lane]
    }

    /// One lane's program counters.
    pub fn pcs(&self, lane: usize) -> Vec<Option<Addr>> {
        self.lane_pc_row(lane)
            .iter()
            .map(|pc| pc.map(Addr))
            .collect()
    }

    /// One lane's latched condition codes.
    pub fn ccs(&self, lane: usize) -> Vec<Option<bool>> {
        (0..self.width)
            .map(|fu| {
                (self.cc_known[lane] >> fu & 1 != 0).then(|| self.cc_bits[lane] >> fu & 1 != 0)
            })
            .collect()
    }

    /// One lane's sync signals.
    pub fn ss(&self, lane: usize) -> Vec<SyncSignal> {
        (0..self.width)
            .map(|fu| {
                if self.ss_bits[lane] >> fu & 1 != 0 {
                    SyncSignal::Done
                } else {
                    SyncSignal::Busy
                }
            })
            .collect()
    }

    /// One lane's architectural registers (snapshot encoding).
    pub(crate) fn export_lane_regs(&self, lane: usize) -> &[Value] {
        let base = lane * self.pool_len;
        &self.pool[base..base + self.decoded.num_regs]
    }

    /// One lane's non-zero memory words as `(addr, bits)` pairs, unordered
    /// (snapshot encoding sorts them for determinism).
    pub(crate) fn export_lane_mem(&self, lane: usize) -> Vec<(u32, u32)> {
        let dense = self.mem.dense as usize;
        let base = lane * dense;
        let mut words: Vec<(u32, u32)> = self.mem.slab[base..base + dense]
            .iter()
            .enumerate()
            .filter(|&(_, &bits)| bits != 0)
            .map(|(addr, &bits)| (addr as u32, bits))
            .collect();
        words.extend(self.mem.overflow.iter().filter_map(|(&key, &bits)| {
            ((key >> 32) as usize == lane).then_some((key as u32, bits))
        }));
        words
    }

    /// One lane's statistics with the uniform-mode accumulator folded in
    /// and the derived counters brought current — what
    /// [`LaneXsim::summary`] would report if the lane finished right now.
    pub(crate) fn export_lane_stats(&self, lane: usize) -> SimStats {
        let mut s = self.stats[lane].clone();
        let mut reg_conflicts = self.reg_conflicts[lane];
        if self.uniform && !self.done[lane] {
            let u = &self.ustats;
            s.ops += u.ops;
            s.nops += u.nops;
            s.loads += u.loads;
            s.stores += u.stores;
            s.compares += u.compares;
            s.cond_branches += u.cond_branches;
            s.spin_cycles += u.spin_cycles;
            s.halted_fu_cycles += u.halted_fu_cycles;
            s.sset_cycle_sum += u.sset_cycle_sum;
            s.max_concurrent_streams = s.max_concurrent_streams.max(u.max_concurrent_streams);
            for (slot, &o) in s.ops_per_fu.iter_mut().zip(&u.ops_per_fu) {
                *slot += o;
            }
            reg_conflicts += self.ureg_conflicts;
        }
        s.cycles = self.cycles[lane];
        s.conflicts_resolved = reg_conflicts + self.mem.lane_conflicts(lane);
        s
    }

    /// One lane's conflict counters split by resource (register, memory),
    /// with the uniform-mode share folded in — the split an equivalent
    /// standalone [`Xsim`] would hold internally.
    pub(crate) fn export_lane_conflicts(&self, lane: usize) -> (u64, u64) {
        let mut reg = self.reg_conflicts[lane];
        if self.uniform && !self.done[lane] {
            reg += self.ureg_conflicts;
        }
        (reg, self.mem.lane_conflicts(lane))
    }

    /// Marks an active lane finished without running it (snapshot restore
    /// of a lane that had already completed before the snapshot). No-op if
    /// the lane is already done.
    pub(crate) fn mask_lane(&mut self, lane: usize) {
        if let Some(idx) = self.active.iter().position(|&l| l == lane) {
            self.finish_lane_at(idx);
        }
    }

    fn lane_pc_row(&self, lane: usize) -> &[Option<u32>] {
        if self.uniform && !self.done[lane] {
            &self.upcs
        } else {
            &self.pcs[lane * self.width..(lane + 1) * self.width]
        }
    }

    fn lane_all_halted(&self, lane: usize) -> bool {
        self.lane_pc_row(lane).iter().all(Option::is_none)
    }

    fn lane_all_parked(&self, lane: usize, park: Addr) -> bool {
        self.lane_pc_row(lane)
            .iter()
            .all(|pc| pc.is_none_or(|a| a == park.0))
    }

    /// Merges the uniform-mode accumulator into one lane's statistics and
    /// recomputes the derived counters. Does not clear the accumulator: a
    /// lane finishing mid-uniform-run takes its share while the remaining
    /// lanes keep accumulating.
    fn materialize_lane(&mut self, lane: usize) {
        let u = &self.ustats;
        let s = &mut self.stats[lane];
        s.ops += u.ops;
        s.nops += u.nops;
        s.loads += u.loads;
        s.stores += u.stores;
        s.compares += u.compares;
        s.cond_branches += u.cond_branches;
        s.spin_cycles += u.spin_cycles;
        s.halted_fu_cycles += u.halted_fu_cycles;
        s.sset_cycle_sum += u.sset_cycle_sum;
        s.max_concurrent_streams = s.max_concurrent_streams.max(u.max_concurrent_streams);
        for (slot, &o) in s.ops_per_fu.iter_mut().zip(&u.ops_per_fu) {
            *slot += o;
        }
        s.cycles = self.cycles[lane];
        self.reg_conflicts[lane] += self.ureg_conflicts;
        self.stats[lane].conflicts_resolved =
            self.reg_conflicts[lane] + self.mem.lane_conflicts(lane);
    }

    /// Clears the uniform accumulator after every active lane has been
    /// materialized (mode switch to scalar).
    fn clear_uniform_accumulator(&mut self) {
        self.ustats = SimStats {
            width: self.width,
            ops_per_fu: vec![0; self.width],
            ..SimStats::default()
        };
        self.ureg_conflicts = 0;
    }

    /// Finishes the lane at position `idx` of the active list: materializes
    /// its statistics, records its summary and masks it out.
    fn finish_lane_at(&mut self, idx: usize) {
        let lane = self.active.remove(idx);
        if self.uniform {
            self.materialize_lane(lane);
            let row = lane * self.width;
            self.pcs[row..row + self.width].copy_from_slice(&self.upcs);
        }
        self.done[lane] = true;
        self.summaries[lane] = Some(RunSummary {
            cycles: self.cycles[lane],
            stats: self.stats[lane].clone(),
        });
    }

    /// Runs every lane until it halts or its cycle budget is exhausted —
    /// lane k terminates exactly when an independent
    /// [`Xsim::run`]-style loop over machine k would.
    ///
    /// # Errors
    ///
    /// [`SimError::Lane`] wrapping the first lane's machine check or
    /// [`SimError::CycleLimit`]. The batch is poisoned after an error.
    pub fn run(&mut self, max_cycles: u64) -> Result<LaneRunSummary, SimError> {
        self.run_inner(Governor::new(None, max_cycles), None)
    }

    /// Runs every lane until all its running FUs park on the self-loop at
    /// `park` (then executes the one final parked cycle), it halts, or its
    /// budget is exhausted — per lane, the exact
    /// [`Xsim::run_until_parked`] contract.
    ///
    /// # Errors
    ///
    /// [`SimError::Lane`] wrapping the first lane's machine check or
    /// [`SimError::CycleLimit`]. The batch is poisoned after an error.
    pub fn run_until_parked(
        &mut self,
        park: Addr,
        max_cycles: u64,
    ) -> Result<LaneRunSummary, SimError> {
        self.run_inner(Governor::new(Some(park), max_cycles), None)
    }

    /// Advances the batch until every active lane's cycle counter reaches
    /// `upto_cycle` (or parks/halts first, under the usual rules for the
    /// optional `park` address). Unlike [`LaneXsim::run`], reaching the
    /// cycle mark is not an error: lanes stopped there stay active and a
    /// later `run`/`run_until_parked`/`run_for` continues them exactly
    /// where an uninterrupted run would be. This is the suspension point
    /// the session snapshot layer pauses batches at.
    ///
    /// # Errors
    ///
    /// [`SimError::Lane`] wrapping a lane's machine check. The batch is
    /// poisoned after an error.
    pub fn run_for(&mut self, park: Option<Addr>, upto_cycle: u64) -> Result<(), SimError> {
        self.run_inner(Governor::new(park, u64::MAX), Some(upto_cycle))
            .map(|_| ())
    }

    fn run_inner(
        &mut self,
        gov: Governor,
        pause_at: Option<u64>,
    ) -> Result<LaneRunSummary, SimError> {
        while !self.active.is_empty() {
            // Suspension point: every active lane reached the pause mark.
            if let Some(mark) = pause_at {
                if self.active.iter().all(|&l| self.cycles[l] >= mark) {
                    break;
                }
            }
            // Budget pre-check, per lane (`run_loop`'s `while cycle < max`):
            // a lane that already halted exactly at the budget succeeds,
            // anything else out of budget is that lane's CycleLimit.
            let mut idx = 0;
            while idx < self.active.len() {
                let lane = self.active[idx];
                if gov.out_of_budget(self.cycles[lane]) {
                    gov.budget_verdict(self.lane_all_halted(lane))
                        .map_err(|e| lane_err(lane, e))?;
                    self.finish_lane_at(idx);
                } else {
                    idx += 1;
                }
            }
            if self.active.is_empty() {
                break;
            }

            // Park observed before the step; the parked cycle still runs.
            self.parked_pre.clear();
            if self.uniform {
                let parked =
                    gov.observes_park(|p| self.upcs.iter().all(|pc| pc.is_none_or(|a| a == p.0)));
                self.parked_pre.extend(self.active.iter().map(|_| parked));
            } else {
                for i in 0..self.active.len() {
                    let lane = self.active[i];
                    self.parked_pre
                        .push(gov.observes_park(|p| self.lane_all_parked(lane, p)));
                }
            }

            // One cycle for every active lane.
            if self.uniform {
                self.step_uniform()?;
            } else {
                for i in 0..self.active.len() {
                    let lane = self.active[i];
                    self.step_scalar(lane)?;
                }
            }

            // Mask out lanes that parked before this cycle or halted in it.
            let mut idx = 0;
            while idx < self.active.len() {
                let lane = self.active[idx];
                if self.parked_pre[idx] || self.lane_all_halted(lane) {
                    self.finish_lane_at(idx);
                    self.parked_pre.remove(idx);
                } else {
                    idx += 1;
                }
            }

            // Reconverge to uniform mode when all remaining lanes agree on
            // one PC vector again.
            if !self.uniform && !self.active.is_empty() {
                let first = self.active[0] * self.width;
                let converged = self.active[1..].iter().all(|&l| {
                    let row = l * self.width;
                    self.pcs[row..row + self.width] == self.pcs[first..first + self.width]
                });
                if converged {
                    self.upcs.clear();
                    self.upcs
                        .extend_from_slice(&self.pcs[first..first + self.width]);
                    self.uniform = true;
                }
            }
        }
        Ok(LaneRunSummary {
            lanes: self.lanes,
            total_cycles: self.total_cycles(),
        })
    }

    /// One lockstep cycle for every active lane off the shared PC vector:
    /// fetch/dispatch once, data loops per lane, branch outcomes evaluated
    /// per lane. On mixed branch outcomes the per-lane PC vectors are
    /// materialized and the engine switches to the scalar fallback.
    fn step_uniform(&mut self) -> Result<(), SimError> {
        let width = self.width;
        let len = self.decoded.len;
        let nact = self.active.len();
        if self.upcs.iter().all(Option::is_none) {
            return Ok(());
        }

        // Fetch once + per-lane combinational sync-signal update. An
        // out-of-range PC is reported by the first running FU, attributed
        // to the first active lane (every lane would raise it identically).
        let mut run_mask = 0u64;
        let mut done_bits = 0u64;
        for fu in 0..width {
            if let Some(pc) = self.upcs[fu] {
                if pc >= len {
                    let lane = self.active[0];
                    return Err(lane_err(
                        lane,
                        SimError::PcOutOfRange {
                            fu: FuId(fu as u8),
                            pc: Addr(pc),
                            len,
                        },
                    ));
                }
                run_mask |= 1 << fu;
                let done = self.decoded.parcels[pc as usize * width + fu].sync_done;
                done_bits |= u64::from(done) << fu;
            }
        }
        for &lane in &self.active {
            self.ss_bits[lane] = self.ss_bits[lane] & !run_mask | done_bits;
        }

        // Data phase: dispatch each FU's operation once, then stride over
        // the active lanes. Reads observe start-of-cycle pool state; writes
        // land in `vvals` (slot-major) until the end-of-cycle commit. Port
        // order is preserved per lane because FUs are walked in ascending
        // order and ports are per-lane.
        self.slot_meta.clear();
        self.vvals.clear();
        self.cmp_fus.clear();
        self.vcc.clear();
        let mut any_store = false;
        for fu in 0..width {
            let Some(pc) = self.upcs[fu] else {
                self.ustats.halted_fu_cycles += 1;
                continue;
            };
            let parcel = self.decoded.parcels[pc as usize * width + fu];
            let fu8 = fu as u8;
            if !matches!(parcel.op, FastOp::Nop) {
                if let Some(slot) = self.ustats.ops_per_fu.get_mut(fu) {
                    *slot += 1;
                }
            }
            match parcel.op {
                FastOp::Nop => {
                    self.ustats.nops += 1;
                }
                FastOp::Alu { op, a, b, d } => {
                    self.ustats.ops += 1;
                    self.slot_meta.push((fu8, d));
                    for &lane in &self.active {
                        let base = lane * self.pool_len;
                        let result = op
                            .eval(self.pool[base + a as usize], self.pool[base + b as usize])
                            .map_err(|fault| {
                                lane_err(
                                    lane,
                                    SimError::DataFault {
                                        fu: FuId(fu8),
                                        cycle: self.cycles[lane],
                                        fault,
                                    },
                                )
                            })?;
                        self.vvals.push(result);
                    }
                }
                FastOp::Un { op, a, d } => {
                    self.ustats.ops += 1;
                    self.slot_meta.push((fu8, d));
                    for &lane in &self.active {
                        let base = lane * self.pool_len;
                        self.vvals.push(op.eval(self.pool[base + a as usize]));
                    }
                }
                FastOp::Cmp { op, a, b } => {
                    self.ustats.ops += 1;
                    self.ustats.compares += 1;
                    self.cmp_fus.push(fu8);
                    for &lane in &self.active {
                        let base = lane * self.pool_len;
                        self.vcc.push(
                            op.eval(self.pool[base + a as usize], self.pool[base + b as usize]),
                        );
                    }
                }
                FastOp::Load { a, b, d } => {
                    self.ustats.ops += 1;
                    self.ustats.loads += 1;
                    self.slot_meta.push((fu8, d));
                    for &lane in &self.active {
                        let base = lane * self.pool_len;
                        let addr = i64::from(self.pool[base + a as usize].as_i32())
                            + i64::from(self.pool[base + b as usize].as_i32());
                        let value = self.mem.read(lane, addr).map_err(|e| lane_err(lane, e))?;
                        self.vvals.push(value);
                    }
                }
                FastOp::Store { a, b } => {
                    self.ustats.ops += 1;
                    self.ustats.stores += 1;
                    any_store = true;
                    for &lane in &self.active {
                        let base = lane * self.pool_len;
                        let value = self.pool[base + a as usize];
                        let addr = i64::from(self.pool[base + b as usize].as_i32());
                        self.mem
                            .stage_write(lane, FuId(fu8), addr, value)
                            .map_err(|e| lane_err(lane, e))?;
                    }
                }
                FastOp::PortIn { port, d } => {
                    self.ustats.ops += 1;
                    self.slot_meta.push((fu8, d));
                    for &lane in &self.active {
                        let devices = &mut self.ports[lane];
                        let count = devices.len();
                        let device = devices.get_mut(port as usize).ok_or_else(|| {
                            lane_err(lane, SimError::PortOutOfRange { port, count })
                        })?;
                        self.vvals.push(device.read(self.cycles[lane]));
                    }
                }
                FastOp::PortOut { port, a } => {
                    self.ustats.ops += 1;
                    for &lane in &self.active {
                        let value = self.pool[lane * self.pool_len + a as usize];
                        let devices = &mut self.ports[lane];
                        let count = devices.len();
                        let device = devices.get_mut(port as usize).ok_or_else(|| {
                            lane_err(lane, SimError::PortOutOfRange { port, count })
                        })?;
                        device.write(self.cycles[lane], value);
                    }
                }
            }
        }

        // Register commit: the write slots are static across lanes, so the
        // `(reg, fu)` sort and conflict scan run once; only the value
        // application strides over lanes. Same adjacency semantics as
        // `commit_pool`.
        self.slot_order.clear();
        self.slot_order.extend(0..self.slot_meta.len());
        {
            let meta = &self.slot_meta;
            self.slot_order.sort_unstable_by_key(|&s| {
                let (fu, reg) = meta[s];
                (reg, fu)
            });
        }
        let mut resolved = 0u64;
        let mut trapped: Option<u16> = None;
        for pair in self.slot_order.windows(2) {
            if self.slot_meta[pair[0]].1 == self.slot_meta[pair[1]].1 {
                match self.reg_policy {
                    ConflictPolicy::Trap => {
                        trapped = Some(self.slot_meta[pair[0]].1);
                        break;
                    }
                    ConflictPolicy::LastWins => resolved += 1,
                }
            }
        }
        if let Some(reg) = trapped {
            // slot_meta is built in ascending FU order, so this is the
            // ascending writer list the scalar engines report.
            let fus = self
                .slot_meta
                .iter()
                .filter(|&&(_, r)| r == reg)
                .map(|&(fu, _)| FuId(fu))
                .collect();
            let lane = self.active[0];
            return Err(lane_err(
                lane,
                SimError::RegisterWriteConflict {
                    reg: Reg(reg),
                    fus,
                    cycle: self.cycles[lane],
                },
            ));
        }
        self.ureg_conflicts += resolved;
        for &s in &self.slot_order {
            let reg = self.slot_meta[s].1 as usize;
            for (i, &lane) in self.active.iter().enumerate() {
                self.pool[lane * self.pool_len + reg] = self.vvals[s * nact + i];
            }
        }
        if any_store {
            self.mem.commit(self.mem_policy, &self.cycles)?;
        }

        // Control phase: branch conditions read per-lane CC/SS bitsets;
        // everything else is uniform. Mixed outcomes on any branch slot
        // trigger divergence.
        self.branch_slots.clear();
        self.vtaken.clear();
        let mut diverged = false;
        for fu in 0..width {
            let Some(pc) = self.upcs[fu] else {
                self.ukeys[fu] = HALTED_KEY;
                self.unext[fu] = None;
                continue;
            };
            let parcel = self.decoded.parcels[pc as usize * width + fu];
            self.ukeys[fu] = parcel.key;
            match parcel.ctrl {
                FastCtrl::Goto(t) => {
                    if t == pc {
                        self.ustats.spin_cycles += 1;
                    }
                    self.unext[fu] = Some(t);
                }
                FastCtrl::Halt => {
                    self.unext[fu] = None;
                }
                FastCtrl::Branch {
                    cond,
                    taken,
                    not_taken,
                } => {
                    self.ustats.cond_branches += 1;
                    self.branch_slots.push((fu, taken, not_taken, pc));
                    let mut first_outcome = false;
                    for (i, &lane) in self.active.iter().enumerate() {
                        let outcome =
                            cond.eval(self.cc_bits[lane], self.ss_bits[lane], self.full_mask);
                        if i == 0 {
                            first_outcome = outcome;
                        } else if outcome != first_outcome {
                            diverged = true;
                        }
                        if outcome {
                            self.stats[lane].branches_taken += 1;
                        }
                        let target = if outcome { taken } else { not_taken };
                        if target == pc {
                            self.stats[lane].spin_cycles += 1;
                        }
                        self.vtaken.push(outcome);
                    }
                    self.unext[fu] = Some(if first_outcome { taken } else { not_taken });
                }
            }
        }

        // Latch condition codes per lane at the cycle boundary.
        for (ci, &fu) in self.cmp_fus.iter().enumerate() {
            for (i, &lane) in self.active.iter().enumerate() {
                let cc = self.vcc[ci * nact + i];
                self.cc_known[lane] |= 1 << fu;
                self.cc_bits[lane] = self.cc_bits[lane] & !(1 << fu) | u64::from(cc) << fu;
            }
        }

        for &lane in &self.active {
            self.cycles[lane] += 1;
        }
        // Streams this cycle: identical for every lane, counted once.
        let mut streams = 0usize;
        for i in 0..width {
            let mut first = true;
            for j in 0..i {
                if self.ukeys[j] == self.ukeys[i] {
                    first = false;
                    break;
                }
            }
            streams += usize::from(first);
        }
        self.ustats.max_concurrent_streams = self.ustats.max_concurrent_streams.max(streams);
        self.ustats.sset_cycle_sum += streams as u64;

        if diverged {
            // Materialize per-lane PC vectors (branch slots take each
            // lane's own outcome) and statistics, then fall back to the
            // scalar path.
            for &lane in &self.active {
                let row = lane * width;
                self.pcs[row..row + width].copy_from_slice(&self.unext);
            }
            for (bi, &(fu, taken, not_taken, _)) in self.branch_slots.iter().enumerate() {
                for (i, &lane) in self.active.iter().enumerate() {
                    self.pcs[lane * width + fu] = Some(if self.vtaken[bi * nact + i] {
                        taken
                    } else {
                        not_taken
                    });
                }
            }
            for i in 0..self.active.len() {
                let lane = self.active[i];
                self.materialize_lane(lane);
            }
            self.clear_uniform_accumulator();
            self.uniform = false;
        } else {
            self.upcs.copy_from_slice(&self.unext);
        }
        Ok(())
    }

    /// One cycle for a single lane — [`FastXsim::step`](crate::FastXsim)'s
    /// exact sequence over this lane's slice of the SoA state, sharing
    /// [`exec_op`]/[`commit_pool`] with the decoded engine.
    fn step_scalar(&mut self, lane: usize) -> Result<(), SimError> {
        let width = self.width;
        let len = self.decoded.len;
        let row = lane * width;
        if self.pcs[row..row + width].iter().all(Option::is_none) {
            return Ok(());
        }

        for fu in 0..width {
            if let Some(pc) = self.pcs[row + fu] {
                if pc >= len {
                    return Err(lane_err(
                        lane,
                        SimError::PcOutOfRange {
                            fu: FuId(fu as u8),
                            pc: Addr(pc),
                            len,
                        },
                    ));
                }
                let done = self.decoded.parcels[pc as usize * width + fu].sync_done;
                self.ss_bits[lane] = self.ss_bits[lane] & !(1 << fu) | u64::from(done) << fu;
            }
        }

        self.cc_upd.clear();
        self.staged.clear();
        let base = lane * self.pool_len;
        for fu in 0..width {
            let Some(pc) = self.pcs[row + fu] else {
                self.stats[lane].halted_fu_cycles += 1;
                continue;
            };
            let parcel = self.decoded.parcels[pc as usize * width + fu];
            let mut view = LaneMemView {
                mem: &mut self.mem,
                lane,
            };
            if let Some(cc) = exec_op(
                parcel.op,
                fu as u8,
                self.cycles[lane],
                &self.pool[base..base + self.pool_len],
                &mut self.staged,
                &mut view,
                &mut self.ports[lane],
                &mut self.stats[lane],
            )
            .map_err(|e| lane_err(lane, e))?
            {
                self.cc_upd.push((fu as u8, cc));
            }
        }
        commit_pool(
            &mut self.staged,
            &mut self.pool[base..base + self.pool_len],
            self.reg_policy,
            self.cycles[lane],
            &mut self.reg_conflicts[lane],
        )
        .map_err(|e| lane_err(lane, e))?;
        self.mem.commit(self.mem_policy, &self.cycles)?;
        self.stats[lane].conflicts_resolved =
            self.reg_conflicts[lane] + self.mem.lane_conflicts(lane);

        for fu in 0..width {
            let Some(pc) = self.pcs[row + fu] else {
                self.skeys[fu] = HALTED_KEY;
                continue;
            };
            let parcel = self.decoded.parcels[pc as usize * width + fu];
            self.skeys[fu] = parcel.key;
            let next = match parcel.ctrl {
                FastCtrl::Goto(t) => Some(t),
                FastCtrl::Branch {
                    cond,
                    taken,
                    not_taken,
                } => {
                    self.stats[lane].cond_branches += 1;
                    if cond.eval(self.cc_bits[lane], self.ss_bits[lane], self.full_mask) {
                        self.stats[lane].branches_taken += 1;
                        Some(taken)
                    } else {
                        Some(not_taken)
                    }
                }
                FastCtrl::Halt => None,
            };
            if next == Some(pc) {
                self.stats[lane].spin_cycles += 1;
            }
            self.pcs[row + fu] = next;
        }

        for &(fu, cc) in &self.cc_upd {
            self.cc_known[lane] |= 1 << fu;
            self.cc_bits[lane] = self.cc_bits[lane] & !(1 << fu) | u64::from(cc) << fu;
        }

        self.cycles[lane] += 1;
        self.stats[lane].cycles = self.cycles[lane];
        let mut streams = 0usize;
        for i in 0..width {
            let mut first = true;
            for j in 0..i {
                if self.skeys[j] == self.skeys[i] {
                    first = false;
                    break;
                }
            }
            streams += usize::from(first);
        }
        self.stats[lane].max_concurrent_streams =
            self.stats[lane].max_concurrent_streams.max(streams);
        self.stats[lane].sset_cycle_sum += streams as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xsim::Xsim;
    use ximd_isa::{
        Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, Operand, Parcel, Program, Reg,
    };

    fn addp(a: u16, b: i32, d: u16, ctrl: ControlOp) -> Parcel {
        Parcel::data(
            DataOp::alu(AluOp::Iadd, Reg(a).into(), Operand::imm_i32(b), Reg(d)),
            ctrl,
        )
    }

    /// A one-FU countdown: r0 -= 1 each cycle until r0 == 0, then fall
    /// through to a store of r1 at M[20] and a park self-loop at 3.
    fn countdown_program() -> Program {
        let mut p = Program::new(1);
        p.push(vec![Parcel::data(
            DataOp::cmp(CmpOp::Gt, Reg(0).into(), Operand::imm_i32(0)),
            ControlOp::Goto(Addr(1)),
        )]);
        p.push(vec![Parcel::data(
            DataOp::alu(AluOp::Isub, Reg(0).into(), Operand::imm_i32(1), Reg(0)),
            ControlOp::branch(CondSource::Cc(FuId(0)), Addr(0), Addr(2)),
        )]);
        p.push(vec![Parcel::data(
            DataOp::store(Reg(1).into(), Operand::imm_i32(20)),
            ControlOp::Goto(Addr(3)),
        )]);
        p.push(vec![Parcel::goto(Addr(3))]);
        p
    }

    fn independent_run(program: &Program, seed: &[(u16, i32)], budget: u64) -> Xsim {
        let config = MachineConfig::with_width(program.width());
        let mut sim = Xsim::new(program.clone(), config).unwrap();
        for &(r, v) in seed {
            sim.write_reg(Reg(r), Value::I32(v));
        }
        sim.run_decoded_until_parked(Addr(3), budget).unwrap();
        sim
    }

    fn batch(program: &Program, seeds: &[&[(u16, i32)]]) -> LaneXsim {
        let config = MachineConfig::with_width(program.width());
        let sims: Vec<Xsim> = seeds
            .iter()
            .map(|seed| {
                let mut sim = Xsim::new(program.clone(), config.clone()).unwrap();
                for &(r, v) in *seed {
                    sim.write_reg(Reg(r), Value::I32(v));
                }
                sim
            })
            .collect();
        LaneXsim::from_instances(&sims).unwrap()
    }

    #[test]
    fn lanes_match_independent_runs_despite_divergence() {
        // Different countdown lengths: the branch at address 1 diverges,
        // lanes park at different cycles, and each lane's full state must
        // match its own independent decoded run.
        let p = countdown_program();
        let seeds: Vec<Vec<(u16, i32)>> =
            (0..6).map(|i| vec![(0, 3 + 2 * i), (1, 100 + i)]).collect();
        let seed_refs: Vec<&[(u16, i32)]> = seeds.iter().map(Vec::as_slice).collect();
        let mut lanes = batch(&p, &seed_refs);
        lanes.run_until_parked(Addr(3), 200).unwrap();
        for (l, seed) in seeds.iter().enumerate() {
            let solo = independent_run(&p, seed, 200);
            assert_eq!(lanes.cycle(l), solo.cycle(), "lane {l} cycles");
            assert_eq!(lanes.stats(l), solo.stats(), "lane {l} stats");
            assert_eq!(lanes.reg(l, Reg(0)), solo.reg(Reg(0)), "lane {l} r0");
            assert_eq!(lanes.reg(l, Reg(1)), solo.reg(Reg(1)), "lane {l} r1");
            assert_eq!(lanes.pcs(l), solo.pcs(), "lane {l} pcs");
            assert_eq!(lanes.ccs(l), solo.ccs(), "lane {l} ccs");
            assert_eq!(
                lanes.mem_peek_slice(l, 0, 32).unwrap(),
                solo.mem().peek_slice(0, 32).unwrap(),
                "lane {l} memory"
            );
            assert_eq!(
                lanes.summary(l).unwrap().cycles,
                solo.cycle(),
                "lane {l} summary"
            );
        }
        // The countdowns genuinely differ, so lanes parked at different
        // cycles — the masking path ran.
        assert!(lanes.cycle(0) < lanes.cycle(5));
    }

    #[test]
    fn opposite_branches_keep_masked_lanes_untouched() {
        // Lane 0 takes the branch, lane 1 falls through to a halt. The
        // halted (masked) lane's registers and memory must stay frozen
        // while lane 0 keeps running and storing.
        let mut p = Program::new(1);
        p.push(vec![Parcel::data(
            DataOp::cmp(CmpOp::Gt, Reg(0).into(), Operand::imm_i32(0)),
            ControlOp::Goto(Addr(1)),
        )]);
        p.push(vec![Parcel::data(
            DataOp::Nop,
            ControlOp::branch(CondSource::Cc(FuId(0)), Addr(2), Addr(4)),
        )]);
        // Taken path: bump r1 five times, storing each value to M[10].
        p.push(vec![Parcel::data(
            DataOp::alu(AluOp::Iadd, Reg(1).into(), Operand::imm_i32(1), Reg(1)),
            ControlOp::Goto(Addr(3)),
        )]);
        p.push(vec![Parcel::data(
            DataOp::store(Reg(1).into(), Operand::imm_i32(10)),
            ControlOp::branch(CondSource::Cc(FuId(0)), Addr(2), Addr(4)),
        )]);
        p.push(vec![Parcel::halt()]);
        let mut lanes = batch(&p, &[&[(0, 1)], &[(0, 0)]]);
        // Lane 0 loops forever (cc stays true), so run to a budget and
        // compare against an independent run with the same budget.
        let err = lanes.run(50).unwrap_err();
        assert_eq!(
            err,
            SimError::Lane {
                lane: 0,
                error: Box::new(SimError::CycleLimit { limit: 50 })
            }
        );
        // Lane 1 halted after 3 cycles and was masked: registers and
        // memory untouched since.
        assert!(lanes.done(1));
        assert_eq!(lanes.cycle(1), 3);
        assert_eq!(lanes.reg(1, Reg(1)).as_i32(), 0, "masked lane r1 frozen");
        assert_eq!(
            lanes.mem_peek_slice(1, 10, 1).unwrap(),
            vec![0],
            "masked lane memory frozen"
        );
        // Lane 0 meanwhile kept writing.
        assert!(lanes.reg(0, Reg(1)).as_i32() > 0);
        assert!(lanes.mem_peek_slice(0, 10, 1).unwrap()[0] > 0);
    }

    #[test]
    fn lanes_sync_across_streams_at_different_times() {
        // Two FUs: FU1 counts down a per-lane workload while FU0 waits at
        // an ALL-SS barrier; lanes reach the barrier at different cycles.
        let mut p = Program::new(2);
        let barrier = ControlOp::branch(CondSource::AllSync, Addr(3), Addr(0));
        // 0: FU0 parks at the barrier (Done); FU1 decrements and tests.
        p.push(vec![
            Parcel::data(DataOp::Nop, barrier).done(),
            Parcel::data(
                DataOp::alu(AluOp::Isub, Reg(1).into(), Operand::imm_i32(1), Reg(1)),
                ControlOp::Goto(Addr(1)),
            ),
        ]);
        // 1: FU1 compares r1 > 0.
        p.push(vec![
            Parcel::data(DataOp::Nop, barrier).done(),
            Parcel::data(
                DataOp::cmp(CmpOp::Gt, Reg(1).into(), Operand::imm_i32(0)),
                ControlOp::Goto(Addr(2)),
            ),
        ]);
        // 2: FU1 loops back while work remains, else proceeds to the park
        // block — only there does it assert Done, releasing the barrier.
        p.push(vec![
            Parcel::data(DataOp::Nop, barrier).done(),
            Parcel::data(
                DataOp::Nop,
                ControlOp::branch(CondSource::Cc(FuId(1)), Addr(0), Addr(3)),
            ),
        ]);
        // 3: both park, Done.
        p.push(vec![
            Parcel::goto(Addr(3)).done(),
            Parcel::goto(Addr(3)).done(),
        ]);
        let config = MachineConfig::with_width(2);
        let seeds: Vec<Vec<(u16, i32)>> = vec![vec![(1, 2)], vec![(1, 5)], vec![(1, 9)]];
        let seed_refs: Vec<&[(u16, i32)]> = seeds.iter().map(Vec::as_slice).collect();
        let mut lanes = batch(&p, &seed_refs);
        lanes.run_until_parked(Addr(3), 200).unwrap();
        let mut parked_cycles = Vec::new();
        for (l, seed) in seeds.iter().enumerate() {
            let mut solo = Xsim::new(p.clone(), config.clone()).unwrap();
            for &(r, v) in seed {
                solo.write_reg(Reg(r), Value::I32(v));
            }
            solo.run_decoded_until_parked(Addr(3), 200).unwrap();
            assert_eq!(lanes.cycle(l), solo.cycle(), "lane {l} cycles");
            assert_eq!(lanes.stats(l), solo.stats(), "lane {l} stats");
            assert_eq!(lanes.pcs(l), solo.pcs(), "lane {l} pcs");
            assert_eq!(lanes.ss(l), vec![SyncSignal::Done; 2], "lane {l} synced");
            parked_cycles.push(lanes.cycle(l));
        }
        assert!(parked_cycles[0] < parked_cycles[1]);
        assert!(parked_cycles[1] < parked_cycles[2]);
    }

    #[test]
    fn uniform_batch_matches_single_run() {
        // Identical lanes never diverge; each must still report exactly the
        // single-machine summary.
        let p = countdown_program();
        let config = MachineConfig::with_width(1);
        let mut proto = Xsim::new(p.clone(), config.clone()).unwrap();
        proto.write_reg(Reg(0), Value::I32(7));
        proto.write_reg(Reg(1), Value::I32(55));
        let mut lanes = LaneXsim::replicate(&proto, 8).unwrap();
        let summary = lanes.run_until_parked(Addr(3), 100).unwrap();

        let mut solo = Xsim::new(p, config).unwrap();
        solo.write_reg(Reg(0), Value::I32(7));
        solo.write_reg(Reg(1), Value::I32(55));
        let solo_summary = solo.run_decoded_until_parked(Addr(3), 100).unwrap();
        assert_eq!(summary.lanes, 8);
        assert_eq!(summary.total_cycles, 8 * solo_summary.cycles);
        for l in 0..8 {
            assert_eq!(lanes.summary(l).unwrap(), &solo_summary, "lane {l}");
            assert_eq!(lanes.mem_peek_slice(l, 20, 1).unwrap(), vec![55]);
        }
    }

    #[test]
    fn lane_error_is_attributed() {
        // Lane 2 divides by zero; the batch reports exactly the error an
        // independent run of lane 2 would have raised, wrapped with its id.
        let mut p = Program::new(1);
        p.push(vec![Parcel::data(
            DataOp::alu(AluOp::Idiv, Operand::imm_i32(1), Reg(0).into(), Reg(1)),
            ControlOp::Halt,
        )]);
        let mut lanes = batch(&p, &[&[(0, 2)], &[(0, 3)], &[(0, 0)]]);
        let err = lanes.run(10).unwrap_err();
        let SimError::Lane { lane, error } = err else {
            panic!("expected lane error, got {err:?}");
        };
        assert_eq!(lane, 2);
        assert!(matches!(*error, SimError::DataFault { .. }));
    }

    #[test]
    fn constructors_validate_the_batch() {
        let mut p = Program::new(1);
        p.push(vec![Parcel::halt()]);
        let config = MachineConfig::with_width(1);
        let proto = Xsim::new(p.clone(), config.clone()).unwrap();

        assert_eq!(
            LaneXsim::from_instances(&[]).unwrap_err(),
            SimError::Config(ConfigError::ZeroLanes)
        );
        assert_eq!(
            LaneXsim::replicate(&proto, 0).unwrap_err(),
            SimError::Config(ConfigError::ZeroLanes)
        );

        let mut other = Program::new(1);
        other.push(vec![Parcel::goto(Addr(0))]);
        let mismatched = vec![
            Xsim::new(p.clone(), config.clone()).unwrap(),
            Xsim::new(other, config.clone()).unwrap(),
        ];
        assert_eq!(
            LaneXsim::from_instances(&mismatched).unwrap_err(),
            SimError::Config(ConfigError::LaneMismatch { lane: 1 })
        );

        let timed = MachineConfig::with_width(1)
            .timing(crate::timing::TimingSpec::parse("latency:mem=4").unwrap());
        let sims = vec![Xsim::new(p, timed).unwrap()];
        assert!(matches!(
            LaneXsim::from_instances(&sims).unwrap_err(),
            SimError::Config(ConfigError::CapabilityMismatch { ref backend, .. }) if backend == "lanes"
        ));
    }

    #[test]
    fn memory_overflow_addresses_work_per_lane() {
        // Addresses beyond the dense slab spill into the overflow map and
        // stay lane-private.
        let mut p = Program::new(1);
        let far = 1 << 16; // beyond DENSE_WORDS, within default mem_words
        p.push(vec![Parcel::data(
            DataOp::store(Reg(0).into(), Operand::imm_i32(far)),
            ControlOp::Goto(Addr(1)),
        )]);
        p.push(vec![Parcel::data(
            DataOp::load(Operand::imm_i32(far), Operand::imm_i32(0), Reg(1)),
            ControlOp::Halt,
        )]);
        let mut lanes = batch(&p, &[&[(0, 11)], &[(0, 22)]]);
        lanes.run(10).unwrap();
        assert_eq!(lanes.reg(0, Reg(1)).as_i32(), 11);
        assert_eq!(lanes.reg(1, Reg(1)).as_i32(), 22);
        assert_eq!(
            lanes.mem_peek_slice(0, i64::from(far), 1).unwrap(),
            vec![11]
        );
        assert_eq!(
            lanes.mem_peek_slice(1, i64::from(far), 1).unwrap(),
            vec![22]
        );
    }

    #[test]
    fn write_conflicts_trap_with_lane_attribution() {
        let mut p = Program::new(2);
        p.push(vec![
            addp(0, 1, 5, ControlOp::Halt),
            addp(0, 2, 5, ControlOp::Halt),
        ]);
        let mut lanes = batch(&p, &[&[(0, 0)], &[(0, 0)]]);
        let err = lanes.run(10).unwrap_err();
        let SimError::Lane { lane: 0, error } = err else {
            panic!("expected lane 0 error, got {err:?}");
        };
        assert!(matches!(*error, SimError::RegisterWriteConflict { .. }));
    }

    #[test]
    fn last_wins_conflicts_count_per_lane() {
        let mut p = Program::new(2);
        p.push(vec![
            addp(0, 1, 5, ControlOp::Halt),
            addp(0, 2, 5, ControlOp::Halt),
        ]);
        let config = MachineConfig::with_width(2).conflicts(ConflictPolicy::LastWins);
        let sims: Vec<Xsim> = (0..3)
            .map(|_| Xsim::new(p.clone(), config.clone()).unwrap())
            .collect();
        let mut lanes = LaneXsim::from_instances(&sims).unwrap();
        lanes.run(10).unwrap();
        for l in 0..3 {
            assert_eq!(lanes.stats(l).conflicts_resolved, 1, "lane {l}");
            assert_eq!(lanes.reg(l, Reg(5)).as_i32(), 2, "highest FU wins");
        }
    }

    #[test]
    fn ports_are_per_lane() {
        let mut p = Program::new(1);
        p.push(vec![Parcel::data(
            DataOp::PortIn { port: 0, d: Reg(0) },
            ControlOp::Goto(Addr(1)),
        )]);
        p.push(vec![Parcel::data(
            DataOp::PortOut {
                port: 0,
                a: Reg(0).into(),
            },
            ControlOp::Halt,
        )]);
        let config = MachineConfig::with_width(1);
        let sims: Vec<Xsim> = (0..2)
            .map(|i| {
                let mut sim = Xsim::new(p.clone(), config.clone()).unwrap();
                let mut port = IoPort::new();
                port.schedule(0, Value::I32(40 + i));
                sim.attach_port(port);
                sim
            })
            .collect();
        let mut lanes = LaneXsim::from_instances(&sims).unwrap();
        lanes.run(10).unwrap();
        assert_eq!(lanes.reg(0, Reg(0)).as_i32(), 40);
        assert_eq!(lanes.reg(1, Reg(0)).as_i32(), 41);
        assert_eq!(lanes.ports(0)[0].written().len(), 1);
        assert_eq!(lanes.ports(1)[0].written().len(), 1);
    }

    #[test]
    fn rerun_after_completion_is_idempotent() {
        let p = countdown_program();
        let mut lanes = batch(&p, &[&[(0, 3)], &[(0, 5)]]);
        let first = lanes.run_until_parked(Addr(3), 100).unwrap();
        let again = lanes.run_until_parked(Addr(3), 100).unwrap();
        assert_eq!(first, again);
        assert!(lanes.all_done());
    }
}
