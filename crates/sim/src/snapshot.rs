//! Machine-state snapshot encoding.
//!
//! Serializes a complete [`Xsim`] (or a whole [`LaneXsim`] batch) into a
//! self-describing, length-prefixed binary image and restores it losslessly:
//! registers, memory (including the lane engine's overflow map), I/O port
//! queues and counters, PCs, latched condition codes, sync signals, the
//! SSET partition, accumulated statistics, and per-FU occupancy state from
//! multi-cycle timing models. The contract the session layer builds on is
//! **bit-exactness**: suspending a run at any cycle boundary, round-tripping
//! the state through [`encode_machine`]/[`decode_machine`], and resuming
//! with the original drive produces exactly the state an uninterrupted run
//! would — same registers, same memory, same statistics, same cycle count.
//!
//! Two things are deliberately *not* captured. The execution trace
//! ([`Xsim::trace`]) is an observer, not machine state; a restored machine
//! starts with tracing off. And the timing-model object is rebuilt from its
//! [`TimingSpec`] string (the spec's `Display` round-trips through `parse`)
//! rather than serialized — only the per-FU `Pending` occupancy state
//! carries between cycles, and that is captured in full.
//!
//! The format is hand-rolled (the workspace's serde is a marker-trait stub)
//! and versioned: eight magic bytes, a `u16` version, a kind tag, then the
//! body. All integers are little-endian; vectors are `u32`-length-prefixed.

use ximd_isa::{
    encode::{decode_parcel, encode_parcel},
    Addr, FuId, IsaError, Program, Reg, SyncSignal, Value,
};

use crate::config::{ConflictPolicy, MachineConfig};
use crate::device::{IoPort, PortEvent};
use crate::error::SimError;
use crate::lanes::LaneXsim;
use crate::partition::{CondKey, DecisionKey, Partition};
use crate::stats::SimStats;
use crate::timing::TimingSpec;
use crate::xsim::{Pending, Xsim};

/// The eight magic bytes every snapshot starts with.
pub const MAGIC: &[u8; 8] = b"XIMDSNAP";

/// Current format version.
pub const VERSION: u16 = 1;

/// What a snapshot image contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// A single [`Xsim`] machine.
    Machine,
    /// A [`LaneXsim`] batch plus its shared program and configuration.
    Lanes,
}

/// Why a snapshot image could not be decoded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The image ended before the announced data.
    Truncated,
    /// The image does not start with [`const@MAGIC`].
    BadMagic,
    /// The image's version is not [`VERSION`].
    BadVersion(u16),
    /// A field held a value no machine state could produce.
    Corrupt(&'static str),
    /// Rebuilding the machine rejected the decoded state.
    Sim(SimError),
    /// A program parcel failed to encode or decode.
    Isa(IsaError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a XIMD snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Sim(e) => write!(f, "snapshot state rejected: {e}"),
            SnapshotError::Isa(e) => write!(f, "snapshot program invalid: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SimError> for SnapshotError {
    fn from(e: SimError) -> SnapshotError {
        SnapshotError::Sim(e)
    }
}

impl From<IsaError> for SnapshotError {
    fn from(e: IsaError) -> SnapshotError {
        SnapshotError::Isa(e)
    }
}

const KIND_MACHINE: u8 = 0;
const KIND_LANES: u8 = 1;

// ---------------------------------------------------------------------------
// Byte-level writer/reader
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }
    fn value(&mut self, v: Value) {
        self.u8(match v {
            Value::I32(_) => 0,
            Value::F32(_) => 1,
        });
        self.u32(v.bits());
    }
}

struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotError::Truncated)?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// A `u32` length prefix, sanity-bounded so a corrupt length cannot ask
    /// for more elements than bytes remain in the image.
    fn len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.buf.len() - self.pos {
            return Err(SnapshotError::Truncated);
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let n = self.len(1)?;
        std::str::from_utf8(self.take(n)?).map_err(|_| SnapshotError::Corrupt("non-UTF-8 string"))
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            _ => Err(SnapshotError::Corrupt("option tag")),
        }
    }

    fn value(&mut self) -> Result<Value, SnapshotError> {
        let tag = self.u8()?;
        let bits = self.u32()?;
        match tag {
            0 => Ok(Value::from_bits_int(bits)),
            1 => Ok(Value::from_bits_float(bits)),
            _ => Err(SnapshotError::Corrupt("value tag")),
        }
    }

    fn finish(&self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt("trailing bytes"))
        }
    }
}

// ---------------------------------------------------------------------------
// Field-group encoders (shared by the machine and lane images)
// ---------------------------------------------------------------------------

fn policy_code(p: ConflictPolicy) -> u8 {
    match p {
        ConflictPolicy::Trap => 0,
        ConflictPolicy::LastWins => 1,
    }
}

fn policy_decode(code: u8) -> Result<ConflictPolicy, SnapshotError> {
    match code {
        0 => Ok(ConflictPolicy::Trap),
        1 => Ok(ConflictPolicy::LastWins),
        _ => Err(SnapshotError::Corrupt("conflict policy")),
    }
}

fn put_config(w: &mut ByteWriter, config: &MachineConfig) {
    w.u32(config.width as u32);
    w.u32(config.num_regs as u32);
    w.u32(config.mem_words);
    w.u8(policy_code(config.reg_conflicts));
    w.u8(policy_code(config.mem_conflicts));
    w.u32(config.reg_read_ports as u32);
    w.u32(config.reg_write_ports as u32);
    w.str(&config.timing.to_string());
}

fn get_config(r: &mut ByteReader) -> Result<MachineConfig, SnapshotError> {
    let width = r.u32()? as usize;
    let num_regs = r.u32()? as usize;
    // Bound the allocation-driving fields before any machine is built so a
    // corrupt image cannot demand gigabytes; real configs are far smaller.
    if width == 0 || width > 1 << 16 {
        return Err(SnapshotError::Corrupt("machine width"));
    }
    if num_regs > 1 << 20 {
        return Err(SnapshotError::Corrupt("register-file size"));
    }
    let mem_words = r.u32()?;
    let reg_conflicts = policy_decode(r.u8()?)?;
    let mem_conflicts = policy_decode(r.u8()?)?;
    let reg_read_ports = r.u32()? as usize;
    let reg_write_ports = r.u32()? as usize;
    let timing = TimingSpec::parse(r.str()?)?;
    Ok(MachineConfig {
        width,
        num_regs,
        mem_words,
        reg_conflicts,
        mem_conflicts,
        reg_read_ports,
        reg_write_ports,
        timing,
    })
}

fn put_program(w: &mut ByteWriter, program: &Program) -> Result<(), SnapshotError> {
    w.u32(program.len() as u32);
    for (_, instr) in program.iter() {
        for parcel in instr {
            w.u128(encode_parcel(parcel)?);
        }
    }
    Ok(())
}

fn get_program(r: &mut ByteReader, width: usize) -> Result<Program, SnapshotError> {
    let len = r.len(16 * width.max(1))?;
    let mut program = Program::new(width);
    for _ in 0..len {
        let mut instr = Vec::with_capacity(width);
        for _ in 0..width {
            instr.push(decode_parcel(r.u128()?)?);
        }
        program.try_push(instr)?;
    }
    Ok(program)
}

fn put_values(w: &mut ByteWriter, values: &[Value]) {
    w.u32(values.len() as u32);
    for &v in values {
        w.value(v);
    }
}

fn get_values(r: &mut ByteReader) -> Result<Vec<Value>, SnapshotError> {
    let n = r.len(5)?;
    (0..n).map(|_| r.value()).collect()
}

/// Memory as sorted `(addr, bits)` pairs — sorted so identical states
/// encode to identical bytes regardless of hash-map iteration order.
fn put_mem_words(w: &mut ByteWriter, mut words: Vec<(u32, u32)>) {
    words.sort_unstable();
    w.u32(words.len() as u32);
    for (addr, bits) in words {
        w.u32(addr);
        w.u32(bits);
    }
}

fn get_mem_words(r: &mut ByteReader) -> Result<Vec<(u32, u32)>, SnapshotError> {
    let n = r.len(8)?;
    (0..n).map(|_| Ok((r.u32()?, r.u32()?))).collect()
}

fn put_ports(w: &mut ByteWriter, ports: &[IoPort]) {
    w.u32(ports.len() as u32);
    for port in ports {
        let (incoming, outgoing, reads, polls_empty) = port.export();
        w.u32(incoming.len() as u32);
        for &(ready, v) in incoming {
            w.u64(ready);
            w.value(v);
        }
        w.u32(outgoing.len() as u32);
        for ev in outgoing {
            w.u64(ev.cycle);
            w.value(ev.value);
        }
        w.u64(reads);
        w.u64(polls_empty);
    }
}

fn get_ports(r: &mut ByteReader) -> Result<Vec<IoPort>, SnapshotError> {
    let n = r.len(20)?;
    (0..n)
        .map(|_| {
            let ni = r.len(13)?;
            let incoming = (0..ni)
                .map(|_| Ok((r.u64()?, r.value()?)))
                .collect::<Result<Vec<_>, SnapshotError>>()?;
            if incoming.windows(2).any(|p| p[0].0 > p[1].0) {
                return Err(SnapshotError::Corrupt("port queue out of order"));
            }
            let no = r.len(13)?;
            let outgoing = (0..no)
                .map(|_| {
                    Ok(PortEvent {
                        cycle: r.u64()?,
                        value: r.value()?,
                    })
                })
                .collect::<Result<Vec<_>, SnapshotError>>()?;
            let reads = r.u64()?;
            let polls_empty = r.u64()?;
            Ok(IoPort::from_parts(incoming, outgoing, reads, polls_empty))
        })
        .collect()
}

fn put_pcs(w: &mut ByteWriter, pcs: &[Option<Addr>]) {
    for pc in pcs {
        w.opt_u32(pc.map(|a| a.0));
    }
}

fn get_pcs(r: &mut ByteReader, width: usize) -> Result<Vec<Option<Addr>>, SnapshotError> {
    (0..width).map(|_| Ok(r.opt_u32()?.map(Addr))).collect()
}

fn put_ccs(w: &mut ByteWriter, ccs: &[Option<bool>]) {
    for cc in ccs {
        w.u8(match cc {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
    }
}

fn get_ccs(r: &mut ByteReader, width: usize) -> Result<Vec<Option<bool>>, SnapshotError> {
    (0..width)
        .map(|_| match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(false)),
            2 => Ok(Some(true)),
            _ => Err(SnapshotError::Corrupt("condition code")),
        })
        .collect()
}

fn put_ss(w: &mut ByteWriter, ss: &[SyncSignal]) {
    for s in ss {
        w.u8(u8::from(*s == SyncSignal::Done));
    }
}

fn get_ss(r: &mut ByteReader, width: usize) -> Result<Vec<SyncSignal>, SnapshotError> {
    (0..width)
        .map(|_| match r.u8()? {
            0 => Ok(SyncSignal::Busy),
            1 => Ok(SyncSignal::Done),
            _ => Err(SnapshotError::Corrupt("sync signal")),
        })
        .collect()
}

fn put_partition(w: &mut ByteWriter, partition: &Partition) {
    let ssets = partition.ssets();
    w.u32(ssets.len() as u32);
    for sset in ssets {
        w.u32(sset.len() as u32);
        for fu in sset {
            w.u8(fu.0);
        }
    }
}

fn get_partition(r: &mut ByteReader, width: usize) -> Result<Partition, SnapshotError> {
    let n = r.len(5)?;
    let mut seen = vec![false; width];
    let mut ssets = Vec::with_capacity(n);
    for _ in 0..n {
        let k = r.len(1)?;
        if k == 0 {
            return Err(SnapshotError::Corrupt("empty SSET"));
        }
        let mut sset = Vec::with_capacity(k);
        for _ in 0..k {
            let fu = r.u8()? as usize;
            if fu >= width || seen[fu] {
                return Err(SnapshotError::Corrupt("SSET member"));
            }
            seen[fu] = true;
            sset.push(FuId(fu as u8));
        }
        ssets.push(sset);
    }
    if !seen.iter().all(|&s| s) {
        return Err(SnapshotError::Corrupt("partition does not cover all FUs"));
    }
    // Disjointness and non-emptiness were just validated, so the
    // normalizing constructor cannot panic.
    Ok(Partition::from_ssets(ssets))
}

fn put_stats(w: &mut ByteWriter, stats: &SimStats) {
    w.u64(stats.cycles);
    w.u32(stats.width as u32);
    w.u64(stats.ops);
    w.u64(stats.nops);
    w.u64(stats.loads);
    w.u64(stats.stores);
    w.u64(stats.compares);
    w.u64(stats.cond_branches);
    w.u64(stats.branches_taken);
    w.u64(stats.spin_cycles);
    w.u64(stats.halted_fu_cycles);
    w.u32(stats.max_concurrent_streams as u32);
    w.u64(stats.sset_cycle_sum);
    w.u64(stats.conflicts_resolved);
    w.u64(stats.stall_cycles);
    w.u64(stats.contention_stalls);
    w.u32(stats.ops_per_fu.len() as u32);
    for &o in &stats.ops_per_fu {
        w.u64(o);
    }
}

fn get_stats(r: &mut ByteReader) -> Result<SimStats, SnapshotError> {
    let cycles = r.u64()?;
    let width = r.u32()? as usize;
    let ops = r.u64()?;
    let nops = r.u64()?;
    let loads = r.u64()?;
    let stores = r.u64()?;
    let compares = r.u64()?;
    let cond_branches = r.u64()?;
    let branches_taken = r.u64()?;
    let spin_cycles = r.u64()?;
    let halted_fu_cycles = r.u64()?;
    let max_concurrent_streams = r.u32()? as usize;
    let sset_cycle_sum = r.u64()?;
    let conflicts_resolved = r.u64()?;
    let stall_cycles = r.u64()?;
    let contention_stalls = r.u64()?;
    let n = r.len(8)?;
    let ops_per_fu = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
    Ok(SimStats {
        cycles,
        width,
        ops,
        nops,
        loads,
        stores,
        compares,
        cond_branches,
        branches_taken,
        spin_cycles,
        halted_fu_cycles,
        max_concurrent_streams,
        sset_cycle_sum,
        conflicts_resolved,
        stall_cycles,
        contention_stalls,
        ops_per_fu,
    })
}

fn put_decision_key(w: &mut ByteWriter, key: DecisionKey) {
    match key {
        DecisionKey::Uncond(t) => {
            w.u8(0);
            w.u32(t);
        }
        DecisionKey::Cond(cond, taken, not_taken) => {
            w.u8(1);
            match cond {
                CondKey::Cc(fu) => {
                    w.u8(0);
                    w.u8(fu);
                }
                CondKey::Sync(fu) => {
                    w.u8(1);
                    w.u8(fu);
                }
                CondKey::AllSync => {
                    w.u8(2);
                    w.u8(0);
                }
                CondKey::AnySync => {
                    w.u8(3);
                    w.u8(0);
                }
            }
            w.u32(taken);
            w.u32(not_taken);
        }
        DecisionKey::Halted => w.u8(2),
    }
}

fn get_decision_key(r: &mut ByteReader) -> Result<DecisionKey, SnapshotError> {
    match r.u8()? {
        0 => Ok(DecisionKey::Uncond(r.u32()?)),
        1 => {
            let tag = r.u8()?;
            let fu = r.u8()?;
            let cond = match tag {
                0 => CondKey::Cc(fu),
                1 => CondKey::Sync(fu),
                2 => CondKey::AllSync,
                3 => CondKey::AnySync,
                _ => return Err(SnapshotError::Corrupt("condition key")),
            };
            Ok(DecisionKey::Cond(cond, r.u32()?, r.u32()?))
        }
        2 => Ok(DecisionKey::Halted),
        _ => Err(SnapshotError::Corrupt("decision key")),
    }
}

fn put_pending(w: &mut ByteWriter, pending: &[Pending]) {
    w.u32(pending.len() as u32);
    for p in pending {
        w.u64(p.remaining);
        w.opt_u32(p.next.map(|a| a.0));
        put_decision_key(w, p.key);
    }
}

fn get_pending(r: &mut ByteReader) -> Result<Vec<Pending>, SnapshotError> {
    let n = r.len(10)?;
    (0..n)
        .map(|_| {
            Ok(Pending {
                remaining: r.u64()?,
                next: r.opt_u32()?.map(Addr),
                key: get_decision_key(r)?,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Machine image
// ---------------------------------------------------------------------------

/// Per-lane dynamic state shared between the encode and decode paths of the
/// lane image (everything the machine image carries minus config/program,
/// which the batch shares).
struct LaneRecord {
    done: bool,
    regs: Vec<Value>,
    reg_conflicts: u64,
    mem_words: Vec<(u32, u32)>,
    mem_conflicts: u64,
    ports: Vec<IoPort>,
    pcs: Vec<Option<Addr>>,
    ccs: Vec<Option<bool>>,
    ss: Vec<SyncSignal>,
    cycle: u64,
    stats: SimStats,
}

fn header(kind: u8) -> ByteWriter {
    let mut w = ByteWriter::default();
    w.buf.extend_from_slice(MAGIC);
    w.u16(VERSION);
    w.u8(kind);
    w
}

fn check_header(r: &mut ByteReader) -> Result<u8, SnapshotError> {
    if r.take(8)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    r.u8()
}

/// Reads the kind tag of a snapshot image without decoding the body.
///
/// # Errors
///
/// [`SnapshotError`] if the header is truncated, foreign, or a later
/// version.
pub fn kind(bytes: &[u8]) -> Result<SnapshotKind, SnapshotError> {
    match check_header(&mut ByteReader::new(bytes))? {
        KIND_MACHINE => Ok(SnapshotKind::Machine),
        KIND_LANES => Ok(SnapshotKind::Lanes),
        _ => Err(SnapshotError::Corrupt("kind tag")),
    }
}

/// Serializes a machine mid-run. `complete` is the session-level "this run
/// already finished (halted or parked out)" flag; it rides along so a
/// restored session does not re-drive a finished machine through an extra
/// parked cycle.
///
/// # Errors
///
/// [`SnapshotError::Isa`] if a program parcel exceeds the fixed-width
/// parcel encoding's limits (wider than 32 FUs, more than 256 registers).
pub fn encode_machine(sim: &Xsim, complete: bool) -> Result<Vec<u8>, SnapshotError> {
    let mut w = header(KIND_MACHINE);
    w.u8(u8::from(complete));
    put_config(&mut w, &sim.config);
    put_program(&mut w, &sim.program)?;
    put_values(&mut w, sim.regs.snapshot());
    w.u64(sim.regs.conflicts_resolved());
    put_mem_words(&mut w, sim.mem.iter_words().collect());
    w.u64(sim.mem.conflicts_resolved());
    put_ports(&mut w, &sim.ports);
    put_pcs(&mut w, &sim.pcs);
    put_ccs(&mut w, &sim.ccs);
    put_ss(&mut w, &sim.ss);
    put_partition(&mut w, &sim.partition);
    w.u64(sim.cycle);
    put_stats(&mut w, &sim.stats);
    put_pending(&mut w, &sim.pending);
    Ok(w.buf)
}

/// Restores a machine serialized by [`encode_machine`]. Returns the machine
/// and the session-level `complete` flag. The restored machine has tracing
/// off regardless of the original's trace setting.
///
/// # Errors
///
/// Any [`SnapshotError`]: truncation, foreign or future images, corrupt
/// fields, or decoded state the simulator's own validation rejects.
pub fn decode_machine(bytes: &[u8]) -> Result<(Xsim, bool), SnapshotError> {
    let mut r = ByteReader::new(bytes);
    if check_header(&mut r)? != KIND_MACHINE {
        return Err(SnapshotError::Corrupt("expected a machine snapshot"));
    }
    let complete = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Corrupt("complete flag")),
    };
    let config = get_config(&mut r)?;
    let program = get_program(&mut r, config.width)?;
    let sim = restore_machine_body(&mut r, program, config)?;
    r.finish()?;
    Ok((sim, complete))
}

/// Decodes the dynamic-state fields and grafts them onto a freshly built
/// machine. `Xsim::new` re-runs config and program validation, so a corrupt
/// image surfaces as a typed error rather than a mid-run panic.
fn restore_machine_body(
    r: &mut ByteReader,
    program: Program,
    config: MachineConfig,
) -> Result<Xsim, SnapshotError> {
    let width = config.width;
    let mut sim = Xsim::new(program, config)?;

    let regs = get_values(r)?;
    if regs.len() != sim.regs.len() {
        return Err(SnapshotError::Corrupt("register count"));
    }
    for (i, &v) in regs.iter().enumerate() {
        sim.regs.poke(Reg(i as u16), v);
    }
    sim.regs.force_conflicts_resolved(r.u64()?);

    for (addr, bits) in get_mem_words(r)? {
        sim.mem
            .poke(i64::from(addr), Value::from_bits_int(bits))
            .map_err(|_| SnapshotError::Corrupt("memory address"))?;
    }
    sim.mem.force_conflicts_resolved(r.u64()?);

    sim.ports = get_ports(r)?;
    sim.pcs = get_pcs(r, width)?;
    let len = sim.program.len() as u32;
    if sim.pcs.iter().flatten().any(|pc| pc.0 >= len) {
        return Err(SnapshotError::Corrupt("program counter"));
    }
    sim.ccs = get_ccs(r, width)?;
    sim.ss = get_ss(r, width)?;
    sim.partition = get_partition(r, width)?;
    sim.cycle = r.u64()?;
    let stats = get_stats(r)?;
    if stats.width != width || stats.ops_per_fu.len() != width {
        return Err(SnapshotError::Corrupt("statistics width"));
    }
    sim.stats = stats;
    let pending = get_pending(r)?;
    if pending.len() != width {
        return Err(SnapshotError::Corrupt("pending count"));
    }
    sim.pending = pending;
    Ok(sim)
}

// ---------------------------------------------------------------------------
// Lane-batch image
// ---------------------------------------------------------------------------

/// Serializes a whole lane batch mid-run: the shared program and
/// configuration once, then every lane's dynamic state (including finished
/// lanes, whose `done` flag and final statistics ride along so a restored
/// batch never re-drives them).
///
/// The batch does not retain its source program/config (it keeps only the
/// decoded tables), so the caller — normally a
/// [`Session`](crate::session::Session) — supplies them.
///
/// # Errors
///
/// [`SnapshotError::Isa`] under the same parcel-encoding limits as
/// [`encode_machine`].
pub fn encode_lanes(
    batch: &LaneXsim,
    program: &Program,
    config: &MachineConfig,
) -> Result<Vec<u8>, SnapshotError> {
    let mut w = header(KIND_LANES);
    put_config(&mut w, config);
    put_program(&mut w, program)?;
    w.u32(batch.lanes() as u32);
    for lane in 0..batch.lanes() {
        let (reg_conflicts, mem_conflicts) = batch.export_lane_conflicts(lane);
        w.u8(u8::from(batch.done(lane)));
        put_values(&mut w, batch.export_lane_regs(lane));
        w.u64(reg_conflicts);
        put_mem_words(&mut w, batch.export_lane_mem(lane));
        w.u64(mem_conflicts);
        put_ports(&mut w, batch.ports(lane));
        put_pcs(&mut w, &batch.pcs(lane));
        put_ccs(&mut w, &batch.ccs(lane));
        put_ss(&mut w, &batch.ss(lane));
        w.u64(batch.cycle(lane));
        put_stats(&mut w, &batch.export_lane_stats(lane));
    }
    Ok(w.buf)
}

/// Restores a lane batch serialized by [`encode_lanes`]. Returns the batch
/// plus the shared program and configuration (which the batch itself does
/// not retain). Lanes that were finished at snapshot time come back
/// finished, with their summaries intact.
///
/// # Errors
///
/// Any [`SnapshotError`].
pub fn decode_lanes(bytes: &[u8]) -> Result<(LaneXsim, Program, MachineConfig), SnapshotError> {
    let mut r = ByteReader::new(bytes);
    if check_header(&mut r)? != KIND_LANES {
        return Err(SnapshotError::Corrupt("expected a lane-batch snapshot"));
    }
    let config = get_config(&mut r)?;
    let program = get_program(&mut r, config.width)?;
    let lanes = r.len(1)?;
    if lanes == 0 {
        return Err(SnapshotError::Corrupt("zero lanes"));
    }
    let mut records = Vec::with_capacity(lanes);
    for _ in 0..lanes {
        let done = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Corrupt("done flag")),
        };
        let regs = get_values(&mut r)?;
        let reg_conflicts = r.u64()?;
        let mem_words = get_mem_words(&mut r)?;
        let mem_conflicts = r.u64()?;
        let ports = get_ports(&mut r)?;
        let pcs = get_pcs(&mut r, config.width)?;
        let ccs = get_ccs(&mut r, config.width)?;
        let ss = get_ss(&mut r, config.width)?;
        let cycle = r.u64()?;
        let stats = get_stats(&mut r)?;
        records.push(LaneRecord {
            done,
            regs,
            reg_conflicts,
            mem_words,
            mem_conflicts,
            ports,
            pcs,
            ccs,
            ss,
            cycle,
            stats,
        });
    }
    r.finish()?;

    // Rebuild each lane as a standalone machine, assemble the batch off
    // them (one shared decode), then mask the lanes that had already
    // finished so a resumed drive never steps them again.
    let mut sims = Vec::with_capacity(lanes);
    for rec in &records {
        let mut sim = Xsim::new(program.clone(), config.clone())?;
        if rec.regs.len() != sim.regs.len() {
            return Err(SnapshotError::Corrupt("register count"));
        }
        for (i, &v) in rec.regs.iter().enumerate() {
            sim.regs.poke(Reg(i as u16), v);
        }
        sim.regs.force_conflicts_resolved(rec.reg_conflicts);
        for &(addr, bits) in &rec.mem_words {
            sim.mem
                .poke(i64::from(addr), Value::from_bits_int(bits))
                .map_err(|_| SnapshotError::Corrupt("memory address"))?;
        }
        sim.mem.force_conflicts_resolved(rec.mem_conflicts);
        sim.ports = rec.ports.clone();
        if rec
            .pcs
            .iter()
            .flatten()
            .any(|pc| pc.0 >= program.len() as u32)
        {
            return Err(SnapshotError::Corrupt("program counter"));
        }
        sim.pcs = rec.pcs.clone();
        sim.ccs = rec.ccs.clone();
        sim.ss = rec.ss.clone();
        sim.cycle = rec.cycle;
        if rec.stats.width != config.width || rec.stats.ops_per_fu.len() != config.width {
            return Err(SnapshotError::Corrupt("statistics width"));
        }
        sim.stats = rec.stats.clone();
        sims.push(sim);
    }
    let mut batch = LaneXsim::from_instances(&sims)?;
    for (lane, rec) in records.iter().enumerate() {
        if rec.done {
            batch.mask_lane(lane);
        }
    }
    Ok((batch, program, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ximd_isa::{AluOp, ControlOp, DataOp, Operand, Parcel};

    fn addi(a: u16, b: i32, d: u16, ctrl: ControlOp) -> Parcel {
        Parcel {
            data: DataOp::Alu {
                op: AluOp::Iadd,
                a: Operand::Reg(Reg(a)),
                b: Operand::Imm(Value::I32(b)),
                d: Reg(d),
            },
            ctrl,
            sync: SyncSignal::Busy,
        }
    }

    fn looping_program() -> Program {
        // Both FUs loop 0 -> 1 -> 0 ... on FU0's CC (r0 < 20) and halt
        // together at 2. FU0 counts, FU1 accumulates.
        let branch = ControlOp::Branch {
            cond: ximd_isa::CondSource::Cc(FuId(0)),
            taken: Addr(0),
            not_taken: Addr(2),
        };
        let mut p = Program::new(2);
        p.push(vec![
            Parcel {
                data: DataOp::Cmp {
                    op: ximd_isa::CmpOp::Lt,
                    a: Operand::Reg(Reg(0)),
                    b: Operand::Imm(Value::I32(20)),
                },
                ctrl: ControlOp::Goto(Addr(1)),
                sync: SyncSignal::Busy,
            },
            addi(1, 2, 1, ControlOp::Goto(Addr(1))),
        ]);
        p.push(vec![addi(0, 1, 0, branch), addi(1, 1, 1, branch)]);
        p.push(vec![Parcel::halt(), Parcel::halt()]);
        p
    }

    fn assert_same_state(a: &Xsim, b: &Xsim) {
        assert_eq!(a.regs.snapshot(), b.regs.snapshot());
        let mut wa: Vec<_> = a.mem.iter_words().collect();
        let mut wb: Vec<_> = b.mem.iter_words().collect();
        wa.sort_unstable();
        wb.sort_unstable();
        assert_eq!(wa, wb);
        assert_eq!(a.pcs, b.pcs);
        assert_eq!(a.ccs, b.ccs);
        assert_eq!(a.ss, b.ss);
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.cycle, b.cycle);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn machine_image_round_trips_mid_run() {
        let mut sim = Xsim::new(looping_program(), MachineConfig::with_width(2)).unwrap();
        for _ in 0..7 {
            sim.step().unwrap();
        }
        let bytes = encode_machine(&sim, false).unwrap();
        assert_eq!(kind(&bytes).unwrap(), SnapshotKind::Machine);
        let (restored, complete) = decode_machine(&bytes).unwrap();
        assert!(!complete);
        assert_same_state(&sim, &restored);
    }

    #[test]
    fn resumed_machine_matches_uninterrupted_run() {
        let config = MachineConfig::with_width(2);
        let mut baseline = Xsim::new(looping_program(), config.clone()).unwrap();
        baseline.run(200).unwrap();

        let mut sim = Xsim::new(looping_program(), config).unwrap();
        for _ in 0..9 {
            sim.step().unwrap();
        }
        let bytes = encode_machine(&sim, false).unwrap();
        let (mut restored, _) = decode_machine(&bytes).unwrap();
        restored.run(200).unwrap();
        assert_same_state(&baseline, &restored);
    }

    #[test]
    fn pending_stall_state_survives_the_round_trip() {
        let config =
            MachineConfig::with_width(2).timing(TimingSpec::parse("latency:mem=4").unwrap());
        let mut program = Program::new(2);
        program.push(vec![
            Parcel {
                data: DataOp::Load {
                    a: Operand::Imm(Value::I32(3)),
                    b: Operand::Imm(Value::I32(0)),
                    d: Reg(0),
                },
                ctrl: ControlOp::Goto(Addr(1)),
                sync: SyncSignal::Busy,
            },
            addi(1, 5, 1, ControlOp::Goto(Addr(1))),
        ]);
        program.push(vec![Parcel::halt(), Parcel::halt()]);

        let mut baseline = Xsim::new(program.clone(), config.clone()).unwrap();
        baseline.run(100).unwrap();

        let mut sim = Xsim::new(program, config).unwrap();
        sim.step().unwrap(); // mid-stall: FU0 occupied by the 4-cycle load
        let (mut restored, _) = decode_machine(&encode_machine(&sim, false).unwrap()).unwrap();
        assert_eq!(restored.pending[0].remaining, sim.pending[0].remaining);
        restored.run(100).unwrap();
        assert_same_state(&baseline, &restored);
    }

    #[test]
    fn corrupt_images_are_typed_errors() {
        let sim = Xsim::new(looping_program(), MachineConfig::with_width(2)).unwrap();
        let bytes = encode_machine(&sim, false).unwrap();
        assert!(matches!(
            decode_machine(&bytes[..bytes.len() - 3]),
            Err(SnapshotError::Truncated) | Err(SnapshotError::Corrupt(_))
        ));
        let mut foreign = bytes.clone();
        foreign[0] = b'Y';
        assert!(matches!(
            decode_machine(&foreign),
            Err(SnapshotError::BadMagic)
        ));
        let mut future = bytes.clone();
        future[8] = 0xFF;
        assert!(matches!(
            decode_machine(&future),
            Err(SnapshotError::BadVersion(_))
        ));
        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            decode_machine(&trailing),
            Err(SnapshotError::Corrupt("trailing bytes"))
        ));
    }

    #[test]
    fn lane_batch_round_trips_with_mixed_done_lanes() {
        let program = looping_program();
        let config = MachineConfig::with_width(2);
        let mut sims = Vec::new();
        for start in [0, 30] {
            let mut sim = Xsim::new(program.clone(), config.clone()).unwrap();
            sim.write_reg(Reg(0), Value::I32(start));
            sims.push(sim);
        }
        let mut batch = LaneXsim::from_instances(&sims).unwrap();
        // Lane 1 starts at 30 (>= 20) and halts quickly; run far enough
        // that it finishes while lane 0 is still looping.
        batch.run_for(None, 12).unwrap();
        assert!(batch.done(1) && !batch.done(0));

        let bytes = encode_lanes(&batch, &program, &config).unwrap();
        assert_eq!(kind(&bytes).unwrap(), SnapshotKind::Lanes);
        let (mut restored, rprogram, rconfig) = decode_lanes(&bytes).unwrap();
        assert_eq!(rprogram, program);
        assert_eq!(rconfig, config);
        assert!(restored.done(1) && !restored.done(0));
        assert_eq!(restored.summary(1), batch.summary(1));

        let mut baseline = LaneXsim::from_instances(&sims).unwrap();
        baseline.run(1000).unwrap();
        restored.run(1000).unwrap();
        for lane in 0..2 {
            assert_eq!(restored.summary(lane), baseline.summary(lane));
            assert_eq!(restored.pcs(lane), baseline.pcs(lane));
            assert_eq!(
                restored.mem_peek_slice(lane, 0, 8).unwrap(),
                baseline.mem_peek_slice(lane, 0, 8).unwrap()
            );
        }
    }
}
