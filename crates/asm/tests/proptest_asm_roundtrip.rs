//! Property test: for arbitrary well-formed programs, `print_program` then
//! `assemble` reproduces the program exactly.

use proptest::prelude::*;
use ximd_asm::{assemble, print_program};
use ximd_isa::{
    Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, FuId, Operand, Parcel, Program, Reg,
    SyncSignal, UnOp,
};

const MAX_LEN: u32 = 12;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u16..32).prop_map(Reg)
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        (-1000i32..1000).prop_map(Operand::imm_i32),
    ]
}

fn arb_data() -> impl Strategy<Value = DataOp> {
    prop_oneof![
        Just(DataOp::Nop),
        (
            proptest::sample::select(AluOp::ALL.to_vec()),
            arb_operand(),
            arb_operand(),
            arb_reg()
        )
            .prop_map(|(op, a, b, d)| DataOp::Alu { op, a, b, d }),
        (
            proptest::sample::select(UnOp::ALL.to_vec()),
            arb_operand(),
            arb_reg()
        )
            .prop_map(|(op, a, d)| DataOp::Un { op, a, d }),
        (
            proptest::sample::select(CmpOp::ALL.to_vec()),
            arb_operand(),
            arb_operand()
        )
            .prop_map(|(op, a, b)| DataOp::Cmp { op, a, b }),
        (arb_operand(), arb_operand(), arb_reg()).prop_map(|(a, b, d)| DataOp::Load { a, b, d }),
        (arb_operand(), arb_operand()).prop_map(|(a, b)| DataOp::Store { a, b }),
        (0u8..4, arb_reg()).prop_map(|(port, d)| DataOp::PortIn { port, d }),
        (0u8..4, arb_operand()).prop_map(|(port, a)| DataOp::PortOut { port, a }),
    ]
}

fn arb_ctrl(len: u32, width: usize) -> impl Strategy<Value = ControlOp> {
    let fu = 0..width as u8;
    prop_oneof![
        (0..len).prop_map(|t| ControlOp::Goto(Addr(t))),
        (
            prop_oneof![
                fu.clone().prop_map(|f| CondSource::Cc(FuId(f))),
                fu.prop_map(|f| CondSource::Sync(FuId(f))),
                Just(CondSource::AllSync),
                Just(CondSource::AnySync),
            ],
            0..len,
            0..len
        )
            .prop_map(|(cond, t1, t2)| ControlOp::branch(cond, Addr(t1), Addr(t2))),
        Just(ControlOp::Halt),
    ]
}

fn arb_program() -> impl Strategy<Value = Program> {
    (1usize..5, 1u32..MAX_LEN).prop_flat_map(|(width, len)| {
        let parcel = (
            arb_data(),
            arb_ctrl(len, width),
            prop_oneof![Just(SyncSignal::Busy), Just(SyncSignal::Done)],
        )
            .prop_map(|(data, ctrl, sync)| Parcel { data, ctrl, sync });
        proptest::collection::vec(proptest::collection::vec(parcel, width), len as usize).prop_map(
            move |words| {
                let mut p = Program::new(width);
                for w in words {
                    p.push(w);
                }
                p
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_assemble_roundtrip(program in arb_program()) {
        let printed = print_program(&program);
        let asm = assemble(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to assemble: {e}\n{printed}"));
        prop_assert_eq!(asm.program, program);
    }

    #[test]
    fn listing_never_panics(program in arb_program()) {
        let _ = ximd_asm::listing::listing(
            &program,
            ximd_asm::listing::ListingOptions { show_sync: true, min_width: 4 },
        );
    }
}
