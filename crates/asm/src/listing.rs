//! Paper-style boxed listings.
//!
//! The paper's Examples 1–3 display programs as a grid: one row of boxes per
//! instruction address, one column per functional unit; each box shows the
//! control operation on its first line, the data operation below it, and —
//! for synchronizing programs like BITCOUNT1 — the exported sync signal on a
//! third line (see the paper's Figure 9, "Example Code Format").

use ximd_isa::{Program, SyncSignal};

/// Options for [`listing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListingOptions {
    /// Include the `BUSY`/`DONE` line in each box (the paper only shows it
    /// for programs that synchronize, e.g. Example 3).
    pub show_sync: bool,
    /// Minimum column width in characters.
    pub min_width: usize,
}

impl Default for ListingOptions {
    fn default() -> Self {
        ListingOptions {
            show_sync: false,
            min_width: 14,
        }
    }
}

/// Renders `program` as a paper-style boxed listing.
///
/// # Example
///
/// ```
/// use ximd_asm::{assemble, listing::{listing, ListingOptions}};
///
/// let asm = assemble(".width 2\n00:\n  all: nop ; halt\n")?;
/// let table = listing(&asm.program, ListingOptions::default());
/// assert!(table.contains("FU0"));
/// assert!(table.contains("halt"));
/// # Ok::<(), ximd_asm::AsmError>(())
/// ```
pub fn listing(program: &Program, options: ListingOptions) -> String {
    let width = program.width();
    // Compute column widths from content.
    let mut cols = vec![options.min_width; width];
    for (_, word) in program.iter() {
        for (fu, parcel) in word.iter().enumerate() {
            cols[fu] = cols[fu].max(parcel.ctrl.to_string().len());
            cols[fu] = cols[fu].max(parcel.data.to_string().len());
        }
    }

    let mut out = String::new();
    // Header.
    out.push_str("     ");
    for (fu, &w) in cols.iter().enumerate() {
        out.push_str(&format!("| {:<w$} ", format!("FU{fu}"), w = w));
    }
    out.push_str("|\n");
    let rule = {
        let mut r = String::from("-----");
        for &w in &cols {
            r.push_str(&"-".repeat(w + 3));
        }
        r.push('-');
        r.push('\n');
        r
    };
    out.push_str(&rule);

    for (addr, word) in program.iter() {
        // Control line, prefixed by the address.
        out.push_str(&format!("{:>4} ", format!("{:02x}:", addr.0)));
        for (fu, parcel) in word.iter().enumerate() {
            out.push_str(&format!("| {:<w$} ", parcel.ctrl.to_string(), w = cols[fu]));
        }
        out.push_str("|\n     ");
        for (fu, parcel) in word.iter().enumerate() {
            out.push_str(&format!("| {:<w$} ", parcel.data.to_string(), w = cols[fu]));
        }
        out.push_str("|\n");
        if options.show_sync {
            out.push_str("     ");
            for (fu, parcel) in word.iter().enumerate() {
                let s = match parcel.sync {
                    SyncSignal::Busy => "BUSY",
                    SyncSignal::Done => "DONE",
                };
                out.push_str(&format!("| {s:<w$} ", w = cols[fu]));
            }
            out.push_str("|\n");
        }
        out.push_str(&rule);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::assemble;

    fn sample() -> Program {
        assemble(
            r"
.width 2
00:
  fu0: iadd r0,#1,r0 ; -> 01:
  fu1: lt r0,#4 ; -> 01: ; DONE
01:
  all: nop ; halt
",
        )
        .unwrap()
        .program
    }

    #[test]
    fn listing_has_one_row_per_address() {
        let text = listing(&sample(), ListingOptions::default());
        assert!(text.contains("00:"));
        assert!(text.contains("01:"));
        assert!(text.contains("iadd r0,#1,r0"));
        assert!(text.contains("-> 01:"));
        assert!(!text.contains("DONE"), "sync hidden by default");
    }

    #[test]
    fn sync_line_appears_when_requested() {
        let text = listing(
            &sample(),
            ListingOptions {
                show_sync: true,
                ..Default::default()
            },
        );
        assert!(text.contains("DONE"));
        assert!(text.contains("BUSY"));
    }

    #[test]
    fn columns_widen_to_fit_content() {
        let text = listing(
            &sample(),
            ListingOptions {
                show_sync: false,
                min_width: 1,
            },
        );
        // Every data/ctrl string must appear unclipped.
        assert!(text.contains("iadd r0,#1,r0"));
        assert!(text.contains("lt r0,#4"));
    }
}
