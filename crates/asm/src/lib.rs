//! Assembler and disassembler for XIMD-1 programs.
//!
//! The paper presents programs as boxed listings: one row per instruction
//! address, one column per functional unit, each cell holding a control
//! operation (`-> 01:` or `if cc2 08: | 02:`), a data operation
//! (`iadd a,b,e`) and, where synchronization matters, a `BUSY`/`DONE` sync
//! field. This crate defines a line-oriented source format carrying the
//! same information, an assembler producing [`ximd_isa::Program`]s, and
//! printers that render programs back as source or as paper-style listings.
//!
//! # Source format
//!
//! ```text
//! ; MINMAX fragment
//! .width 4
//! .reg tz r3            ; register aliases
//! .const z 100          ; named integer constants
//!
//! 00:
//!   fu0: load #z,#0,tz   ; -> 01:
//!   fu1: iadd #1,#0,k    ; -> 01:
//!   fu2: lt n,#2         ; -> 01:
//!   fu3: iadd n,#0,tn    ; -> 01:
//! 01:
//!   fu0: lt tz,#maxint   ; if cc2 08: | 02:  ; DONE
//! ```
//!
//! * `.width N` sets the machine width (required before any block).
//! * `.reg NAME rK` aliases a register; `.const NAME VALUE` names an
//!   integer (or float) constant usable as `#NAME`.
//! * A line ending in `:` opens an instruction block. Hex labels
//!   (`00:`, `0a:`) pin the block to that address, reproducing the paper's
//!   address maps exactly (gaps are filled with halt words); identifier
//!   labels (`loop:`) take the next free address.
//! * Inside a block, `fuK: DATA ; CTRL [; BUSY|DONE]` supplies FU *K*'s
//!   parcel. Omitted FUs get `nop ; halt`.
//! * Control operations: `-> L`, `if ccK L1 | L2`, `if ssK L1 | L2`,
//!   `if allss L1 | L2` (the paper's `∏dn`), `if anyss L1 | L2`, `halt`.
//! * `;` separates the fields of a parcel line; a line starting with `;`
//!   (or anything after `//`) is a comment.
//!
//! # Example
//!
//! ```
//! let source = r"
//! .width 2
//! .reg x r0
//! start:
//!   fu0: iadd x,#1,x ; -> done
//!   fu1: nop         ; -> done
//! done:
//!   fu0: nop ; halt
//!   fu1: nop ; halt
//! ";
//! let assembly = ximd_asm::assemble(source)?;
//! assert_eq!(assembly.program.len(), 2);
//! # Ok::<(), ximd_asm::AsmError>(())
//! ```

pub mod error;
pub mod listing;
pub mod parser;
pub mod printer;
pub mod source_map;
pub mod symbols;

pub use error::AsmError;
pub use parser::{assemble, Assembly};
pub use printer::print_program;
pub use source_map::SourceMap;
pub use symbols::SymbolTable;
