//! Assembler errors.

use std::fmt;

use ximd_isa::IsaError;

/// An assembler error, located at a 1-based source line.
///
/// # Example
///
/// ```
/// let err = ximd_asm::assemble("bogus").unwrap_err();
/// assert_eq!(err.line(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AsmError {
    line: usize,
    kind: AsmErrorKind,
}

/// The category of an [`AsmError`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// A directive was malformed or unknown.
    BadDirective(String),
    /// `.width` missing before the first instruction block.
    WidthMissing,
    /// An unknown data-op mnemonic.
    UnknownMnemonic(String),
    /// A malformed operand.
    BadOperand(String),
    /// Wrong number of operands for a mnemonic.
    OperandCount {
        /// The mnemonic.
        mnemonic: String,
        /// Expected operand count.
        expected: usize,
        /// Operands supplied.
        got: usize,
    },
    /// A malformed control operation.
    BadControl(String),
    /// A name was defined twice (label, register alias or constant).
    Duplicate(String),
    /// A reference to an undefined label.
    UnknownLabel(String),
    /// A reference to an undefined register or constant name.
    UnknownName(String),
    /// Two blocks pinned to the same address.
    AddressConflict(u32),
    /// An `fuK:` index outside the declared width.
    FuOutOfWidth {
        /// The parsed index.
        fu: usize,
        /// The declared width.
        width: usize,
    },
    /// A line that is neither directive, label, parcel nor comment.
    Unrecognized(String),
    /// The assembled program failed ISA validation.
    Isa(IsaError),
}

impl AsmError {
    /// Creates an error at a 1-based source line.
    pub fn new(line: usize, kind: AsmErrorKind) -> AsmError {
        AsmError { line, kind }
    }

    /// The 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The error category.
    pub fn kind(&self) -> &AsmErrorKind {
        &self.kind
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::BadDirective(d) => write!(f, "bad directive {d:?}"),
            AsmErrorKind::WidthMissing => write!(f, ".width must appear before the first block"),
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic {m:?}"),
            AsmErrorKind::BadOperand(o) => write!(f, "bad operand {o:?}"),
            AsmErrorKind::OperandCount {
                mnemonic,
                expected,
                got,
            } => {
                write!(f, "{mnemonic} takes {expected} operands, got {got}")
            }
            AsmErrorKind::BadControl(c) => write!(f, "bad control operation {c:?}"),
            AsmErrorKind::Duplicate(n) => write!(f, "duplicate definition of {n:?}"),
            AsmErrorKind::UnknownLabel(l) => write!(f, "unknown label {l:?}"),
            AsmErrorKind::UnknownName(n) => write!(f, "unknown register or constant {n:?}"),
            AsmErrorKind::AddressConflict(a) => write!(f, "address {a:#04x} defined twice"),
            AsmErrorKind::FuOutOfWidth { fu, width } => {
                write!(f, "fu{fu} outside machine width {width}")
            }
            AsmErrorKind::Unrecognized(l) => write!(f, "unrecognized line {l:?}"),
            AsmErrorKind::Isa(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            AsmErrorKind::Isa(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_number() {
        let err = AsmError::new(17, AsmErrorKind::UnknownMnemonic("frob".into()));
        let msg = err.to_string();
        assert!(msg.contains("line 17"));
        assert!(msg.contains("frob"));
        assert_eq!(err.line(), 17);
    }

    #[test]
    fn all_kinds_render() {
        let kinds = vec![
            AsmErrorKind::BadDirective(".x".into()),
            AsmErrorKind::WidthMissing,
            AsmErrorKind::UnknownMnemonic("m".into()),
            AsmErrorKind::BadOperand("o".into()),
            AsmErrorKind::OperandCount {
                mnemonic: "iadd".into(),
                expected: 3,
                got: 2,
            },
            AsmErrorKind::BadControl("c".into()),
            AsmErrorKind::Duplicate("d".into()),
            AsmErrorKind::UnknownLabel("l".into()),
            AsmErrorKind::UnknownName("n".into()),
            AsmErrorKind::AddressConflict(4),
            AsmErrorKind::FuOutOfWidth { fu: 9, width: 4 },
            AsmErrorKind::Unrecognized("?".into()),
            AsmErrorKind::Isa(IsaError::DivideByZero),
        ];
        for kind in kinds {
            assert!(!AsmError::new(1, kind).to_string().is_empty());
        }
    }
}
