//! The assembler: source text → [`Program`].

use ximd_isa::{
    Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, FuId, Operand, Parcel, Program, Reg,
    SyncSignal, UnOp, Value,
};

use crate::error::{AsmError, AsmErrorKind};
use crate::source_map::SourceMap;
use crate::symbols::SymbolTable;

/// The result of assembling a source file.
#[derive(Debug, Clone)]
pub struct Assembly {
    /// The assembled instruction memory.
    pub program: Program,
    /// Register aliases, constants and labels defined by the source.
    pub symbols: SymbolTable,
    /// Parcel → source-line mapping (for diagnostics).
    pub source_map: SourceMap,
}

struct Block<'a> {
    addr: Addr,
    /// (line number, raw text) of the block's `all:` default, if any.
    default: Option<(usize, &'a str)>,
    /// (fu index, line number, raw text) of explicit parcels.
    parcels: Vec<(usize, usize, &'a str)>,
}

/// Returns `true` for labels that pin a numeric address: entirely hex
/// digits *and* starting with a decimal digit (so `0a` is an address but
/// `face` is an ordinary label).
fn is_hex_label(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_digit())
        && s.chars().all(|c| c.is_ascii_hexdigit())
}

fn strip_comment(line: &str) -> &str {
    let line = match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    };
    line.trim()
}

/// Assembles XIMD source text (see the [crate docs](crate) for the format).
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, carrying its source line.
pub fn assemble(source: &str) -> Result<Assembly, AsmError> {
    let mut symbols = SymbolTable::new();
    let mut width: Option<usize> = None;
    let mut blocks: Vec<Block<'_>> = Vec::new();
    let mut next_addr: u32 = 0;

    // Pass 1: directives, block structure, label addresses.
    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw);
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        let err = |kind| Err(AsmError::new(lineno, kind));

        if let Some(rest) = line.strip_prefix('.') {
            let mut words = rest.split_whitespace();
            match words.next() {
                Some("width") => {
                    let w: usize = match words.next().and_then(|t| t.parse().ok()) {
                        Some(w) if w >= 1 => w,
                        _ => return err(AsmErrorKind::BadDirective(line.to_owned())),
                    };
                    width = Some(w);
                }
                Some("reg") => {
                    let (name, rtext) = match (words.next(), words.next()) {
                        (Some(n), Some(r)) => (n, r),
                        _ => return err(AsmErrorKind::BadDirective(line.to_owned())),
                    };
                    let reg = match rtext.strip_prefix('r').and_then(|n| n.parse::<u16>().ok()) {
                        Some(n) => Reg(n),
                        None => return err(AsmErrorKind::BadOperand(rtext.to_owned())),
                    };
                    if !symbols.define_reg(name, reg) {
                        return err(AsmErrorKind::Duplicate(name.to_owned()));
                    }
                }
                Some("const") => {
                    let (name, vtext) = match (words.next(), words.next()) {
                        (Some(n), Some(v)) => (n, v),
                        _ => return err(AsmErrorKind::BadDirective(line.to_owned())),
                    };
                    let value = parse_literal(vtext).ok_or_else(|| {
                        AsmError::new(lineno, AsmErrorKind::BadOperand(vtext.to_owned()))
                    })?;
                    if !symbols.define_const(name, value) {
                        return err(AsmErrorKind::Duplicate(name.to_owned()));
                    }
                }
                _ => return err(AsmErrorKind::BadDirective(line.to_owned())),
            }
            continue;
        }

        // Parcel lines (`all: …`, `fuK: …`) are matched before labels: a
        // parcel line may itself end in `:` (e.g. `fu0: nop ; -> 01:`).
        let is_parcel_line = line.starts_with("all:")
            || (line.starts_with("fu")
                && line[2..].find(':').is_some_and(|pos| {
                    line[2..2 + pos].chars().all(|c| c.is_ascii_digit()) && pos > 0
                }));

        if !is_parcel_line {
            if let Some(label) = line.strip_suffix(':') {
                let label = label.trim();
                if label.contains(char::is_whitespace) {
                    return err(AsmErrorKind::Unrecognized(line.to_owned()));
                }
                if width.is_none() {
                    return err(AsmErrorKind::WidthMissing);
                }
                let addr = if is_hex_label(label) {
                    let a = u32::from_str_radix(label, 16).map_err(|_| {
                        AsmError::new(lineno, AsmErrorKind::BadDirective(label.to_owned()))
                    })?;
                    if a < next_addr {
                        return err(AsmErrorKind::AddressConflict(a));
                    }
                    Addr(a)
                } else {
                    Addr(next_addr)
                };
                if !symbols.define_label(label, addr) {
                    return err(AsmErrorKind::Duplicate(label.to_owned()));
                }
                next_addr = addr.0 + 1;
                blocks.push(Block {
                    addr,
                    default: None,
                    parcels: Vec::new(),
                });
                continue;
            }
        }

        // Parcel line: `fuK: ...` or `all: ...` inside the current block.
        let Some(block) = blocks.last_mut() else {
            return err(AsmErrorKind::Unrecognized(line.to_owned()));
        };
        if let Some(rest) = line.strip_prefix("all:") {
            block.default = Some((lineno, rest.trim()));
        } else if let Some(after) = line.strip_prefix("fu") {
            let Some(colon) = after.find(':') else {
                return err(AsmErrorKind::Unrecognized(line.to_owned()));
            };
            let fu: usize = after[..colon]
                .parse()
                .map_err(|_| AsmError::new(lineno, AsmErrorKind::Unrecognized(line.to_owned())))?;
            block.parcels.push((fu, lineno, after[colon + 1..].trim()));
        } else {
            return err(AsmErrorKind::Unrecognized(line.to_owned()));
        }
    }

    let width = width.ok_or_else(|| AsmError::new(1, AsmErrorKind::WidthMissing))?;

    // Pass 2: parse parcels with all labels known.
    let len = next_addr;
    let halt_word = vec![Parcel::halt(); width];
    let mut words = vec![halt_word; len as usize];
    let mut source_map = SourceMap::default();
    for block in &blocks {
        let word = &mut words[block.addr.index()];
        if let Some((lineno, text)) = block.default {
            let parcel = parse_parcel(text, lineno, &symbols)?;
            word.fill(parcel);
            for fu in 0..width {
                source_map.record(block.addr, FuId(fu as u8), lineno as u32);
            }
        }
        for &(fu, lineno, text) in &block.parcels {
            if fu >= width {
                return Err(AsmError::new(
                    lineno,
                    AsmErrorKind::FuOutOfWidth { fu, width },
                ));
            }
            word[fu] = parse_parcel(text, lineno, &symbols)?;
            source_map.record(block.addr, FuId(fu as u8), lineno as u32);
        }
    }

    let mut program = Program::new(width);
    for word in words {
        program.push(word);
    }
    program
        .validate(ximd_isa::XIMD1_NUM_REGS)
        .map_err(|e| AsmError::new(0, AsmErrorKind::Isa(e)))?;
    Ok(Assembly {
        program,
        symbols,
        source_map,
    })
}

fn parse_literal(text: &str) -> Option<Value> {
    if text.contains('.') || text.contains("inf") || text.contains("nan") {
        text.parse::<f32>().ok().map(Value::F32)
    } else if let Some(hex) = text.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok().map(Value::from_bits_int)
    } else {
        text.parse::<i32>().ok().map(Value::I32)
    }
}

fn parse_parcel(text: &str, lineno: usize, symbols: &SymbolTable) -> Result<Parcel, AsmError> {
    let mut fields = text.split(';').map(str::trim);
    let data_text = fields.next().unwrap_or("");
    let ctrl_text = fields.next().unwrap_or("halt");
    let sync_text = fields.next().unwrap_or("BUSY");
    if fields.next().is_some() {
        return Err(AsmError::new(
            lineno,
            AsmErrorKind::Unrecognized(text.to_owned()),
        ));
    }
    let data = parse_data_op(data_text, lineno, symbols)?;
    let ctrl = parse_control_op(ctrl_text, lineno, symbols)?;
    let sync = match sync_text.to_ascii_uppercase().as_str() {
        "BUSY" | "" => SyncSignal::Busy,
        "DONE" => SyncSignal::Done,
        _ => {
            return Err(AsmError::new(
                lineno,
                AsmErrorKind::Unrecognized(sync_text.to_owned()),
            ))
        }
    };
    Ok(Parcel { data, ctrl, sync })
}

fn parse_operand(text: &str, lineno: usize, symbols: &SymbolTable) -> Result<Operand, AsmError> {
    let text = text.trim();
    if let Some(imm) = text.strip_prefix('#') {
        if let Some(v) = parse_literal(imm) {
            return Ok(Operand::Imm(v));
        }
        return symbols
            .constant(imm)
            .map(Operand::Imm)
            .ok_or_else(|| AsmError::new(lineno, AsmErrorKind::UnknownName(imm.to_owned())));
    }
    symbols
        .reg(text)
        .map(Operand::Reg)
        .ok_or_else(|| AsmError::new(lineno, AsmErrorKind::UnknownName(text.to_owned())))
}

fn parse_dest(text: &str, lineno: usize, symbols: &SymbolTable) -> Result<Reg, AsmError> {
    symbols
        .reg(text.trim())
        .ok_or_else(|| AsmError::new(lineno, AsmErrorKind::BadOperand(text.to_owned())))
}

fn parse_port(text: &str, lineno: usize) -> Result<u8, AsmError> {
    text.trim()
        .strip_prefix('p')
        .and_then(|n| n.parse::<u8>().ok())
        .ok_or_else(|| AsmError::new(lineno, AsmErrorKind::BadOperand(text.to_owned())))
}

fn parse_data_op(text: &str, lineno: usize, symbols: &SymbolTable) -> Result<DataOp, AsmError> {
    let text = text.trim();
    if text.is_empty() || text == "nop" {
        return Ok(DataOp::Nop);
    }
    let (mnemonic, rest) = match text.find(char::is_whitespace) {
        Some(pos) => (&text[..pos], text[pos..].trim()),
        None => (text, ""),
    };
    let operands: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };
    let arity_err = |expected: usize| {
        AsmError::new(
            lineno,
            AsmErrorKind::OperandCount {
                mnemonic: mnemonic.to_owned(),
                expected,
                got: operands.len(),
            },
        )
    };

    if let Some(&op) = AluOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        if operands.len() != 3 {
            return Err(arity_err(3));
        }
        return Ok(DataOp::Alu {
            op,
            a: parse_operand(operands[0], lineno, symbols)?,
            b: parse_operand(operands[1], lineno, symbols)?,
            d: parse_dest(operands[2], lineno, symbols)?,
        });
    }
    if let Some(&op) = UnOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        if operands.len() != 2 {
            return Err(arity_err(2));
        }
        return Ok(DataOp::Un {
            op,
            a: parse_operand(operands[0], lineno, symbols)?,
            d: parse_dest(operands[1], lineno, symbols)?,
        });
    }
    if let Some(&op) = CmpOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
        if operands.len() != 2 {
            return Err(arity_err(2));
        }
        return Ok(DataOp::Cmp {
            op,
            a: parse_operand(operands[0], lineno, symbols)?,
            b: parse_operand(operands[1], lineno, symbols)?,
        });
    }
    match mnemonic {
        "load" => {
            if operands.len() != 3 {
                return Err(arity_err(3));
            }
            Ok(DataOp::Load {
                a: parse_operand(operands[0], lineno, symbols)?,
                b: parse_operand(operands[1], lineno, symbols)?,
                d: parse_dest(operands[2], lineno, symbols)?,
            })
        }
        "store" => {
            if operands.len() != 2 {
                return Err(arity_err(2));
            }
            Ok(DataOp::Store {
                a: parse_operand(operands[0], lineno, symbols)?,
                b: parse_operand(operands[1], lineno, symbols)?,
            })
        }
        "in" => {
            if operands.len() != 2 {
                return Err(arity_err(2));
            }
            Ok(DataOp::PortIn {
                port: parse_port(operands[0], lineno)?,
                d: parse_dest(operands[1], lineno, symbols)?,
            })
        }
        "out" => {
            if operands.len() != 2 {
                return Err(arity_err(2));
            }
            Ok(DataOp::PortOut {
                a: parse_operand(operands[0], lineno, symbols)?,
                port: parse_port(operands[1], lineno)?,
            })
        }
        _ => Err(AsmError::new(
            lineno,
            AsmErrorKind::UnknownMnemonic(mnemonic.to_owned()),
        )),
    }
}

fn resolve_target(text: &str, lineno: usize, symbols: &SymbolTable) -> Result<Addr, AsmError> {
    let name = text.trim().trim_end_matches(':');
    if is_hex_label(name) {
        return u32::from_str_radix(name, 16)
            .map(Addr)
            .map_err(|_| AsmError::new(lineno, AsmErrorKind::UnknownLabel(name.to_owned())));
    }
    symbols
        .label(name)
        .ok_or_else(|| AsmError::new(lineno, AsmErrorKind::UnknownLabel(name.to_owned())))
}

fn parse_control_op(
    text: &str,
    lineno: usize,
    symbols: &SymbolTable,
) -> Result<ControlOp, AsmError> {
    let text = text.trim();
    if text.is_empty() || text == "halt" {
        return Ok(ControlOp::Halt);
    }
    if let Some(target) = text.strip_prefix("->") {
        return Ok(ControlOp::Goto(resolve_target(target, lineno, symbols)?));
    }
    if let Some(rest) = text.strip_prefix("if") {
        let rest = rest.trim();
        let (cond_text, targets) = match rest.find(char::is_whitespace) {
            Some(pos) => (&rest[..pos], rest[pos..].trim()),
            None => {
                return Err(AsmError::new(
                    lineno,
                    AsmErrorKind::BadControl(text.to_owned()),
                ))
            }
        };
        let cond = if let Some(n) = cond_text.strip_prefix("cc") {
            let fu: u8 = n
                .parse()
                .map_err(|_| AsmError::new(lineno, AsmErrorKind::BadControl(text.to_owned())))?;
            CondSource::Cc(FuId(fu))
        } else if cond_text == "allss" {
            CondSource::AllSync
        } else if cond_text == "anyss" {
            CondSource::AnySync
        } else if let Some(n) = cond_text.strip_prefix("ss") {
            let fu: u8 = n
                .parse()
                .map_err(|_| AsmError::new(lineno, AsmErrorKind::BadControl(text.to_owned())))?;
            CondSource::Sync(FuId(fu))
        } else {
            return Err(AsmError::new(
                lineno,
                AsmErrorKind::BadControl(text.to_owned()),
            ));
        };
        let mut halves = targets.splitn(2, '|');
        let t1 = halves
            .next()
            .filter(|s| !s.trim().is_empty())
            .ok_or_else(|| AsmError::new(lineno, AsmErrorKind::BadControl(text.to_owned())))?;
        let t2 = halves
            .next()
            .filter(|s| !s.trim().is_empty())
            .ok_or_else(|| AsmError::new(lineno, AsmErrorKind::BadControl(text.to_owned())))?;
        return Ok(ControlOp::Branch {
            cond,
            taken: resolve_target(t1, lineno, symbols)?,
            not_taken: resolve_target(t2, lineno, symbols)?,
        });
    }
    Err(AsmError::new(
        lineno,
        AsmErrorKind::BadControl(text.to_owned()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_program_assembles() {
        let asm = assemble(
            r"
.width 1
00:
  fu0: nop ; halt
",
        )
        .unwrap();
        assert_eq!(asm.program.len(), 1);
        assert_eq!(asm.program.width(), 1);
        assert_eq!(
            *asm.program.parcel(Addr(0), FuId(0)).unwrap(),
            Parcel::halt()
        );
    }

    #[test]
    fn register_aliases_and_constants() {
        let asm = assemble(
            r"
.width 1
.reg k r5
.const base 100
00:
  fu0: load #base,k,k ; halt
",
        )
        .unwrap();
        let p = asm.program.parcel(Addr(0), FuId(0)).unwrap();
        assert_eq!(
            p.data,
            DataOp::Load {
                a: Operand::imm_i32(100),
                b: Operand::Reg(Reg(5)),
                d: Reg(5)
            }
        );
    }

    #[test]
    fn builtin_constants_work() {
        let asm = assemble(
            r"
.width 1
00:
  fu0: lt r0,#maxint ; halt
",
        )
        .unwrap();
        let p = asm.program.parcel(Addr(0), FuId(0)).unwrap();
        assert_eq!(
            p.data,
            DataOp::cmp(CmpOp::Lt, Reg(0).into(), Operand::imm_i32(i32::MAX))
        );
    }

    #[test]
    fn control_forms() {
        let asm = assemble(
            r"
.width 1
00:
  fu0: nop ; -> 01:
01:
  fu0: nop ; if cc0 02: | 00:
02:
  fu0: nop ; if allss 03: | 02: ; DONE
03:
  fu0: nop ; halt
",
        )
        .unwrap();
        let p = &asm.program;
        assert_eq!(
            p.parcel(Addr(0), FuId(0)).unwrap().ctrl,
            ControlOp::Goto(Addr(1))
        );
        assert_eq!(
            p.parcel(Addr(1), FuId(0)).unwrap().ctrl,
            ControlOp::branch(CondSource::Cc(FuId(0)), Addr(2), Addr(0))
        );
        let barrier = p.parcel(Addr(2), FuId(0)).unwrap();
        assert_eq!(
            barrier.ctrl,
            ControlOp::branch(CondSource::AllSync, Addr(3), Addr(2))
        );
        assert_eq!(barrier.sync, SyncSignal::Done);
    }

    #[test]
    fn symbolic_labels_resolve() {
        let asm = assemble(
            r"
.width 1
start:
  fu0: iadd r0,#1,r0 ; -> again
again:
  fu0: nop ; if cc0 start | fin
fin:
  fu0: nop ; halt
",
        )
        .unwrap();
        assert_eq!(asm.symbols.label("start"), Some(Addr(0)));
        assert_eq!(asm.symbols.label("again"), Some(Addr(1)));
        assert_eq!(asm.symbols.label("fin"), Some(Addr(2)));
        assert_eq!(
            asm.program.parcel(Addr(1), FuId(0)).unwrap().ctrl,
            ControlOp::branch(CondSource::Cc(FuId(0)), Addr(0), Addr(2))
        );
    }

    #[test]
    fn hex_labels_pin_addresses_and_fill_gaps() {
        let asm = assemble(
            r"
.width 1
00:
  fu0: nop ; -> 05:
05:
  fu0: nop ; halt
",
        )
        .unwrap();
        assert_eq!(asm.program.len(), 6);
        // Gap addresses hold halt words.
        assert_eq!(
            *asm.program.parcel(Addr(3), FuId(0)).unwrap(),
            Parcel::halt()
        );
    }

    #[test]
    fn all_prefix_sets_default_parcel() {
        let asm = assemble(
            r"
.width 4
00:
  all: nop ; -> 01:
  fu0: iadd r0,#1,r0 ; -> 01:
01:
  all: nop ; halt
",
        )
        .unwrap();
        let w = asm.program.get(Addr(0)).unwrap();
        assert!(!w[0].data.is_nop());
        assert!(w[1].data.is_nop());
        assert_eq!(w[3].ctrl, ControlOp::Goto(Addr(1)));
    }

    #[test]
    fn omitted_fus_default_to_halt() {
        let asm = assemble(
            r"
.width 2
00:
  fu0: nop ; -> 00:
",
        )
        .unwrap();
        assert_eq!(
            *asm.program.parcel(Addr(0), FuId(1)).unwrap(),
            Parcel::halt()
        );
    }

    #[test]
    fn comments_are_ignored() {
        let asm = assemble(
            r"
; full-line comment
.width 1
00:
  fu0: nop ; halt   // trailing comment
",
        )
        .unwrap();
        assert_eq!(asm.program.len(), 1);
    }

    #[test]
    fn error_line_numbers_are_accurate() {
        let err = assemble(".width 1\n00:\n  fu0: frobnicate r0,r1,r2 ; halt\n").unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(matches!(err.kind(), AsmErrorKind::UnknownMnemonic(_)));
    }

    #[test]
    fn rejects_missing_width() {
        let err = assemble("00:\n fu0: nop ; halt\n").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::WidthMissing));
    }

    #[test]
    fn rejects_unknown_label() {
        let err = assemble(".width 1\n00:\n  fu0: nop ; -> nowhere\n").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::UnknownLabel(_)));
    }

    #[test]
    fn rejects_fu_outside_width() {
        let err = assemble(".width 2\n00:\n  fu5: nop ; halt\n").unwrap_err();
        assert!(matches!(
            err.kind(),
            AsmErrorKind::FuOutOfWidth { fu: 5, width: 2 }
        ));
    }

    #[test]
    fn rejects_backward_hex_label() {
        let err =
            assemble(".width 1\n05:\n  fu0: nop ; halt\n03:\n  fu0: nop ; halt\n").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::AddressConflict(3)));
    }

    #[test]
    fn rejects_wrong_arity() {
        let err = assemble(".width 1\n00:\n  fu0: iadd r0,r1 ; halt\n").unwrap_err();
        assert!(matches!(
            err.kind(),
            AsmErrorKind::OperandCount {
                expected: 3,
                got: 2,
                ..
            }
        ));
    }

    #[test]
    fn rejects_bad_sync_field() {
        let err = assemble(".width 1\n00:\n  fu0: nop ; halt ; MAYBE\n").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::Unrecognized(_)));
    }

    #[test]
    fn float_and_hex_literals() {
        let asm = assemble(
            r"
.width 1
.const pi 3.25
00:
  fu0: fadd r0,#pi,r1 ; -> 01:
01:
  fu0: and r0,#0xff,r2 ; halt
",
        )
        .unwrap();
        let p0 = asm.program.parcel(Addr(0), FuId(0)).unwrap();
        assert_eq!(
            p0.data,
            DataOp::alu(AluOp::Fadd, Reg(0).into(), Operand::imm_f32(3.25), Reg(1))
        );
        let p1 = asm.program.parcel(Addr(1), FuId(0)).unwrap();
        assert_eq!(
            p1.data,
            DataOp::alu(AluOp::And, Reg(0).into(), Operand::imm_i32(0xff), Reg(2))
        );
    }

    #[test]
    fn port_ops_parse() {
        let asm = assemble(
            r"
.width 1
00:
  fu0: in p2,r0 ; -> 01:
01:
  fu0: out r0,p3 ; halt
",
        )
        .unwrap();
        assert_eq!(
            asm.program.parcel(Addr(0), FuId(0)).unwrap().data,
            DataOp::PortIn { port: 2, d: Reg(0) }
        );
        assert_eq!(
            asm.program.parcel(Addr(1), FuId(0)).unwrap().data,
            DataOp::PortOut {
                port: 3,
                a: Reg(0).into()
            }
        );
    }

    #[test]
    fn negative_immediates() {
        let asm = assemble(".width 1\n00:\n  fu0: iadd r0,#-7,r0 ; halt\n").unwrap();
        assert_eq!(
            asm.program.parcel(Addr(0), FuId(0)).unwrap().data,
            DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(-7), Reg(0))
        );
    }
}
