//! Disassembler: [`Program`] → assembler source.
//!
//! The output re-assembles to an identical program (round-trip property,
//! exercised by this crate's tests), using canonical `rN` register names,
//! numeric immediates and hex address labels.

use std::fmt::Write as _;

use ximd_isa::{ControlOp, Program, SyncSignal};

/// Renders `program` as assembler source accepted by
/// [`assemble`](crate::assemble).
///
/// # Example
///
/// ```
/// use ximd_asm::{assemble, print_program};
///
/// let src = ".width 1\n00:\n  fu0: iadd r0,#1,r0 ; -> 01:\n01:\n  fu0: nop ; halt\n";
/// let asm = assemble(src)?;
/// let printed = print_program(&asm.program);
/// let back = assemble(&printed)?;
/// assert_eq!(back.program, asm.program);
/// # Ok::<(), ximd_asm::AsmError>(())
/// ```
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".width {}", program.width());
    for (addr, word) in program.iter() {
        // Skip pure gap words (every parcel a halt+nop) unless the program
        // is a single word; they re-appear automatically from hex labels.
        let is_gap = word
            .iter()
            .all(|p| p.data.is_nop() && p.ctrl == ControlOp::Halt && p.sync == SyncSignal::Busy);
        if is_gap && program.len() > 1 {
            // Still print the block if something branches here? Cheaper to
            // always print: gaps are rare and explicit blocks are clearer.
        }
        let _ = writeln!(out, "{:02x}:", addr.0);
        for (fu, parcel) in word.iter().enumerate() {
            let _ = write!(out, "  fu{fu}: {} ; {}", parcel.data, parcel.ctrl);
            if parcel.sync == SyncSignal::Done {
                let _ = write!(out, " ; DONE");
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::parser::assemble;

    use super::*;

    fn roundtrip(src: &str) {
        let asm = assemble(src).unwrap();
        let printed = print_program(&asm.program);
        let back = assemble(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(back.program, asm.program, "printed:\n{printed}");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip(".width 1\n00:\n  fu0: iadd r0,#1,r0 ; -> 01:\n01:\n  fu0: nop ; halt\n");
    }

    #[test]
    fn roundtrip_wide_with_sync_and_branches() {
        roundtrip(
            r"
.width 4
00:
  all: nop ; -> 01:
01:
  fu0: lt r0,#maxint ; if cc2 03: | 02: ; DONE
  fu1: gt r0,#minint ; if cc2 03: | 02:
  fu2: eq r1,r2 ; if allss 03: | 01: ; DONE
  fu3: store r0,#64 ; if anyss 03: | 01:
02:
  all: nop ; -> 03:
03:
  all: nop ; halt
",
        );
    }

    #[test]
    fn roundtrip_memory_ports_floats() {
        roundtrip(
            r"
.width 2
00:
  fu0: load #100,r1,r2 ; -> 01:
  fu1: in p0,r3 ; -> 01:
01:
  fu0: fadd r2,#1.5,r2 ; halt
  fu1: out r3,p1 ; halt
",
        );
    }

    #[test]
    fn printed_form_mentions_every_fu() {
        let asm = assemble(".width 3\n00:\n  all: nop ; halt\n").unwrap();
        let printed = print_program(&asm.program);
        assert!(printed.contains("fu0:"));
        assert!(printed.contains("fu1:"));
        assert!(printed.contains("fu2:"));
    }
}
