//! Instruction-memory → source-line mapping.

use std::collections::HashMap;

use ximd_isa::{Addr, FuId};

/// Maps each assembled parcel back to the 1-based source line its text
/// came from. Cells the source never names (gap padding, omitted FUs)
/// have no entry. Cells filled by an `all:` default map to the default's
/// line unless an explicit `fuK:` line overrode them.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    lines: HashMap<(Addr, FuId), u32>,
}

impl SourceMap {
    /// The source line that produced the parcel at `(addr, fu)`, if any.
    pub fn line(&self, addr: Addr, fu: FuId) -> Option<u32> {
        self.lines.get(&(addr, fu)).copied()
    }

    /// Number of mapped parcels.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True if no parcel is mapped.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    pub(crate) fn record(&mut self, addr: Addr, fu: FuId, line: u32) {
        self.lines.insert((addr, fu), line);
    }
}
