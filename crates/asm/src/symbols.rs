//! Symbol table: register aliases, named constants and labels.

use std::collections::HashMap;

use ximd_isa::{Addr, Reg, Value};

/// Built-in named constants available in every program.
///
/// The paper's MINMAX example uses `#minint` ("the smallest representable
/// integer") and `#maxint`.
pub const BUILTIN_CONSTS: [(&str, i32); 2] = [("minint", i32::MIN), ("maxint", i32::MAX)];

/// Names defined by a program's directives plus its labels.
///
/// # Example
///
/// ```
/// use ximd_asm::SymbolTable;
/// use ximd_isa::{Reg, Value};
///
/// let mut syms = SymbolTable::new();
/// assert!(syms.define_reg("tz", Reg(3)));
/// assert_eq!(syms.reg("tz"), Some(Reg(3)));
/// assert_eq!(syms.constant("maxint"), Some(Value::I32(i32::MAX)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    regs: HashMap<String, Reg>,
    consts: HashMap<String, Value>,
    labels: HashMap<String, Addr>,
}

impl SymbolTable {
    /// Creates a table preloaded with [`BUILTIN_CONSTS`].
    pub fn new() -> SymbolTable {
        let mut table = SymbolTable {
            regs: HashMap::new(),
            consts: HashMap::new(),
            labels: HashMap::new(),
        };
        for (name, value) in BUILTIN_CONSTS {
            table.consts.insert(name.to_owned(), Value::I32(value));
        }
        table
    }

    /// Defines a register alias; returns `false` if the name exists.
    pub fn define_reg(&mut self, name: &str, reg: Reg) -> bool {
        if self.regs.contains_key(name) || self.consts.contains_key(name) {
            return false;
        }
        self.regs.insert(name.to_owned(), reg);
        true
    }

    /// Defines a named constant; returns `false` if the name exists.
    pub fn define_const(&mut self, name: &str, value: Value) -> bool {
        if self.regs.contains_key(name) || self.consts.contains_key(name) {
            return false;
        }
        self.consts.insert(name.to_owned(), value);
        true
    }

    /// Defines a label; returns `false` if the name exists.
    pub fn define_label(&mut self, name: &str, addr: Addr) -> bool {
        if self.labels.contains_key(name) {
            return false;
        }
        self.labels.insert(name.to_owned(), addr);
        true
    }

    /// Looks up a register alias, or parses `rN` notation.
    pub fn reg(&self, name: &str) -> Option<Reg> {
        if let Some(&r) = self.regs.get(name) {
            return Some(r);
        }
        name.strip_prefix('r')
            .and_then(|n| n.parse::<u16>().ok())
            .map(Reg)
    }

    /// Looks up a named constant.
    pub fn constant(&self, name: &str) -> Option<Value> {
        self.consts.get(name).copied()
    }

    /// Looks up a label.
    pub fn label(&self, name: &str) -> Option<Addr> {
        self.labels.get(name).copied()
    }

    /// All labels sorted by address (for listings).
    pub fn labels_by_addr(&self) -> Vec<(&str, Addr)> {
        let mut all: Vec<(&str, Addr)> =
            self.labels.iter().map(|(n, &a)| (n.as_str(), a)).collect();
        all.sort_by_key(|&(_, a)| a);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_present() {
        let t = SymbolTable::new();
        assert_eq!(t.constant("minint"), Some(Value::I32(i32::MIN)));
        assert_eq!(t.constant("maxint"), Some(Value::I32(i32::MAX)));
    }

    #[test]
    fn rn_notation_always_parses() {
        let t = SymbolTable::new();
        assert_eq!(t.reg("r0"), Some(Reg(0)));
        assert_eq!(t.reg("r255"), Some(Reg(255)));
        assert_eq!(t.reg("rx"), None);
        assert_eq!(t.reg("bogus"), None);
    }

    #[test]
    fn alias_shadows_nothing_but_wins_lookup() {
        let mut t = SymbolTable::new();
        assert!(t.define_reg("k", Reg(7)));
        assert_eq!(t.reg("k"), Some(Reg(7)));
        // Redefinition rejected.
        assert!(!t.define_reg("k", Reg(8)));
        // A register alias may not collide with a constant either.
        assert!(!t.define_const("k", Value::I32(1)));
    }

    #[test]
    fn labels() {
        let mut t = SymbolTable::new();
        assert!(t.define_label("loop", Addr(4)));
        assert!(!t.define_label("loop", Addr(5)));
        assert_eq!(t.label("loop"), Some(Addr(4)));
        t.define_label("start", Addr(0));
        let order: Vec<&str> = t.labels_by_addr().iter().map(|&(n, _)| n).collect();
        assert_eq!(order, vec!["start", "loop"]);
    }
}
