//! Dynamic soundness of the dataflow and compositional engines.
//!
//! Two no-false-negative properties, checked against the real simulator
//! on seeded random programs:
//!
//! - **uninit reads**: on a straight-line lockstep program, every read
//!   the machine executes before any write of that register has
//!   committed (outside the entry-word/accumulator exemptions the lint
//!   documents) is reported by the dataflow engine;
//! - **cross-stream races**: replaying a traced multi-stream run, every
//!   same-cycle different-address register conflict the machine actually
//!   exhibits is reported by the *compositional* engine — the engine
//!   that must stay sound when the product exploration is unavailable.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ximd_analysis::{analyze, analyze_default, AnalysisConfig, Check, Engine, EngineChoice};
use ximd_isa::{
    Addr, CmpOp, CondSource, ControlOp, DataOp, FuId, Operand, Parcel, Program, Reg, SyncSignal,
    Value,
};
use ximd_models::randprog::{random_data_op, straight_line_vliw};
use ximd_sim::{MachineConfig, Trace, Xsim};

/// Replays a straight-line lockstep program word by word (writes commit
/// at end of cycle) and returns the reads the lint promises to flag:
/// must-uninitialised reads of freshly-defined registers outside the
/// entry word.
fn expected_uninit_reads(program: &Program) -> Vec<(Addr, FuId, Reg)> {
    let width = program.width();
    let mut fresh = BTreeSet::new();
    let mut entry_inputs = BTreeSet::new();
    for a in 0..program.len() as u32 {
        for fu in 0..width {
            let p = program.parcel(Addr(a), FuId(fu as u8)).unwrap();
            let sources = p.data.sources();
            if a == 0 {
                entry_inputs.extend(sources.iter().copied());
            }
            if let Some(d) = p.data.dest() {
                if !sources.contains(&d) {
                    fresh.insert(d);
                }
            }
        }
    }
    let mut written: BTreeSet<Reg> = BTreeSet::new();
    let mut expected = Vec::new();
    for a in 0..program.len() as u32 {
        for fu in 0..width {
            let p = program.parcel(Addr(a), FuId(fu as u8)).unwrap();
            let mut seen = BTreeSet::new();
            for r in p.data.sources() {
                if a > 0
                    && seen.insert(r)
                    && !written.contains(&r)
                    && fresh.contains(&r)
                    && !entry_inputs.contains(&r)
                {
                    expected.push((Addr(a), FuId(fu as u8), r));
                }
            }
        }
        for fu in 0..width {
            let p = program.parcel(Addr(a), FuId(fu as u8)).unwrap();
            if let Some(d) = p.data.dest() {
                written.insert(d);
            }
        }
    }
    expected
}

/// A forked program: every FU compares two random registers, branches on
/// its own CC into a private straight-line block of random ops (streams
/// desynchronize), and all paths meet at a common halt word.
fn forked_program(seed: u64, width: usize) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    const NREGS: u16 = 6;
    let lens: Vec<u32> = (0..width).map(|_| rng.gen_range(1..=4)).collect();
    let starts: Vec<u32> = lens
        .iter()
        .scan(2u32, |next, len| {
            let s = *next;
            *next += len;
            Some(s)
        })
        .collect();
    let join = starts[width - 1] + lens[width - 1];

    let mut program = Program::new(width);
    program.push(
        (0..width)
            .map(|_| Parcel {
                data: DataOp::Cmp {
                    op: CmpOp::Lt,
                    a: Operand::Reg(Reg(rng.gen_range(0..NREGS))),
                    b: Operand::Reg(Reg(rng.gen_range(0..NREGS))),
                },
                ctrl: ControlOp::Goto(Addr(1)),
                sync: SyncSignal::Busy,
            })
            .collect(),
    );
    program.push(
        (0..width)
            .map(|fu| Parcel {
                data: DataOp::Nop,
                ctrl: ControlOp::Branch {
                    cond: CondSource::Cc(FuId(fu as u8)),
                    taken: Addr(starts[fu]),
                    not_taken: Addr(join),
                },
                sync: SyncSignal::Busy,
            })
            .collect(),
    );
    for a in 2..join {
        let owner = starts.iter().rposition(|&s| s <= a).unwrap();
        let next = a + 1;
        let target = if next == starts[owner] + lens[owner] || next == join {
            Addr(join)
        } else {
            Addr(next)
        };
        program.push(
            (0..width)
                .map(|fu| {
                    if fu == owner {
                        Parcel {
                            data: random_data_op(&mut rng, NREGS),
                            ctrl: ControlOp::Goto(target),
                            sync: SyncSignal::Busy,
                        }
                    } else {
                        Parcel::halt()
                    }
                })
                .collect(),
        );
    }
    program.push((0..width).map(|_| Parcel::halt()).collect());
    program
}

/// Runs `program` with tracing and random register seeds; returns the
/// trace even if the machine faults mid-run (committed cycles are still
/// evidence).
fn traced_run(program: &Program, seed: u64, width: usize) -> Trace {
    let mut sim = Xsim::new(program.clone(), MachineConfig::with_width(width)).unwrap();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
    for r in 0..8u16 {
        sim.write_reg(Reg(r), Value::I32(rng.gen_range(-5..5)));
    }
    sim.enable_trace();
    let _ = sim.run(1_000);
    sim.trace().unwrap().clone()
}

/// The same-cycle different-address register conflicts a trace actually
/// exhibits, rendered exactly as the race engines report them.
fn observed_conflicts(program: &Program, trace: &Trace) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for row in trace.rows() {
        let running: Vec<(FuId, Addr)> = row
            .pcs
            .iter()
            .enumerate()
            .filter_map(|(fu, pc)| pc.map(|a| (FuId(fu as u8), a)))
            .collect();
        for (i, &(f, af)) in running.iter().enumerate() {
            for &(g, ag) in &running[i + 1..] {
                if af == ag {
                    continue;
                }
                let pf = program.parcel(af, f).unwrap();
                let pg = program.parcel(ag, g).unwrap();
                if let (Some(df), Some(dg)) = (pf.data.dest(), pg.data.dest()) {
                    if df == dg {
                        out.insert(format!(
                            "{f} at {af} and {g} at {ag} can write {df} in the same cycle"
                        ));
                    }
                }
                if let Some(df) = pf.data.dest() {
                    if pg.data.sources().contains(&df) {
                        out.insert(format!(
                            "{f} at {af} can write {df} in the same cycle {g} at {ag} reads it"
                        ));
                    }
                }
                if let Some(dg) = pg.data.dest() {
                    if pf.data.sources().contains(&dg) {
                        out.insert(format!(
                            "{g} at {ag} can write {dg} in the same cycle {f} at {af} reads it"
                        ));
                    }
                }
            }
        }
    }
    out
}

fn compositional_race_messages(program: &Program) -> BTreeSet<String> {
    let analysis = analyze(
        program,
        &AnalysisConfig {
            engine: EngineChoice::Compositional,
            ..AnalysisConfig::default()
        },
    );
    analysis
        .diagnostics
        .iter()
        .filter(|d| d.check == Check::CrossStreamRace)
        .inspect(|d| assert_eq!(d.engine, Engine::Compositional))
        .map(|d| d.message.clone())
        .collect()
}

/// Both generators must produce positives and negatives, or the
/// soundness properties below hold vacuously.
#[test]
fn generators_have_teeth() {
    let (mut uninit_some, mut uninit_none) = (0, 0);
    for seed in 0..200u64 {
        let program = straight_line_vliw(seed, 3, 6, 8).to_ximd();
        if expected_uninit_reads(&program).is_empty() {
            uninit_none += 1;
        } else {
            uninit_some += 1;
        }
    }
    assert!(uninit_some > 20, "only {uninit_some}/200 with uninit reads");
    assert!(uninit_none > 20, "only {uninit_none}/200 clean");

    let (mut race_some, mut race_none) = (0, 0);
    for seed in 0..100u64 {
        let program = forked_program(seed, 3);
        let trace = traced_run(&program, seed, 3);
        if observed_conflicts(&program, &trace).is_empty() {
            race_none += 1;
        } else {
            race_some += 1;
        }
    }
    assert!(
        race_some > 10,
        "only {race_some}/100 with dynamic conflicts"
    );
    assert!(race_none > 10, "only {race_none}/100 conflict-free");
}

proptest! {
    /// Every dynamically-uninitialised read on an executed path of a
    /// straight-line lockstep program is flagged by the dataflow engine
    /// at the exact parcel.
    #[test]
    fn executed_uninit_reads_are_flagged(
        seed in any::<u64>(),
        width in 1usize..=4,
        len in 1usize..=8,
    ) {
        let program = straight_line_vliw(seed, width, len, 8).to_ximd();
        let analysis = analyze_default(&program);
        for (addr, fu, r) in expected_uninit_reads(&program) {
            prop_assert!(
                analysis.diagnostics.iter().any(|d| d.check == Check::UninitRead
                    && d.engine == Engine::Dataflow
                    && (d.addr, d.fu) == (Some(addr), Some(fu))
                    && d.message.contains(&format!("{r} is read"))),
                "uninit read of {r} at {addr} {fu} not flagged:\n{analysis}"
            );
        }
    }

    /// Every register conflict a traced multi-stream run actually
    /// exhibits is reported, verbatim, by the compositional race engine.
    #[test]
    fn observed_races_are_flagged_compositionally(
        seed in any::<u64>(),
        width in 2usize..=3,
    ) {
        let program = forked_program(seed, width);
        let trace = traced_run(&program, seed, width);
        let reported = compositional_race_messages(&program);
        for conflict in observed_conflicts(&program, &trace) {
            prop_assert!(
                reported.contains(&conflict),
                "dynamic conflict not reported: {conflict}\nreported: {reported:#?}"
            );
        }
    }
}
