//! Every program the compiler emits must lint clean.
//!
//! xlint runs as a self-check over each code-generation path: plain
//! percolation-scheduled functions, multi-thread `ximdgen` combination
//! (both join disciplines, including a machine wider than the packed
//! threads), the Figure-13 tile-packing flow, fork/join guard loops, and
//! modulo-scheduled (software-pipelined) loops. These are all
//! compiler-built, so the bar is *zero findings*, not merely zero errors
//! — a warning here is a codegen bug or an analysis false positive, and
//! either deserves a failing test.

use ximd_analysis::{analyze_default, Analysis};
use ximd_compiler::autopipeline::compile_pipelined;
use ximd_compiler::compile_named;
use ximd_compiler::forkjoin::{compile_forkjoin, Guard, GuardedLoop};
use ximd_compiler::ir::{Inst, VReg, Val};
use ximd_compiler::tile::menus;
use ximd_compiler::ximdgen::{combine_threads, Join};
use ximd_isa::{AluOp, CmpOp, Program};

const SRC: &str = r"
fn sum(n) {
    let s = 0;
    let i = 1;
    while (i <= n) { s = s + i; i = i + 1; }
    return s;
}
fn fib(n) {
    let a = 0;
    let b = 1;
    let i = 0;
    while (i < n) { let t = a + b; a = b; b = t; i = i + 1; }
    return a;
}
";

fn assert_clean(what: &str, program: &Program) -> Analysis {
    let analysis = analyze_default(program);
    assert!(analysis.is_clean(), "{what}:\n{analysis}");
    analysis
}

#[test]
fn percolation_scheduled_functions_lint_clean() {
    for width in [1usize, 2, 4] {
        let f = compile_named(SRC, "sum", width).expect("sum compiles");
        let analysis = assert_clean(&format!("sum@{width}"), &f.ximd_program());
        assert_eq!(analysis.max_live_streams, 1, "single control stream");
    }
}

#[test]
fn combined_threads_lint_clean_under_both_joins() {
    let sum = compile_named(SRC, "sum", 2).expect("sum compiles");
    let fib = compile_named(SRC, "fib", 2).expect("fib compiles");
    for join in [Join::Halt, Join::Barrier] {
        let combined = combine_threads(&[&sum, &fib], 4, join).expect("threads fit");
        let analysis = assert_clean(&format!("combine({join:?})"), &combined.program);
        assert_eq!(analysis.max_live_streams, 2, "two threads, two streams");
    }
}

#[test]
fn unused_columns_do_not_deadlock_the_barrier() {
    // A machine wider than the packed threads: the spare columns halt at
    // dispatch. ximdgen makes them halt *exporting DONE* precisely so the
    // ALL-SS join still opens; the deadlock pass verifies that reasoning.
    let sum = compile_named(SRC, "sum", 2).expect("sum compiles");
    let combined = combine_threads(&[&sum], 6, Join::Barrier).expect("thread fits");
    assert_clean("combine(width 6, one 2-wide thread)", &combined.program);
}

#[test]
fn tile_packed_widths_lint_clean_when_combined() {
    // Figure 13 flow: build each thread's tile menu, pick the min-area
    // tile, compile at that width, and combine. The packing geometry
    // itself has no program; the packed *threads* do, and they must lint.
    let menu = menus(SRC, &[1, 2, 4]).expect("menus build");
    let picks: Vec<usize> = menu.iter().map(|m| m.min_area().width).collect();
    let sum = compile_named(SRC, "sum", picks[0]).expect("sum compiles");
    let fib = compile_named(SRC, "fib", picks[1]).expect("fib compiles");
    let width = picks.iter().sum::<usize>().max(4);
    let combined = combine_threads(&[&sum, &fib], width, Join::Barrier).expect("threads fit");
    assert_clean("tile-packed combination", &combined.program);
}

#[test]
fn forkjoin_guard_loops_lint_clean() {
    let ind = VReg(0);
    let trips = VReg(1);
    let v = VReg(2);
    for guards in [2usize, 4] {
        let spec = GuardedLoop {
            prologue: vec![Inst::Load {
                base: Val::Const(99),
                off: ind.into(),
                d: v,
            }],
            guards: (0..guards)
                .map(|i| Guard {
                    op: CmpOp::Ge,
                    a: v.into(),
                    b: Val::Const(i as i32 * 10),
                    body: vec![Inst::Bin {
                        op: AluOp::Iadd,
                        a: VReg(3 + i as u32).into(),
                        b: Val::Const(1),
                        d: VReg(3 + i as u32),
                    }],
                })
                .collect(),
            induction: ind,
            start: 1,
            step: 1,
            trips,
        };
        let fj = compile_forkjoin(&spec, guards + 1).expect("fork/join compiles");
        assert_clean(&format!("forkjoin({guards} guards)"), &fj.program);
    }
}

#[test]
fn modulo_scheduled_loops_lint_clean() {
    const LOOP: &str = r"
fn scale(n) {
    let i = 0;
    while (i < n) {
        mem[4000 + i] = mem[2000 + i] * 3 + 7;
        i = i + 1;
    }
    return 0;
}
";
    for width in [4usize, 8] {
        let (piped, ii) = compile_pipelined(LOOP, width).expect("loop compiles");
        assert!(ii.is_some(), "loop qualifies for pipelining");
        assert_clean(&format!("pipelined@{width}"), &piped.ximd_program());
    }
}
