//! The compiler's own output must certify clean: every suite workload,
//! pipelined or not, and the percolation (speculation) path.

use ximd_analysis::certify_program;
use ximd_compiler::suite::{HOISTED, SUITE};

#[test]
fn suite_workloads_certify_clean() {
    for width in [2usize, 4, 8] {
        for w in SUITE {
            let (f, _) = w.compile(width).expect("suite workload compiles");
            let cert = f
                .cert
                .as_ref()
                .expect("compiled output carries a certificate");
            let report = certify_program(&f.ximd_program(), cert);
            assert!(
                report.is_clean(),
                "{} at width {width} must certify clean:\n{report}",
                w.name
            );
        }
    }
}

#[test]
fn speculated_ops_certify_clean() {
    let (f, _) = HOISTED.compile(4).expect("hoisted workload compiles");
    let cert = f.cert.as_ref().expect("certificate");
    assert!(
        cert.render().contains("spec="),
        "percolation must record speculation guards:\n{}",
        cert.render()
    );
    let report = certify_program(&f.ximd_program(), cert);
    assert!(
        report.is_clean(),
        "hoisted diamond must certify clean:\n{report}"
    );
}

#[test]
fn certificate_survives_assembly_round_trip() {
    let (f, ii) = ximd_compiler::suite::SAXPY.compile(4).unwrap();
    assert!(ii.is_some(), "saxpy pipelines");
    let cert = f.cert.as_ref().unwrap();
    // Render the program as the emitter does: cert lines, then assembly.
    let mut text = cert.render();
    text.push_str(&ximd_asm::print_program(&f.ximd_program()));
    let assembly = ximd_asm::assemble(&text).expect("emitted assembly reassembles");
    match ximd_analysis::certify_assembly(&text, &assembly) {
        ximd_analysis::CertifyOutcome::Report(report) => {
            assert!(
                report.is_clean(),
                "round-tripped saxpy certifies clean:\n{report}"
            );
        }
        other => panic!("expected a report, got {other:?}"),
    }
}
