//! Static SSET-structure inference vs. the simulator's observed partitions.
//!
//! For every workload program the repo ships, run the real machine with
//! tracing on and check, cycle by cycle, that the inference's structure
//! contains what actually happened:
//!
//! - **coverage** — the running members of each dynamic SSET that share a
//!   program counter form a lockstep group; some inferred region at that
//!   address must contain the whole group;
//! - **co-occurrence** — any two running FUs observed in the same cycle at
//!   *different* addresses must be deemed able to co-occur, since that is
//!   exactly the relation the compositional race engine prunes by.

use ximd_analysis::{infer_ssets, AnalysisConfig, SsetInference};
use ximd_isa::{Addr, FuId, Program};
use ximd_sim::{Trace, TraceRow};
use ximd_workloads::{bitcount, gen, livermore, minmax, nonblocking, tproc, RunSpec};

fn inference_for(program: &Program) -> SsetInference {
    let inference = infer_ssets(program, AnalysisConfig::default().max_region_states);
    assert!(!inference.truncated, "workload inference must converge");
    inference
}

/// Running FUs of one dynamic SSET, grouped by their shared PC. FUs with
/// the same decision key but different addresses land in one dynamic
/// SSET, so lockstep groups are the per-address refinement.
fn lockstep_groups(row: &TraceRow, sset: &[FuId]) -> Vec<(Vec<FuId>, Addr)> {
    let mut groups: Vec<(Vec<FuId>, Addr)> = Vec::new();
    for &f in sset {
        let Some(pc) = row.pcs[f.index()] else {
            continue;
        };
        match groups.iter_mut().find(|(_, a)| *a == pc) {
            Some((members, _)) => members.push(f),
            None => groups.push((vec![f], pc)),
        }
    }
    groups
}

fn assert_agreement(what: &str, program: &Program, trace: &Trace) {
    let inference = inference_for(program);
    for row in trace.rows() {
        let mut running: Vec<(FuId, Addr)> = Vec::new();
        for sset in row.partition.ssets() {
            for (members, addr) in lockstep_groups(row, sset) {
                assert!(
                    inference.covers(&members, addr),
                    "{what} cycle {}: observed SSET {members:?} at {addr} \
                     has no covering inferred region",
                    row.cycle
                );
                running.extend(members.iter().map(|&f| (f, addr)));
            }
        }
        for (i, &(f, af)) in running.iter().enumerate() {
            for &(g, ag) in &running[i + 1..] {
                if af != ag {
                    assert!(
                        inference.may_co_occur(f, af, g, ag),
                        "{what} cycle {}: {f} at {af} and {g} at {ag} ran \
                         concurrently but the inference rules it out",
                        row.cycle
                    );
                }
            }
        }
    }
}

fn traced(mut sim: ximd_sim::Xsim, spec: RunSpec) -> Trace {
    sim.enable_trace();
    spec.drive(&mut sim).expect("workload runs clean");
    sim.trace().expect("tracing enabled").clone()
}

#[test]
fn minmax_partitions_agree() {
    // Figure 10's published data set plus a few seeded ones.
    let program = minmax::ximd_assembly().program;
    let (_, trace) = minmax::run_ximd_traced(&[5, 3, 4, 7]).unwrap();
    assert_agreement("minmax(fig10)", &program, &trace);
    for seed in 0..4u64 {
        let data = gen::uniform_ints(seed, 12, -50, 50);
        let (_, trace) = minmax::run_ximd_traced(&data).unwrap();
        assert_agreement(&format!("minmax(seed {seed})"), &program, &trace);
    }
}

#[test]
fn bitcount_partitions_agree() {
    let program = bitcount::ximd_assembly().program;
    for seed in 0..4u64 {
        let data = gen::bit_weighted_ints(seed, 10, 12);
        let (_, trace) = bitcount::run_ximd_traced(&data).unwrap();
        assert_agreement(&format!("bitcount(seed {seed})"), &program, &trace);
    }
}

#[test]
fn tproc_partitions_agree() {
    let program = tproc::ximd_assembly().program;
    let (sim, spec) = tproc::prepared(3, 5, 7, 11).unwrap();
    assert_agreement("tproc", &program, &traced(sim, spec));
}

#[test]
fn livermore_partitions_agree() {
    let program = livermore::ximd_program();
    let y = gen::livermore_y(1, 16);
    let (sim, spec) = livermore::prepared(&y).unwrap();
    assert_agreement("livermore", &program, &traced(sim, spec));
}

#[test]
fn nonblocking_sync_partitions_agree() {
    let program = nonblocking::sync_assembly().program;
    for seed in 0..4u64 {
        let scenario = nonblocking::Scenario::with_seed(seed);
        let (sim, spec) = nonblocking::prepared_sync(&scenario).unwrap();
        assert_agreement(
            &format!("nonblocking(seed {seed})"),
            &program,
            &traced(sim, spec),
        );
    }
}
