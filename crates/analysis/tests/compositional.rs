//! The compositional engine as a fallback and as a standalone engine.
//!
//! The acceptance property of the whole pass stack: a program whose
//! product state space exceeds `max_states` must *still* receive race,
//! uninit-read, and sync diagnostics — from the compositional and
//! dataflow engines — instead of degrading to a lone truncation warning.

use ximd_analysis::{
    lint_assembly, Analysis, AnalysisConfig, Check, Engine, EngineChoice, Severity,
};
use ximd_asm::assemble;
use ximd_isa::Addr;
use ximd_workloads::minmax;

/// Two CC-governed loops fork the product space; past the fork, fu0
/// writes r9 at 02: while fu1 reads it at 03: (a genuine cross-stream
/// race), fu0 reads r7 before its own init at 04: (a genuine uninit
/// read), and fu1 exports a DONE nobody observes.
const CAP_BUSTER: &str = "\
.width 2
00:
  fu0: lt r0,r1 ; -> 01:
  fu1: lt r2,r3 ; -> 01:
01:
  fu0: nop ; if cc0 02: | 01:
  fu1: nop ; if cc1 03: | 01:
02:
  fu0: iadd r7,#1,r9 ; -> 04:
03:
  fu1: iadd r9,#0,r8 ; -> 05: ; DONE
04:
  fu0: iadd r4,#0,r7 ; -> 05:
05:
  all: nop ; halt
";

fn lint(source: &str, config: &AnalysisConfig) -> Analysis {
    lint_assembly(&assemble(source).expect("fixture assembles"), config)
}

#[test]
fn truncated_product_still_yields_attributed_diagnostics() {
    let config = AnalysisConfig {
        max_states: 2,
        ..AnalysisConfig::default()
    };
    let analysis = lint(CAP_BUSTER, &config);
    assert!(analysis.truncated);
    assert!(analysis.compositional, "fallback engine must have run");
    assert!(analysis
        .warnings()
        .any(|d| d.check == Check::StateSpaceTruncated));

    // The race the product engine never reached, found compositionally.
    let race = analysis
        .diagnostics
        .iter()
        .find(|d| d.check == Check::CrossStreamRace)
        .expect("compositional race reported");
    assert_eq!(race.engine, Engine::Compositional);
    assert_eq!(race.severity, Severity::Warning);
    assert!(race.message.contains("r9"), "{}", race.message);

    // The per-stream lints are independent of the product cap entirely.
    let uninit = analysis
        .diagnostics
        .iter()
        .find(|d| d.check == Check::UninitRead)
        .expect("uninit read reported");
    assert_eq!(uninit.engine, Engine::Dataflow);
    assert_eq!(uninit.addr, Some(Addr(2)));
    assert!(uninit.message.contains("r7"), "{}", uninit.message);
    let sync = analysis
        .diagnostics
        .iter()
        .find(|d| d.check == Check::SyncNeverObserved)
        .expect("unobserved DONE reported");
    assert_eq!(sync.engine, Engine::Dataflow);
    assert_eq!(sync.addr, Some(Addr(3)));

    assert!(analysis.region_states > 0);
}

#[test]
fn engines_agree_on_the_race_when_the_product_converges() {
    // Same program, no cap: the product engine finds the same r9 race
    // and the compositional engine stays out of the way (Auto).
    let analysis = lint(CAP_BUSTER, &AnalysisConfig::default());
    assert!(!analysis.truncated);
    assert!(!analysis.compositional);
    let race = analysis
        .diagnostics
        .iter()
        .find(|d| d.check == Check::CrossStreamRace)
        .expect("product race reported");
    assert_eq!(race.engine, Engine::Product);
    assert!(race.message.contains("r9"), "{}", race.message);
}

#[test]
fn compositional_engine_skips_product_interpretation() {
    let config = AnalysisConfig {
        engine: EngineChoice::Compositional,
        ..AnalysisConfig::default()
    };
    let analysis = lint(CAP_BUSTER, &config);
    assert_eq!(analysis.states_explored, 0, "product engine must not run");
    assert!(analysis.compositional);
    assert!(analysis
        .diagnostics
        .iter()
        .any(|d| d.check == Check::CrossStreamRace
            && d.engine == Engine::Compositional
            && d.message.contains("r9")));
}

#[test]
fn compositional_engine_reproduces_minmax_product_warnings() {
    // MINMAX's two pinned cross-stream warnings (guarded updates of the
    // shared current-element register) must survive the engine swap:
    // everything the product engine reports on MINMAX, the compositional
    // engine reports verbatim.
    let assembly = minmax::ximd_assembly();
    let product = lint_assembly(&assembly, &AnalysisConfig::default());
    let product_races: Vec<&str> = product
        .diagnostics
        .iter()
        .filter(|d| d.check == Check::CrossStreamRace)
        .map(|d| d.message.as_str())
        .collect();
    assert_eq!(product_races.len(), 2, "{product}");

    let comp = lint_assembly(
        &assembly,
        &AnalysisConfig {
            engine: EngineChoice::Compositional,
            ..AnalysisConfig::default()
        },
    );
    assert!(!comp.has_errors(), "{comp}");
    for msg in product_races {
        assert!(
            comp.diagnostics
                .iter()
                .any(|d| d.check == Check::CrossStreamRace
                    && d.engine == Engine::Compositional
                    && d.message == msg),
            "missing compositional race: {msg}\n{comp}"
        );
    }
}

#[test]
fn both_engines_deduplicate_shared_findings() {
    // Under `both`, a race the product engine already reported is not
    // duplicated by the compositional pass — the dedup key is shared.
    let config = AnalysisConfig {
        engine: EngineChoice::Both,
        ..AnalysisConfig::default()
    };
    let analysis = lint(CAP_BUSTER, &config);
    let r9_races: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.check == Check::CrossStreamRace && d.message.contains("r9"))
        .collect();
    assert_eq!(r9_races.len(), 1, "{analysis}");
    assert_eq!(r9_races[0].engine, Engine::Product);
}

#[test]
fn compositional_engine_proves_the_sync_handshake_race_free() {
    // The write of r9 happens in the entry word, where the streams are
    // still one region — so no disjoint state pair can pair the write
    // with the consumer's read, and even the sync-blind engine stays
    // silent on this handshake.
    let handshake = "\
.width 2
00:
  fu0: nop ; -> 01:
  fu1: iadd r0,#7,r9 ; -> 03:
01:
  fu0: nop ; if ss1 02: | 01:
02:
  fu0: iadd r9,#0,r1 ; -> 04:
03:
  fu1: nop ; -> 03: ; DONE
04:
  fu0: nop ; -> 04:
";
    let analysis = lint(
        handshake,
        &AnalysisConfig {
            engine: EngineChoice::Both,
            ..AnalysisConfig::default()
        },
    );
    assert!(
        !analysis
            .diagnostics
            .iter()
            .any(|d| d.check == Check::CrossStreamRace),
        "{analysis}"
    );
}
