//! Pinned fixtures for the dataflow lints — one positive and one
//! negative case per code, so both the detection and the precision
//! rules (entry-word parameters, accumulator exemption, foreign-access
//! suppression, all-live exits, halt-DONE convention) are locked down.

use ximd_analysis::{lint_assembly, Analysis, AnalysisConfig, Check, Engine, Severity};
use ximd_asm::assemble;
use ximd_isa::{Addr, FuId};

fn lint(source: &str) -> Analysis {
    lint_assembly(
        &assemble(source).expect("fixture assembles"),
        &AnalysisConfig::default(),
    )
}

#[test]
fn uninit_read_on_branch_that_skips_the_init() {
    // The taken arm initialises r7 at 02:; the fall-through arm reads it
    // at 03: before any write can have reached it.
    let analysis = lint(
        "\
.width 1
00:
  fu0: lt r0,r1 ; -> 01:
01:
  fu0: nop ; if cc0 02: | 03:
02:
  fu0: iadd r4,#0,r7 ; -> 04:
03:
  fu0: iadd r7,#1,r8 ; -> 04:
04:
  fu0: nop ; halt
",
    );
    assert_eq!(analysis.diagnostics.len(), 1, "{analysis}");
    let d = &analysis.diagnostics[0];
    assert_eq!(d.check, Check::UninitRead);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.engine, Engine::Dataflow);
    assert_eq!((d.addr, d.fu), (Some(Addr(3)), Some(FuId(0))));
    assert_eq!(d.line, Some(9));
    assert!(d.message.contains("r7"), "{}", d.message);
    assert!(d.message.contains("02:"), "{}", d.message);
}

#[test]
fn init_before_read_is_clean() {
    let analysis = lint(
        "\
.width 1
00:
  fu0: iadd r0,#0,r7 ; -> 01:
01:
  fu0: iadd r7,#1,r8 ; halt
",
    );
    assert!(analysis.is_clean(), "{analysis}");
}

#[test]
fn accumulator_registers_are_assumed_seeded() {
    // Every write of r5 also reads r5, so it has no fresh definition —
    // the value must come from outside, like a preloaded parameter.
    let analysis = lint(
        "\
.width 1
00:
  fu0: nop ; -> 01:
01:
  fu0: iadd r5,#1,r5 ; halt
",
    );
    assert!(analysis.is_clean(), "{analysis}");
}

#[test]
fn entry_word_reads_are_parameters_even_when_reused_as_scratch() {
    // r0 is read in the entry word (cycle 0 — no write can precede it)
    // and later freshly overwritten. The read at 02: sees the fresh
    // write; the entry read is a parameter. Neither warns.
    let analysis = lint(
        "\
.width 1
00:
  fu0: iadd r0,#1,r2 ; -> 01:
01:
  fu0: iadd r3,#0,r0 ; -> 02:
02:
  fu0: iadd r0,r2,r2 ; halt
",
    );
    assert!(analysis.is_clean(), "{analysis}");
}

#[test]
fn dead_write_overwritten_on_every_path() {
    let analysis = lint(
        "\
.width 1
00:
  fu0: iadd r0,#1,r5 ; -> 01:
01:
  fu0: iadd r0,#2,r5 ; -> 02:
02:
  fu0: iadd r5,#0,r6 ; halt
",
    );
    assert_eq!(analysis.diagnostics.len(), 1, "{analysis}");
    let d = &analysis.diagnostics[0];
    assert_eq!(d.check, Check::DeadWrite);
    assert_eq!(d.engine, Engine::Dataflow);
    assert_eq!((d.addr, d.fu), (Some(Addr(0)), Some(FuId(0))));
    assert!(d.message.contains("r5"), "{}", d.message);
}

#[test]
fn final_writes_are_live_at_exits() {
    // r5 is written and never read, but the program halts right after —
    // results are read out of the register file, so nothing is dead.
    let analysis = lint(
        "\
.width 1
00:
  fu0: iadd r0,#1,r5 ; halt
",
    );
    assert!(analysis.is_clean(), "{analysis}");
}

#[test]
fn lockstep_peer_read_keeps_a_write_live() {
    // fu1 reads r5 at 01: in the same cycle fu0 overwrites it — reads
    // happen before writes commit, so fu0's write at 00: is observed.
    let analysis = lint(
        "\
.width 2
00:
  fu0: iadd r0,#1,r5 ; -> 01:
  fu1: nop ; -> 01:
01:
  fu0: iadd r0,#2,r5 ; -> 02:
  fu1: iadd r5,#0,r6 ; -> 02:
02:
  all: nop ; halt
",
    );
    assert!(analysis.is_clean(), "{analysis}");
}

#[test]
fn cc_branch_without_dominating_compare_is_stale() {
    // The branch at 00: fires before the only compare; the dataflow pass
    // and the product interpreter each report their half of the story.
    let analysis = lint(
        "\
.width 1
00:
  fu0: nop ; if cc0 01: | 01:
01:
  fu0: lt r0,r1 ; -> 02:
02:
  fu0: nop ; halt
",
    );
    let stale = analysis
        .diagnostics
        .iter()
        .find(|d| d.check == Check::CcStaleUse)
        .expect("cc-stale-use reported");
    assert_eq!(stale.engine, Engine::Dataflow);
    assert_eq!((stale.addr, stale.fu), (Some(Addr(0)), Some(FuId(0))));
    assert!(stale.message.contains("cc0"), "{}", stale.message);
    assert!(analysis
        .diagnostics
        .iter()
        .any(|d| d.check == Check::CcBeforeCompare && d.engine == Engine::Product));
}

#[test]
fn foreign_latch_with_no_compare_anywhere_is_stale() {
    let analysis = lint(
        "\
.width 2
00:
  fu0: nop ; if cc1 01: | 01:
  fu1: nop ; -> 01:
01:
  all: nop ; halt
",
    );
    let d = analysis
        .diagnostics
        .iter()
        .find(|d| d.check == Check::CcStaleUse)
        .expect("foreign stale latch reported");
    assert_eq!(d.engine, Engine::Dataflow);
    assert_eq!((d.addr, d.fu), (Some(Addr(0)), Some(FuId(0))));
    assert!(d.message.contains("cc1"), "{}", d.message);
    assert!(d.message.contains("FU1"), "{}", d.message);
}

#[test]
fn dominating_compare_keeps_cc_branch_silent() {
    let analysis = lint(
        "\
.width 1
00:
  fu0: lt r0,r1 ; -> 01:
01:
  fu0: nop ; if cc0 02: | 02:
02:
  fu0: nop ; halt
",
    );
    assert!(
        !analysis
            .diagnostics
            .iter()
            .any(|d| d.check == Check::CcStaleUse),
        "{analysis}"
    );
}

#[test]
fn done_export_with_no_observer_warns() {
    let analysis = lint(
        "\
.width 2
00:
  fu0: nop ; -> 01:
  fu1: nop ; -> 01: ; DONE
01:
  all: nop ; halt
",
    );
    assert_eq!(analysis.diagnostics.len(), 1, "{analysis}");
    let d = &analysis.diagnostics[0];
    assert_eq!(d.check, Check::SyncNeverObserved);
    assert_eq!(d.engine, Engine::Dataflow);
    assert_eq!((d.addr, d.fu), (Some(Addr(0)), Some(FuId(1))));
    assert!(d.message.contains("ss1"), "{}", d.message);
}

#[test]
fn done_on_halt_is_the_join_convention_not_a_handshake() {
    // ximdgen parks spare columns with `halt ; DONE` so ALL-SS joins
    // open; an unobserved DONE on a halt parcel is therefore normal.
    let analysis = lint(
        "\
.width 2
00:
  fu0: nop ; halt
  fu1: nop ; halt ; DONE
",
    );
    assert!(analysis.is_clean(), "{analysis}");
}

#[test]
fn observed_done_export_is_silent() {
    let analysis = lint(
        "\
.width 2
00:
  fu0: nop ; -> 01:
  fu1: iadd r0,#7,r9 ; -> 03:
01:
  fu0: nop ; if ss1 02: | 01:
02:
  fu0: iadd r9,#0,r1 ; -> 04:
03:
  fu1: nop ; -> 03: ; DONE
04:
  fu0: nop ; -> 04:
",
    );
    assert!(
        !analysis
            .diagnostics
            .iter()
            .any(|d| d.check == Check::SyncNeverObserved),
        "{analysis}"
    );
}
