//! Round trip of compiler-emitted fork/join region hints through the
//! assembly comment format and the SSET-inference cross-check.

use ximd_analysis::{crosscheck_hints, infer_ssets, parse_region_hints, AnalysisConfig};
use ximd_asm::{assemble, print_program};
use ximd_compiler::forkjoin::{compile_forkjoin, Guard, GuardedLoop};
use ximd_compiler::ir::{Inst, VReg, Val};
use ximd_isa::{AluOp, CmpOp};

fn guarded_loop(guards: usize) -> GuardedLoop {
    let (ind, trips, v) = (VReg(0), VReg(1), VReg(2));
    GuardedLoop {
        prologue: vec![Inst::Load {
            base: Val::Const(99),
            off: ind.into(),
            d: v,
        }],
        guards: (0..guards)
            .map(|i| Guard {
                op: CmpOp::Ge,
                a: v.into(),
                b: Val::Const(i as i32 * 10),
                body: vec![Inst::Bin {
                    op: AluOp::Iadd,
                    a: VReg(3 + i as u32).into(),
                    b: Val::Const(1),
                    d: VReg(3 + i as u32),
                }],
            })
            .collect(),
        induction: ind,
        start: 1,
        step: 1,
        trips,
    }
}

#[test]
fn forkjoin_hint_round_trips_and_matches_inference() {
    for guards in [2usize, 4] {
        let fj = compile_forkjoin(&guarded_loop(guards), guards + 1).unwrap();
        let summary = fj.region.clone().expect("XIMD fork/join has a region");

        // Comment → source → parse: lossless.
        let source = format!("{}\n{}", summary.comment(), print_program(&fj.program));
        let hints = parse_region_hints(&source);
        assert_eq!(hints.len(), 1, "one hint line emitted");
        assert_eq!(hints[0].fork, summary.fork);
        assert_eq!(hints[0].join, summary.join);
        assert_eq!(hints[0].streams, summary.streams);

        // The printed program must still assemble (the comment is inert).
        let assembly = assemble(&source).expect("printed program re-assembles");
        assert_eq!(assembly.program.len(), fj.program.len());

        // And the inference must agree with what codegen intended.
        let inference = infer_ssets(&fj.program, AnalysisConfig::default().max_region_states);
        let mismatches = crosscheck_hints(&inference, &hints);
        assert!(mismatches.is_empty(), "{mismatches:#?}");
    }
}

#[test]
fn tampered_hint_is_caught_by_the_crosscheck() {
    let fj = compile_forkjoin(&guarded_loop(2), 3).unwrap();
    let summary = fj.region.unwrap();
    let source = format!("{}\n{}", summary.comment(), print_program(&fj.program));
    let mut hints = parse_region_hints(&source);
    // Claim the fork happens inside the body region: only the guard FUs
    // ever reach those words, so no inferred region covers all three
    // hinted FUs there.
    hints[0].fork = summary.streams[0].1;
    let inference = infer_ssets(&fj.program, AnalysisConfig::default().max_region_states);
    assert!(!crosscheck_hints(&inference, &hints).is_empty());
}

#[test]
fn malformed_hints_are_ignored() {
    let source = "\
// ximd-sset: fork=01
// ximd-sset: fork=01 join=02 stream=zz:00-01
// ximd-sset: fork=01 join=02 stream=0:05-01
// not a hint at all
";
    assert!(parse_region_hints(source).is_empty());
}
