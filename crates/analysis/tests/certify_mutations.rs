//! Mutation testing for the schedule certifier.
//!
//! Property: the certifier must detect every semantics-changing mutation
//! of a compiler-emitted schedule. Ground truth is the simulator: a
//! mutant whose observable behaviour (return value + watched memory)
//! differs from the original — or that faults or diverges — must draw at
//! least one certify diagnostic. The fuzzer perturbs real compiled
//! programs the ways a broken scheduler would: swapping parcels, dropping
//! ops, renaming destination registers, and rewiring row chaining
//! (which shifts modulo-kernel stages).

use proptest::prelude::*;
use ximd_analysis::{certify_program, Check};
use ximd_compiler::suite::{SuiteWorkload, SUITE};
use ximd_compiler::CompiledFunction;
use ximd_isa::cert::ScheduleCertificate;
use ximd_isa::{Addr, ControlOp, DataOp, FuId, Program, Reg};
use ximd_sim::{MachineConfig, Xsim};

const WIDTH: usize = 4;

/// Per-workload fixed inputs and observed memory cells.
fn harness(name: &str) -> (Vec<i32>, Vec<(i64, i32)>, Vec<i64>) {
    match name {
        "saxpy" => (
            vec![3, 4],
            vec![
                (1000, 1),
                (1001, 2),
                (1002, 3),
                (1003, 4),
                (2000, 10),
                (2001, 10),
                (2002, 10),
                (2003, 10),
            ],
            (3000..3004).collect(),
        ),
        "livermore" => (
            vec![4],
            vec![(2999, 5), (3000, 9), (3001, 2), (3002, 14), (3003, 11)],
            (5000..5004).collect(),
        ),
        "minmax" => (
            vec![5],
            vec![(1000, 3), (1001, -7), (1002, 12), (1003, 0), (1004, 5)],
            vec![2000, 2001],
        ),
        "bitcount" => (
            vec![3],
            vec![(1000, 7), (1001, 0), (1002, 255)],
            (2000..2003).collect(),
        ),
        "tproc" => (
            vec![3],
            vec![(1000, 97), (1001, 65), (1002, 122)],
            (2000..2003).collect(),
        ),
        other => panic!("unknown workload {other}"),
    }
}

/// Observable behaviour of a program: return register + watched cells.
/// `None` means the run faulted or timed out — always "changed".
fn behaviour(
    program: &Program,
    f: &CompiledFunction,
    args: &[i32],
    mem: &[(i64, i32)],
    watch: &[i64],
) -> Option<(Option<i32>, Vec<i32>)> {
    let mut sim = Xsim::new(program.clone(), MachineConfig::with_width(WIDTH)).ok()?;
    for (&reg, &value) in f.param_regs.iter().zip(args) {
        sim.write_reg(reg, value.into());
    }
    for &(a, v) in mem {
        sim.mem_mut().poke(a, v.into()).ok()?;
    }
    sim.run(200_000).ok()?;
    let ret = f.ret_reg.map(|r| sim.reg(r).as_i32());
    let cells = watch
        .iter()
        .map(|&a| sim.mem().read(a).ok().map(|v| v.as_i32()))
        .collect::<Option<Vec<_>>>()?;
    Some((ret, cells))
}

#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// Swap the data ops of two parcels (control untouched).
    Swap { a: usize, b: usize },
    /// Replace one parcel's data op with a nop.
    Drop { at: usize },
    /// Rename one parcel's destination register.
    Rename { at: usize, delta: u8 },
    /// Rewire one row's goto target (shifts pipeline stages / chaining).
    Retarget { row: usize, delta: u32 },
}

/// All (row, fu) cells holding a non-nop data op.
fn op_cells(program: &Program) -> Vec<(Addr, FuId)> {
    let mut cells = Vec::new();
    for (addr, wide) in program.iter() {
        for (f, p) in wide.iter().enumerate() {
            if !p.data.is_nop() {
                cells.push((addr, FuId(f as u8)));
            }
        }
    }
    cells
}

fn with_dest(op: &DataOp, d: Reg) -> Option<DataOp> {
    let mut new = *op;
    match &mut new {
        DataOp::Alu { d: x, .. }
        | DataOp::Un { d: x, .. }
        | DataOp::Load { d: x, .. }
        | DataOp::PortIn { d: x, .. } => *x = d,
        DataOp::Nop | DataOp::Cmp { .. } | DataOp::Store { .. } | DataOp::PortOut { .. } => {
            return None
        }
    }
    Some(new)
}

/// Applies the mutation; returns `None` when it would be the identity.
fn apply(program: &Program, m: Mutation) -> Option<Program> {
    let cells = op_cells(program);
    let mut out = program.clone();
    match m {
        Mutation::Swap { a, b } => {
            let (aa, af) = cells[a % cells.len()];
            let (ba, bf) = cells[b % cells.len()];
            if (aa, af) == (ba, bf) {
                return None;
            }
            let da = out.parcel(aa, af)?.data;
            let db = out.parcel(ba, bf)?.data;
            if da == db {
                return None;
            }
            out.parcel_mut(aa, af)?.data = db;
            out.parcel_mut(ba, bf)?.data = da;
        }
        Mutation::Drop { at } => {
            let (a, f) = cells[at % cells.len()];
            out.parcel_mut(a, f)?.data = DataOp::Nop;
        }
        Mutation::Rename { at, delta } => {
            let (a, f) = cells[at % cells.len()];
            let op = out.parcel(a, f)?.data;
            let d = op.dest()?;
            let delta = u16::from(delta % 63 + 1);
            let new = with_dest(&op, Reg((d.0 + delta) % 256))?;
            out.parcel_mut(a, f)?.data = new;
        }
        Mutation::Retarget { row, delta } => {
            let len = out.len() as u32;
            let addr = Addr(row as u32 % len);
            let ControlOp::Goto(t) = out.parcel(addr, FuId(0))?.ctrl else {
                return None;
            };
            let new_t = Addr((t.0 + delta % 3 + 1) % len);
            if new_t == t {
                return None;
            }
            // Keep the mutant lockstep: rewire every FU's parcel.
            for f in 0..WIDTH {
                out.parcel_mut(addr, FuId(f as u8))?.ctrl = ControlOp::Goto(new_t);
            }
        }
    }
    Some(out)
}

fn compiled(w: &SuiteWorkload) -> (CompiledFunction, ScheduleCertificate) {
    let (f, _) = w.compile(WIDTH).expect("suite workload compiles");
    let cert = f.cert.clone().expect("certificate");
    (f, cert)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A mutant the certifier passes clean must behave exactly like the
    /// original program on the workload's harness inputs.
    #[test]
    fn certified_clean_mutants_preserve_behaviour(
        wl in 0..SUITE.len(),
        kind in 0u8..4,
        a in 0usize..64,
        b in 0usize..64,
        delta in 0u8..255,
    ) {
        let w = &SUITE[wl];
        let (f, cert) = compiled(w);
        let program = f.ximd_program();
        let m = match kind {
            0 => Mutation::Swap { a, b },
            1 => Mutation::Drop { at: a },
            2 => Mutation::Rename { at: a, delta },
            _ => Mutation::Retarget { row: a, delta: u32::from(delta) },
        };
        let Some(mutant) = apply(&program, m) else { return Ok(()) };
        let report = certify_program(&mutant, &cert);
        if report.is_clean() {
            let (args, mem, watch) = harness(w.name);
            let before = behaviour(&program, &f, &args, &mem, &watch);
            let after = behaviour(&mutant, &f, &args, &mem, &watch);
            prop_assert!(before.is_some(), "{}: original program must run", w.name);
            prop_assert_eq!(
                before, after,
                "{}: certifier passed a behaviour-changing mutation {:?}", w.name, m
            );
        }
    }
}

/// Swapping two dependent ops across rows must produce a dependence-edge
/// diagnostic that names *both* operations.
#[test]
fn dependent_swap_names_both_ops() {
    let (f, _) = ximd_compiler::compile(
        "fn f(a) { let x = a + 1; let y = x * 3; mem[100] = y; return y; }",
        1,
    )
    .map(|f| (f, ()))
    .expect("compiles");
    let cert = f.cert.clone().expect("certificate");
    let program = f.ximd_program();
    // Find the producer/consumer pair: the add defines x, the mult reads it.
    let cells = op_cells(&program);
    let add = cells
        .iter()
        .find(|(a, fu)| {
            matches!(
                program.parcel(*a, *fu).unwrap().data,
                DataOp::Alu {
                    op: ximd_isa::AluOp::Iadd,
                    ..
                }
            )
        })
        .copied()
        .expect("add emitted");
    let mult = cells
        .iter()
        .find(|(a, fu)| {
            matches!(
                program.parcel(*a, *fu).unwrap().data,
                DataOp::Alu {
                    op: ximd_isa::AluOp::Imult,
                    ..
                }
            )
        })
        .copied()
        .expect("mult emitted");
    let add_op = program.parcel(add.0, add.1).unwrap().data;
    let mult_op = program.parcel(mult.0, mult.1).unwrap().data;
    let mut mutant = program.clone();
    mutant.parcel_mut(add.0, add.1).unwrap().data = mult_op;
    mutant.parcel_mut(mult.0, mult.1).unwrap().data = add_op;
    let report = certify_program(&mutant, &cert);
    // The violated RAW edge ends at the hoisted multiply; the diagnostic
    // must name it and its producer (`after `op``), at machine latencies.
    let dep = report
        .diagnostics
        .iter()
        .find(|d| d.check == Check::SchedDepViolated && d.message.contains(&mult_op.to_string()))
        .unwrap_or_else(|| {
            panic!("dependent swap must violate an edge at the multiply:\n{report}")
        });
    assert!(
        dep.message.contains("RAW") && dep.message.contains(" after `"),
        "diagnostic must name the edge and both ops: {}",
        dep.message
    );
}

/// Dropping an op must report exactly which source op was lost.
#[test]
fn dropped_op_is_reported_lost() {
    let (f, cert) = compiled(&ximd_compiler::suite::MINMAX);
    let program = f.ximd_program();
    let cells = op_cells(&program);
    let (addr, fu) = cells[cells.len() / 2];
    let lost = program.parcel(addr, fu).unwrap().data;
    let mut mutant = program.clone();
    mutant.parcel_mut(addr, fu).unwrap().data = DataOp::Nop;
    let report = certify_program(&mutant, &cert);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.check == Check::SchedOpLost && d.message.contains(&lost.to_string())),
        "dropping `{lost}` must be reported as a lost op:\n{report}"
    );
}

/// Shifting the modulo kernel's loop-back edge must be an ii mismatch.
#[test]
fn kernel_retarget_is_an_ii_mismatch() {
    let (f, cert) = compiled(&ximd_compiler::suite::SAXPY);
    let program = f.ximd_program();
    // Find the kernel's loop-back branch row and shift its taken target.
    let back = program
        .iter()
        .find_map(|(addr, wide)| match wide[0].ctrl {
            ControlOp::Branch { taken, .. } if taken < addr => Some(addr),
            _ => None,
        })
        .expect("pipelined saxpy has a loop-back branch");
    let mut mutant = program.clone();
    for fu in 0..WIDTH {
        let p = mutant.parcel_mut(back, FuId(fu as u8)).unwrap();
        if let ControlOp::Branch { taken, .. } = &mut p.ctrl {
            taken.0 += 1;
        }
    }
    let report = certify_program(&mutant, &cert);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.check == Check::SchedIiMismatch),
        "rewiring the loop-back branch must mismatch the certified layout:\n{report}"
    );
}
