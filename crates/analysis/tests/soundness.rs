//! Soundness of the conflict checks against the simulator.
//!
//! Property: a program xlint passes without port/multi-write findings
//! never triggers `ximd_sim`'s dynamic write-conflict faults, on any
//! seed. And the contrapositive, checked directly: whenever the
//! simulator faults with a write conflict, xlint had flagged the
//! program.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ximd_analysis::{analyze_default, Check};
use ximd_isa::{Addr, ControlOp, DataOp, Operand, Parcel, Program, Reg, SyncSignal};
use ximd_models::randprog::{random_data_op, straight_line_vliw};
use ximd_sim::{MachineConfig, SimError, Xsim};

fn conflict_flagged(program: &Program) -> bool {
    analyze_default(program).diagnostics.iter().any(|d| {
        matches!(
            d.check,
            Check::MultiWriteReg | Check::MultiWriteMem | Check::PortBudget
        )
    })
}

/// A lockstep straight-line program of random ops, *without* the
/// distinct-destination discipline `straight_line_vliw` enforces, and
/// with stores (immediate- and register-addressed) mixed in — so both
/// conflicting and clean programs are generated.
fn free_for_all_program(seed: u64, width: usize, len: usize) -> Program {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut program = Program::new(width);
    for i in 0..len {
        let word: Vec<Parcel> = (0..width)
            .map(|_| {
                let data = if rng.gen_bool(0.25) {
                    let a = Operand::Reg(Reg(rng.gen_range(0..8)));
                    let b = if rng.gen_bool(0.7) {
                        Operand::imm_i32(rng.gen_range(0..6))
                    } else {
                        Operand::Reg(Reg(rng.gen_range(0..8)))
                    };
                    DataOp::Store { a, b }
                } else {
                    random_data_op(&mut rng, 8)
                };
                Parcel {
                    data,
                    ctrl: if i + 1 == len {
                        ControlOp::Halt
                    } else {
                        ControlOp::Goto(Addr(i as u32 + 1))
                    },
                    sync: SyncSignal::Busy,
                }
            })
            .collect();
        program.push(word);
    }
    program
}

fn run(program: Program, width: usize) -> Result<(), SimError> {
    let mut sim = Xsim::new(program, MachineConfig::with_width(width)).expect("valid program");
    // Register values only shift which cells register-addressed stores
    // hit; zeros are as good a seed as any for a conflict check.
    sim.run(10_000).map(|_| ())
}

fn is_write_conflict(e: &SimError) -> bool {
    matches!(
        e,
        SimError::RegisterWriteConflict { .. } | SimError::MemoryWriteConflict { .. }
    )
}

/// The adversarial generator must actually produce both kinds of
/// programs, or the soundness property above would hold vacuously.
#[test]
fn free_for_all_generator_has_teeth() {
    let mut flagged = 0usize;
    let mut faulted = 0usize;
    let mut clean_runs = 0usize;
    for seed in 0..200u64 {
        let program = free_for_all_program(seed, 3, 4);
        if conflict_flagged(&program) {
            flagged += 1;
        }
        match run(program, 3) {
            Err(e) if is_write_conflict(&e) => faulted += 1,
            Ok(()) => clean_runs += 1,
            Err(_) => {}
        }
    }
    assert!(flagged > 20, "only {flagged}/200 programs flagged");
    assert!(faulted > 20, "only {faulted}/200 programs faulted");
    assert!(clean_runs > 20, "only {clean_runs}/200 programs ran clean");
}

proptest! {
    /// `randprog`'s own straight-line generator keeps destinations
    /// distinct per word; xlint agrees those programs are conflict-free,
    /// and the simulator never faults on them.
    #[test]
    fn randprog_straight_line_is_clean_and_never_faults(
        seed in any::<u64>(),
        width in 1usize..=4,
        len in 1usize..=8,
    ) {
        let program = straight_line_vliw(seed, width, len, 8).to_ximd();
        prop_assert!(!conflict_flagged(&program));
        match run(program, width) {
            Err(e) if is_write_conflict(&e) => {
                prop_assert!(false, "lint-clean program faulted: {e}");
            }
            _ => {}
        }
    }

    /// Conflict soundness on adversarial programs: if xlint reports no
    /// port/multi-write finding, the simulator must not fault with a
    /// write conflict — equivalently, every dynamic write conflict was
    /// statically flagged.
    #[test]
    fn dynamic_write_conflicts_are_always_flagged(
        seed in any::<u64>(),
        width in 2usize..=4,
        len in 1usize..=6,
    ) {
        let program = free_for_all_program(seed, width, len);
        let flagged = conflict_flagged(&program);
        match run(program, width) {
            Err(e) if is_write_conflict(&e) => {
                prop_assert!(flagged, "simulator faulted ({e}) but xlint was silent");
            }
            _ => {}
        }
    }
}
