//! Per-FU control-flow extraction and structural checks.
//!
//! Every XIMD parcel names its successors explicitly (T1/T2 targets — the
//! machine has no PC incrementer), so each FU column induces a complete
//! CFG over word addresses. This pass walks each column from the shared
//! entry `00:` and reports: dangling targets, unreachable parcels that
//! still encode real data work, streams with no reachable terminal, and
//! sync-signal tests that can never observe DONE.

use ximd_isa::{Addr, CondSource, ControlOp, FuId, Program};

use crate::diag::{Check, Diagnostic, Severity};

pub(crate) fn check(program: &Program, diags: &mut Vec<Diagnostic>) {
    let width = program.width();
    let len = program.len();
    let mut reach = vec![vec![false; len]; width];
    let mut can_done = vec![false; width];

    for fu in 0..width {
        let f = FuId(fu as u8);
        let mut work = vec![Addr(0)];
        let mut has_terminal = false;
        while let Some(addr) = work.pop() {
            if addr.index() >= len {
                // Dangling targets are reported at the referencing parcel
                // below; just don't walk past the end.
                continue;
            }
            if std::mem::replace(&mut reach[fu][addr.index()], true) {
                continue;
            }
            let parcel = program.parcel(addr, f).expect("address in range");
            if parcel.sync.is_done() {
                can_done[fu] = true;
            }
            match &parcel.ctrl {
                ControlOp::Halt => has_terminal = true,
                ControlOp::Goto(t) if *t == addr => has_terminal = true,
                _ => {}
            }
            for t in parcel.ctrl.targets() {
                if t.index() >= len {
                    diags.push(
                        Diagnostic::new(
                            Check::DanglingTarget,
                            Severity::Error,
                            format!(
                                "{f} at {addr} targets {t}, past the end of the \
                                 {len}-word program"
                            ),
                        )
                        .at(addr, f),
                    );
                } else {
                    work.push(t);
                }
            }
        }
        if !has_terminal {
            diags.push(Diagnostic::new(
                Check::MissingTerminal,
                Severity::Warning,
                format!("{f} reaches neither a halt nor a self-goto park loop"),
            ));
        }
    }

    // Unreachable cells that still encode data work. Padding cells (the
    // assembler and codegen fill gaps with `nop ; halt`) stay silent.
    for (addr, word) in program.iter() {
        for (fu, parcel) in word.iter().enumerate() {
            if !reach[fu][addr.index()] && !parcel.data.is_nop() {
                diags.push(
                    Diagnostic::new(
                        Check::UnreachableCode,
                        Severity::Warning,
                        format!("unreachable parcel still encodes `{}`", parcel.data),
                    )
                    .at(addr, FuId(fu as u8)),
                );
            }
        }
    }

    // Sync tests that can never see DONE. A halted FU holds its last
    // exported value, so "FU j never exports DONE on any reachable
    // parcel" makes SS_j (and any ALL-SS involving j) permanently BUSY.
    for (addr, word) in program.iter() {
        for (fu, parcel) in word.iter().enumerate() {
            if !reach[fu][addr.index()] {
                continue;
            }
            let f = FuId(fu as u8);
            match parcel.ctrl.cond() {
                Some(CondSource::Sync(j)) if !can_done[j.index()] => {
                    diags.push(
                        Diagnostic::new(
                            Check::SsNeverDone,
                            Severity::Warning,
                            format!("{f} tests ss{}, but {j} never exports DONE", j.0),
                        )
                        .at(addr, f),
                    );
                }
                Some(CondSource::AllSync) => {
                    let stuck: Vec<String> = (0..width)
                        .filter(|&j| !can_done[j])
                        .map(|j| FuId(j as u8).to_string())
                        .collect();
                    if !stuck.is_empty() {
                        diags.push(
                            Diagnostic::new(
                                Check::SsNeverDone,
                                Severity::Warning,
                                format!(
                                    "{f} tests allss, but {} never export(s) DONE",
                                    stuck.join(", ")
                                ),
                            )
                            .at(addr, f),
                        );
                    }
                }
                Some(CondSource::AnySync) if can_done.iter().all(|&d| !d) => {
                    diags.push(
                        Diagnostic::new(
                            Check::SsNeverDone,
                            Severity::Warning,
                            format!("{f} tests anyss, but no FU ever exports DONE"),
                        )
                        .at(addr, f),
                    );
                }
                _ => {}
            }
        }
    }
}
