//! A hand-rolled SARIF 2.1.0 serializer for xlint results.
//!
//! SARIF is what code hosts ingest to annotate diffs with static-analysis
//! findings. The subset emitted here — one run, one rule per [`Check`],
//! one result per diagnostic with a physical location — is the subset
//! GitHub code scanning actually reads. Serialization is by hand because
//! the workspace deliberately carries no JSON dependency.

use std::fmt::Write as _;

use crate::diag::{Analysis, Check, Severity};

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one SARIF log covering `files` — pairs of (source path, its
/// analysis). Results carry the rule id (the check's kebab code), the
/// severity, the producing engine, and a physical location with the
/// assembler source line when the source map had one.
pub fn to_sarif(files: &[(String, &Analysis)]) -> String {
    let mut rules = String::new();
    for (i, check) in Check::ALL.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        let _ = write!(
            rules,
            r#"{{"id":"{id}","shortDescription":{{"text":"{text}"}}}}"#,
            id = check.code(),
            text = esc(check.explain().lines().next().unwrap_or(check.code())),
        );
    }

    let mut results = String::new();
    let mut first = true;
    for (path, analysis) in files {
        for d in &analysis.diagnostics {
            if !first {
                results.push(',');
            }
            first = false;
            let level = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let mut location = format!(
                r#"{{"physicalLocation":{{"artifactLocation":{{"uri":"{}"}}"#,
                esc(path)
            );
            if let Some(line) = d.line {
                let _ = write!(location, r#","region":{{"startLine":{line}}}"#);
            }
            location.push_str("}}");
            let mut properties = format!(r#""engine":"{}""#, d.engine.name());
            if let Some(addr) = d.addr {
                let _ = write!(properties, r#","address":"{addr}""#);
            }
            if let Some(fu) = d.fu {
                let _ = write!(properties, r#","fu":"{fu}""#);
            }
            let _ = write!(
                results,
                r#"{{"ruleId":"{rule}","level":"{level}","message":{{"text":"{msg}"}},"locations":[{location}],"properties":{{{properties}}}}}"#,
                rule = d.check.code(),
                msg = esc(&d.message),
            );
        }
    }

    format!(
        concat!(
            r#"{{"version":"2.1.0","#,
            r#""$schema":"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json","#,
            r#""runs":[{{"tool":{{"driver":{{"name":"xlint","informationUri":"https://example.invalid/ximd","rules":[{rules}]}}}},"#,
            r#""results":[{results}]}}]}}"#
        ),
        rules = rules,
        results = results,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze;
    use crate::config::AnalysisConfig;

    /// A minimal JSON well-formedness checker (the workspace carries no
    /// JSON dependency, so the snapshot validates itself the same way the
    /// serializer was written: by hand). Returns the rest after one value.
    fn skip_value(s: &[u8], mut i: usize) -> Result<usize, String> {
        let err = |i: usize| format!("malformed JSON at byte {i}");
        while i < s.len() && s[i].is_ascii_whitespace() {
            i += 1;
        }
        match s.get(i) {
            Some(b'{') | Some(b'[') => {
                let (open, close) = if s[i] == b'{' {
                    (b'{', b'}')
                } else {
                    (b'[', b']')
                };
                i += 1;
                loop {
                    while i < s.len() && s[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    match s.get(i) {
                        Some(&c) if c == close => return Ok(i + 1),
                        None => return Err(err(i)),
                        _ => {}
                    }
                    if open == b'{' {
                        i = skip_value(s, i)?; // key (validated as a value)
                        while i < s.len() && s[i].is_ascii_whitespace() {
                            i += 1;
                        }
                        if s.get(i) != Some(&b':') {
                            return Err(err(i));
                        }
                        i += 1;
                    }
                    i = skip_value(s, i)?;
                    while i < s.len() && s[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    match s.get(i) {
                        Some(b',') => i += 1,
                        Some(&c) if c == close => return Ok(i + 1),
                        _ => return Err(err(i)),
                    }
                }
            }
            Some(b'"') => {
                i += 1;
                while let Some(&c) = s.get(i) {
                    match c {
                        b'\\' => i += 2,
                        b'"' => return Ok(i + 1),
                        _ => i += 1,
                    }
                }
                Err(err(i))
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                i += 1;
                while s
                    .get(i)
                    .is_some_and(|c| c.is_ascii_digit() || b".eE+-".contains(c))
                {
                    i += 1;
                }
                Ok(i)
            }
            _ => {
                for lit in ["true", "false", "null"] {
                    if s[i..].starts_with(lit.as_bytes()) {
                        return Ok(i + lit.len());
                    }
                }
                Err(err(i))
            }
        }
    }

    fn assert_valid_json(doc: &str) {
        let end = skip_value(doc.as_bytes(), 0).unwrap_or_else(|e| panic!("{e}:\n{doc}"));
        assert_eq!(
            doc[end..].trim(),
            "",
            "trailing garbage after the JSON document"
        );
    }

    /// A fixed program with one known error (constant OOB store) and one
    /// known warning (decided branch), rendered to SARIF.
    fn snapshot() -> String {
        let source = r"
.width 1
00:
  fu0: gt r0,#0        ; -> 01:
01:
  fu0: iadd r0,#0,r1   ; if cc0 02: | 03:
02:
  fu0: isub r0,#0,r1   ; -> 03:
03:
  fu0: iadd r1,#0,r2 ; halt
";
        let assembly = ximd_asm::assemble(source).expect("fixture assembles");
        let config = AnalysisConfig {
            assume: vec![(ximd_isa::Reg(0), 5, 5)],
            ..AnalysisConfig::default()
        };
        let analysis = analyze(&assembly.program, &config);
        assert!(
            analysis
                .diagnostics
                .iter()
                .any(|d| d.check == Check::BranchAlways),
            "fixture must trip branch-always: {analysis}"
        );
        to_sarif(&[("programs/fixture.xasm".to_string(), &analysis)])
    }

    #[test]
    fn sarif_snapshot_is_stable_valid_and_complete() {
        let doc = snapshot();
        assert_eq!(doc, snapshot(), "serialization must be deterministic");
        assert_valid_json(&doc);

        assert!(doc.starts_with(r#"{"version":"2.1.0""#));
        assert!(doc.contains("sarif-schema-2.1.0.json"));

        // The rule table carries every registered check, including the
        // value-range / cycle-bound quartet.
        for check in Check::ALL {
            assert!(
                doc.contains(&format!(r#""id":"{}""#, check.code())),
                "rule table is missing {}",
                check.code()
            );
        }
        for code in [
            "oob-memory-access",
            "trip-count-unbounded",
            "branch-always",
            "bank-conflict-hotspot",
        ] {
            assert!(Check::from_code(code).is_some(), "{code} is not registered");
        }

        // Severities map onto SARIF levels.
        assert!(
            doc.contains(r#""level":"warning""#),
            "warning level missing:\n{doc}"
        );
        assert!(
            doc.contains(r#""ruleId":"branch-always""#),
            "branch-always result missing:\n{doc}"
        );
    }

    #[test]
    fn sarif_errors_map_to_error_level() {
        let source = r"
.width 1
00:
  fu0: isub r0,#0,r0 ; -> 01:
01:
  fu0: nop ; halt
";
        let assembly = ximd_asm::assemble(source).expect("fixture assembles");
        let mut program = assembly.program;
        // Splice in a store that is always out of range for a 32-word
        // memory: `r0 -> M(#40)`.
        use ximd_isa::{Addr, DataOp, FuId, Operand, Reg};
        program.parcel_mut(Addr(0), FuId(0)).expect("in range").data = DataOp::Store {
            a: Operand::Reg(Reg(0)),
            b: Operand::imm_i32(40),
        };
        let mut config = AnalysisConfig::default();
        config.geometry.words = 32;
        let analysis = analyze(&program, &config);
        let doc = to_sarif(&[("oob.xasm".to_string(), &analysis)]);
        assert_valid_json(&doc);
        assert!(
            doc.contains(r#""ruleId":"oob-memory-access","level":"error""#),
            "OOB store must surface as an error-level result:\n{doc}"
        );
    }
}
