//! A hand-rolled SARIF 2.1.0 serializer for xlint results.
//!
//! SARIF is what code hosts ingest to annotate diffs with static-analysis
//! findings. The subset emitted here — one run, one rule per [`Check`],
//! one result per diagnostic with a physical location — is the subset
//! GitHub code scanning actually reads. Serialization is by hand because
//! the workspace deliberately carries no JSON dependency.

use std::fmt::Write as _;

use crate::diag::{Analysis, Check, Severity};

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one SARIF log covering `files` — pairs of (source path, its
/// analysis). Results carry the rule id (the check's kebab code), the
/// severity, the producing engine, and a physical location with the
/// assembler source line when the source map had one.
pub fn to_sarif(files: &[(String, &Analysis)]) -> String {
    let mut rules = String::new();
    for (i, check) in Check::ALL.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        let _ = write!(
            rules,
            r#"{{"id":"{id}","shortDescription":{{"text":"{text}"}}}}"#,
            id = check.code(),
            text = esc(check.explain().lines().next().unwrap_or(check.code())),
        );
    }

    let mut results = String::new();
    let mut first = true;
    for (path, analysis) in files {
        for d in &analysis.diagnostics {
            if !first {
                results.push(',');
            }
            first = false;
            let level = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let mut location = format!(
                r#"{{"physicalLocation":{{"artifactLocation":{{"uri":"{}"}}"#,
                esc(path)
            );
            if let Some(line) = d.line {
                let _ = write!(location, r#","region":{{"startLine":{line}}}"#);
            }
            location.push_str("}}");
            let mut properties = format!(r#""engine":"{}""#, d.engine.name());
            if let Some(addr) = d.addr {
                let _ = write!(properties, r#","address":"{addr}""#);
            }
            if let Some(fu) = d.fu {
                let _ = write!(properties, r#","fu":"{fu}""#);
            }
            let _ = write!(
                results,
                r#"{{"ruleId":"{rule}","level":"{level}","message":{{"text":"{msg}"}},"locations":[{location}],"properties":{{{properties}}}}}"#,
                rule = d.check.code(),
                msg = esc(&d.message),
            );
        }
    }

    format!(
        concat!(
            r#"{{"version":"2.1.0","#,
            r#""$schema":"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json","#,
            r#""runs":[{{"tool":{{"driver":{{"name":"xlint","informationUri":"https://example.invalid/ximd","rules":[{rules}]}}}},"#,
            r#""results":[{results}]}}]}}"#
        ),
        rules = rules,
        results = results,
    )
}
