//! Tunable budgets and limits for an xlint run.

use ximd_isa::Reg;
use ximd_sim::{MachineConfig, MemGeometry};

/// Which engine(s) answer the cross-stream questions (races, and on the
/// product engine also deadlock/termination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineChoice {
    /// Product interpretation, falling back to the compositional SSET
    /// engine for race results when the state cap truncates exploration.
    #[default]
    Auto,
    /// Product interpretation only (the seed behaviour: truncation just
    /// warns).
    Product,
    /// Compositional SSET engine only; the product interpreter does not
    /// run at all.
    Compositional,
    /// Run both and report both (compositional findings the product
    /// already reported are deduplicated).
    Both,
}

impl EngineChoice {
    /// Parses a CLI value.
    pub fn parse(s: &str) -> Option<EngineChoice> {
        match s {
            "auto" => Some(EngineChoice::Auto),
            "product" => Some(EngineChoice::Product),
            "compositional" => Some(EngineChoice::Compositional),
            "both" => Some(EngineChoice::Both),
            _ => None,
        }
    }
}

/// Configuration for [`crate::analyze`].
///
/// The defaults describe XIMD-1 as built: each FU owns two register-file
/// read ports and one write port (the ISA cannot encode more, so the
/// per-parcel checks only fire under a stricter budget, e.g. when modeling
/// a cheaper register file), and wide-instruction totals are uncapped.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Register-file read ports available to one parcel.
    pub reads_per_fu: usize,
    /// Register-file write ports available to one parcel.
    pub writes_per_fu: usize,
    /// Total read ports shared by a whole wide instruction, if the
    /// register file is banked tighter than `width × reads_per_fu`.
    pub word_read_ports: Option<usize>,
    /// Total write ports shared by a whole wide instruction.
    pub word_write_ports: Option<usize>,
    /// Cap on explored product machine states. Exploration past the cap
    /// stops with a [`crate::Check::StateSpaceTruncated`] warning and the
    /// deadlock/race passes are skipped (they need the full space); under
    /// [`EngineChoice::Auto`] the compositional engine then supplies race
    /// results instead.
    pub max_states: usize,
    /// Cap on region states explored by the SSET-structure inference.
    /// Far smaller than the product space — region states are
    /// (member-set, address) pairs, not full machine states.
    pub max_region_states: usize,
    /// Which engine(s) answer the cross-stream questions.
    pub engine: EngineChoice,
    /// The data-memory geometry the interval analysis checks addresses
    /// against — taken from the simulator's own configuration surface so
    /// the static OOB and bank lints agree with `memory.rs` by
    /// construction. Defaults to the XIMD-1 machine (1 Mi words, flat).
    pub geometry: MemGeometry,
    /// Entry-state assumptions: `(register, lo, hi)` means the register
    /// holds a value in `lo..=hi` (as a signed 32-bit integer) when the
    /// program starts. Unlisted registers that a parcel reads before any
    /// write are unconstrained parameters. Seeded harness registers (trip
    /// counts, base addresses) go here to make trip bounds provable.
    pub assume: Vec<(Reg, i32, i32)>,
    /// Report loads/stores whose address the interval analysis cannot
    /// bound at all, as warning-severity `oob-memory-access` findings.
    /// Off by default (unbounded addresses are normal in parameterized
    /// code); the differential soundness tests switch it on to make the
    /// lint conservative by construction.
    pub flag_unknown_mem: bool,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            reads_per_fu: 2,
            writes_per_fu: 1,
            word_read_ports: None,
            word_write_ports: None,
            max_states: 1 << 18,
            max_region_states: 1 << 14,
            engine: EngineChoice::Auto,
            geometry: MachineConfig::default().mem_geometry(),
            assume: Vec::new(),
            flag_unknown_mem: false,
        }
    }
}
