//! Tunable budgets and limits for an xlint run.

/// Configuration for [`crate::analyze`].
///
/// The defaults describe XIMD-1 as built: each FU owns two register-file
/// read ports and one write port (the ISA cannot encode more, so the
/// per-parcel checks only fire under a stricter budget, e.g. when modeling
/// a cheaper register file), and wide-instruction totals are uncapped.
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Register-file read ports available to one parcel.
    pub reads_per_fu: usize,
    /// Register-file write ports available to one parcel.
    pub writes_per_fu: usize,
    /// Total read ports shared by a whole wide instruction, if the
    /// register file is banked tighter than `width × reads_per_fu`.
    pub word_read_ports: Option<usize>,
    /// Total write ports shared by a whole wide instruction.
    pub word_write_ports: Option<usize>,
    /// Cap on explored product machine states. Exploration past the cap
    /// stops with a [`crate::Check::StateSpaceTruncated`] warning and the
    /// deadlock/race passes are skipped (they need the full space).
    pub max_states: usize,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            reads_per_fu: 2,
            writes_per_fu: 1,
            word_read_ports: None,
            word_write_ports: None,
            max_states: 1 << 18,
        }
    }
}
