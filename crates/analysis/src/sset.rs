//! SSET-structure inference: statically recovering the partition of FUs
//! into synchronous sets, and the compositional race engine built on it.
//!
//! The paper's premise is that the compiler *knows*, cycle to cycle, how
//! the FUs partition into synchronous sets. This module recovers that
//! structure from the program alone by abstractly executing *region
//! states* — pairs (member set, address) meaning "these FUs are provably
//! lockstep at this address". The step rule is exactly the simulator's
//! [`DecisionKey`] refinement ([`ximd_sim::Partition::from_decisions`]):
//! members of a region grouped by the decision key of their parcel stay
//! together; differing keys split the region, and a conditional key is
//! followed down both targets.
//!
//! Splitting alone cannot see *joins* (two regions re-merging requires
//! same-cycle arrival, which this abstraction does not track), so after
//! the split exploration a union-merge fixpoint adds, for every address,
//! the union of all member sets seen there as a *synthetic* state. The
//! base (split) states stay — synthetic states only widen the structure,
//! which keeps the two derived relations sound:
//!
//! - **lockstep mates** (used by the dataflow lints to credit same-word
//!   peers' register writes) come from the *base* states only, by
//!   intersection — a peer is a mate at an address only if every base
//!   region containing the FU there contains the peer too;
//! - **co-occurrence** (used by the race engine) comes from *all* states:
//!   two FUs may co-occur at two different addresses if some pair of
//!   member-disjoint states places them there.
//!
//! The compositional race check then runs the same pairwise conflict
//! test as the product engine, but over co-occurring region-state pairs
//! instead of explored machine states — cost bounded by regions², not by
//! the product of the per-FU CFGs. It over-approximates the product
//! engine (sync conditions are not evaluated, so handshakes that provably
//! separate two accesses in time are *not* credited), which is what makes
//! it a sound fallback once the product exploration truncates.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use ximd_isa::{Addr, FuId, Program};
use ximd_sim::DecisionKey;

use crate::conflict::pair_conflicts;
use crate::diag::{Check, Diagnostic, Engine, Severity};

/// One inferred region: a set of FUs provably executing lockstep at one
/// address. `synthetic` marks union-merge states, which assume (rather
/// than prove) same-cycle arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionState {
    /// Member FUs as a bitmask (bit *i* = FU *i*).
    pub mask: u64,
    /// Shared address of all members.
    pub addr: Addr,
    /// True for union-merge states and their descendants.
    pub synthetic: bool,
}

impl RegionState {
    /// The member FUs, ascending.
    pub fn members(&self) -> Vec<FuId> {
        (0..64)
            .filter(|i| self.mask & (1u64 << i) != 0)
            .map(|i| FuId(i as u8))
            .collect()
    }
}

/// The result of SSET-structure inference over one program.
#[derive(Debug, Clone)]
pub struct SsetInference {
    /// All region states, base exploration first.
    pub states: Vec<RegionState>,
    /// Whether exploration hit the region-state cap (structure
    /// incomplete: mates degrade to "self only", coverage may fail).
    pub truncated: bool,
    width: usize,
    by_addr: HashMap<u32, Vec<usize>>,
}

/// Infers the synchronous-set structure of `program`.
pub fn infer_ssets(program: &Program, max_region_states: usize) -> SsetInference {
    let width = program.width();
    let len = program.len();
    let full: u64 = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };

    let mut states: Vec<RegionState> = Vec::new();
    let mut by_addr: HashMap<u32, Vec<usize>> = HashMap::new();
    let mut seen: HashSet<(u64, u32)> = HashSet::new();
    let mut queue: VecDeque<(u64, u32, bool)> = VecDeque::new();
    let mut truncated = false;

    if len > 0 && width > 0 {
        queue.push_back((full, 0, false));
        seen.insert((full, 0));
    }

    let explore = |queue: &mut VecDeque<(u64, u32, bool)>,
                   seen: &mut HashSet<(u64, u32)>,
                   states: &mut Vec<RegionState>,
                   by_addr: &mut HashMap<u32, Vec<usize>>,
                   truncated: &mut bool| {
        while let Some((mask, addr, synthetic)) = queue.pop_front() {
            let idx = states.len();
            states.push(RegionState {
                mask,
                addr: Addr(addr),
                synthetic,
            });
            by_addr.entry(addr).or_default().push(idx);

            // Group members by the decision key of their parcel — the
            // simulator's partition rule, applied symbolically.
            let mut groups: BTreeMap<DecisionKey, u64> = BTreeMap::new();
            for fu in 0..width {
                if mask & (1u64 << fu) == 0 {
                    continue;
                }
                let parcel = program
                    .parcel(Addr(addr), FuId(fu as u8))
                    .expect("in range");
                *groups.entry(DecisionKey::of(&parcel.ctrl)).or_insert(0) |= 1u64 << fu;
            }
            let mut push = |gmask: u64, t: u32| {
                if (t as usize) < len && seen.insert((gmask, t)) {
                    if seen.len() > max_region_states {
                        *truncated = true;
                    } else {
                        queue.push_back((gmask, t, synthetic));
                    }
                }
            };
            for (key, gmask) in groups {
                match key {
                    DecisionKey::Halted => {}
                    DecisionKey::Uncond(t) => push(gmask, t),
                    DecisionKey::Cond(_, t1, t2) => {
                        push(gmask, t1);
                        push(gmask, t2);
                    }
                }
            }
        }
    };

    explore(
        &mut queue,
        &mut seen,
        &mut states,
        &mut by_addr,
        &mut truncated,
    );

    // Union-merge fixpoint: joins need same-cycle arrival, which the
    // split abstraction cannot decide, so assume every set of regions
    // sharing an address may merge. Descendants of these synthetic
    // states are explored with the same split rule.
    loop {
        let mut grew = false;
        let addrs: Vec<u32> = by_addr.keys().copied().collect();
        for a in addrs {
            let union: u64 = by_addr[&a]
                .iter()
                .map(|&i| states[i].mask)
                .fold(0, |x, y| x | y);
            if seen.insert((union, a)) {
                if seen.len() > max_region_states {
                    truncated = true;
                } else {
                    queue.push_back((union, a, true));
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
        explore(
            &mut queue,
            &mut seen,
            &mut states,
            &mut by_addr,
            &mut truncated,
        );
    }

    SsetInference {
        states,
        truncated,
        width,
        by_addr,
    }
}

impl SsetInference {
    /// Number of region states explored.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// FUs provably lockstep with `fu` whenever it executes `addr`, as a
    /// bitmask including `fu` itself. Computed by intersecting the base
    /// (non-synthetic) states — conservative: degrades to `{fu}` when
    /// nothing is provable (or inference truncated).
    pub fn mates(&self, fu: FuId, addr: Addr) -> u64 {
        let bit = 1u64 << fu.index();
        if self.truncated {
            return bit;
        }
        let mut acc: Option<u64> = None;
        for &i in self.by_addr.get(&addr.0).into_iter().flatten() {
            let s = &self.states[i];
            if !s.synthetic && s.mask & bit != 0 {
                acc = Some(acc.map_or(s.mask, |m| m & s.mask));
            }
        }
        acc.unwrap_or(bit)
    }

    /// True if some inferred state at `addr` contains every FU in
    /// `members` — the coverage direction of the dynamic-agreement
    /// property: every SSET the simulator observes must be inferred.
    pub fn covers(&self, members: &[FuId], addr: Addr) -> bool {
        let need: u64 = members
            .iter()
            .map(|f| 1u64 << f.index())
            .fold(0, |x, y| x | y);
        self.by_addr
            .get(&addr.0)
            .into_iter()
            .flatten()
            .any(|&i| self.states[i].mask & need == need)
    }

    /// True if `f` at `af` and `g` at `ag` may execute in the same cycle
    /// in different synchronous sets — some pair of member-disjoint
    /// states places them there.
    pub fn may_co_occur(&self, f: FuId, af: Addr, g: FuId, ag: Addr) -> bool {
        let (bf, bg) = (1u64 << f.index(), 1u64 << g.index());
        let fs: Vec<u64> = self
            .by_addr
            .get(&af.0)
            .into_iter()
            .flatten()
            .map(|&i| self.states[i].mask)
            .filter(|m| m & bf != 0)
            .collect();
        self.by_addr
            .get(&ag.0)
            .into_iter()
            .flatten()
            .map(|&i| self.states[i].mask)
            .filter(|m| m & bg != 0)
            .any(|mg| fs.iter().any(|mf| mf & mg == 0))
    }

    /// Machine width the inference ran at.
    pub fn width(&self) -> usize {
        self.width
    }
}

/// The compositional cross-stream race check: run the pairwise conflict
/// test over every co-occurring pair of member-disjoint region states.
/// `skip` carries the product engine's dedup keys so findings it already
/// reported are not duplicated.
pub(crate) fn race_check(
    program: &Program,
    inference: &SsetInference,
    skip: &HashSet<(Addr, FuId, Addr, FuId, String)>,
    diags: &mut Vec<Diagnostic>,
) {
    let mut seen = skip.clone();
    for (i, si) in inference.states.iter().enumerate() {
        for sj in &inference.states[i + 1..] {
            if si.mask & sj.mask != 0 || si.addr == sj.addr {
                // Overlapping regions cannot run concurrently; same-word
                // conflicts belong to the word pass.
                continue;
            }
            for f in si.members() {
                let pf = program.parcel(si.addr, f).expect("in range");
                for g in sj.members() {
                    let pg = program.parcel(sj.addr, g).expect("in range");
                    // Order the pair by FU index, matching the product
                    // engine's dedup-key convention.
                    let (af, ff, pa, ag, fg, pb) = if f.0 < g.0 {
                        (si.addr, f, pf, sj.addr, g, pg)
                    } else {
                        (sj.addr, g, pg, si.addr, f, pf)
                    };
                    for c in pair_conflicts(af, ff, pa, ag, fg, pb) {
                        if seen.insert((af, ff, ag, fg, c.kind)) {
                            diags.push(
                                Diagnostic::new(
                                    Check::CrossStreamRace,
                                    Severity::Warning,
                                    c.message,
                                )
                                .at(af, ff)
                                .via(Engine::Compositional),
                            );
                        }
                    }
                }
            }
        }
    }
}

/// A fork/join region hint emitted by the compiler into `.xasm` comments:
/// where the streams fork, where they re-join, and which FUs each stream
/// owns over which address range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionHint {
    /// Address of the fork word (streams still lockstep here).
    pub fork: Addr,
    /// Address of the join word (streams lockstep again here).
    pub join: Addr,
    /// Per-stream (member FUs, first address, last address), inclusive.
    pub streams: Vec<(Vec<FuId>, Addr, Addr)>,
}

/// Parses `// ximd-sset: fork=XX join=YY stream=F[,F..]:LO-HI ...` hint
/// comments out of assembly source. Addresses are hex (as the assembler
/// prints them), FU lists decimal. Malformed hints are ignored — they
/// are advisory, not part of the program.
pub fn parse_region_hints(source: &str) -> Vec<RegionHint> {
    let mut hints = Vec::new();
    for line in source.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("//") else {
            continue;
        };
        let Some(body) = rest.trim().strip_prefix("ximd-sset:") else {
            continue;
        };
        let mut fork = None;
        let mut join = None;
        let mut streams = Vec::new();
        let mut ok = true;
        for tok in body.split_whitespace() {
            if let Some(v) = tok.strip_prefix("fork=") {
                fork = u32::from_str_radix(v, 16).ok().map(Addr);
            } else if let Some(v) = tok.strip_prefix("join=") {
                join = u32::from_str_radix(v, 16).ok().map(Addr);
            } else if let Some(v) = tok.strip_prefix("stream=") {
                let Some((fus, range)) = v.split_once(':') else {
                    ok = false;
                    continue;
                };
                let members: Option<Vec<FuId>> = fus
                    .split(',')
                    .map(|f| f.parse::<u8>().ok().map(FuId))
                    .collect();
                let range = range.split_once('-').and_then(|(lo, hi)| {
                    Some((
                        u32::from_str_radix(lo, 16).ok()?,
                        u32::from_str_radix(hi, 16).ok()?,
                    ))
                });
                match (members, range) {
                    (Some(m), Some((lo, hi))) if !m.is_empty() && lo <= hi => {
                        streams.push((m, Addr(lo), Addr(hi)))
                    }
                    _ => ok = false,
                }
            }
        }
        if let (Some(fork), Some(join), true) = (fork, join, ok) {
            if !streams.is_empty() {
                hints.push(RegionHint {
                    fork,
                    join,
                    streams,
                });
            }
        }
    }
    hints
}

/// Cross-checks compiler-emitted region hints against the inferred
/// structure. Returns human-readable mismatch descriptions; empty means
/// the inference agrees with what the compiler believed it generated.
pub fn crosscheck_hints(inference: &SsetInference, hints: &[RegionHint]) -> Vec<String> {
    let mut mismatches = Vec::new();
    for hint in hints {
        let all: u64 = hint
            .streams
            .iter()
            .flat_map(|(m, _, _)| m)
            .map(|f| 1u64 << f.index())
            .fold(0, |x, y| x | y);
        let union_at = |a: Addr| -> u64 {
            inference
                .by_addr
                .get(&a.0)
                .into_iter()
                .flatten()
                .map(|&i| inference.states[i].mask)
                .fold(0, |x, y| x | y)
        };
        if union_at(hint.fork) & all != all {
            mismatches.push(format!(
                "no inferred region reaches the fork word {} with every hinted FU",
                hint.fork
            ));
        }
        if union_at(hint.join) & all != all {
            mismatches.push(format!(
                "hinted streams do not all re-join at {}",
                hint.join
            ));
        }
        for (members, lo, hi) in &hint.streams {
            let fmask: u64 = members
                .iter()
                .map(|f| 1u64 << f.index())
                .fold(0, |x, y| x | y);
            for s in &inference.states {
                if s.synthetic || s.addr.0 < lo.0 || s.addr.0 > hi.0 {
                    continue;
                }
                if s.mask & fmask != 0 && s.mask & !fmask != 0 {
                    mismatches.push(format!(
                        "inferred region {:?} at {} straddles the hinted stream {:?} ({}–{})",
                        s.members(),
                        s.addr,
                        members,
                        lo,
                        hi
                    ));
                }
            }
        }
    }
    mismatches
}
