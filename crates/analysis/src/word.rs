//! Word-level resource checks: register-file port budgets and same-word
//! write conflicts.
//!
//! These are purely syntactic per wide instruction. A word that encodes
//! two writes to one register (or one memory cell) is invalid however the
//! streams interleave — the VLIW view of the same program would co-issue
//! every parcel of the word, and both simulators fault on commit.

use std::collections::HashMap;

use ximd_isa::{DataOp, FuId, Operand, Program, Value};

use crate::config::AnalysisConfig;
use crate::diag::{Check, Diagnostic, Severity};

/// The memory cell a store writes, when statically known.
pub(crate) fn store_cell(op: &DataOp) -> Option<Result<i32, ()>> {
    match op {
        DataOp::Store { b, .. } => match b {
            Operand::Imm(Value::I32(v)) => Some(Ok(*v)),
            _ => Some(Err(())),
        },
        _ => None,
    }
}

pub(crate) fn check(program: &Program, config: &AnalysisConfig, diags: &mut Vec<Diagnostic>) {
    for (addr, word) in program.iter() {
        let mut word_reads = 0usize;
        let mut word_writes = 0usize;
        let mut writers: HashMap<u16, Vec<FuId>> = HashMap::new();
        let mut stores: Vec<(FuId, Result<i32, ()>)> = Vec::new();

        for (fu, parcel) in word.iter().enumerate() {
            let f = FuId(fu as u8);
            let reads = parcel.data.sources().len();
            let writes = usize::from(parcel.data.dest().is_some());
            word_reads += reads;
            word_writes += writes;
            if reads > config.reads_per_fu {
                diags.push(
                    Diagnostic::new(
                        Check::PortBudget,
                        Severity::Error,
                        format!(
                            "parcel needs {reads} register reads, budget is {}",
                            config.reads_per_fu
                        ),
                    )
                    .at(addr, f),
                );
            }
            if writes > config.writes_per_fu {
                diags.push(
                    Diagnostic::new(
                        Check::PortBudget,
                        Severity::Error,
                        format!(
                            "parcel needs {writes} register writes, budget is {}",
                            config.writes_per_fu
                        ),
                    )
                    .at(addr, f),
                );
            }
            if let Some(d) = parcel.data.dest() {
                writers.entry(d.0).or_default().push(f);
            }
            if let Some(cell) = store_cell(&parcel.data) {
                stores.push((f, cell));
            }
        }

        if let Some(cap) = config.word_read_ports {
            if word_reads > cap {
                diags.push(
                    Diagnostic::new(
                        Check::PortBudget,
                        Severity::Error,
                        format!("wide instruction needs {word_reads} register reads, shared budget is {cap}"),
                    )
                    .at_addr(addr),
                );
            }
        }
        if let Some(cap) = config.word_write_ports {
            if word_writes > cap {
                diags.push(
                    Diagnostic::new(
                        Check::PortBudget,
                        Severity::Error,
                        format!("wide instruction needs {word_writes} register writes, shared budget is {cap}"),
                    )
                    .at_addr(addr),
                );
            }
        }

        for (reg, fus) in writers {
            if fus.len() > 1 {
                let who: Vec<String> = fus.iter().map(|f| f.to_string()).collect();
                diags.push(
                    Diagnostic::new(
                        Check::MultiWriteReg,
                        Severity::Error,
                        format!(
                            "{} all write r{reg} in one wide instruction",
                            who.join(", ")
                        ),
                    )
                    .at(addr, fus[0]),
                );
            }
        }

        for i in 0..stores.len() {
            for (g, cell_g) in &stores[i + 1..] {
                let (f, cell_f) = &stores[i];
                match (cell_f, cell_g) {
                    (Ok(a), Ok(b)) if a == b => {
                        diags.push(
                            Diagnostic::new(
                                Check::MultiWriteMem,
                                Severity::Error,
                                format!("{f} and {g} both store to M[{a}] in one wide instruction"),
                            )
                            .at(addr, *f),
                        );
                    }
                    (Ok(_), Ok(_)) => {}
                    _ => {
                        diags.push(
                            Diagnostic::new(
                                Check::MultiWriteMem,
                                Severity::Warning,
                                format!(
                                    "{f} and {g} store in one wide instruction to addresses \
                                     that cannot be proven distinct"
                                ),
                            )
                            .at(addr, *f),
                        );
                    }
                }
            }
        }
    }
}
