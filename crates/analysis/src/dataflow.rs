//! Generic worklist dataflow over per-FU CFGs, and the register/CC/sync
//! lints built on it.
//!
//! Every XIMD parcel names its successors explicitly, so each FU column
//! induces a complete CFG over word addresses ([`FuCfg`]). [`solve`] runs
//! a classic iterative worklist fixpoint over one such CFG in either
//! direction, parameterised by a join-semilattice fact type — callers
//! supply the boundary fact, the bottom element, the join, and the
//! per-parcel transfer function.
//!
//! Four analyses run on the solver:
//!
//! - **reaching definitions** (forward, may) — per register, the set of
//!   write sites (or the entry pseudo-site) that reach each parcel. A
//!   write by a provable lockstep mate in the same word counts as a
//!   definition for this FU too, since the mate commits it in the same
//!   cycle the FU passes through the word. Powers `uninit-read`.
//! - **liveness** (backward, may) — with *all* registers live at halt and
//!   park exits, because results are read out of the register file after
//!   the run. Powers `dead-write`.
//! - **CC def-use** (forward, must) — whether a compare of the branching
//!   FU dominates each branch on its own CC latch. Powers `cc-stale-use`.
//! - **sync def-observe** (whole-program) — DONE exports that no
//!   reachable branch could ever observe. Powers `sync-never-observed`.
//!
//! # Precision rules (why workload programs stay clean)
//!
//! These lints run by default, so they must be silent on correct code
//! that relies on XIMD conventions the CFG cannot see:
//!
//! - registers with no *fresh* write anywhere (every write also reads the
//!   register, e.g. `iadd r5,#1,r5` accumulators) are assumed externally
//!   seeded inputs — parameters are passed in the register file;
//! - registers read in the entry word `00:` are parameters too: every FU
//!   starts there in cycle 0, before any write can have committed, so a
//!   first-cycle read *only* makes sense on a preloaded value (TPROC
//!   reads three of its four inputs in its first word) — even when the
//!   register is later reused as a fresh-written scratch;
//! - a register written by a *foreign* FU (one not provably lockstep at
//!   the writing word) is exempt from `uninit-read`: the cross-stream
//!   ordering is the race engines' question, not this one's;
//! - `uninit-read` is a *must* analysis — it fires only when no write
//!   reaches the read on *any* path, so "seeded externally, updated in
//!   the loop" patterns (reaching sets contain the loop write via the
//!   back edge) stay silent;
//! - `dead-write` is suppressed when any foreign FU reads the register —
//!   observation from another stream keeps a value meaningful even when
//!   this stream overwrites it.

use std::collections::{BTreeSet, HashMap, VecDeque};

use ximd_isa::{Addr, CondSource, ControlOp, FuId, Program, Reg, XIMD1_NUM_REGS};

use crate::diag::{Check, Diagnostic, Engine, Severity};
use crate::sset::SsetInference;

const REG_WORDS: usize = XIMD1_NUM_REGS.div_ceil(64);

/// A dense register set sized to the XIMD-1 register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegSet([u64; REG_WORDS]);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet([0; REG_WORDS]);
    /// Every architectural register.
    pub const FULL: RegSet = RegSet([u64::MAX; REG_WORDS]);

    /// Adds `r`.
    pub fn insert(&mut self, r: Reg) {
        self.0[r.0 as usize / 64] |= 1u64 << (r.0 % 64);
    }

    /// Removes `r`.
    pub fn remove(&mut self, r: Reg) {
        self.0[r.0 as usize / 64] &= !(1u64 << (r.0 % 64));
    }

    /// Membership test.
    pub fn contains(&self, r: Reg) -> bool {
        self.0[r.0 as usize / 64] & (1u64 << (r.0 % 64)) != 0
    }

    /// In-place union; returns whether `self` grew.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }
}

/// The control-flow graph one FU column induces over word addresses.
pub struct FuCfg {
    /// The FU this CFG belongs to.
    pub fu: FuId,
    /// Successor addresses per word (in-range targets only).
    pub succs: Vec<Vec<u32>>,
    /// Predecessors, restricted to reachable words.
    pub preds: Vec<Vec<u32>>,
    /// Reachability from the shared entry `00:`.
    pub reachable: Vec<bool>,
    /// Reachable terminals: `halt` parcels and one-word self-goto parks.
    pub exits: Vec<u32>,
}

impl FuCfg {
    /// Builds the CFG for `fu`'s column of `program`.
    pub fn build(program: &Program, fu: FuId) -> FuCfg {
        let len = program.len();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); len];
        for a in 0..len as u32 {
            let parcel = program.parcel(Addr(a), fu).expect("in range");
            for t in parcel.ctrl.targets() {
                if t.index() < len && !succs[a as usize].contains(&t.0) {
                    succs[a as usize].push(t.0);
                }
            }
        }
        let mut reachable = vec![false; len];
        let mut exits = Vec::new();
        if len > 0 {
            let mut work = vec![0u32];
            while let Some(a) = work.pop() {
                if std::mem::replace(&mut reachable[a as usize], true) {
                    continue;
                }
                let parcel = program.parcel(Addr(a), fu).expect("in range");
                match parcel.ctrl {
                    ControlOp::Halt => exits.push(a),
                    ControlOp::Goto(t) if t.0 == a => exits.push(a),
                    _ => {}
                }
                work.extend(succs[a as usize].iter().copied());
            }
        }
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); len];
        for a in 0..len as u32 {
            if !reachable[a as usize] {
                continue;
            }
            for &s in &succs[a as usize] {
                preds[s as usize].push(a);
            }
        }
        FuCfg {
            fu,
            succs,
            preds,
            reachable,
            exits,
        }
    }
}

/// Which way facts flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow entry → exits; the result at a word is the fact *before*
    /// its parcel executes.
    Forward,
    /// Facts flow exits → entry; the result at a word is the fact *after*
    /// its parcel executes (e.g. live-out).
    Backward,
}

/// Iterative worklist fixpoint over one [`FuCfg`].
///
/// `boundary` is the fact at the entry (forward) or joined into every
/// exit (backward); `bottom` is the lattice's least element; `join`
/// merges a fact into an accumulator and reports growth; `transfer` maps
/// the fact across one word's parcel. Unreachable words keep `bottom`.
pub fn solve<F: Clone>(
    cfg: &FuCfg,
    dir: Direction,
    boundary: F,
    bottom: F,
    mut join: impl FnMut(&mut F, &F) -> bool,
    mut transfer: impl FnMut(u32, &F) -> F,
) -> Vec<F> {
    let len = cfg.reachable.len();
    let mut facts: Vec<F> = vec![bottom; len];
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut queued = vec![false; len];
    match dir {
        Direction::Forward => {
            if len > 0 && cfg.reachable[0] {
                facts[0] = boundary;
            }
        }
        Direction::Backward => {
            for &e in &cfg.exits {
                join(&mut facts[e as usize], &boundary);
            }
        }
    }
    for a in 0..len as u32 {
        if cfg.reachable[a as usize] {
            queue.push_back(a);
            queued[a as usize] = true;
        }
    }
    while let Some(a) = queue.pop_front() {
        queued[a as usize] = false;
        let out = transfer(a, &facts[a as usize]);
        let flow_to: &[u32] = match dir {
            Direction::Forward => &cfg.succs[a as usize],
            Direction::Backward => &cfg.preds[a as usize],
        };
        for &t in flow_to {
            if !cfg.reachable[t as usize] {
                continue;
            }
            if join(&mut facts[t as usize], &out) && !queued[t as usize] {
                queue.push_back(t);
                queued[t as usize] = true;
            }
        }
    }
    facts
}

/// The entry pseudo-definition site used by reaching definitions.
const ENTRY: u32 = u32::MAX;

pub(crate) fn check(program: &Program, inference: &SsetInference, diags: &mut Vec<Diagnostic>) {
    let width = program.width();
    let len = program.len();
    if width == 0 || len == 0 {
        return;
    }
    let cfgs: Vec<FuCfg> = (0..width)
        .map(|f| FuCfg::build(program, FuId(f as u8)))
        .collect();

    // Whole-program access indexes over reachable parcels.
    let mut fresh_def = RegSet::EMPTY;
    let mut fresh_site: HashMap<u16, (FuId, Addr)> = HashMap::new();
    let mut writers: HashMap<u16, Vec<(u8, u32)>> = HashMap::new();
    let mut readers: HashMap<u16, Vec<(u8, u32)>> = HashMap::new();
    let mut done_exports: Vec<Vec<u32>> = vec![Vec::new(); width];
    let mut sync_observed = vec![false; width];
    let mut touched: BTreeSet<u16> = BTreeSet::new();
    for (fu, cfg) in cfgs.iter().enumerate() {
        let f = FuId(fu as u8);
        for a in 0..len as u32 {
            if !cfg.reachable[a as usize] {
                continue;
            }
            let parcel = program.parcel(Addr(a), f).expect("in range");
            let sources = parcel.data.sources();
            for r in &sources {
                readers.entry(r.0).or_default().push((f.0, a));
                touched.insert(r.0);
            }
            if let Some(d) = parcel.data.dest() {
                writers.entry(d.0).or_default().push((f.0, a));
                touched.insert(d.0);
                if !sources.contains(&d) {
                    fresh_def.insert(d);
                    fresh_site.entry(d.0).or_insert((f, Addr(a)));
                }
            }
            if parcel.sync.is_done() && parcel.ctrl != ControlOp::Halt {
                done_exports[fu].push(a);
            }
            match parcel.ctrl.cond() {
                Some(CondSource::Sync(j)) => sync_observed[j.index()] = true,
                Some(CondSource::AllSync) | Some(CondSource::AnySync) => {
                    sync_observed.iter_mut().for_each(|o| *o = true)
                }
                _ => {}
            }
        }
    }

    // `g` is a lockstep mate of `f` at word `x`: same cycle, provably.
    let is_mate = |f: FuId, x: u32, g: u8| -> bool {
        f.0 == g || inference.mates(f, Addr(x)) & (1u64 << g) != 0
    };

    // Registers read in the entry word are preloaded parameters: cycle 0
    // precedes every possible write.
    let mut entry_inputs = RegSet::EMPTY;
    for fu in 0..width {
        let parcel = program.parcel(Addr(0), FuId(fu as u8)).expect("in range");
        for r in parcel.data.sources() {
            entry_inputs.insert(r);
        }
    }

    // sync-never-observed: a DONE handshake with no consuming half.
    for (fu, exports) in done_exports.iter().enumerate() {
        let f = FuId(fu as u8);
        if sync_observed[fu] {
            continue;
        }
        if let Some(&a) = exports.iter().min() {
            diags.push(
                Diagnostic::new(
                    Check::SyncNeverObserved,
                    Severity::Warning,
                    format!(
                        "{f} exports DONE here, but no reachable branch tests \
                         ss{fu}, allss, or anyss — the handshake has no observer"
                    ),
                )
                .at(Addr(a), f)
                .via(Engine::Dataflow),
            );
        }
    }

    for (fu, cfg) in cfgs.iter().enumerate() {
        let f = FuId(fu as u8);

        // Definitions this FU can rely on at word `x`: its own parcel's
        // plus those of provable lockstep mates (committed the same
        // cycle it passes through `x`).
        let defs_at = |x: u32| -> Vec<Reg> {
            let mates = inference.mates(f, Addr(x));
            (0..width)
                .filter(|&m| mates & (1u64 << m) != 0)
                .filter_map(|m| {
                    program
                        .parcel(Addr(x), FuId(m as u8))
                        .expect("in range")
                        .data
                        .dest()
                })
                .collect()
        };
        let uses_at = |x: u32| -> Vec<Reg> {
            let mates = inference.mates(f, Addr(x));
            (0..width)
                .filter(|&m| mates & (1u64 << m) != 0)
                .flat_map(|m| {
                    program
                        .parcel(Addr(x), FuId(m as u8))
                        .expect("in range")
                        .data
                        .sources()
                })
                .collect()
        };

        // Reaching definitions (forward, may): facts are (register,
        // site) pairs, ENTRY standing for "unwritten since startup".
        let boundary: BTreeSet<(u16, u32)> = touched.iter().map(|&r| (r, ENTRY)).collect();
        let reach = solve(
            cfg,
            Direction::Forward,
            boundary,
            BTreeSet::new(),
            |into: &mut BTreeSet<(u16, u32)>, from| {
                let before = into.len();
                into.extend(from.iter().copied());
                into.len() != before
            },
            |x, fact| {
                let mut out = fact.clone();
                for d in defs_at(x) {
                    out.retain(|&(r, _)| r != d.0);
                    out.insert((d.0, x));
                }
                out
            },
        );

        // uninit-read: a must-uninitialized read of a register the
        // program does freshly initialise, with no foreign writer.
        for a in 0..len as u32 {
            if !cfg.reachable[a as usize] {
                continue;
            }
            let parcel = program.parcel(Addr(a), f).expect("in range");
            let mut flagged = BTreeSet::new();
            for r in parcel.data.sources() {
                if !flagged.insert(r.0) {
                    continue;
                }
                let entry_reaches = reach[a as usize].contains(&(r.0, ENTRY));
                let def_reaches = reach[a as usize]
                    .iter()
                    .any(|&(rr, site)| rr == r.0 && site != ENTRY);
                let foreign_writer = writers
                    .get(&r.0)
                    .is_some_and(|ws| ws.iter().any(|&(g, x)| !is_mate(f, x, g)));
                if entry_reaches
                    && !def_reaches
                    && fresh_def.contains(r)
                    && !entry_inputs.contains(r)
                    && !foreign_writer
                {
                    let (gi, ga) = fresh_site[&r.0];
                    diags.push(
                        Diagnostic::new(
                            Check::UninitRead,
                            Severity::Warning,
                            format!(
                                "{r} is read here, but no write reaches this parcel \
                                 on any path of {f}'s stream (first initialised at \
                                 {ga} by {gi})"
                            ),
                        )
                        .at(Addr(a), f)
                        .via(Engine::Dataflow),
                    );
                }
            }
        }

        // Liveness (backward, may): everything is live at halt and park
        // exits — results are read out of the register file after the
        // run — so only overwritten-before-read-on-every-path fires.
        let live_out = solve(
            cfg,
            Direction::Backward,
            RegSet::FULL,
            RegSet::EMPTY,
            |into: &mut RegSet, from| into.union_with(from),
            |x, fact| {
                let mut live = *fact;
                for d in defs_at(x) {
                    live.remove(d);
                }
                for u in uses_at(x) {
                    live.insert(u);
                }
                live
            },
        );

        // dead-write: no read of the value on any path, and no foreign
        // stream observing the register either.
        for a in 0..len as u32 {
            if !cfg.reachable[a as usize] {
                continue;
            }
            let parcel = program.parcel(Addr(a), f).expect("in range");
            let Some(d) = parcel.data.dest() else {
                continue;
            };
            let foreign_reader = readers
                .get(&d.0)
                .is_some_and(|rs| rs.iter().any(|&(g, x)| !is_mate(f, x, g)));
            if !live_out[a as usize].contains(d) && !foreign_reader {
                diags.push(
                    Diagnostic::new(
                        Check::DeadWrite,
                        Severity::Warning,
                        format!(
                            "the value written to {d} is overwritten before \
                             any read on every path"
                        ),
                    )
                    .at(Addr(a), f)
                    .via(Engine::Dataflow),
                );
            }
        }

        // CC def-use: branches on the FU's own latch must be dominated
        // by one of its compares (forward must-analysis: "the latch may
        // still be unset/stale"); branches on a foreign latch get the
        // weak check that the owner compares at all.
        let own_parcel =
            |x: u32| -> &ximd_isa::Parcel { program.parcel(Addr(x), f).expect("in range") };
        let stale_in = solve(
            cfg,
            Direction::Forward,
            true,
            false,
            |into: &mut bool, from| {
                let grew = *from && !*into;
                *into |= *from;
                grew
            },
            |x, fact| {
                if own_parcel(x).data.sets_cc() {
                    false
                } else {
                    *fact
                }
            },
        );
        for a in 0..len as u32 {
            if !cfg.reachable[a as usize] {
                continue;
            }
            let Some(CondSource::Cc(j)) = own_parcel(a).ctrl.cond() else {
                continue;
            };
            if j == f {
                if stale_in[a as usize] {
                    diags.push(
                        Diagnostic::new(
                            Check::CcStaleUse,
                            Severity::Warning,
                            format!(
                                "branch reads cc{} with no dominating compare of \
                                 {f}; on some path the latch holds a stale or \
                                 never-written value",
                                j.0
                            ),
                        )
                        .at(Addr(a), f)
                        .via(Engine::Dataflow),
                    );
                }
            } else {
                let owner_compares = (0..len as u32).any(|x| {
                    cfgs[j.index()].reachable[x as usize]
                        && program.parcel(Addr(x), j).expect("in range").data.sets_cc()
                });
                if !owner_compares {
                    diags.push(
                        Diagnostic::new(
                            Check::CcStaleUse,
                            Severity::Warning,
                            format!(
                                "branch reads cc{}, but {j} has no reachable \
                                 compare anywhere — the latch can never be set",
                                j.0
                            ),
                        )
                        .at(Addr(a), f)
                        .via(Engine::Dataflow),
                    );
                }
            }
        }
    }
}
