//! **xlint** — static verification of XIMD-1 programs.
//!
//! On XIMD every parcel names its successors explicitly, so a program is a
//! *set of per-FU control-flow graphs* sharing one instruction memory.
//! Most VLIW static checks carry over per word; the interesting defects
//! are the cross-stream ones — a barrier no machine state can release, or
//! two streams whose schedules let them touch one register in the same
//! cycle. This crate runs six passes over a [`Program`]:
//!
//! 1. **Structure** ([`Check::DanglingTarget`], [`Check::UnreachableCode`],
//!    [`Check::MissingTerminal`], [`Check::SsNeverDone`]) — per-FU CFG
//!    walks from the shared entry `00:`.
//! 2. **Word resources** ([`Check::PortBudget`], [`Check::MultiWriteReg`],
//!    [`Check::MultiWriteMem`]) — per wide instruction, against the
//!    configured register-file port budgets.
//! 3. **Dataflow** ([`Check::UninitRead`], [`Check::DeadWrite`],
//!    [`Check::CcStaleUse`], [`Check::SyncNeverObserved`]) — worklist
//!    fixpoints over each per-FU CFG (see [`dataflow`]), crediting writes
//!    by provable lockstep peers via the SSET-structure inference.
//! 4. **Value ranges** ([`Check::OobMemoryAccess`],
//!    [`Check::BranchAlways`]) — interval abstract interpretation over
//!    each per-FU CFG (see [`range`]), widening at loop heads; the same
//!    facts drive the static cycle-bound oracle in [`bounds`], whose
//!    [`Check::TripCountUnbounded`] and [`Check::BankConflictHotspot`]
//!    findings appear in `xlint --cycle-bounds` reports.
//! 5. **Product interpretation** ([`Check::SyncDeadlock`],
//!    [`Check::NoTermination`], [`Check::CrossStreamRace`],
//!    [`Check::CcBeforeCompare`]) — abstract interpretation over the
//!    product of the per-FU CFGs, evaluating sync signals exactly (they
//!    are combinational and program-determined) and treating only the CC
//!    latches as nondeterministic, refined by the same
//!    [`ximd_sim::Partition`] decision-key rule the simulator applies
//!    each cycle.
//! 6. **Compositional races** ([`Check::CrossStreamRace`] via the
//!    [`sset`] engine) — the same pairwise conflict test over inferred
//!    synchronous-region pairs instead of product states, so soundness
//!    no longer needs the product exploration to converge. Under the
//!    default [`EngineChoice::Auto`] it runs exactly when the product
//!    engine truncates; `--engine compositional`/`both` select it
//!    explicitly.
//!
//! The pass structure mirrors how the machine actually fails: word-level
//! defects fault both simulators identically, while cross-stream defects
//! are XIMD-specific and invisible to a classic VLIW verifier. Each
//! [`Diagnostic`] records the [`Engine`] that produced it.
//!
//! Diagnostics carry instruction-memory anchors; [`lint_assembly`] adds
//! assembler source lines from the [`Assembly`]'s source map.
//!
//! # Precision
//!
//! Sync behaviour is exact, so ALL-SS release and SS handshakes are
//! decided, not approximated. Condition codes fork the exploration each
//! time they are read (correlated within a cycle, free across cycles),
//! and data values are not tracked at all — so a `CC`-guarded invariant
//! that actually keeps two streams apart is *not* visible, and such
//! programs may draw spurious [`Check::CrossStreamRace`] warnings; this
//! over-approximation is what makes the deadlock and race results sound.
//! Register-addressed stores have unknown cells and are compared
//! conservatively. State exploration is capped ([`AnalysisConfig::max_states`]);
//! hitting the cap degrades the whole-space checks to a warning.

pub mod bounds;
pub mod certify;
mod cfg;
mod config;
mod conflict;
pub mod dataflow;
mod diag;
mod interp;
pub mod range;
mod sarif;
pub mod sset;
mod word;

pub use bounds::{
    cycle_bounds, BoundsConfig, BoundsReport, FuBound, HotRegion, Lockstep, LoopBound,
};
pub use certify::{certify_assembly, certify_program, CertifyOutcome};
pub use config::{AnalysisConfig, EngineChoice};
pub use diag::{Analysis, Check, Diagnostic, Engine, Severity};
pub use range::{CcFact, Interval};
pub use sarif::to_sarif;
pub use sset::{
    crosscheck_hints, infer_ssets, parse_region_hints, RegionHint, RegionState, SsetInference,
};

use std::collections::HashSet;

use ximd_asm::Assembly;
use ximd_isa::Program;

/// Runs every check over `program`.
pub fn analyze(program: &Program, config: &AnalysisConfig) -> Analysis {
    let mut diagnostics = Vec::new();
    cfg::check(program, &mut diagnostics);
    word::check(program, config, &mut diagnostics);

    // The SSET-structure inference always runs: the dataflow lints need
    // its lockstep-mate relation, and the compositional race engine is
    // built on it.
    let inference = sset::infer_ssets(program, config.max_region_states);
    dataflow::check(program, &inference, &mut diagnostics);

    // Value-range pass: interval facts per FU (crediting provable lockstep
    // mates, the ideal-machine view) power the OOB and dead-branch lints.
    let ranges = range::RangePass::run(program, config, &inference, range::Mates::Inferred);
    range::check(program, config, &ranges, &mut diagnostics);

    let facts = if config.engine == EngineChoice::Compositional {
        None
    } else {
        Some(interp::check(program, config, &mut diagnostics))
    };
    let truncated = facts.as_ref().is_some_and(|f| f.truncated);
    let run_compositional = match config.engine {
        EngineChoice::Product => false,
        EngineChoice::Compositional | EngineChoice::Both => true,
        // The fallback: the product engine gave up, so substitute the
        // compositional race results rather than reporting nothing.
        EngineChoice::Auto => truncated,
    };
    if run_compositional {
        if inference.truncated {
            diagnostics.push(
                Diagnostic::new(
                    Check::StateSpaceTruncated,
                    Severity::Warning,
                    format!(
                        "SSET inference exceeds the cap of {} region states; \
                         compositional race results are incomplete",
                        config.max_region_states
                    ),
                )
                .via(Engine::Compositional),
            );
        }
        let product_keys = facts
            .as_ref()
            .map(|f| f.race_keys.clone())
            .unwrap_or_else(HashSet::new);
        sset::race_check(program, &inference, &product_keys, &mut diagnostics);
    }
    Analysis {
        diagnostics,
        states_explored: facts.as_ref().map_or(0, |f| f.states_explored),
        truncated,
        max_live_streams: facts.as_ref().map_or(0, |f| f.max_live_streams),
        region_states: inference.num_states(),
        compositional: run_compositional,
    }
    .finish()
}

/// [`analyze`] with the default XIMD-1 configuration.
pub fn analyze_default(program: &Program) -> Analysis {
    analyze(program, &AnalysisConfig::default())
}

/// Lints an assembled program and anchors findings to source lines.
pub fn lint_assembly(assembly: &Assembly, config: &AnalysisConfig) -> Analysis {
    let mut analysis = analyze(&assembly.program, config);
    for d in &mut analysis.diagnostics {
        if let (Some(addr), Some(fu)) = (d.addr, d.fu) {
            d.line = assembly.source_map.line(addr, fu);
        }
    }
    analysis
}

#[cfg(test)]
mod tests {
    use super::*;
    use ximd_asm::assemble;
    use ximd_isa::{Addr, FuId, Parcel, Program};

    fn lint(source: &str) -> Analysis {
        lint_assembly(
            &assemble(source).expect("fixture assembles"),
            &AnalysisConfig::default(),
        )
    }

    /// The canonical broken fixture: a same-word double write, and an
    /// ALL-SS barrier that can never open because a peer halts while
    /// still exporting BUSY.
    const BROKEN: &str = "\
.width 2
00:
  fu0: iadd r0,#1,r2 ; -> 01:
  fu1: iadd r1,#1,r2 ; -> 01:
01:
  fu0: nop ; if allss 02: | 01: ; DONE
  fu1: nop ; halt
02:
  all: nop ; halt
";

    #[test]
    fn broken_fixture_double_write_is_an_error_with_span() {
        let analysis = lint(BROKEN);
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.check == Check::MultiWriteReg)
            .expect("double write reported");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.addr, Some(Addr(0)));
        // The span points at the first conflicting parcel's source line.
        assert_eq!(d.line, Some(3));
        assert!(d.message.contains("r2"), "{}", d.message);
    }

    #[test]
    fn broken_fixture_unreleasable_barrier_is_a_deadlock_error() {
        let analysis = lint(BROKEN);
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.check == Check::SyncDeadlock)
            .expect("deadlock reported");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!((d.addr, d.fu), (Some(Addr(1)), Some(FuId(0))));
        assert_eq!(d.line, Some(6));
        assert!(d.message.contains("allss"), "{}", d.message);
        // The structural pass also explains *why*: fu1 never exports DONE.
        assert!(analysis
            .diagnostics
            .iter()
            .any(|d| d.check == Check::SsNeverDone));
    }

    #[test]
    fn stricter_read_budget_flags_port_oversubscription() {
        let config = AnalysisConfig {
            reads_per_fu: 1,
            ..AnalysisConfig::default()
        };
        let assembly = assemble(BROKEN).unwrap();
        let analysis = lint_assembly(&assembly, &config);
        let ports: Vec<_> = analysis
            .diagnostics
            .iter()
            .filter(|d| d.check == Check::PortBudget)
            .collect();
        // `iadd rN,#1,r2` reads one register; make one that reads two.
        assert!(ports.is_empty());
        let two_reads = "\
.width 1
00:
  fu0: iadd r0,r1,r2 ; halt
";
        let analysis = lint_assembly(&assemble(two_reads).unwrap(), &config);
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.check == Check::PortBudget)
            .expect("port budget reported");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.line, Some(3));
    }

    #[test]
    fn shared_word_ports_are_budgeted() {
        let config = AnalysisConfig {
            word_write_ports: Some(1),
            ..AnalysisConfig::default()
        };
        let source = "\
.width 2
00:
  fu0: iadd r0,#1,r1 ; halt
  fu1: iadd r2,#1,r3 ; halt
";
        let analysis = lint_assembly(&assemble(source).unwrap(), &config);
        assert!(analysis
            .diagnostics
            .iter()
            .any(|d| d.check == Check::PortBudget && d.addr == Some(Addr(0))));
    }

    #[test]
    fn cross_stream_write_write_is_detected() {
        // The streams split at 00: and write r5 from different addresses
        // in the same cycle.
        let analysis = lint(
            "\
.width 2
00:
  fu0: nop ; -> 01:
  fu1: nop ; -> 02:
01:
  fu0: iadd r0,#1,r5 ; -> 03:
02:
  fu1: iadd r1,#1,r5 ; -> 03:
03:
  all: nop ; -> 03:
",
        );
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.check == Check::CrossStreamRace)
            .expect("race reported");
        assert!(d.message.contains("r5"), "{}", d.message);
        assert!(!analysis.has_errors());
    }

    #[test]
    fn cross_stream_write_read_is_detected() {
        let analysis = lint(
            "\
.width 2
00:
  fu0: nop ; -> 01:
  fu1: nop ; -> 02:
01:
  fu0: iadd r9,#0,r1 ; -> 03:
02:
  fu1: iadd r0,#7,r9 ; -> 03:
03:
  all: nop ; -> 03:
",
        );
        assert!(analysis
            .diagnostics
            .iter()
            .any(|d| d.check == Check::CrossStreamRace && d.message.contains("r9")));
    }

    #[test]
    fn sync_handshake_is_proved_race_free() {
        // Producer writes r9 then parks exporting DONE; the consumer
        // polls SS1 before reading. Exact sync evaluation shows the
        // write and the read can never share a cycle.
        let analysis = lint(
            "\
.width 2
00:
  fu0: nop ; -> 01:
  fu1: iadd r0,#7,r9 ; -> 03:
01:
  fu0: nop ; if ss1 02: | 01:
02:
  fu0: iadd r9,#0,r1 ; -> 04:
03:
  fu1: nop ; -> 03: ; DONE
04:
  fu0: nop ; -> 04:
",
        );
        assert!(analysis.is_clean(), "{analysis}");
        assert_eq!(analysis.max_live_streams, 2);
    }

    #[test]
    fn cc_read_before_any_compare_warns() {
        let analysis = lint(
            "\
.width 1
00:
  fu0: nop ; if cc0 01: | 01:
01:
  fu0: nop ; halt
",
        );
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.check == Check::CcBeforeCompare)
            .expect("cc warning");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.addr, Some(Addr(0)));
    }

    #[test]
    fn unreachable_data_parcel_warns_but_padding_does_not() {
        let analysis = lint(
            "\
.width 1
00:
  fu0: nop ; -> 02:
01:
  fu0: iadd r0,#1,r1 ; -> 02:
02:
  fu0: nop ; halt
",
        );
        let d = analysis
            .diagnostics
            .iter()
            .find(|d| d.check == Check::UnreachableCode)
            .expect("unreachable data op");
        assert_eq!(d.addr, Some(Addr(1)));
        // A program whose gaps are pure `nop ; halt` padding stays silent.
        let padded = lint(".width 1\n00:\n  fu0: nop ; -> 05:\n05:\n  fu0: nop ; halt\n");
        assert!(padded.is_clean(), "{padded}");
    }

    #[test]
    fn dangling_target_in_hand_built_program_is_an_error() {
        let mut program = Program::new(1);
        program.push(vec![Parcel::goto(Addr(9))]);
        let analysis = analyze_default(&program);
        assert!(analysis.errors().any(|d| d.check == Check::DanglingTarget));
    }

    #[test]
    fn lockstep_program_has_one_stream() {
        let analysis = lint(
            "\
.width 4
00:
  all: nop ; -> 01:
01:
  all: nop ; halt
",
        );
        assert!(analysis.is_clean(), "{analysis}");
        assert_eq!(analysis.max_live_streams, 1);
    }

    #[test]
    fn exitless_loop_without_sync_wait_is_a_warning() {
        let analysis = lint(
            "\
.width 1
00:
  fu0: nop ; -> 01:
01:
  fu0: nop ; -> 00:
",
        );
        assert!(analysis.warnings().any(|d| d.check == Check::NoTermination));
        assert!(!analysis.has_errors());
    }

    #[test]
    fn state_cap_truncates_with_a_warning() {
        let config = AnalysisConfig {
            max_states: 2,
            ..AnalysisConfig::default()
        };
        let assembly = assemble(
            "\
.width 2
00:
  fu0: lt r0,r1 ; -> 01:
  fu1: lt r2,r3 ; -> 01:
01:
  fu0: nop ; if cc0 00: | 02:
  fu1: nop ; if cc1 00: | 02:
02:
  all: nop ; halt
",
        )
        .unwrap();
        let analysis = lint_assembly(&assembly, &config);
        assert!(analysis.truncated);
        assert!(analysis
            .warnings()
            .any(|d| d.check == Check::StateSpaceTruncated));
    }
}
