//! Interval (value-range) abstract interpretation, per FU.
//!
//! Registers are abstracted as intervals over their 32-bit images (the
//! machine stores bit patterns; integer arithmetic and compares act on the
//! image as a signed `i32`, exactly like the execution engine). Each FU
//! column gets a forward fixpoint over its [`FuCfg`]: the fact at a word is
//! the register/CC state *before* its parcel executes, transfer applies the
//! parcel — plus, under the lockstep assumption, the same-word parcels of
//! provable SSET mates, which commit in the same cycle — and joins widen at
//! loop heads so the fixpoint terminates in a handful of passes.
//!
//! Soundness around the things one FU cannot see:
//!
//! - a register written anywhere by a *non-mate* FU is havocked — pinned to
//!   [`Interval::TOP`] throughout this FU's analysis (cross-stream ordering
//!   is the race engines' question, not this one's);
//! - a CC latch compared anywhere by its non-mate owner is likewise pinned
//!   to unknown;
//! - loads, port reads and float arithmetic whose operands are not exact
//!   produce `TOP`; exact (singleton) operands are evaluated through the
//!   very same [`AluOp::eval`]/[`UnOp::eval`]/[`CmpOp::eval`] the simulator
//!   executes, so constant folding is bit-exact by construction;
//! - interval ends are always genuine `i32` values; an end that has been
//!   widened away sits at the `i32` extreme, and consumers treat extremes
//!   as "unknown" rather than as proof.
//!
//! Two default-mode lints read the fixpoint directly: `oob-memory-access`
//! (effective address interval vs. the machine's [`MemGeometry`](ximd_sim::MemGeometry)) and
//! `branch-always` (a CC fact the analysis proves constant at a branch).
//! The static cycle oracle in [`crate::bounds`] consumes the rest.

use ximd_isa::{
    Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, FuId, Operand, Program, Reg, UnOp, Value,
    XIMD1_NUM_REGS,
};

use crate::config::AnalysisConfig;
use crate::dataflow::{FuCfg, RegSet};
use crate::diag::{Check, Diagnostic, Engine, Severity};
use crate::sset::SsetInference;

/// Joins at a loop head beyond this count widen grown bounds to the
/// `i32` extremes instead of creeping toward them.
const WIDEN_DELAY: usize = 2;

/// An inclusive range of 32-bit register images, ordered as `i32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible signed image.
    pub lo: i32,
    /// Largest possible signed image.
    pub hi: i32,
}

impl Interval {
    /// No information: any 32-bit image.
    pub const TOP: Interval = Interval {
        lo: i32::MIN,
        hi: i32::MAX,
    };

    /// The singleton interval `[v, v]`.
    pub fn exact(v: i32) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// An interval from explicit bounds (callers keep `lo <= hi`).
    pub fn new(lo: i32, hi: i32) -> Interval {
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    /// The single value, if this interval is a singleton.
    pub fn singleton(self) -> Option<i32> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// True when either end sits at an `i32` extreme — the widened /
    /// unknown ends. Consumers needing *proof* (trip bounds, precise OOB)
    /// require `!touches_extreme()`.
    pub fn touches_extreme(self) -> bool {
        self.lo == i32::MIN || self.hi == i32::MAX
    }

    /// Smallest interval containing both.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// From an exact `i64` range: the interval itself if it fits in `i32`
    /// (wrapping arithmetic cannot have wrapped), `TOP` otherwise.
    fn from_i64(lo: i64, hi: i64) -> Interval {
        if lo >= i64::from(i32::MIN) && hi <= i64::from(i32::MAX) {
            Interval {
                lo: lo as i32,
                hi: hi as i32,
            }
        } else {
            Interval::TOP
        }
    }
}

/// What the analysis knows about a CC latch at a program point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcFact {
    /// Proved true on every path reaching here.
    True,
    /// Proved false on every path reaching here.
    False,
    /// Undetermined (or deliberately havocked).
    Unknown,
}

impl CcFact {
    fn join(self, other: CcFact) -> CcFact {
        if self == other {
            self
        } else {
            CcFact::Unknown
        }
    }
}

/// The abstract machine state before one word executes: an interval per
/// architectural register plus a fact per CC latch.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeState {
    regs: Vec<Interval>,
    ccs: Vec<CcFact>,
}

impl RangeState {
    /// The interval this state assigns to `r`.
    pub fn reg(&self, r: Reg) -> Interval {
        self.regs
            .get(r.0 as usize)
            .copied()
            .unwrap_or(Interval::TOP)
    }

    /// The fact this state holds for `CC_j`.
    pub fn cc(&self, j: FuId) -> CcFact {
        self.ccs.get(j.index()).copied().unwrap_or(CcFact::Unknown)
    }

    /// The interval of an operand in this state.
    pub fn operand(&self, op: Operand) -> Interval {
        match op {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => Interval::exact(v.as_i32()),
        }
    }

    fn join_from(&mut self, other: &RangeState) -> bool {
        let mut grew = false;
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            let next = a.join(*b);
            grew |= next != *a;
            *a = next;
        }
        for (a, b) in self.ccs.iter_mut().zip(&other.ccs) {
            let next = a.join(*b);
            grew |= next != *a;
            *a = next;
        }
        grew
    }

    /// Widening step: any bound that grew past `old` jumps to its `i32`
    /// extreme, so ascending chains at loop heads stabilise immediately.
    fn widen_against(&mut self, old: &RangeState) {
        for (a, o) in self.regs.iter_mut().zip(&old.regs) {
            if a.lo < o.lo {
                a.lo = i32::MIN;
            }
            if a.hi > o.hi {
                a.hi = i32::MAX;
            }
        }
    }
}

/// Abstract binary ALU evaluation. Exact operands run through the ISA's
/// own evaluator; otherwise per-opcode interval rules for the integer ops,
/// `TOP` for everything the abstraction does not model.
fn eval_alu(op: AluOp, a: Interval, b: Interval) -> Interval {
    if let (Some(x), Some(y)) = (a.singleton(), b.singleton()) {
        return match op.eval(Value::I32(x), Value::I32(y)) {
            Ok(v) => Interval::exact(v.as_i32()),
            Err(_) => Interval::TOP, // divide by zero traps at runtime
        };
    }
    let (al, ah) = (i64::from(a.lo), i64::from(a.hi));
    let (bl, bh) = (i64::from(b.lo), i64::from(b.hi));
    match op {
        AluOp::Iadd => Interval::from_i64(al + bl, ah + bh),
        AluOp::Isub => Interval::from_i64(al - bh, ah - bl),
        AluOp::Imult => {
            let corners = [al * bl, al * bh, ah * bl, ah * bh];
            Interval::from_i64(
                corners.iter().copied().min().expect("nonempty"),
                corners.iter().copied().max().expect("nonempty"),
            )
        }
        AluOp::Imin => Interval::new(a.lo.min(b.lo), a.hi.min(b.hi)),
        AluOp::Imax => Interval::new(a.lo.max(b.lo), a.hi.max(b.hi)),
        // Bitwise ops on nonnegative ranges cannot exceed the wider
        // operand's bit-width; And additionally cannot exceed either bound.
        AluOp::And if a.lo >= 0 && b.lo >= 0 => Interval::new(0, a.hi.min(b.hi)),
        AluOp::Or | AluOp::Xor if a.lo >= 0 && b.lo >= 0 => {
            let bits = 32 - i32::leading_zeros(a.hi | b.hi).min(31);
            Interval::new(0, ((1i64 << bits) - 1) as i32)
        }
        _ => Interval::TOP,
    }
}

/// Abstract unary evaluation.
fn eval_un(op: UnOp, a: Interval) -> Interval {
    if let Some(x) = a.singleton() {
        return Interval::exact(op.eval(Value::I32(x)).as_i32());
    }
    match op {
        UnOp::Mov => a,
        UnOp::Ineg if a.lo != i32::MIN => Interval::new(-a.hi, -a.lo),
        UnOp::Iabs if a.lo >= 0 => a,
        UnOp::Iabs if a.lo != i32::MIN && a.hi <= 0 => Interval::new(-a.hi, -a.lo),
        UnOp::Not => Interval::new(!a.hi, !a.lo),
        _ => Interval::TOP,
    }
}

/// Abstract compare evaluation (integer relations only; float compares and
/// exact operands defer to the ISA evaluator / stay unknown).
pub(crate) fn eval_cmp(op: CmpOp, a: Interval, b: Interval) -> CcFact {
    if let (Some(x), Some(y)) = (a.singleton(), b.singleton()) {
        if matches!(
            op,
            CmpOp::Eq | CmpOp::Ne | CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge
        ) {
            return if op.eval(Value::I32(x), Value::I32(y)) {
                CcFact::True
            } else {
                CcFact::False
            };
        }
        return CcFact::Unknown;
    }
    let disjoint = a.hi < b.lo || b.hi < a.lo;
    match op {
        CmpOp::Eq if disjoint => CcFact::False,
        CmpOp::Ne if disjoint => CcFact::True,
        CmpOp::Lt if a.hi < b.lo => CcFact::True,
        CmpOp::Lt if a.lo >= b.hi => CcFact::False,
        CmpOp::Le if a.hi <= b.lo => CcFact::True,
        CmpOp::Le if a.lo > b.hi => CcFact::False,
        CmpOp::Gt if a.lo > b.hi => CcFact::True,
        CmpOp::Gt if a.hi <= b.lo => CcFact::False,
        CmpOp::Ge if a.lo >= b.hi => CcFact::True,
        CmpOp::Ge if a.hi < b.lo => CcFact::False,
        _ => CcFact::Unknown,
    }
}

/// The effective memory address range of a parcel, in the engine's `i64`
/// arithmetic (loads add two register images without wrapping; stores use
/// the single address operand). `None` for non-memory parcels.
pub(crate) fn addr_range(state: &RangeState, data: &DataOp) -> Option<(i64, i64)> {
    match data {
        DataOp::Load { a, b, .. } => {
            let ia = state.operand(*a);
            let ib = state.operand(*b);
            Some((
                i64::from(ia.lo) + i64::from(ib.lo),
                i64::from(ia.hi) + i64::from(ib.hi),
            ))
        }
        DataOp::Store { b, .. } => {
            let ib = state.operand(*b);
            Some((i64::from(ib.lo), i64::from(ib.hi)))
        }
        _ => None,
    }
}

/// True when the address range was derived from fully-proved operand
/// intervals (no widened/unknown ends anywhere in its derivation).
pub(crate) fn addr_proved(state: &RangeState, data: &DataOp) -> bool {
    let ops: &[Operand] = match data {
        DataOp::Load { a, b, .. } => &[*a, *b],
        DataOp::Store { b, .. } => &[*b],
        _ => return false,
    };
    ops.iter().all(|op| !state.operand(*op).touches_extreme())
}

/// Which same-word parcels one FU's analysis may credit as its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mates {
    /// Only the FU itself: the timing-independent view. Non-ideal timing
    /// can desynchronize streams, so this is what the cycle oracle uses
    /// unless lockstep is otherwise guaranteed.
    None,
    /// The FU plus its provable SSET lockstep mates (ideal-machine view;
    /// what the default lints report).
    Inferred,
    /// Every FU at every word — valid only for single-sequencer (VLIW)
    /// programs, where whole-word stalls preserve lockstep under any
    /// timing model.
    All,
}

/// One FU column's converged range facts.
pub(crate) struct FuRanges {
    /// The CFG the fixpoint ran over.
    pub cfg: FuCfg,
    /// Pre-state per word; `None` for unreachable words.
    pub facts: Vec<Option<RangeState>>,
    /// Post-state per word (the pre-state pushed through the word's
    /// credited parcels); `None` for unreachable words.
    pub posts: Vec<Option<RangeState>>,
    /// Per word: bitmask of FUs whose parcels this analysis credits there
    /// (the FU's own bit is always set).
    pub mates: Vec<u64>,
    /// The abstract state at program entry (assumptions applied).
    pub entry: RangeState,
    /// Registers pinned to `TOP` because a non-mate FU writes them.
    pub havoc: RegSet,
}

/// The whole-program result of the range pass.
pub(crate) struct RangePass {
    /// Per-FU facts, indexed by FU number.
    pub per_fu: Vec<FuRanges>,
}

impl RangePass {
    /// Runs the fixpoint for every FU column under the given mate rule.
    pub fn run(
        program: &Program,
        config: &AnalysisConfig,
        inference: &SsetInference,
        mates: Mates,
    ) -> RangePass {
        let width = program.width();
        let len = program.len();
        let per_fu = (0..width)
            .map(|f| run_fu(program, config, inference, mates, FuId(f as u8), len))
            .collect();
        RangePass { per_fu }
    }
}

fn run_fu(
    program: &Program,
    config: &AnalysisConfig,
    inference: &SsetInference,
    mates: Mates,
    f: FuId,
    len: usize,
) -> FuRanges {
    let width = program.width();
    let cfg = FuCfg::build(program, f);
    let is_mate = |x: u32, g: u8| -> bool {
        match mates {
            Mates::None => f.0 == g,
            Mates::Inferred => f.0 == g || inference.mates(f, Addr(x)) & (1u64 << g) != 0,
            Mates::All => true,
        }
    };

    // Havoc sets: registers and CC latches a non-mate FU can change at a
    // moment this FU cannot correlate with its own position.
    let mut havoc = RegSet::EMPTY;
    let mut cc_havoc = vec![false; width];
    for g in 0..width as u8 {
        let gcfg = if g == f.0 {
            None // own column: every write is applied by the transfer
        } else {
            Some(FuCfg::build(program, FuId(g)))
        };
        let Some(gcfg) = gcfg else { continue };
        for x in 0..len as u32 {
            if !gcfg.reachable[x as usize] || is_mate(x, g) {
                continue;
            }
            let parcel = program.parcel(Addr(x), FuId(g)).expect("in range");
            if let Some(d) = parcel.data.dest() {
                havoc.insert(d);
            }
            if parcel.data.sets_cc() {
                cc_havoc[g as usize] = true;
            }
        }
    }

    let mate_masks: Vec<u64> = (0..len as u32)
        .map(|x| {
            (0..width as u8)
                .filter(|&g| is_mate(x, g))
                .fold(0u64, |m, g| m | (1 << g))
        })
        .collect();

    // Entry state: configured assumptions, TOP elsewhere, havoc pinned.
    let mut entry = RangeState {
        regs: vec![Interval::TOP; XIMD1_NUM_REGS],
        ccs: vec![CcFact::Unknown; width],
    };
    for &(r, lo, hi) in &config.assume {
        if (r.0 as usize) < entry.regs.len() && lo <= hi && !havoc.contains(r) {
            entry.regs[r.0 as usize] = Interval::new(lo, hi);
        }
    }

    // Loop heads (targets of DFS back edges) get widened joins.
    let is_head = loop_heads(&cfg);

    let transfer = |x: u32, fact: &RangeState| -> RangeState {
        let mut out = fact.clone();
        // All mate parcels at this word read the pre-state and commit
        // together at end of cycle: stage every write, then apply.
        let mut reg_writes: Vec<(Reg, Interval)> = Vec::new();
        let mut cc_writes: Vec<(u8, CcFact)> = Vec::new();
        for g in 0..width as u8 {
            if !is_mate(x, g) {
                continue;
            }
            let parcel = program.parcel(Addr(x), FuId(g)).expect("in range");
            match &parcel.data {
                DataOp::Nop | DataOp::Store { .. } | DataOp::PortOut { .. } => {}
                DataOp::Alu { op, a, b, d } => {
                    reg_writes.push((*d, eval_alu(*op, fact.operand(*a), fact.operand(*b))));
                }
                DataOp::Un { op, a, d } => {
                    reg_writes.push((*d, eval_un(*op, fact.operand(*a))));
                }
                DataOp::Cmp { op, a, b } => {
                    cc_writes.push((g, eval_cmp(*op, fact.operand(*a), fact.operand(*b))));
                }
                DataOp::Load { d, .. } | DataOp::PortIn { d, .. } => {
                    reg_writes.push((*d, Interval::TOP));
                }
            }
        }
        for (d, v) in reg_writes {
            if (d.0 as usize) < out.regs.len() {
                out.regs[d.0 as usize] = v;
            }
        }
        for (g, v) in cc_writes {
            out.ccs[g as usize] = v;
        }
        // Non-mate interference can strike between any two cycles.
        for r in 0..XIMD1_NUM_REGS as u16 {
            if havoc.contains(Reg(r)) {
                out.regs[r as usize] = Interval::TOP;
            }
        }
        for (g, havocked) in cc_havoc.iter().enumerate() {
            if *havocked {
                out.ccs[g] = CcFact::Unknown;
            }
        }
        out
    };

    // Worklist fixpoint with widening at loop heads.
    let mut facts: Vec<Option<RangeState>> = vec![None; len];
    let mut grow_count = vec![0usize; len];
    let mut queue = std::collections::VecDeque::new();
    let mut queued = vec![false; len];
    if len > 0 && cfg.reachable[0] {
        facts[0] = Some(entry.clone());
        queue.push_back(0u32);
        queued[0] = true;
    }
    while let Some(x) = queue.pop_front() {
        queued[x as usize] = false;
        let out = transfer(x, facts[x as usize].as_ref().expect("queued ⇒ fact"));
        for &s in &cfg.succs[x as usize] {
            if !cfg.reachable[s as usize] {
                continue;
            }
            let grew = match &mut facts[s as usize] {
                slot @ None => {
                    *slot = Some(out.clone());
                    true
                }
                Some(old) => {
                    let snapshot = old.clone();
                    let grew = old.join_from(&out);
                    if grew && is_head[s as usize] {
                        grow_count[s as usize] += 1;
                        if grow_count[s as usize] > WIDEN_DELAY {
                            old.widen_against(&snapshot);
                        }
                    }
                    grew
                }
            };
            if grew && !queued[s as usize] {
                queue.push_back(s);
                queued[s as usize] = true;
            }
        }
    }

    let posts = facts
        .iter()
        .enumerate()
        .map(|(x, fact)| fact.as_ref().map(|s| transfer(x as u32, s)))
        .collect();

    FuRanges {
        cfg,
        facts,
        posts,
        mates: mate_masks,
        entry,
        havoc,
    }
}

/// Marks the targets of DFS back edges — every cycle in the CFG passes
/// through at least one marked node, so widening there is enough for
/// termination.
pub(crate) fn loop_heads(cfg: &FuCfg) -> Vec<bool> {
    let len = cfg.reachable.len();
    let mut heads = vec![false; len];
    let mut state = vec![0u8; len]; // 0 unvisited, 1 on stack, 2 done
    if len == 0 || !cfg.reachable[0] {
        return heads;
    }
    // Iterative DFS keeping an explicit "on current path" mark.
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    state[0] = 1;
    while let Some(&mut (x, ref mut i)) = stack.last_mut() {
        let succs = &cfg.succs[x as usize];
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if !cfg.reachable[s as usize] {
                continue;
            }
            match state[s as usize] {
                0 => {
                    state[s as usize] = 1;
                    stack.push((s, 0));
                }
                1 => heads[s as usize] = true,
                _ => {}
            }
        } else {
            state[x as usize] = 2;
            stack.pop();
        }
    }
    heads
}

/// The default-mode lints the range pass powers: definite / possible OOB
/// memory accesses and statically-decided branches.
pub(crate) fn check(
    program: &Program,
    config: &AnalysisConfig,
    pass: &RangePass,
    diags: &mut Vec<Diagnostic>,
) {
    let geo = config.geometry;
    let valid = (0i64, i64::from(geo.words));
    for (fu, ranges) in pass.per_fu.iter().enumerate() {
        let f = FuId(fu as u8);
        for x in 0..program.len() as u32 {
            let Some(state) = &ranges.facts[x as usize] else {
                continue;
            };
            let parcel = program.parcel(Addr(x), f).expect("in range");

            if let Some((lo, hi)) = addr_range(state, &parcel.data) {
                let kind = if matches!(parcel.data, DataOp::Load { .. }) {
                    "load"
                } else {
                    "store"
                };
                if hi < valid.0 || lo >= valid.1 {
                    diags.push(
                        Diagnostic::new(
                            Check::OobMemoryAccess,
                            Severity::Error,
                            format!(
                                "{kind} address is always outside memory: every \
                                 execution touches M[{lo}..={hi}], but valid words \
                                 are 0..{}",
                                geo.words
                            ),
                        )
                        .at(Addr(x), f)
                        .via(Engine::Range),
                    );
                } else if lo < valid.0 || hi >= valid.1 {
                    if addr_proved(state, &parcel.data) {
                        diags.push(
                            Diagnostic::new(
                                Check::OobMemoryAccess,
                                Severity::Warning,
                                format!(
                                    "{kind} address can leave memory: \
                                     M[{lo}..={hi}] overlaps the valid words \
                                     0..{} only partially",
                                    geo.words
                                ),
                            )
                            .at(Addr(x), f)
                            .via(Engine::Range),
                        );
                    } else if config.flag_unknown_mem {
                        diags.push(
                            Diagnostic::new(
                                Check::OobMemoryAccess,
                                Severity::Warning,
                                format!(
                                    "{kind} address cannot be proven in-bounds \
                                     (analysis sees M[{lo}..={hi}], valid words \
                                     are 0..{})",
                                    geo.words
                                ),
                            )
                            .at(Addr(x), f)
                            .via(Engine::Range),
                        );
                    }
                }
            }

            // branch-always: a two-way branch whose condition is proved
            // constant — the other target is dead on this column.
            if let ControlOp::Branch {
                cond: CondSource::Cc(j),
                taken,
                not_taken,
            } = parcel.ctrl
            {
                if taken != not_taken {
                    let (verdict, dead) = match state.cc(j) {
                        CcFact::True => ("true", not_taken),
                        CcFact::False => ("false", taken),
                        CcFact::Unknown => continue,
                    };
                    diags.push(
                        Diagnostic::new(
                            Check::BranchAlways,
                            Severity::Warning,
                            format!(
                                "branch condition cc{} is always {verdict} here; \
                                 the {dead} target is dead on this path",
                                j.0
                            ),
                        )
                        .at(Addr(x), f)
                        .via(Engine::Range),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: i32, hi: i32) -> Interval {
        Interval::new(lo, hi)
    }

    #[test]
    fn interval_arithmetic_is_exact_until_it_can_wrap() {
        assert_eq!(eval_alu(AluOp::Iadd, iv(1, 5), iv(10, 20)), iv(11, 25));
        assert_eq!(eval_alu(AluOp::Isub, iv(1, 5), iv(10, 20)), iv(-19, -5));
        assert_eq!(eval_alu(AluOp::Imult, iv(-2, 3), iv(4, 5)), iv(-10, 15));
        // A sum that can exceed i32 wraps at runtime: no information.
        assert_eq!(
            eval_alu(AluOp::Iadd, iv(1, i32::MAX), iv(1, 1)),
            Interval::TOP
        );
        // Singletons fold through the ISA evaluator, wrapping included.
        assert_eq!(
            eval_alu(AluOp::Iadd, iv(i32::MAX, i32::MAX), iv(1, 1)),
            Interval::exact(i32::MIN)
        );
    }

    #[test]
    fn division_by_possible_zero_is_unknown() {
        assert_eq!(eval_alu(AluOp::Idiv, iv(8, 8), iv(0, 0)), Interval::TOP);
        assert_eq!(
            eval_alu(AluOp::Idiv, iv(8, 8), iv(2, 2)),
            Interval::exact(4)
        );
    }

    #[test]
    fn compares_decide_only_disjoint_or_singleton_cases() {
        assert_eq!(eval_cmp(CmpOp::Lt, iv(1, 3), iv(5, 9)), CcFact::True);
        assert_eq!(eval_cmp(CmpOp::Lt, iv(5, 9), iv(1, 3)), CcFact::False);
        assert_eq!(eval_cmp(CmpOp::Lt, iv(1, 6), iv(5, 9)), CcFact::Unknown);
        assert_eq!(eval_cmp(CmpOp::Eq, iv(4, 4), iv(4, 4)), CcFact::True);
        assert_eq!(eval_cmp(CmpOp::Eq, iv(1, 9), iv(4, 4)), CcFact::Unknown);
        // Float relations are outside the integer abstraction.
        assert_eq!(eval_cmp(CmpOp::Flt, iv(1, 1), iv(2, 2)), CcFact::Unknown);
    }

    #[test]
    fn unary_rules_track_sign_information() {
        assert_eq!(eval_un(UnOp::Ineg, iv(2, 7)), iv(-7, -2));
        assert_eq!(eval_un(UnOp::Iabs, iv(-7, -2)), iv(2, 7));
        assert_eq!(eval_un(UnOp::Iabs, iv(3, 9)), iv(3, 9));
        assert_eq!(eval_un(UnOp::Not, iv(0, 3)), iv(-4, -1));
        assert_eq!(eval_un(UnOp::Mov, Interval::TOP), Interval::TOP);
    }
}
