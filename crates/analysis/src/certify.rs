//! Schedule certifier: translation validation for compiled XIMD schedules.
//!
//! The compiler emits, alongside each program, a machine-checkable
//! *schedule certificate* ([`ximd_isa::cert`]): the source operations in
//! source order, their claimed placements, speculation guards, and — for
//! modulo-scheduled loops — the claimed initiation interval and per-node
//! issue times. This pass re-derives everything checkable from the emitted
//! parcels (the untrusted artifact) and verifies the claims:
//!
//! * every claimed source operation appears exactly once per iteration and
//!   no unclaimed operation appears at all ([`Check::SchedOpLost`]);
//! * every data dependence (RAW/WAR/WAW, conservative memory ordering) is
//!   respected at the machine's latencies, across parcels, FUs and
//!   modulo-kernel iteration overlap ([`Check::SchedDepViolated`]);
//! * speculated (percolated) operations are safe to execute early and
//!   never clobber a value still live on the path they were hoisted
//!   above; pipelined lifetimes never wrap ([`Check::SchedClobber`]);
//! * region shape — lockstep row chaining, loop-back branch wiring,
//!   initiation interval, prologue/kernel/epilogue layout — matches the
//!   certificate ([`Check::SchedIiMismatch`]).
//!
//! What is trusted: the source-order op list itself, and the recorded
//! `assume_no_alias` scheduling assumption (an *assumption*, reported as
//! such, not re-derived). Everything else — placements, times, wiring —
//! is checked against the bits. Dependence latencies mirror the
//! compiler's DAG (and the machine's read-old-value semantics): RAW and
//! WAW cost one cycle, WAR is free, stores order against other memory
//! ops conservatively (no alias analysis), loads commute.

use std::collections::{HashMap, HashSet, VecDeque};

use ximd_asm::Assembly;
use ximd_isa::cert::{CmpClaim, OpClaim, Region, ScheduleCertificate, TermClaim};
use ximd_isa::{Addr, AluOp, CondSource, ControlOp, DataOp, FuId, Program, Reg};

use crate::diag::{Analysis, Check, Diagnostic, Engine, Severity};

/// The result of a certification attempt.
#[derive(Debug)]
pub enum CertifyOutcome {
    /// The source carries no `// ximd-cert:` lines at all.
    Missing,
    /// Certificate lines exist but do not parse.
    Unparseable(String),
    /// The certificate parsed; findings (possibly none) are in the report.
    Report(Analysis),
}

/// Certifies assembled source: extracts the embedded certificate, checks
/// the program against it, and anchors findings to source lines.
pub fn certify_assembly(source: &str, assembly: &Assembly) -> CertifyOutcome {
    match ScheduleCertificate::parse(source) {
        Err(e) => CertifyOutcome::Unparseable(e),
        Ok(None) => CertifyOutcome::Missing,
        Ok(Some(cert)) => {
            let mut analysis = certify_program(&assembly.program, &cert);
            for d in &mut analysis.diagnostics {
                if let (Some(addr), Some(fu)) = (d.addr, d.fu) {
                    d.line = assembly.source_map.line(addr, fu);
                }
            }
            CertifyOutcome::Report(analysis)
        }
    }
}

/// Checks `program` against `cert` and reports every violation.
pub fn certify_program(program: &Program, cert: &ScheduleCertificate) -> Analysis {
    let mut diags = Vec::new();
    if cert.width as usize != program.width() {
        diags.push(err(
            Check::SchedIiMismatch,
            format!(
                "certificate is for machine width {} but the program has width {}",
                cert.width,
                program.width()
            ),
        ));
        return wrap(diags);
    }
    let mut covered = vec![false; program.len()];
    for region in &cert.regions {
        match region {
            Region::Block {
                base,
                rows,
                ops,
                cmp,
                term,
            } => check_block(
                program,
                *base,
                *rows,
                ops,
                cmp,
                term,
                &mut covered,
                &mut diags,
            ),
            Region::Pipelined { .. } => check_pipelined(program, region, &mut covered, &mut diags),
        }
    }
    // Anything executing outside every certified region computes something
    // the certificate never promised.
    for (addr, wide) in program.iter() {
        if covered.get(addr.0 as usize).copied().unwrap_or(false) {
            continue;
        }
        for (f, p) in wide.iter().enumerate() {
            if !p.data.is_nop() {
                diags.push(
                    err(
                        Check::SchedOpLost,
                        format!("op `{}` lies outside every certified region", p.data),
                    )
                    .at(addr, FuId(f as u8)),
                );
            }
        }
    }
    wrap(diags)
}

fn err(check: Check, message: String) -> Diagnostic {
    Diagnostic::new(check, Severity::Error, message).via(Engine::Certify)
}

fn wrap(diags: Vec<Diagnostic>) -> Analysis {
    Analysis {
        diagnostics: diags,
        states_explored: 0,
        truncated: false,
        max_live_streams: 0,
        region_states: 0,
        compositional: false,
    }
    .finish()
}

/// The minimum issue distance (in rows) the machine requires between an
/// earlier op `a` and a later op `b`, with a human-readable edge label.
/// `None` means the pair is independent. Mirrors the compiler's DAG:
/// same-cycle reads see old values (WAR = 0), writes land at end of cycle
/// (RAW/WAW = 1), memory is ordered conservatively.
fn dep_edge(a: &DataOp, b: &DataOp) -> Option<(i64, String)> {
    let mut best: Option<(i64, String)> = None;
    let mut consider = |lat: i64, why: String| {
        if best.as_ref().is_none_or(|(l, _)| lat > *l) {
            best = Some((lat, why));
        }
    };
    if let Some(r) = a.dest() {
        if b.sources().contains(&r) {
            consider(1, format!("RAW on r{}", r.0));
        }
        if b.dest() == Some(r) {
            consider(1, format!("WAW on r{}", r.0));
        }
    }
    if let Some(r) = b.dest() {
        if a.sources().contains(&r) {
            consider(0, format!("WAR on r{}", r.0));
        }
    }
    let (a_st, b_st) = (is_store(a), is_store(b));
    if a.is_memory() && b.is_memory() && (a_st || b_st) {
        if a_st {
            consider(1, "store-to-memory ordering".to_string());
        } else {
            consider(0, "load-before-store ordering".to_string());
        }
    }
    best
}

fn is_store(op: &DataOp) -> bool {
    matches!(op, DataOp::Store { .. })
}

/// True if the op is safe to execute on a path that would not have run it:
/// no memory traffic, no port I/O, no faulting divide.
fn spec_safe(op: &DataOp) -> bool {
    match op {
        DataOp::Load { .. }
        | DataOp::Store { .. }
        | DataOp::PortIn { .. }
        | DataOp::PortOut { .. } => false,
        DataOp::Alu { op, .. } => !matches!(op, AluOp::Idiv | AluOp::Imod),
        DataOp::Nop | DataOp::Un { .. } | DataOp::Cmp { .. } => true,
    }
}

/// Searches the claimed region for a parcel equal to `op`, preferring the
/// claimed spot, then the lowest unmatched (row, fu). Marks the match.
fn locate(
    program: &Program,
    base: u32,
    rows: u32,
    matched: &mut [Vec<bool>],
    op: &DataOp,
    claim_row: u32,
    claim_fu: u32,
) -> Option<(u32, u32)> {
    let width = program.width() as u32;
    if claim_row < rows && claim_fu < width && !matched[claim_row as usize][claim_fu as usize] {
        if let Some(p) = program.parcel(Addr(base + claim_row), FuId(claim_fu as u8)) {
            if p.data == *op {
                matched[claim_row as usize][claim_fu as usize] = true;
                return Some((claim_row, claim_fu));
            }
        }
    }
    for r in 0..rows {
        for f in 0..width {
            if matched[r as usize][f as usize] {
                continue;
            }
            if let Some(p) = program.parcel(Addr(base + r), FuId(f as u8)) {
                if p.data == *op {
                    matched[r as usize][f as usize] = true;
                    return Some((r, f));
                }
            }
        }
    }
    None
}

/// On the path entered at `entry`, returns the first parcel that reads `d`
/// before any parcel redefines it — the witness that a speculated write of
/// `d` clobbers a live value. Reads in a word count even when another
/// parcel of the same word writes `d` (read-old-value semantics).
fn first_read_on_path(program: &Program, entry: Addr, d: Reg) -> Option<(Addr, FuId)> {
    let mut seen = HashSet::new();
    let mut queue = VecDeque::new();
    if seen.insert(entry) {
        queue.push_back(entry);
    }
    while let Some(a) = queue.pop_front() {
        let Some(wide) = program.get(a) else { continue };
        let mut writes = false;
        for (f, p) in wide.iter().enumerate() {
            if p.data.sources().contains(&d) {
                return Some((a, FuId(f as u8)));
            }
            if p.data.dest() == Some(d) {
                writes = true;
            }
        }
        if writes {
            continue; // the path redefines d before any read: dead here
        }
        for p in wide {
            for t in p.ctrl.targets() {
                if seen.insert(t) {
                    queue.push_back(t);
                }
            }
        }
    }
    None
}

/// Checks the lockstep row chaining of `rows` rows at `base`: every FU's
/// control field identical per row, interior rows chained to the next row,
/// and the last row's control equal to `last`.
fn check_chaining(
    program: &Program,
    base: u32,
    rows: u32,
    last: &ControlOp,
    diags: &mut Vec<Diagnostic>,
) {
    for r in 0..rows {
        let addr = Addr(base + r);
        let wide = program.get(addr).expect("bounds checked by caller");
        let ctrl0 = wide[0].ctrl;
        if let Some((f, _)) = wide.iter().enumerate().find(|(_, p)| p.ctrl != ctrl0) {
            diags.push(
                err(
                    Check::SchedIiMismatch,
                    format!(
                        "region rows must run in lockstep, but fu{f} disagrees \
                         with fu0 on the control op at {addr}"
                    ),
                )
                .at(addr, FuId(f as u8)),
            );
            continue;
        }
        let expected = if r + 1 < rows {
            ControlOp::Goto(Addr(base + r + 1))
        } else {
            *last
        };
        if ctrl0 != expected {
            diags.push(
                err(
                    Check::SchedIiMismatch,
                    format!("row control is `{ctrl0}` where the certificate requires `{expected}`"),
                )
                .at_addr(addr),
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_block(
    program: &Program,
    base: u32,
    rows: u32,
    ops: &[OpClaim],
    cmp: &Option<CmpClaim>,
    term: &TermClaim,
    covered: &mut [bool],
    diags: &mut Vec<Diagnostic>,
) {
    let len = program.len() as u32;
    if rows == 0 || base >= len || base + rows > len {
        diags.push(err(
            Check::SchedIiMismatch,
            format!(
                "certified block claims rows {base}..{} but the program has {len} instructions",
                base + rows
            ),
        ));
        return;
    }
    for r in base..base + rows {
        covered[r as usize] = true;
    }
    let width = program.width() as u32;

    // Lockstep chaining and the claimed terminator.
    let last = match *term {
        TermClaim::Goto(t) => ControlOp::Goto(Addr(t)),
        TermClaim::Branch {
            fu,
            taken,
            not_taken,
        } => ControlOp::branch(CondSource::Cc(FuId(fu as u8)), Addr(taken), Addr(not_taken)),
        TermClaim::Halt => ControlOp::Halt,
    };
    check_chaining(program, base, rows, &last, diags);

    // Locate every claimed op: exactly once each, preferring the claimed
    // placement so duplicates pair up the way the compiler meant.
    let mut matched = vec![vec![false; width as usize]; rows as usize];
    let mut located: Vec<Option<(u32, u32)>> = Vec::with_capacity(ops.len());
    for claim in ops {
        let pos = locate(
            program,
            base,
            rows,
            &mut matched,
            &claim.op,
            claim.row,
            claim.fu,
        );
        if pos.is_none() {
            diags.push(
                err(
                    Check::SchedOpLost,
                    format!(
                        "claimed op `{}` does not appear in the block at {}",
                        claim.op,
                        Addr(base)
                    ),
                )
                .at_addr(Addr(base)),
            );
        }
        located.push(pos);
    }
    let cmp_pos = cmp.as_ref().and_then(|c| {
        let pos = locate(program, base, rows, &mut matched, &c.op, c.row, c.fu);
        if pos.is_none() {
            diags.push(
                err(
                    Check::SchedOpLost,
                    format!(
                        "claimed compare `{}` does not appear in the block at {}",
                        c.op,
                        Addr(base)
                    ),
                )
                .at_addr(Addr(base)),
            );
        }
        pos
    });

    // Anything left over computes something the certificate never claimed.
    for r in 0..rows {
        for f in 0..width {
            if matched[r as usize][f as usize] {
                continue;
            }
            let p = program
                .parcel(Addr(base + r), FuId(f as u8))
                .expect("in bounds");
            if !p.data.is_nop() {
                diags.push(
                    err(
                        Check::SchedOpLost,
                        format!("op `{}` is not claimed by the certificate", p.data),
                    )
                    .at(Addr(base + r), FuId(f as u8)),
                );
            }
        }
    }

    // Pairwise dependences over the *actual* placements, in source order.
    // Chain edges (RAW through the latest def, WAW between successive
    // defs) imply every such pairwise edge transitively, so a schedule
    // honouring the compiler's DAG always passes; a schedule breaking any
    // real edge always fails some pair.
    for i in 0..ops.len() {
        let Some((ri, _)) = located[i] else { continue };
        for j in i + 1..ops.len() {
            let Some((rj, _)) = located[j] else { continue };
            if let Some((lat, why)) = dep_edge(&ops[i].op, &ops[j].op) {
                if i64::from(rj) - i64::from(ri) < lat {
                    diags.push(
                        err(
                            Check::SchedDepViolated,
                            format!(
                                "`{}` at {} must issue at least {lat} cycle(s) after \
                                 `{}` at {} ({why}), but issues {} cycle(s) after",
                                ops[j].op,
                                Addr(base + rj),
                                ops[i].op,
                                Addr(base + ri),
                                i64::from(rj) - i64::from(ri),
                            ),
                        )
                        .at_addr(Addr(base + rj)),
                    );
                }
            }
        }
        // The terminating compare reads its operands after every claimed op.
        if let (Some(c), Some((rc, _))) = (cmp, cmp_pos) {
            if let Some((lat, why)) = dep_edge(&ops[i].op, &c.op) {
                if i64::from(rc) - i64::from(ri) < lat {
                    diags.push(
                        err(
                            Check::SchedDepViolated,
                            format!(
                                "compare `{}` at {} must issue at least {lat} cycle(s) \
                                 after `{}` at {} ({why})",
                                c.op,
                                Addr(base + rc),
                                ops[i].op,
                                Addr(base + ri),
                            ),
                        )
                        .at_addr(Addr(base + rc)),
                    );
                }
            }
        }
    }

    // The branch reads the CC latch one cycle after the compare writes it,
    // from the FU the compare *actually* ran on.
    if let Some((rc, fc)) = cmp_pos {
        if rc + 2 > rows {
            diags.push(
                err(
                    Check::SchedDepViolated,
                    format!(
                        "compare `{}` issues at {} but the branch at {} reads its \
                         condition code the very same cycle — the latch still \
                         holds the previous value",
                        cmp.as_ref().expect("cmp_pos implies cmp").op,
                        Addr(base + rc),
                        Addr(base + rows - 1),
                    ),
                )
                .at_addr(Addr(base + rc)),
            );
        }
        if matches!(term, TermClaim::Branch { .. }) {
            let actual = program
                .parcel(Addr(base + rows - 1), FuId(0))
                .expect("in bounds")
                .ctrl;
            if let Some(CondSource::Cc(sel)) = actual.cond() {
                if u32::from(sel.0) != fc {
                    diags.push(
                        err(
                            Check::SchedIiMismatch,
                            format!(
                                "branch selects on cc{} but the compare executes on fu{fc}",
                                sel.0
                            ),
                        )
                        .at_addr(Addr(base + rows - 1)),
                    );
                }
            }
        }
    }

    // Exactly the claimed compares may touch the region's condition codes:
    // a stray compare silently rewires the terminator.
    let mut cc_writers: HashSet<(u32, u32)> = located
        .iter()
        .zip(ops)
        .filter(|(_, c)| c.op.sets_cc())
        .filter_map(|(p, _)| *p)
        .collect();
    if let Some(pos) = cmp_pos {
        cc_writers.insert(pos);
    }
    for r in 0..rows {
        for f in 0..width {
            let p = program
                .parcel(Addr(base + r), FuId(f as u8))
                .expect("in bounds");
            if p.data.sets_cc() && !cc_writers.contains(&(r, f)) {
                diags.push(
                    err(
                        Check::SchedClobber,
                        format!(
                            "unclaimed compare `{}` clobbers the region's condition code",
                            p.data
                        ),
                    )
                    .at(Addr(base + r), FuId(f as u8)),
                );
            }
        }
    }

    // Speculated ops: safe to run early, and their destination dead on
    // every path they were hoisted above.
    for claim in ops {
        if claim.spec.is_empty() {
            continue;
        }
        if !spec_safe(&claim.op) {
            diags.push(
                err(
                    Check::SchedClobber,
                    format!(
                        "op `{}` was speculated above a branch but can fault or \
                         touch memory — it must not escape its guard",
                        claim.op
                    ),
                )
                .at_addr(Addr(base + claim.row)),
            );
        }
        let Some(d) = claim.op.dest() else { continue };
        for &other in &claim.spec {
            if let Some((addr, fu)) = first_read_on_path(program, Addr(other), d) {
                diags.push(
                    err(
                        Check::SchedClobber,
                        format!(
                            "speculated op `{}` clobbers r{}, which the untaken \
                             path entered at {} still reads at {} ({})",
                            claim.op,
                            d.0,
                            Addr(other),
                            addr,
                            fu,
                        ),
                    )
                    .at(addr, fu),
                );
            }
        }
    }
}

fn check_pipelined(
    program: &Program,
    region: &Region,
    covered: &mut [bool],
    diags: &mut Vec<Diagnostic>,
) {
    let Region::Pipelined {
        base,
        ii,
        stages,
        init_rows,
        exit,
        assume_no_alias,
        nodes,
        inc,
        dec,
        cmp,
        induction,
        trips,
        kc,
    } = region
    else {
        unreachable!("caller matched Pipelined")
    };
    let (base, ii, stages, init_rows, exit) = (*base, *ii, *stages, *init_rows, *exit);
    let len = program.len() as u32;
    if ii == 0 || stages == 0 {
        diags.push(err(
            Check::SchedIiMismatch,
            format!("pipelined region claims ii={ii}, stages={stages}; both must be positive"),
        ));
        return;
    }
    let fringe = (stages - 1) * ii; // prologue rows == epilogue rows
    let total = init_rows + fringe + ii + fringe;
    if base >= len || base + total > len {
        diags.push(err(
            Check::SchedIiMismatch,
            format!(
                "pipelined region claims rows {base}..{} but the program has {len} instructions",
                base + total
            ),
        ));
        return;
    }
    for r in base..base + total {
        covered[r as usize] = true;
    }
    let width = program.width() as u32;
    let kernel_lo = init_rows + fringe; // local offset of the kernel
    let epi_lo = kernel_lo + ii;

    // Bookkeeping register roles must hold, or the mirrored loop
    // constraints below would be checking the wrong recurrences.
    if inc.1.dest() != Some(Reg(*induction)) {
        diags.push(err(
            Check::SchedIiMismatch,
            format!(
                "certificate's induction increment `{}` does not write r{induction}",
                inc.1
            ),
        ));
    }
    if dec.1.dest() != Some(Reg(*kc)) {
        diags.push(err(
            Check::SchedIiMismatch,
            format!(
                "certificate's kernel-count decrement `{}` does not write r{kc}",
                dec.1
            ),
        ));
    }
    if !cmp.1.sets_cc() {
        diags.push(err(
            Check::SchedIiMismatch,
            format!(
                "certificate's loop-back compare `{}` is not a compare",
                cmp.1
            ),
        ));
    }
    for (_, op) in nodes {
        if let Some(d) = op.dest() {
            if [*induction, *trips, *kc].contains(&d.0) {
                diags.push(err(
                    Check::SchedClobber,
                    format!(
                        "loop-body op `{op}` writes r{}, a register reserved for \
                         the pipeline's bookkeeping (induction/trips/kc)",
                        d.0
                    ),
                ));
            }
        }
    }

    // --- Init rows: the kernel-count setup (kc = trips - (stages-1)) and
    // optionally the induction initialisation, nothing else.
    let kc_init = DataOp::Alu {
        op: AluOp::Isub,
        a: ximd_isa::Operand::Reg(Reg(*trips)),
        b: ximd_isa::Operand::imm_i32((stages - 1) as i32),
        d: Reg(*kc),
    };
    let mut kc_init_seen = false;
    for r in 0..init_rows {
        for f in 0..width {
            let p = program
                .parcel(Addr(base + r), FuId(f as u8))
                .expect("in bounds");
            if p.data.is_nop() {
                continue;
            }
            if p.data == kc_init && !kc_init_seen {
                kc_init_seen = true;
            } else if matches!(p.data, DataOp::Un { d, .. } if d == Reg(*induction)) {
                // induction initialisation — allowed
            } else {
                diags.push(
                    err(
                        Check::SchedOpLost,
                        format!("op `{}` in the pipeline's init rows is not claimed", p.data),
                    )
                    .at(Addr(base + r), FuId(f as u8)),
                );
            }
        }
    }
    if !kc_init_seen {
        diags.push(
            err(
                Check::SchedOpLost,
                format!(
                    "the pipeline's kernel-count setup `{kc_init}` is missing from \
                     its init rows"
                ),
            )
            .at_addr(Addr(base)),
        );
    }

    // --- Locate every node in the kernel (each appears exactly once per
    // kernel) and derive its actual issue time: keep the claimed stage,
    // take the kernel row the op actually sits in.
    let n_body = nodes.len();
    let all: Vec<(u32, &DataOp)> = nodes
        .iter()
        .map(|(t, op)| (*t, op))
        .chain([(inc.0, &inc.1), (dec.0, &dec.1), (cmp.0, &cmp.1)])
        .collect();
    let mut matched = vec![vec![false; width as usize]; ii as usize];
    let mut derived: Vec<Option<i64>> = Vec::with_capacity(all.len());
    let mut kernel_fu: Vec<Option<u32>> = Vec::with_capacity(all.len());
    for (t, op) in &all {
        match locate(
            program,
            base + kernel_lo,
            ii,
            &mut matched,
            op,
            t % ii,
            width,
        ) {
            Some((k, f)) => {
                derived.push(Some(i64::from((t / ii) * ii + k)));
                kernel_fu.push(Some(f));
            }
            None => {
                diags.push(
                    err(
                        Check::SchedOpLost,
                        format!(
                            "claimed loop op `{op}` does not appear in the \
                             pipelined kernel at {}",
                            Addr(base + kernel_lo)
                        ),
                    )
                    .at_addr(Addr(base + kernel_lo)),
                );
                derived.push(None);
                kernel_fu.push(None);
            }
        }
    }
    for k in 0..ii {
        for f in 0..width {
            if matched[k as usize][f as usize] {
                continue;
            }
            let p = program
                .parcel(Addr(base + kernel_lo + k), FuId(f as u8))
                .expect("in bounds");
            if !p.data.is_nop() {
                diags.push(
                    err(
                        Check::SchedOpLost,
                        format!("kernel op `{}` is not claimed by the certificate", p.data),
                    )
                    .at(Addr(base + kernel_lo + k), FuId(f as u8)),
                );
            }
        }
    }

    // --- Forward-verify the prologue and epilogue from the derived times:
    // body and increment nodes ramp in and drain out; the decrement and
    // compare run only in the kernel.
    let fringe_nodes = || {
        all.iter()
            .enumerate()
            .take(n_body + 1)
            .filter_map(|(i, (_, op))| derived[i].map(|t| (t, *op)))
    };
    for p in 0..fringe {
        let expected: Vec<&DataOp> = fringe_nodes()
            .filter(|(t, _)| *t <= i64::from(p) && (i64::from(p) - t) % i64::from(ii) == 0)
            .map(|(_, op)| op)
            .collect();
        verify_row_ops(
            program,
            Addr(base + init_rows + p),
            &expected,
            "prologue",
            diags,
        );
    }
    for e in 0..fringe {
        let expected: Vec<&DataOp> = fringe_nodes()
            .filter(|(t, _)| (0..stages).any(|d| t - i64::from((d + 1) * ii) == i64::from(e)))
            .map(|(_, op)| op)
            .collect();
        verify_row_ops(
            program,
            Addr(base + epi_lo + e),
            &expected,
            "epilogue",
            diags,
        );
    }

    // --- Row chaining: everything chains to the next row (the final row
    // chains to the exit), except the kernel's last row, which loops back
    // on the compare's actual FU.
    let back_fu = kernel_fu[n_body + 2].unwrap_or(cmp.0 % ii); // compare's kernel FU
    let not_taken = if epi_lo == total {
        Addr(exit) // single-stage pipeline: no epilogue
    } else {
        Addr(base + epi_lo)
    };
    for l in 0..total {
        let addr = Addr(base + l);
        let wide = program.get(addr).expect("in bounds");
        let ctrl0 = wide[0].ctrl;
        if let Some((f, _)) = wide.iter().enumerate().find(|(_, p)| p.ctrl != ctrl0) {
            diags.push(
                err(
                    Check::SchedIiMismatch,
                    format!(
                        "pipelined rows must run in lockstep, but fu{f} disagrees \
                         with fu0 on the control op at {addr}"
                    ),
                )
                .at(addr, FuId(f as u8)),
            );
            continue;
        }
        let expected = if l == kernel_lo + ii - 1 {
            ControlOp::branch(
                CondSource::Cc(FuId(back_fu as u8)),
                Addr(base + kernel_lo),
                not_taken,
            )
        } else if l + 1 == total {
            ControlOp::Goto(Addr(exit))
        } else {
            ControlOp::Goto(Addr(base + l + 1))
        };
        if ctrl0 != expected {
            diags.push(
                err(
                    Check::SchedIiMismatch,
                    format!(
                        "pipelined row control is `{ctrl0}` where the achieved \
                         ii={ii}, stages={stages} layout requires `{expected}`"
                    ),
                )
                .at_addr(addr),
            );
        }
    }

    // --- Mirror the modulo scheduler's constraint system on the *derived*
    // times. t_to - t_from >= base - coeff*II, with coeff the iteration
    // distance: 1 for cross-iteration edges, 0 within an iteration.
    let inc_i = n_body;
    let dec_i = n_body + 1;
    let cmp_i = n_body + 2;
    let kernel_addr = |t: i64| Addr(base + kernel_lo + (t.rem_euclid(i64::from(ii))) as u32);
    let mut def_of: HashMap<u16, usize> = HashMap::new();
    for (i, (_, op)) in nodes.iter().enumerate() {
        if let Some(d) = op.dest() {
            def_of.insert(d.0, i);
        }
    }
    let big_ii = i64::from(ii);
    let mut dep = |from: usize, to: usize, base_c: i64, coeff: i64, check: Check, why: String| {
        let (Some(tf), Some(tt)) = (derived[from], derived[to]) else {
            return;
        };
        if tt - tf < base_c - coeff * big_ii {
            let (fo, to_op) = (all[from].1, all[to].1);
            let dist = if coeff == 1 { "next-iteration " } else { "" };
            diags.push(
                err(
                    check,
                    format!(
                        "`{to_op}` issues at kernel cycle {tt} but must issue at \
                         least {base_c} cycle(s) after the {dist}`{fo}` at cycle \
                         {tf} minus {coeff}×ii ({why})"
                    ),
                )
                .at_addr(kernel_addr(tt)),
            );
        }
    };
    for (u, &(_, op)) in all.iter().enumerate().take(n_body + 1) {
        for r in op.sources() {
            let (d, delta) = if r.0 == *induction {
                (inc_i, 1)
            } else if let Some(&di) = def_of.get(&r.0) {
                (di, i64::from(di >= u))
            } else {
                continue; // loop-invariant: defined outside the body
            };
            dep(
                d,
                u,
                1,
                delta,
                Check::SchedDepViolated,
                format!("RAW on r{}", r.0),
            );
            // Lifetime: the next iteration's def must not land before this
            // read consumes the old value.
            dep(
                u,
                d,
                0,
                1 - delta,
                Check::SchedClobber,
                format!("next-iteration write of r{} overwrites a live value", r.0),
            );
        }
    }
    dep(
        cmp_i,
        dec_i,
        0,
        0,
        Check::SchedClobber,
        format!("the decrement overwrites r{kc} before the loop-back compare reads it"),
    );
    dep(
        dec_i,
        cmp_i,
        1,
        1,
        Check::SchedDepViolated,
        format!("RAW on r{kc}"),
    );
    if !assume_no_alias {
        for a in 0..n_body {
            for b in a + 1..n_body {
                let (oa, ob) = (all[a].1, all[b].1);
                if !(oa.is_memory() && ob.is_memory()) || !(is_store(oa) || is_store(ob)) {
                    continue;
                }
                dep(
                    a,
                    b,
                    i64::from(is_store(oa)),
                    0,
                    Check::SchedDepViolated,
                    "conservative memory ordering".to_string(),
                );
                dep(
                    b,
                    a,
                    i64::from(is_store(ob)),
                    1,
                    Check::SchedDepViolated,
                    "conservative cross-iteration memory ordering".to_string(),
                );
            }
        }
    }
    // The loop-back branch reads the compare's CC one cycle later, in the
    // kernel's last row: the compare must settle by ii-2.
    if let Some(tc) = derived[cmp_i] {
        if tc > i64::from(ii) - 2 {
            diags.push(
                err(
                    Check::SchedDepViolated,
                    format!(
                        "loop-back compare `{}` issues at kernel cycle {tc}, too \
                         late for the branch at the kernel's last row (cycle {}) \
                         to read its condition code",
                        cmp.1,
                        ii - 1
                    ),
                )
                .at_addr(kernel_addr(tc)),
            );
        }
    }
}

/// Compares the non-nop data ops of one emitted row against the expected
/// multiset, reporting ops missing from and foreign to the row.
fn verify_row_ops(
    program: &Program,
    addr: Addr,
    expected: &[&DataOp],
    where_: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let wide = program.get(addr).expect("in bounds");
    let mut remaining: Vec<&DataOp> = expected.to_vec();
    for (f, p) in wide.iter().enumerate() {
        if p.data.is_nop() {
            continue;
        }
        if let Some(i) = remaining.iter().position(|e| **e == p.data) {
            remaining.swap_remove(i);
        } else {
            diags.push(
                err(
                    Check::SchedOpLost,
                    format!("op `{}` does not belong in this {where_} row", p.data),
                )
                .at(addr, FuId(f as u8)),
            );
        }
    }
    for op in remaining {
        diags.push(
            err(
                Check::SchedOpLost,
                format!("op `{op}` is missing from its {where_} row at {addr}"),
            )
            .at_addr(addr),
        );
    }
}
