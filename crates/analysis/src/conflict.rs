//! Pairwise same-cycle conflict detection, shared by the product and
//! compositional engines.
//!
//! Both engines answer the same question — can FU *f* at address *a* and
//! FU *g* at a different address *b* touch one register or memory cell in
//! one cycle? — they differ only in how they decide whether the two
//! parcels can co-occur. Keeping the access comparison here guarantees
//! the engines agree on what counts as a conflict, and gives them a
//! common `kind` key so findings the product engine already reported are
//! not re-reported by the compositional fallback.

use ximd_isa::{Addr, FuId, Parcel};

use crate::word::store_cell;

/// One conflict between two parcels executing in the same cycle at
/// different addresses.
pub(crate) struct PairConflict {
    /// Stable dedup key, identical across engines for the same conflict.
    pub kind: String,
    /// Rendered finding text.
    pub message: String,
}

/// Conflicts between FU `ff` executing `pf` at `af` and FU `fg`
/// executing `pg` at `ag` in one cycle. Callers guarantee `af != ag`
/// (same-word conflicts belong to the word pass) and order the pair by
/// FU index so the dedup keys line up across engines.
pub(crate) fn pair_conflicts(
    af: Addr,
    ff: FuId,
    pf: &Parcel,
    ag: Addr,
    fg: FuId,
    pg: &Parcel,
) -> Vec<PairConflict> {
    let mut out = Vec::new();
    let mut push = |kind: String, message: String| out.push(PairConflict { kind, message });

    if let (Some(df), Some(dg)) = (pf.data.dest(), pg.data.dest()) {
        if df == dg {
            push(
                format!("ww r{}", df.0),
                format!("{ff} at {af} and {fg} at {ag} can write {df} in the same cycle"),
            );
        }
    }
    if let Some(df) = pf.data.dest() {
        if pg.data.sources().contains(&df) {
            push(
                format!("wr r{}", df.0),
                format!("{ff} at {af} can write {df} in the same cycle {fg} at {ag} reads it"),
            );
        }
    }
    if let Some(dg) = pg.data.dest() {
        if pf.data.sources().contains(&dg) {
            push(
                format!("rw r{}", dg.0),
                format!("{fg} at {ag} can write {dg} in the same cycle {ff} at {af} reads it"),
            );
        }
    }
    match (store_cell(&pf.data), store_cell(&pg.data)) {
        (Some(Ok(a)), Some(Ok(b))) if a == b => push(
            format!("mem {a}"),
            format!("{ff} at {af} and {fg} at {ag} can store to M[{a}] in the same cycle"),
        ),
        (Some(Ok(_)), Some(Ok(_))) | (None, _) | (_, None) => {}
        _ => push(
            "mem ?".into(),
            format!(
                "{ff} at {af} and {fg} at {ag} can store in the same cycle to \
                 addresses that cannot be proven distinct"
            ),
        ),
    }
    out
}
