//! Static worst-case cycle bounds — the performance oracle behind
//! `xlint --cycle-bounds`.
//!
//! The oracle answers, without running the program: *how many cycles can
//! this take, under a given [`TimingSpec`]?* The recipe, per FU column:
//!
//! 1. structure the [`FuCfg`] into natural loops (dominators + back
//!    edges); irreducible control flow gives up honestly;
//! 2. bound each loop's trip count from the interval facts of the
//!    [`crate::range`] pass — a recognized induction variable stepped by a
//!    constant, tested by the single in-loop compare against a
//!    loop-invariant interval, gives `span/|step| + 2` trips;
//! 3. charge every reachable word its per-parcel cost under the timing
//!    model (`1` for ideal, the class latency for `latency:<spec>`, and
//!    `1 + possible bank contenders` for `banked:<n>`, with bank sets
//!    derived from address intervals), multiplied by the trip bounds of
//!    every enclosing loop;
//! 4. combine the per-FU sums: independent streams (no sync conditions
//!    anywhere) finish when the slowest does, so the bound is the max;
//!    synchronizing streams interleave progress, so the bound is the sum
//!    — sound because a cycle in which *no* FU completes charged work is
//!    a cycle in which every FU spins on a false sync condition, a state
//!    that would repeat forever (deadlock, not slowness).
//!
//! Sync-spin loops (all-nop bodies that poll a sync condition) are charged
//! once, not per trip: their waiting cycles are exactly the cycles some
//! other FU is doing charged work.
//!
//! # Timing soundness and lockstep
//!
//! Crediting SSET lockstep mates (for induction-variable steps or compare
//! visibility) is valid only when lockstep actually holds. On the XIMD
//! machine it holds under ideal timing; non-ideal timing can desynchronize
//! implicitly-barriered streams, so under [`Lockstep::Auto`] the oracle
//! credits mates only for ideal timing, and multi-stream loops whose trip
//! evidence lives in a mate column honestly become unbounded. For
//! single-sequencer (VLIW) programs lockstep holds under *any* timing
//! model — the whole word stalls together — and [`Lockstep::Assume`]
//! states that: the oracle then bounds the word machine, costing each word
//! at the max of its parcels.

use std::fmt;

use ximd_isa::{Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, FuId, Operand, Program, Reg};
use ximd_sim::{MemGeometry, TimingSpec};

use crate::config::AnalysisConfig;
use crate::dataflow::FuCfg;
use crate::diag::{Check, Diagnostic, Engine, Severity};
use crate::range::{addr_proved, addr_range, FuRanges, Interval, Mates, RangePass, RangeState};
use crate::sset;

/// Extra trips allowed beyond the arithmetic window, absorbing the
/// one-iteration lag between a compare writing its CC and the branch that
/// reads it, plus entry/exit boundary iterations.
const TRIP_SLACK: u64 = 2;

/// Whether the oracle may assume all FUs advance in lockstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lockstep {
    /// Derive it: credit provable SSET mates under ideal timing, nothing
    /// under non-ideal timing (stalls can desynchronize streams).
    #[default]
    Auto,
    /// Assert whole-word lockstep under any timing model. Sound for
    /// single-sequencer programs (VLIW forms, `all:`-style code), where a
    /// stall holds the entire word.
    Assume,
}

impl Lockstep {
    /// Parses a CLI value.
    pub fn parse(s: &str) -> Option<Lockstep> {
        match s {
            "auto" => Some(Lockstep::Auto),
            "assume" => Some(Lockstep::Assume),
            _ => None,
        }
    }
}

/// Configuration of one oracle run.
#[derive(Debug, Clone, Default)]
pub struct BoundsConfig {
    /// The timing model the bound is computed against.
    pub timing: TimingSpec,
    /// The lockstep assumption (see [`Lockstep`]).
    pub lockstep: Lockstep,
}

/// One loop the oracle found, with its trip-count verdict.
#[derive(Debug, Clone)]
pub struct LoopBound {
    /// The FU column the loop lives in (the word machine's column 0 under
    /// [`Lockstep::Assume`]).
    pub fu: FuId,
    /// The loop head (target of its back edges).
    pub head: Addr,
    /// Every word in the loop body, sorted, head included.
    pub body: Vec<Addr>,
    /// Upper bound on iterations; `None` when unproven.
    pub trips: Option<u64>,
    /// True for all-nop sync-polling loops, which are charged once rather
    /// than per trip and are exempt from `trip-count-unbounded`.
    pub sync_spin: bool,
}

/// One FU column's worst-case busy-cycle bound.
#[derive(Debug, Clone, Copy)]
pub struct FuBound {
    /// The FU.
    pub fu: FuId,
    /// Worst-case charged cycles; `None` when some non-spin loop has no
    /// trip bound (or control flow is irreducible).
    pub cycles: Option<u64>,
}

/// A loop ranked by its share of the predicted cycles.
#[derive(Debug, Clone)]
pub struct HotRegion {
    /// The FU column.
    pub fu: FuId,
    /// The loop head.
    pub head: Addr,
    /// The loop's trip bound, if proven.
    pub trips: Option<u64>,
    /// Predicted worst-case cycles spent inside the loop; `None` when
    /// unbounded.
    pub predicted_cycles: Option<u64>,
    /// Fraction of the whole-program bound, when both are finite.
    pub share: Option<f64>,
}

/// Everything `xlint --cycle-bounds` reports.
#[derive(Debug, Clone)]
pub struct BoundsReport {
    /// The timing model the bound holds for.
    pub timing: TimingSpec,
    /// True when whole-word lockstep was assumed ([`Lockstep::Assume`]).
    pub lockstep: bool,
    /// True when SSET mates were credited (ideal-timing multi-stream view).
    pub mates_credited: bool,
    /// True when any reachable branch tests a sync condition; decides the
    /// max-vs-sum combination of per-FU bounds.
    pub synchronizing: bool,
    /// Per-FU bounds (a single column under [`Lockstep::Assume`]).
    pub per_fu: Vec<FuBound>,
    /// Every loop found, with trip verdicts.
    pub loops: Vec<LoopBound>,
    /// Loops ranked by predicted cycle share (worst first, top five).
    pub hot: Vec<HotRegion>,
    /// The whole-program worst-case cycle bound; `None` when any FU is
    /// unbounded.
    pub total: Option<u64>,
    /// `trip-count-unbounded` and `bank-conflict-hotspot` findings.
    pub diagnostics: Vec<Diagnostic>,
}

/// Computes the static cycle bound of `program` under `bounds.timing`.
///
/// Entry-state assumptions ([`AnalysisConfig::assume`]) make harness-seeded
/// registers (trip counts, base addresses) visible to the trip analysis;
/// without them data-dependent loops are honestly unbounded.
pub fn cycle_bounds(
    program: &Program,
    config: &AnalysisConfig,
    bounds: &BoundsConfig,
) -> BoundsReport {
    let width = program.width();
    let lockstep = bounds.lockstep == Lockstep::Assume;
    let mates = match bounds.lockstep {
        Lockstep::Assume => Mates::All,
        Lockstep::Auto if bounds.timing.is_ideal() => Mates::Inferred,
        Lockstep::Auto => Mates::None,
    };
    let inference = sset::infer_ssets(program, config.max_region_states);
    let pass = RangePass::run(program, config, &inference, mates);

    let columns: Vec<usize> = if lockstep {
        vec![0]
    } else {
        (0..width).collect()
    };
    let synchronizing = (0..width).any(|f| {
        let cfg = &pass.per_fu[f].cfg;
        (0..program.len() as u32).any(|x| {
            cfg.reachable[x as usize]
                && matches!(
                    program
                        .parcel(Addr(x), FuId(f as u8))
                        .expect("in range")
                        .ctrl,
                    ControlOp::Branch {
                        cond: CondSource::Sync(_) | CondSource::AllSync | CondSource::AnySync,
                        ..
                    }
                )
        })
    });

    let mut per_fu = Vec::new();
    let mut loops = Vec::new();
    let mut hot = Vec::new();
    let mut diagnostics = Vec::new();
    for &f in &columns {
        let col = analyze_column(program, config, bounds, &pass.per_fu[f], lockstep);
        per_fu.push(FuBound {
            fu: FuId(f as u8),
            cycles: col.work,
        });
        loops.extend(col.loops);
        hot.extend(col.hot);
        diagnostics.extend(col.diagnostics);
    }

    // max for independent streams, sum when sync couples their progress.
    // Under the lockstep assumption there is only the word column.
    let total = if lockstep || !synchronizing {
        per_fu
            .iter()
            .map(|b| b.cycles)
            .try_fold(0u64, |m, c| c.map(|c| m.max(c)))
    } else {
        per_fu
            .iter()
            .map(|b| b.cycles)
            .try_fold(0u64, |s, c| c.map(|c| s.saturating_add(c)))
    };

    // Rank hot regions by predicted cycles, unbounded loops first.
    hot.sort_by(|a, b| {
        b.predicted_cycles
            .unwrap_or(u64::MAX)
            .cmp(&a.predicted_cycles.unwrap_or(u64::MAX))
    });
    hot.truncate(5);
    if let Some(total) = total {
        for h in &mut hot {
            h.share = match h.predicted_cycles {
                Some(p) if total > 0 => Some(p as f64 / total as f64),
                _ => None,
            };
        }
    }

    BoundsReport {
        timing: bounds.timing.clone(),
        lockstep,
        mates_credited: mates == Mates::Inferred,
        synchronizing,
        per_fu,
        loops,
        hot,
        total,
        diagnostics,
    }
}

/// Which banks a memory access can touch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BankSet {
    /// Could be any bank (address unproven or interval spans them all).
    All,
    /// Exactly these banks (bit `b` = bank `b`).
    Mask(u64),
}

impl BankSet {
    fn intersects(self, other: BankSet) -> bool {
        match (self, other) {
            (BankSet::All, _) | (_, BankSet::All) => true,
            (BankSet::Mask(a), BankSet::Mask(b)) => a & b != 0,
        }
    }
}

/// The bank set of a parcel's memory access; `None` for non-memory ops.
fn bank_set(state: &RangeState, data: &DataOp, geo: MemGeometry) -> Option<BankSet> {
    let (lo, hi) = addr_range(state, data)?;
    if !addr_proved(state, data) || geo.banks > 64 {
        return Some(BankSet::All);
    }
    let span = hi - lo;
    if span + 1 >= i64::from(geo.banks) {
        return Some(BankSet::All);
    }
    let mut mask = 0u64;
    for addr in lo..=hi {
        mask |= 1 << geo.bank_of(addr);
    }
    Some(BankSet::Mask(mask))
}

/// A structured natural loop (merged by head).
struct NaturalLoop {
    head: u32,
    body: Vec<u32>,
    in_body: Vec<bool>,
    latches: Vec<u32>,
    sync_spin: bool,
    trips: Option<u64>,
}

struct ColumnBound {
    work: Option<u64>,
    loops: Vec<LoopBound>,
    hot: Vec<HotRegion>,
    diagnostics: Vec<Diagnostic>,
}

fn analyze_column(
    program: &Program,
    config: &AnalysisConfig,
    bounds: &BoundsConfig,
    fr: &FuRanges,
    word_costs: bool,
) -> ColumnBound {
    let f = fr.cfg.fu;
    let len = program.len();
    let mut diagnostics = Vec::new();

    let dom = dominators(&fr.cfg);
    let mut natural = find_loops(program, fr, &dom);
    let reducible = is_reducible(&fr.cfg, &natural);
    if !reducible {
        diagnostics.push(
            Diagnostic::new(
                Check::TripCountUnbounded,
                Severity::Warning,
                format!(
                    "fu{} has irreducible control flow; its cycle bound is unbounded",
                    f.0
                ),
            )
            .via(Engine::Range),
        );
    }

    // Trip bounds need the full loop set (inner-loop nesting checks), so
    // they run after structure discovery.
    for i in 0..natural.len() {
        if natural[i].sync_spin {
            continue;
        }
        natural[i].trips = loop_trips(program, fr, &dom, &natural, i);
        if natural[i].trips.is_none() {
            diagnostics.push(
                Diagnostic::new(
                    Check::TripCountUnbounded,
                    Severity::Warning,
                    format!(
                        "loop at {} has no provable trip bound (no recognized \
                         induction variable with a loop-invariant exit compare); \
                         fu{}'s cycle bound is unbounded",
                        Addr(natural[i].head),
                        f.0
                    ),
                )
                .at(Addr(natural[i].head), f)
                .via(Engine::Range),
            );
        }
    }

    // Node multiplicity: product of enclosing loops' trip factors.
    let multiplicity = |x: u32| -> Option<u64> {
        let mut m = 1u64;
        for l in &natural {
            if l.in_body[x as usize] {
                let factor = if l.sync_spin { 1 } else { l.trips? };
                m = m.saturating_mul(factor);
            }
        }
        Some(m)
    };
    let in_any_loop = |x: u32| -> bool { natural.iter().any(|l| l.in_body[x as usize]) };

    // Per-node cost under the timing model.
    let width = program.width();
    let geo = config.geometry;
    let mut cost_of = |x: u32| -> u64 {
        match &bounds.timing {
            TimingSpec::Ideal => 1,
            TimingSpec::Latency(cfg) => {
                if word_costs {
                    (0..width as u8)
                        .map(|g| {
                            let p = program.parcel(Addr(x), FuId(g)).expect("in range");
                            cfg.latency_of(p.data.latency_class())
                        })
                        .max()
                        .unwrap_or(1)
                } else {
                    let p = program.parcel(Addr(x), f).expect("in range");
                    cfg.latency_of(p.data.latency_class())
                }
            }
            TimingSpec::Banked { .. } => banked_cost(
                program,
                fr,
                geo,
                x,
                word_costs,
                in_any_loop(x),
                &mut diagnostics,
            ),
        }
    };

    let mut work: Option<u64> = if reducible { Some(0) } else { None };
    for x in 0..len as u32 {
        if !fr.cfg.reachable[x as usize] {
            continue;
        }
        let cost = cost_of(x);
        if let Some(w) = work {
            work = multiplicity(x).map(|m| w.saturating_add(cost.saturating_mul(m)));
        }
    }

    // Hot regions: each loop's predicted in-body cycles.
    let mut hot = Vec::new();
    for l in &natural {
        let mut predicted: Option<u64> = Some(0);
        for &x in &l.body {
            let cost = node_cost_quiet(program, fr, geo, bounds, x, word_costs);
            predicted = match (predicted, multiplicity(x)) {
                (Some(p), Some(m)) => Some(p.saturating_add(cost.saturating_mul(m))),
                _ => None,
            };
        }
        hot.push(HotRegion {
            fu: f,
            head: Addr(l.head),
            trips: if l.sync_spin { Some(1) } else { l.trips },
            predicted_cycles: predicted,
            share: None,
        });
    }

    let loops = natural
        .iter()
        .map(|l| LoopBound {
            fu: f,
            head: Addr(l.head),
            body: l.body.iter().map(|&x| Addr(x)).collect(),
            trips: l.trips,
            sync_spin: l.sync_spin,
        })
        .collect();

    ColumnBound {
        work,
        loops,
        hot,
        diagnostics,
    }
}

/// Banked-timing cost of one node, emitting `bank-conflict-hotspot`
/// findings for contended accesses inside loops.
fn banked_cost(
    program: &Program,
    fr: &FuRanges,
    geo: MemGeometry,
    x: u32,
    word_costs: bool,
    in_loop: bool,
    diagnostics: &mut Vec<Diagnostic>,
) -> u64 {
    let f = fr.cfg.fu;
    let width = program.width();
    let Some(state) = fr.facts[x as usize].as_ref() else {
        return 1;
    };
    if word_costs {
        // Whole-word cost: every bank serves one access per cycle, and the
        // word holds until the deepest queue drains. Each access counts
        // toward every bank it might touch, so the max is an upper bound.
        let sets: Vec<BankSet> = (0..width as u8)
            .filter_map(|g| {
                let p = program.parcel(Addr(x), FuId(g)).expect("in range");
                bank_set(state, &p.data, geo)
            })
            .collect();
        if sets.is_empty() {
            return 1;
        }
        let wildcards = sets.iter().filter(|s| matches!(s, BankSet::All)).count() as u64;
        let deepest = (0..geo.banks.min(64))
            .map(|b| {
                sets.iter()
                    .filter(|s| s.intersects(BankSet::Mask(1 << b)))
                    .count() as u64
            })
            .max()
            .unwrap_or(wildcards);
        let cost = deepest.max(1);
        if cost > 1 && in_loop {
            diagnostics.push(
                Diagnostic::new(
                    Check::BankConflictHotspot,
                    Severity::Warning,
                    format!(
                        "up to {} same-word accesses can hit one of the {} memory \
                         banks, stalling the word {} extra cycle(s) every iteration",
                        cost,
                        geo.banks,
                        cost - 1
                    ),
                )
                .at(Addr(x), f)
                .via(Engine::Range),
            );
        }
        return cost;
    }

    let p = program.parcel(Addr(x), f).expect("in range");
    let Some(own) = bank_set(state, &p.data, geo) else {
        return 1;
    };
    // Each other FU issues at most one memory access per cycle, and a
    // banked access's stall is fixed at issue time (no re-contention), so
    // each possibly-colliding FU adds at most one cycle.
    let mut contenders: Vec<FuId> = Vec::new();
    for g in 0..width as u8 {
        if g == f.0 {
            continue;
        }
        let collides = if fr.mates[x as usize] & (1 << g) != 0 {
            // Lockstep mate: only its same-word parcel can collide.
            let gp = program.parcel(Addr(x), FuId(g)).expect("in range");
            bank_set(state, &gp.data, geo).is_some_and(|s| s.intersects(own))
        } else {
            // Unsynchronized stream: any reachable access may coincide,
            // and without g's own facts at an unknowable moment any bank
            // claim would be unsound — assume every access can collide.
            let gcfg = FuCfg::build(program, FuId(g));
            (0..program.len() as u32).any(|y| {
                gcfg.reachable[y as usize]
                    && program
                        .parcel(Addr(y), FuId(g))
                        .expect("in range")
                        .data
                        .is_memory()
            })
        };
        if collides {
            contenders.push(FuId(g));
        }
    }
    let cost = 1 + contenders.len() as u64;
    if !contenders.is_empty() && in_loop {
        let names: Vec<String> = contenders.iter().map(|g| format!("fu{}", g.0)).collect();
        diagnostics.push(
            Diagnostic::new(
                Check::BankConflictHotspot,
                Severity::Warning,
                format!(
                    "memory access may contend for a bank with {} every iteration \
                     (up to {} stall cycle(s) per access under banked:{})",
                    names.join(", "),
                    contenders.len(),
                    geo.banks
                ),
            )
            .at(Addr(x), f)
            .via(Engine::Range),
        );
    }
    cost
}

/// [`banked_cost`]'s arithmetic without the diagnostics side channel, for
/// hot-region accounting (the lint already fired during the work pass).
fn node_cost_quiet(
    program: &Program,
    fr: &FuRanges,
    geo: MemGeometry,
    bounds: &BoundsConfig,
    x: u32,
    word_costs: bool,
) -> u64 {
    match &bounds.timing {
        TimingSpec::Ideal => 1,
        TimingSpec::Latency(cfg) => {
            if word_costs {
                (0..program.width() as u8)
                    .map(|g| {
                        let p = program.parcel(Addr(x), FuId(g)).expect("in range");
                        cfg.latency_of(p.data.latency_class())
                    })
                    .max()
                    .unwrap_or(1)
            } else {
                let p = program.parcel(Addr(x), fr.cfg.fu).expect("in range");
                cfg.latency_of(p.data.latency_class())
            }
        }
        TimingSpec::Banked { .. } => {
            let mut sink = Vec::new();
            banked_cost(program, fr, geo, x, word_costs, false, &mut sink)
        }
    }
}

/// Iterative bitset dominator computation over the reachable subgraph.
struct Dominators {
    rows: Vec<Vec<u64>>,
}

impl Dominators {
    fn dominates(&self, a: u32, b: u32) -> bool {
        self.rows[b as usize][a as usize / 64] & (1 << (a % 64)) != 0
    }
}

fn dominators(cfg: &FuCfg) -> Dominators {
    let len = cfg.reachable.len();
    let words = len.div_ceil(64);
    let full = vec![u64::MAX; words];
    let mut rows = vec![full; len];
    if len == 0 || !cfg.reachable[0] {
        return Dominators { rows };
    }
    rows[0] = vec![0; words];
    rows[0][0] = 1;
    let mut changed = true;
    while changed {
        changed = false;
        for n in 1..len {
            if !cfg.reachable[n] {
                continue;
            }
            let mut meet = vec![u64::MAX; words];
            for &p in &cfg.preds[n] {
                for (m, r) in meet.iter_mut().zip(&rows[p as usize]) {
                    *m &= r;
                }
            }
            meet[n / 64] |= 1 << (n % 64);
            if meet != rows[n] {
                rows[n] = meet;
                changed = true;
            }
        }
    }
    Dominators { rows }
}

/// Natural loops from dominating back edges, merged per head; sync-spin
/// loops are classified here.
fn find_loops(program: &Program, fr: &FuRanges, dom: &Dominators) -> Vec<NaturalLoop> {
    let cfg = &fr.cfg;
    let len = cfg.reachable.len();
    let mut loops: Vec<NaturalLoop> = Vec::new();
    for u in 0..len as u32 {
        if !cfg.reachable[u as usize] {
            continue;
        }
        for &h in &cfg.succs[u as usize] {
            if !cfg.reachable[h as usize] || !dom.dominates(h, u) {
                continue;
            }
            // A one-word self-goto is a park — a terminal state the FU
            // occupies once — not a loop (it is in `cfg.exits`).
            if h == u && cfg.exits.contains(&u) {
                continue;
            }
            let entry = loops.iter().position(|l| l.head == h);
            let l = match entry {
                Some(i) => &mut loops[i],
                None => {
                    loops.push(NaturalLoop {
                        head: h,
                        body: vec![h],
                        in_body: {
                            let mut v = vec![false; len];
                            v[h as usize] = true;
                            v
                        },
                        latches: Vec::new(),
                        sync_spin: false,
                        trips: None,
                    });
                    loops.last_mut().expect("just pushed")
                }
            };
            l.latches.push(u);
            // Standard natural-loop body walk: preds back from the latch
            // until the head.
            let mut stack = vec![u];
            while let Some(n) = stack.pop() {
                if l.in_body[n as usize] {
                    continue;
                }
                l.in_body[n as usize] = true;
                l.body.push(n);
                stack.extend(cfg.preds[n as usize].iter().copied());
            }
        }
    }
    for l in &mut loops {
        l.body.sort_unstable();
        l.sync_spin = classify_sync_spin(program, fr, l);
    }
    loops
}

/// A sync-spin loop does no data work and leaves only on a sync condition:
/// its iterations cost the machine nothing another FU isn't already being
/// charged for.
fn classify_sync_spin(program: &Program, fr: &FuRanges, l: &NaturalLoop) -> bool {
    let f = fr.cfg.fu;
    let mut saw_sync_exit = false;
    for &x in &l.body {
        let p = program.parcel(Addr(x), f).expect("in range");
        if !p.data.is_nop() {
            return false;
        }
        let exits_here = fr.cfg.succs[x as usize]
            .iter()
            .any(|&s| !l.in_body[s as usize]);
        // A parcel with an in-range exit successor must poll sync to leave;
        // halting out of the body (no successor) never re-enters the loop.
        if exits_here {
            match p.ctrl {
                ControlOp::Branch {
                    cond: CondSource::Sync(_) | CondSource::AllSync | CondSource::AnySync,
                    ..
                } => saw_sync_exit = true,
                _ => return false,
            }
        }
    }
    saw_sync_exit
}

/// Back edges removed, the graph must be acyclic — otherwise some cycle
/// avoids every dominating head and the loop forest is meaningless.
fn is_reducible(cfg: &FuCfg, loops: &[NaturalLoop]) -> bool {
    let len = cfg.reachable.len();
    let is_back = |u: u32, v: u32| {
        // Park self-edges are terminal, not cyclic (see `find_loops`).
        (u == v && cfg.exits.contains(&u))
            || loops.iter().any(|l| l.head == v && l.latches.contains(&u))
    };
    // Kahn's algorithm over forward edges.
    let mut indeg = vec![0usize; len];
    for u in 0..len as u32 {
        if !cfg.reachable[u as usize] {
            continue;
        }
        for &v in &cfg.succs[u as usize] {
            if cfg.reachable[v as usize] && !is_back(u, v) {
                indeg[v as usize] += 1;
            }
        }
    }
    let mut queue: Vec<u32> = (0..len as u32)
        .filter(|&n| cfg.reachable[n as usize] && indeg[n as usize] == 0)
        .collect();
    let mut seen = 0usize;
    while let Some(u) = queue.pop() {
        seen += 1;
        for &v in &cfg.succs[u as usize] {
            if cfg.reachable[v as usize] && !is_back(u, v) {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push(v);
                }
            }
        }
    }
    seen == cfg.reachable.iter().filter(|&&r| r).count()
}

fn negate(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Lt,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        other => other,
    }
}

fn swap_sides(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
        other => other, // Eq/Ne are symmetric
    }
}

/// Bounds the trip count of `loops[which]`, or `None` when unproven.
fn loop_trips(
    program: &Program,
    fr: &FuRanges,
    dom: &Dominators,
    loops: &[NaturalLoop],
    which: usize,
) -> Option<u64> {
    let l = &loops[which];
    let f = fr.cfg.fu;
    let dominates_all_latches = |x: u32| l.latches.iter().all(|&u| dom.dominates(x, u));

    // Every register written inside the body by a credited parcel, with
    // its writing node and (for the `r = r ± const` shape) the step.
    let mut writes: Vec<(Reg, u32, Option<i64>)> = Vec::new();
    for &x in &l.body {
        for g in 0..program.width() as u8 {
            if fr.mates[x as usize] & (1 << g) == 0 {
                continue;
            }
            let data = &program.parcel(Addr(x), FuId(g)).expect("in range").data;
            if let Some(d) = data.dest() {
                let step = match *data {
                    DataOp::Alu {
                        op: AluOp::Iadd,
                        a: Operand::Reg(r),
                        b: Operand::Imm(c),
                        d,
                    } if r == d => Some(i64::from(c.as_i32())),
                    DataOp::Alu {
                        op: AluOp::Iadd,
                        a: Operand::Imm(c),
                        b: Operand::Reg(r),
                        d,
                    } if r == d => Some(i64::from(c.as_i32())),
                    DataOp::Alu {
                        op: AluOp::Isub,
                        a: Operand::Reg(r),
                        b: Operand::Imm(c),
                        d,
                    } if r == d => Some(-i64::from(c.as_i32())),
                    _ => None,
                };
                writes.push((d, x, step));
            }
        }
    }

    // The exit: a conditional CC branch, executed every iteration, with
    // exactly one way out of the body.
    let exit = l.body.iter().find_map(|&x| {
        let p = program.parcel(Addr(x), f).expect("in range");
        let ControlOp::Branch {
            cond: CondSource::Cc(j),
            taken,
            not_taken,
        } = p.ctrl
        else {
            return None;
        };
        let out = |t: Addr| t.index() >= l.in_body.len() || !l.in_body[t.index()];
        if out(taken) == out(not_taken) || !dominates_all_latches(x) {
            return None;
        }
        Some((x, j, out(taken)))
    })?;
    let (_exit_node, cc_fu, exit_on_true) = exit;

    // If the CC owner is another FU it must be a lockstep mate at every
    // word this column can reach — otherwise its compares land at
    // unknowable moments and the latch contents prove nothing.
    if cc_fu != f {
        let everywhere = (0..fr.cfg.reachable.len())
            .all(|x| !fr.cfg.reachable[x] || fr.mates[x] & (1 << cc_fu.0) != 0);
        if !everywhere {
            return None;
        }
    }

    // Exactly one in-body compare feeds that CC, once per iteration.
    let mut compares = l.body.iter().filter_map(|&x| {
        match program.parcel(Addr(x), cc_fu).expect("in range").data {
            DataOp::Cmp { op, a, b } => Some((x, op, a, b)),
            _ => None,
        }
    });
    let (cmp_node, cmp_op, cmp_a, cmp_b) = compares.next()?;
    if compares.next().is_some() || !dominates_all_latches(cmp_node) {
        return None;
    }
    if !matches!(
        cmp_op,
        CmpOp::Eq | CmpOp::Ne | CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge
    ) {
        return None;
    }

    // One side is the induction variable, the other is loop-invariant.
    let written = |r: Reg| writes.iter().any(|&(d, _, _)| d == r);
    let candidate = |iv_op: Operand, other: Operand, swapped: bool| -> Option<u64> {
        let Operand::Reg(iv) = iv_op else { return None };
        if fr.havoc.contains(iv) {
            return None;
        }
        // The IV has exactly one in-body write, an affine step, executed
        // exactly once per iteration.
        let mut iv_writes = writes.iter().filter(|&&(d, _, _)| d == iv);
        let &(_, step_node, step) = iv_writes.next()?;
        if iv_writes.next().is_some() {
            return None;
        }
        let step = step?;
        if step == 0 || !dominates_all_latches(step_node) {
            return None;
        }
        let inside_inner = loops.iter().enumerate().any(|(i, l2)| {
            i != which && l.in_body[l2.head as usize] && l2.in_body[step_node as usize]
        });
        if inside_inner {
            return None;
        }

        let bound = match other {
            Operand::Imm(v) => Interval::exact(v.as_i32()),
            Operand::Reg(s) => {
                if written(s) || fr.havoc.contains(s) {
                    return None;
                }
                fr.facts[cmp_node as usize].as_ref()?.reg(s)
            }
        };
        if bound.touches_extreme() {
            return None;
        }

        // Initial IV interval: joined over the loop's entry edges.
        let mut init: Option<Interval> = None;
        let mut fold = |iv_int: Interval| {
            init = Some(init.map_or(iv_int, |i| i.join(iv_int)));
        };
        if l.head == 0 {
            fold(fr.entry.reg(iv));
        }
        for &p in &fr.cfg.preds[l.head as usize] {
            if !l.in_body[p as usize] {
                fold(fr.posts[p as usize].as_ref()?.reg(iv));
            }
        }
        let init = init?;
        if init.touches_extreme() {
            return None;
        }

        // Normalize to "continue while IV REL bound".
        let mut rel = if swapped { swap_sides(cmp_op) } else { cmp_op };
        if exit_on_true {
            rel = negate(rel);
        }
        let (ilo, ihi) = (i64::from(init.lo), i64::from(init.hi));
        let (blo, bhi) = (i64::from(bound.lo), i64::from(bound.hi));
        let span = match (step > 0, rel) {
            // Monotone window: each iteration moves the IV |step| closer
            // to violating the relation.
            (true, CmpOp::Lt | CmpOp::Le) => bhi - ilo,
            (false, CmpOp::Gt | CmpOp::Ge) => ihi - blo,
            // Equality exit must provably *hit* the bound: unit step,
            // starting on the approaching side.
            (true, CmpOp::Ne) if step == 1 && ihi <= blo => bhi - ilo,
            (false, CmpOp::Ne) if step == -1 && ilo >= bhi => ihi - blo,
            // Continue-while-equal breaks as soon as the IV moves.
            (_, CmpOp::Eq) => return Some(TRIP_SLACK),
            // Wrong-direction or unprovable-hit loops never provably exit.
            _ => return None,
        };
        if span < 0 {
            return match rel {
                CmpOp::Ne => None, // bound already passed: never hits
                _ => Some(TRIP_SLACK),
            };
        }
        Some((span / step.abs()) as u64 + TRIP_SLACK)
    };

    if let Some(t) = candidate(cmp_a, cmp_b, false) {
        return Some(t);
    }
    candidate(cmp_b, cmp_a, true)
}

impl fmt::Display for BoundsReport {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mode = if self.lockstep {
            "word lockstep assumed"
        } else if self.mates_credited {
            "per-FU streams, SSET mates credited"
        } else {
            "per-FU streams, no lockstep credit"
        };
        let combine = if self.lockstep {
            "word machine"
        } else if self.synchronizing {
            "sum (streams synchronize)"
        } else {
            "max (independent streams)"
        };
        writeln!(
            out,
            "static cycle bound [timing {}; {}; combine: {}]",
            self.timing, mode, combine
        )?;
        for b in &self.per_fu {
            match b.cycles {
                Some(c) => writeln!(out, "  fu{}: <= {} cycles", b.fu.0, c)?,
                None => writeln!(out, "  fu{}: unbounded", b.fu.0)?,
            }
        }
        match self.total {
            Some(t) => writeln!(out, "  total: <= {t} cycles")?,
            None => writeln!(out, "  total: unbounded")?,
        }
        if !self.loops.is_empty() {
            writeln!(out, "loops:")?;
            for l in &self.loops {
                let verdict = if l.sync_spin {
                    "sync spin (charged once)".to_string()
                } else {
                    match l.trips {
                        Some(t) => format!("trips <= {t}"),
                        None => "trips unbounded".to_string(),
                    }
                };
                writeln!(
                    out,
                    "  fu{} @ {} {} ({}-word body)",
                    l.fu.0,
                    l.head,
                    verdict,
                    l.body.len()
                )?;
            }
        }
        if !self.hot.is_empty() {
            writeln!(out, "hot regions:")?;
            for (i, h) in self.hot.iter().enumerate() {
                let cycles = match h.predicted_cycles {
                    Some(p) => format!("<= {p} cycles"),
                    None => "unbounded".to_string(),
                };
                let share = match h.share {
                    Some(s) => format!(" ({:.0}% of bound)", s * 100.0),
                    None => String::new(),
                };
                writeln!(
                    out,
                    "  {}. fu{} @ {} {}{}",
                    i + 1,
                    h.fu.0,
                    h.head,
                    cycles,
                    share
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(source: &str, assume: &[(Reg, i32, i32)]) -> BoundsReport {
        let assembly = ximd_asm::assemble(source).expect("fixture assembles");
        let config = AnalysisConfig {
            assume: assume.to_vec(),
            ..AnalysisConfig::default()
        };
        cycle_bounds(&assembly.program, &config, &BoundsConfig::default())
    }

    /// A counted down-loop: r0 starts at 8, decrements, exits at zero.
    const COUNTDOWN: &str = r"
.width 1
00:
  fu0: iadd r0,#0,r0 ; -> 01:
01:
  fu0: gt r0,#0      ; -> 02:
02:
  fu0: isub r0,#1,r0 ; if cc0 01: | 03:
03:
  fu0: nop ; halt
";

    #[test]
    fn countdown_trip_arithmetic() {
        let r = report(COUNTDOWN, &[(Reg(0), 8, 8)]);
        assert_eq!(r.loops.len(), 1, "one natural loop: {:?}", r.loops);
        let l = &r.loops[0];
        // span 8, |step| 1 => 8 trips plus the CC-lag slack.
        assert_eq!(l.trips, Some(8 + TRIP_SLACK), "{l:?}");
        assert!(!l.sync_spin);
        let total = r.total.expect("bounded");
        // 1 entry word + 2-word body * trips + exit word, ideal cost 1.
        assert!(total >= 2 + 2 * 8, "bound {total} under-covers the loop");
    }

    #[test]
    fn unseeded_counter_is_honestly_unbounded() {
        let r = report(COUNTDOWN, &[]);
        assert_eq!(r.total, None, "no entry fact, no bound");
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.check == Check::TripCountUnbounded));
    }

    /// The paper's terminal park (`-> self`) is an exit, not a loop.
    #[test]
    fn park_self_goto_is_not_a_loop() {
        let source = r"
.width 1
00:
  fu0: iadd r1,#1,r1 ; -> 01:
01:
  fu0: nop ; -> 01:
";
        let r = report(source, &[]);
        assert!(r.loops.is_empty(), "park misread as a loop: {:?}", r.loops);
        assert_eq!(r.total, Some(2), "entry word + park word");
    }

    /// An all-nop body whose only exits are sync branches is a barrier
    /// spin: charged once, never reported trip-count-unbounded.
    #[test]
    fn sync_spin_is_classified_and_exempt() {
        let source = r"
.width 2
00:
  fu0: iadd r0,#1,r0 ; -> 01:
  fu1: nop           ; -> 01:
01:
  fu0: nop ; if allss 02: | 01: ; DONE
  fu1: nop ; if allss 02: | 01: ; DONE
02:
  all: nop ; halt
";
        let r = report(source, &[]);
        let spins: Vec<_> = r.loops.iter().filter(|l| l.sync_spin).collect();
        assert!(!spins.is_empty(), "spin not classified: {:?}", r.loops);
        assert!(
            !r.diagnostics
                .iter()
                .any(|d| d.check == Check::TripCountUnbounded),
            "barrier spins must not be flagged unbounded: {:?}",
            r.diagnostics
        );
        assert!(
            r.total.is_some(),
            "spin charged once keeps the bound finite"
        );
    }
}
