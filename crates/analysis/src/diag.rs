//! Findings: what xlint can report, and how it prints.

use std::fmt;

use ximd_isa::{Addr, FuId};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but possibly intentional; does not fail a lint run.
    Warning,
    /// A defect: the program violates a machine invariant or can wedge.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Which analysis engine produced a diagnostic.
///
/// The first three are the seed passes; [`Engine::Dataflow`] marks the
/// per-FU dataflow lints and [`Engine::Compositional`] the SSET-region
/// race engine that substitutes for the product interpreter past the
/// state cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// Per-FU CFG structural walk.
    Structure,
    /// Per-wide-instruction resource checks.
    Word,
    /// Exhaustive product-state abstract interpretation.
    Product,
    /// Worklist dataflow over per-FU CFGs.
    Dataflow,
    /// SSET-structure inference and region-local race checking.
    Compositional,
    /// Interval (value-range) abstract interpretation and the static
    /// cycle-bound oracle built on it.
    Range,
    /// Schedule translation validation against a compiler-emitted
    /// certificate.
    Certify,
}

impl Engine {
    /// Stable lowercase name used in rendered diagnostics and SARIF.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Structure => "structure",
            Engine::Word => "word",
            Engine::Product => "product",
            Engine::Dataflow => "dataflow",
            Engine::Compositional => "compositional",
            Engine::Range => "range",
            Engine::Certify => "certify",
        }
    }
}

/// The individual checks xlint runs. Each diagnostic carries the check that
/// produced it so tests (and tooling) can filter without parsing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Check {
    /// A branch or goto target lies outside instruction memory.
    DanglingTarget,
    /// A parcel with a non-nop data op can never be fetched by its FU.
    UnreachableCode,
    /// An FU's stream reaches neither a `halt` nor a self-goto park loop.
    MissingTerminal,
    /// A parcel uses more register-file read or write ports than budgeted.
    PortBudget,
    /// Two parcels of one wide instruction write the same register.
    MultiWriteReg,
    /// Two parcels of one wide instruction store to the same memory cell
    /// (or to cells that cannot be proven distinct).
    MultiWriteMem,
    /// Reachable machine states from which no halt/park state is
    /// reachable, with at least one FU waiting on a sync condition that
    /// can never be satisfied.
    SyncDeadlock,
    /// Reachable machine states from which no halt/park state is
    /// reachable (a loop with no exit, not a sync wait).
    NoTermination,
    /// Same-cycle conflicting register or memory accesses between FUs at
    /// different addresses — streams the partition rule cannot prove
    /// synchronous.
    CrossStreamRace,
    /// A branch reads `CC_j` before FU `j` has executed any compare
    /// (the latch still holds "unknown", which reads as false).
    CcBeforeCompare,
    /// A branch waits on `SS_j` (or `ALL-SS`) but FU `j` has no reachable
    /// parcel that exports DONE, so the condition can never see DONE.
    SsNeverDone,
    /// State-space exploration hit the configured cap; deadlock and race
    /// results are incomplete.
    StateSpaceTruncated,
    /// A register is read with no write reaching the read on *any* path of
    /// the reading FU's CFG (including lockstep peers' writes), although
    /// the program does initialise the register somewhere.
    UninitRead,
    /// A register write whose value is overwritten before any read on
    /// every path — the parcel does work no one can observe.
    DeadWrite,
    /// A branch reads a `CC_j` latch that no reachable compare of FU `j`
    /// dominates — on some path the latch still holds a stale (or never
    /// written) value.
    CcStaleUse,
    /// A reachable non-halt parcel exports DONE, but no sequencer has a
    /// reachable branch that could ever observe that sync signal.
    SyncNeverObserved,
    /// A load or store whose effective address interval lies outside (or
    /// partially outside) the machine's data memory.
    OobMemoryAccess,
    /// The trip-count analysis could not bound a (non-sync-wait) loop, so
    /// no finite cycle bound exists for its FU.
    TripCountUnbounded,
    /// A branch whose condition the interval analysis proves constant —
    /// one successor is dead code.
    BranchAlways,
    /// A memory access that contends for a bank with other FUs' accesses
    /// every time it executes, under a banked timing model.
    BankConflictHotspot,
    /// The emitted schedule violates a dependence edge the certificate
    /// claims (or the re-derived DAG requires): a consumer issues before
    /// its producer's latency has elapsed.
    SchedDepViolated,
    /// A source operation the certificate claims is missing from the
    /// emitted schedule, appears more than once per iteration, or the
    /// emitted code contains an operation the certificate never claimed.
    SchedOpLost,
    /// A speculated/percolated op can clobber a live value on a path it
    /// was hoisted above, an extra compare clobbers the region's condition
    /// code, or a pipelined register's next-iteration write lands before
    /// the previous iteration's last read.
    SchedClobber,
    /// The emitted region's shape disagrees with the certificate: wrong
    /// initiation interval, row count, lockstep chaining, or branch
    /// wiring.
    SchedIiMismatch,
}

impl Check {
    /// Every check, in a stable order — used by `--explain` listings and
    /// the SARIF rule table.
    pub const ALL: [Check; 24] = [
        Check::DanglingTarget,
        Check::UnreachableCode,
        Check::MissingTerminal,
        Check::PortBudget,
        Check::MultiWriteReg,
        Check::MultiWriteMem,
        Check::SyncDeadlock,
        Check::NoTermination,
        Check::CrossStreamRace,
        Check::CcBeforeCompare,
        Check::SsNeverDone,
        Check::StateSpaceTruncated,
        Check::UninitRead,
        Check::DeadWrite,
        Check::CcStaleUse,
        Check::SyncNeverObserved,
        Check::OobMemoryAccess,
        Check::TripCountUnbounded,
        Check::BranchAlways,
        Check::BankConflictHotspot,
        Check::SchedDepViolated,
        Check::SchedOpLost,
        Check::SchedClobber,
        Check::SchedIiMismatch,
    ];

    /// Stable kebab-case code used in rendered diagnostics.
    pub fn code(self) -> &'static str {
        match self {
            Check::DanglingTarget => "dangling-target",
            Check::UnreachableCode => "unreachable-code",
            Check::MissingTerminal => "missing-terminal",
            Check::PortBudget => "port-budget",
            Check::MultiWriteReg => "multi-write-reg",
            Check::MultiWriteMem => "multi-write-mem",
            Check::SyncDeadlock => "sync-deadlock",
            Check::NoTermination => "no-termination",
            Check::CrossStreamRace => "cross-stream-race",
            Check::CcBeforeCompare => "cc-before-compare",
            Check::SsNeverDone => "ss-never-done",
            Check::StateSpaceTruncated => "state-space-truncated",
            Check::UninitRead => "uninit-read",
            Check::DeadWrite => "dead-write",
            Check::CcStaleUse => "cc-stale-use",
            Check::SyncNeverObserved => "sync-never-observed",
            Check::OobMemoryAccess => "oob-memory-access",
            Check::TripCountUnbounded => "trip-count-unbounded",
            Check::BranchAlways => "branch-always",
            Check::BankConflictHotspot => "bank-conflict-hotspot",
            Check::SchedDepViolated => "sched-dep-violated",
            Check::SchedOpLost => "sched-op-lost",
            Check::SchedClobber => "sched-clobber",
            Check::SchedIiMismatch => "sched-ii-mismatch",
        }
    }

    /// Looks a check up by its kebab-case code.
    pub fn from_code(code: &str) -> Option<Check> {
        Check::ALL.into_iter().find(|c| c.code() == code)
    }

    /// A prose explanation of the check for `xlint --explain CODE`.
    pub fn explain(self) -> &'static str {
        match self {
            Check::DanglingTarget => {
                "A branch or goto names a target address past the end of the \
                 program. XIMD sequencers have no PC incrementer: every \
                 successor is an explicit T1/T2 target, so a dangling target \
                 makes the FU fetch garbage. Error.\n\n  00:\n    fu0: nop ; -> 09:   \
                 // 09: does not exist"
            }
            Check::UnreachableCode => {
                "A parcel encodes a real data operation but its FU can never \
                 fetch it: no path from the shared entry 00: reaches the \
                 address in that FU's column. Pure `nop ; halt` padding is \
                 exempt. Warning."
            }
            Check::MissingTerminal => {
                "An FU's control-flow graph reaches neither a `halt` parcel \
                 nor a one-word self-goto park loop — the stream can never \
                 settle, so the program has no well-defined end. Warning."
            }
            Check::PortBudget => {
                "A parcel (or a whole wide instruction, under shared-port \
                 budgets) uses more register-file read or write ports than \
                 the configured register file provides. Error."
            }
            Check::MultiWriteReg => {
                "Two parcels of one wide instruction write the same register; \
                 both simulators fault at commit regardless of how the \
                 streams interleave. Error.\n\n  00:\n    fu0: iadd r0,#1,r2 ; \
                 -> 01:\n    fu1: iadd r1,#1,r2 ; -> 01:"
            }
            Check::MultiWriteMem => {
                "Two parcels of one wide instruction store to one memory cell \
                 (error), or to cells the analyzer cannot prove distinct \
                 (warning)."
            }
            Check::SyncDeadlock => {
                "A reachable machine state exists from which no halt/park \
                 state is reachable, and some FU is waiting on a sync \
                 condition (SS_j, ALL-SS, ANY-SS) that can never be \
                 satisfied — e.g. the peer halted while still exporting BUSY. \
                 Error."
            }
            Check::NoTermination => {
                "A reachable machine state exists from which no halt/park \
                 state is reachable, with no sync wait involved — a plain \
                 exitless loop. Warning (spin loops can be intentional)."
            }
            Check::CrossStreamRace => {
                "Two FUs in *different* synchronous sets can touch the same \
                 register (write/write or write/read) or memory cell in the \
                 same cycle from different addresses. The decision-key \
                 partition rule cannot prove the streams synchronous, so the \
                 interleaving — and therefore the value — is timing- \
                 dependent. Warning (a CC-guarded invariant invisible to the \
                 analyzer may make it safe)."
            }
            Check::CcBeforeCompare => {
                "A branch reads CC_j before FU j has executed any compare on \
                 the explored path; the unwritten latch reads false, which is \
                 rarely what was meant. Warning."
            }
            Check::SsNeverDone => {
                "A branch waits on SS_j (or ALL-SS/ANY-SS) but FU j has no \
                 reachable parcel exporting DONE, so the condition can never \
                 open. Warning (the product pass upgrades provable wedges to \
                 sync-deadlock errors)."
            }
            Check::StateSpaceTruncated => {
                "Product-state exploration hit AnalysisConfig::max_states. \
                 Deadlock/termination results are incomplete; xlint falls \
                 back to the compositional SSET engine for race results and \
                 exits with code 3 (\"analysis incomplete\") instead of \
                 pretending the program is clean."
            }
            Check::UninitRead => {
                "A parcel reads a register that no write reaches on *any* \
                 path of the reading FU's CFG — counting writes by provable \
                 lockstep peers — although the program does freshly \
                 initialise that register somewhere, so it is not an external \
                 input. Classic use-before-init, VLIW edition. Warning.\n\n  \
                 00:\n    fu0: iadd r7,#1,r1 ; -> 01:   // r7 read here...\n  \
                 01:\n    fu0: imov #0,r7 ; halt        // ...initialised after"
            }
            Check::DeadWrite => {
                "A register write is overwritten before any read on every \
                 path (registers are considered live at halt, so final \
                 results never trigger this; reads by other streams suppress \
                 it). The parcel burns a write port for nothing. Warning."
            }
            Check::CcStaleUse => {
                "A branch on CC_j is not dominated by a compare of FU j: on \
                 some path to the branch the latch holds a stale or never- \
                 written value. For a branch on a *foreign* CC the check \
                 weakens to \"FU j has at least one reachable compare\". \
                 Warning."
            }
            Check::SyncNeverObserved => {
                "A reachable non-halt parcel exports DONE, but no FU has any \
                 reachable branch on SS_j/ALL-SS/ANY-SS that could observe \
                 it — the handshake's producing half with no consuming half. \
                 DONE exported on halt parcels is exempt (the codegen join \
                 convention). Warning."
            }
            Check::OobMemoryAccess => {
                "The interval analysis bounds a load/store's effective word \
                 address outside the machine's data memory. If the whole \
                 interval misses memory the access faults on every execution \
                 (error); if only part of a *finite* interval is out of range \
                 the access can fault on some executions (warning). \
                 Addresses the analysis cannot bound are not reported — the \
                 simulator's range check stays the oracle.\n\n  00:\n    \
                 fu0: load #-3,#0,r1 ; halt   // M[-3] faults"
            }
            Check::TripCountUnbounded => {
                "The induction-variable analysis could not bound how often a \
                 loop iterates (data-dependent exit, irreducible region, or \
                 a counter the interval analysis cannot track), so the cycle \
                 oracle reports an infinite worst-case bound for that FU. \
                 Sync-wait spin loops are exempt: they cost what their \
                 partners cost. Reported by `xlint --cycle-bounds`. Warning."
            }
            Check::BranchAlways => {
                "The interval analysis proves a branch condition constant: \
                 the same successor is taken on every execution, and the \
                 other target is dead code on this path. Often a compare \
                 against the wrong register or an off-by-one bound. Warning."
            }
            Check::BankConflictHotspot => {
                "Under a banked timing model, this memory access can collide \
                 with other FUs' same-cycle accesses to its bank every time \
                 it executes — a statically predictable contention hotspot \
                 the scheduler could avoid by re-striding addresses. \
                 Reported by `xlint --cycle-bounds --timing banked:<n>`. \
                 Warning."
            }
            Check::SchedDepViolated => {
                "Translation validation: the emitted schedule issues a \
                 consumer before its producer's latency has elapsed — a RAW, \
                 WAR, WAW or memory-ordering edge of the certified dependence \
                 DAG (re-derived from the emitted parcels, not trusted from \
                 the compiler) is broken. The diagnostic names both \
                 operations and the violated edge. Reported by \
                 `xlint --certify`. Error."
            }
            Check::SchedOpLost => {
                "Translation validation: a source operation the certificate \
                 claims does not appear (exactly once per iteration) in the \
                 emitted region, or the emitted region contains a non-nop \
                 operation the certificate never claimed. Either way the \
                 schedule no longer computes the source program. Reported by \
                 `xlint --certify`. Error."
            }
            Check::SchedClobber => {
                "Translation validation: an operation can destroy a value \
                 that is still live — a speculated op hoisted above a branch \
                 writes a register read on the path it escaped, an unclaimed \
                 compare clobbers the region's condition code, or a modulo- \
                 scheduled register's next-iteration write lands before the \
                 previous iteration's last read (lifetime constraint \
                 violated). Reported by `xlint --certify`. Error."
            }
            Check::SchedIiMismatch => {
                "Translation validation: the emitted region's shape disagrees \
                 with its certificate — achieved initiation interval, row \
                 count, prologue/kernel/epilogue layout, lockstep row \
                 chaining, or loop-back branch wiring. The code may still be \
                 correct but is not the schedule the compiler certified, so \
                 nothing downstream (cycle bounds, quality metrics) can be \
                 trusted. Reported by `xlint --certify`. Error."
            }
        }
    }
}

/// One finding, anchored to an instruction-memory cell and (when the
/// program came from the assembler) a source line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which check fired.
    pub check: Check,
    /// How serious it is.
    pub severity: Severity,
    /// Which engine produced the finding.
    pub engine: Engine,
    /// Word address the finding anchors to, if meaningful.
    pub addr: Option<Addr>,
    /// Functional unit the finding anchors to, if meaningful.
    pub fu: Option<FuId>,
    /// 1-based assembler source line, when a source map is available.
    pub line: Option<u32>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(check: Check, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            check,
            severity,
            engine: Engine::Structure,
            addr: None,
            fu: None,
            line: None,
            message: message.into(),
        }
    }

    pub(crate) fn at(mut self, addr: Addr, fu: FuId) -> Diagnostic {
        self.addr = Some(addr);
        self.fu = Some(fu);
        self
    }

    pub(crate) fn at_addr(mut self, addr: Addr) -> Diagnostic {
        self.addr = Some(addr);
        self
    }

    pub(crate) fn via(mut self, engine: Engine) -> Diagnostic {
        self.engine = engine;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The seed passes keep their historical rendering; the two new
        // engines tag their findings so "which engine said this" is
        // visible in plain-text output too.
        match self.engine {
            Engine::Structure | Engine::Word | Engine::Product => {
                write!(f, "{}[{}]", self.severity, self.check.code())?
            }
            Engine::Dataflow | Engine::Compositional | Engine::Range | Engine::Certify => write!(
                f,
                "{}[{}/{}]",
                self.severity,
                self.check.code(),
                self.engine.name()
            )?,
        }
        if let Some(addr) = self.addr {
            write!(f, " {addr}")?;
        }
        if let Some(fu) = self.fu {
            write!(f, " {fu}")?;
        }
        if let Some(line) = self.line {
            write!(f, " (line {line})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The result of one xlint run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All findings, errors first, then by address.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of product machine states explored.
    pub states_explored: usize,
    /// Whether exploration hit the state cap (results incomplete).
    pub truncated: bool,
    /// Maximum number of concurrent instruction streams (SSETs holding at
    /// least one running FU) observed over all explored states — the
    /// static counterpart of the simulator's dynamic stream profile.
    /// Zero when the product engine did not run.
    pub max_live_streams: usize,
    /// Number of region states the SSET-structure inference explored.
    pub region_states: usize,
    /// Whether the compositional race engine contributed results (always
    /// under `--engine compositional`/`both`; under `auto`, only as the
    /// fallback when the product exploration truncated).
    pub compositional: bool,
}

impl Analysis {
    /// True if no check fired at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if any error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Sorts diagnostics: errors first, then by (addr, fu, check code).
    pub(crate) fn finish(mut self) -> Analysis {
        self.diagnostics.sort_by_key(|d| {
            (
                std::cmp::Reverse(d.severity),
                d.addr.map_or(u32::MAX, |a| a.0),
                d.fu.map_or(u8::MAX, |f| f.0),
                d.check.code(),
            )
        });
        self
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut stats = format!(
            "{} states, max {} concurrent streams",
            self.states_explored, self.max_live_streams
        );
        if self.compositional {
            stats.push_str(&format!(
                ", compositional over {} region states",
                self.region_states
            ));
        }
        if self.is_clean() {
            write!(f, "clean ({stats})")
        } else {
            for d in &self.diagnostics {
                writeln!(f, "{d}")?;
            }
            write!(
                f,
                "{} error(s), {} warning(s) ({stats})",
                self.errors().count(),
                self.warnings().count(),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Every check round-trips through its code, codes are unique, and
    /// every explanation is non-empty and distinct — the registry the SARIF
    /// rule table and `xlint --explain` are built from stays coherent as
    /// checks are added.
    #[test]
    fn check_registry_is_consistent() {
        let mut codes = HashSet::new();
        let mut explains = HashSet::new();
        for check in Check::ALL {
            let code = check.code();
            assert!(!code.is_empty(), "{check:?} has an empty code");
            assert!(
                code.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{check:?} code {code:?} is not kebab-case"
            );
            assert_eq!(
                Check::from_code(code),
                Some(check),
                "{check:?} does not round-trip through {code:?}"
            );
            assert!(codes.insert(code), "duplicate code {code:?}");

            let explain = check.explain();
            assert!(!explain.is_empty(), "{check:?} has no explanation");
            assert!(
                explains.insert(explain),
                "{check:?} shares its explanation with another check"
            );
        }
        assert_eq!(codes.len(), Check::ALL.len());
        assert_eq!(Check::from_code("no-such-lint"), None);
    }
}
