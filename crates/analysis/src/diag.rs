//! Findings: what xlint can report, and how it prints.

use std::fmt;

use ximd_isa::{Addr, FuId};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but possibly intentional; does not fail a lint run.
    Warning,
    /// A defect: the program violates a machine invariant or can wedge.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// The individual checks xlint runs. Each diagnostic carries the check that
/// produced it so tests (and tooling) can filter without parsing messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Check {
    /// A branch or goto target lies outside instruction memory.
    DanglingTarget,
    /// A parcel with a non-nop data op can never be fetched by its FU.
    UnreachableCode,
    /// An FU's stream reaches neither a `halt` nor a self-goto park loop.
    MissingTerminal,
    /// A parcel uses more register-file read or write ports than budgeted.
    PortBudget,
    /// Two parcels of one wide instruction write the same register.
    MultiWriteReg,
    /// Two parcels of one wide instruction store to the same memory cell
    /// (or to cells that cannot be proven distinct).
    MultiWriteMem,
    /// Reachable machine states from which no halt/park state is
    /// reachable, with at least one FU waiting on a sync condition that
    /// can never be satisfied.
    SyncDeadlock,
    /// Reachable machine states from which no halt/park state is
    /// reachable (a loop with no exit, not a sync wait).
    NoTermination,
    /// Same-cycle conflicting register or memory accesses between FUs at
    /// different addresses — streams the partition rule cannot prove
    /// synchronous.
    CrossStreamRace,
    /// A branch reads `CC_j` before FU `j` has executed any compare
    /// (the latch still holds "unknown", which reads as false).
    CcBeforeCompare,
    /// A branch waits on `SS_j` (or `ALL-SS`) but FU `j` has no reachable
    /// parcel that exports DONE, so the condition can never see DONE.
    SsNeverDone,
    /// State-space exploration hit the configured cap; deadlock and race
    /// results are incomplete.
    StateSpaceTruncated,
}

impl Check {
    /// Stable kebab-case code used in rendered diagnostics.
    pub fn code(self) -> &'static str {
        match self {
            Check::DanglingTarget => "dangling-target",
            Check::UnreachableCode => "unreachable-code",
            Check::MissingTerminal => "missing-terminal",
            Check::PortBudget => "port-budget",
            Check::MultiWriteReg => "multi-write-reg",
            Check::MultiWriteMem => "multi-write-mem",
            Check::SyncDeadlock => "sync-deadlock",
            Check::NoTermination => "no-termination",
            Check::CrossStreamRace => "cross-stream-race",
            Check::CcBeforeCompare => "cc-before-compare",
            Check::SsNeverDone => "ss-never-done",
            Check::StateSpaceTruncated => "state-space-truncated",
        }
    }
}

/// One finding, anchored to an instruction-memory cell and (when the
/// program came from the assembler) a source line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which check fired.
    pub check: Check,
    /// How serious it is.
    pub severity: Severity,
    /// Word address the finding anchors to, if meaningful.
    pub addr: Option<Addr>,
    /// Functional unit the finding anchors to, if meaningful.
    pub fu: Option<FuId>,
    /// 1-based assembler source line, when a source map is available.
    pub line: Option<u32>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(check: Check, severity: Severity, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            check,
            severity,
            addr: None,
            fu: None,
            line: None,
            message: message.into(),
        }
    }

    pub(crate) fn at(mut self, addr: Addr, fu: FuId) -> Diagnostic {
        self.addr = Some(addr);
        self.fu = Some(fu);
        self
    }

    pub(crate) fn at_addr(mut self, addr: Addr) -> Diagnostic {
        self.addr = Some(addr);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.check.code())?;
        if let Some(addr) = self.addr {
            write!(f, " {addr}")?;
        }
        if let Some(fu) = self.fu {
            write!(f, " {fu}")?;
        }
        if let Some(line) = self.line {
            write!(f, " (line {line})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The result of one xlint run.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All findings, errors first, then by address.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of product machine states explored.
    pub states_explored: usize,
    /// Whether exploration hit the state cap (results incomplete).
    pub truncated: bool,
    /// Maximum number of concurrent instruction streams (SSETs holding at
    /// least one running FU) observed over all explored states — the
    /// static counterpart of the simulator's dynamic stream profile.
    pub max_live_streams: usize,
}

impl Analysis {
    /// True if no check fired at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True if any error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Sorts diagnostics: errors first, then by (addr, fu, check code).
    pub(crate) fn finish(mut self) -> Analysis {
        self.diagnostics.sort_by_key(|d| {
            (
                std::cmp::Reverse(d.severity),
                d.addr.map_or(u32::MAX, |a| a.0),
                d.fu.map_or(u8::MAX, |f| f.0),
                d.check.code(),
            )
        });
        self
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "clean ({} states, max {} concurrent streams)",
                self.states_explored, self.max_live_streams
            )
        } else {
            for d in &self.diagnostics {
                writeln!(f, "{d}")?;
            }
            write!(
                f,
                "{} error(s), {} warning(s) ({} states, max {} concurrent streams)",
                self.errors().count(),
                self.warnings().count(),
                self.states_explored,
                self.max_live_streams
            )
        }
    }
}
