//! Abstract interpretation over the product of the per-FU CFGs.
//!
//! The abstract machine state is the tuple of per-FU PCs (or "halted"),
//! the sync value each halted FU still exports, and which CC latches have
//! been written. Sync conditions are evaluated *exactly* — `SS_i` is
//! combinational, driven by the parcel each running FU executes this
//! cycle, and a halted FU holds its last export, precisely as in
//! `ximd_sim::Xsim`. Condition codes are the only nondeterminism: a
//! branch on `CC_j` forks the exploration, with every FU that tests the
//! same `CC_j` in the same cycle taking the same direction (the latch has
//! one value per cycle). An unwritten CC latch reads as false, again
//! matching the simulator.
//!
//! On the explored graph the pass reports:
//!
//! - states from which no halt state and no park loop (every running FU a
//!   self-goto) is reachable — a sync wait that can never release is an
//!   error, a plain exitless loop a warning;
//! - same-cycle conflicting register/memory accesses between FUs sitting
//!   at *different* addresses — streams which the decision-key partition
//!   rule cannot prove synchronous (same-word conflicts are the word
//!   pass's, and are errors);
//! - branches that read `CC_j` before FU `j` has ever compared;
//! - the maximum number of concurrent instruction streams, counted with
//!   the same [`Partition::from_decisions`] rule the simulator uses.

use std::collections::{HashMap, HashSet, VecDeque};

use ximd_isa::{Addr, CondSource, ControlOp, FuId, Parcel, Program, SyncSignal};
use ximd_sim::{DecisionKey, Partition};

use crate::config::AnalysisConfig;
use crate::conflict::pair_conflicts;
use crate::diag::{Check, Diagnostic, Engine, Severity};

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    /// Per-FU PC; `None` is halted.
    pcs: Vec<Option<Addr>>,
    /// Whether each halted FU still exports DONE (running FUs' entries
    /// are normalised to `false`; their export comes from the parcel).
    held_done: Vec<bool>,
    /// Whether `CC_j` has been written on this path.
    cc_set: Vec<bool>,
}

pub(crate) struct InterpFacts {
    pub states_explored: usize,
    pub truncated: bool,
    pub max_live_streams: usize,
    /// Race dedup keys this engine reported, so the compositional engine
    /// can avoid duplicating them. Pairs are ordered by FU index.
    pub race_keys: HashSet<(Addr, FuId, Addr, FuId, String)>,
}

fn cond_name(cond: CondSource) -> String {
    match cond {
        CondSource::Cc(j) => format!("cc{}", j.0),
        CondSource::Sync(j) => format!("ss{}", j.0),
        CondSource::AllSync => "allss".into(),
        CondSource::AnySync => "anyss".into(),
    }
}

/// A good terminal: nothing runs, or everything still running sits in a
/// single-word park loop (`-> self`), the paper's idle idiom.
fn is_terminal(state: &State, program: &Program) -> bool {
    for (fu, pc) in state.pcs.iter().enumerate() {
        let Some(addr) = pc else { continue };
        let parcel = program.parcel(*addr, FuId(fu as u8)).expect("in range");
        if parcel.ctrl != ControlOp::Goto(*addr) {
            return false;
        }
    }
    true // all halted, or every running FU sits in a park loop
}

pub(crate) fn check(
    program: &Program,
    config: &AnalysisConfig,
    diags: &mut Vec<Diagnostic>,
) -> InterpFacts {
    let width = program.width();
    let len = program.len();
    let in_range = |a: Addr| a.index() < len;

    let initial = State {
        pcs: (0..width)
            .map(|_| Some(Addr(0)).filter(|a| in_range(*a)))
            .collect(),
        held_done: vec![false; width],
        cc_set: vec![false; width],
    };

    let mut states: Vec<State> = vec![initial.clone()];
    let mut index: HashMap<State, usize> = HashMap::from([(initial, 0)]);
    let mut succs: Vec<Vec<usize>> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut truncated = false;
    let mut max_live_streams = 0usize;

    let mut cc_warned: HashSet<(Addr, FuId)> = HashSet::new();
    let mut race_seen: HashSet<(Addr, FuId, Addr, FuId, String)> = HashSet::new();

    while let Some(si) = queue.pop_front() {
        let state = states[si].clone();

        // Fetch. A running FU whose parcel this cycle is a halt executes
        // it (data + sync export) and is halted in every successor.
        let parcels: Vec<Option<&Parcel>> = state
            .pcs
            .iter()
            .enumerate()
            .map(|(fu, pc)| pc.map(|a| program.parcel(a, FuId(fu as u8)).expect("in range")))
            .collect();

        // Sync signals are combinational: running FUs drive their
        // parcel's value, halted FUs hold their last export.
        let sync: Vec<SyncSignal> = (0..width)
            .map(|fu| match parcels[fu] {
                Some(p) => p.sync,
                None => {
                    if state.held_done[fu] {
                        SyncSignal::Done
                    } else {
                        SyncSignal::Busy
                    }
                }
            })
            .collect();

        // Concurrent-stream count under the simulator's partition rule.
        let keys: Vec<DecisionKey> = (0..width)
            .map(|fu| match parcels[fu] {
                Some(p) => DecisionKey::of(&p.ctrl),
                None => DecisionKey::Halted,
            })
            .collect();
        let partition = Partition::from_decisions(&keys);
        let live = partition
            .ssets()
            .iter()
            .filter(|sset| sset.iter().any(|f| state.pcs[f.index()].is_some()))
            .count();
        max_live_streams = max_live_streams.max(live);

        // Cross-stream conflicts: same cycle, different addresses.
        for f in 0..width {
            let (Some(af), Some(pf)) = (state.pcs[f], parcels[f]) else {
                continue;
            };
            for (g, parcel_g) in parcels.iter().enumerate().skip(f + 1) {
                let (Some(ag), Some(pg)) = (state.pcs[g], parcel_g) else {
                    continue;
                };
                if af == ag {
                    continue; // same wide instruction — the word pass owns it
                }
                let (ff, fg) = (FuId(f as u8), FuId(g as u8));
                for c in pair_conflicts(af, ff, pf, ag, fg, pg) {
                    if race_seen.insert((af, ff, ag, fg, c.kind)) {
                        diags.push(
                            Diagnostic::new(Check::CrossStreamRace, Severity::Warning, c.message)
                                .at(af, ff)
                                .via(Engine::Product),
                        );
                    }
                }
            }
        }

        // CC latches written this cycle become visible next cycle.
        let mut cc_next = state.cc_set.clone();
        for (fu, parcel) in parcels.iter().enumerate() {
            if parcel.is_some_and(|p| p.data.sets_cc()) {
                cc_next[fu] = true;
            }
        }

        // Control: resolve every running FU to a fixed successor or a
        // dependence on one CC bit.
        enum Next {
            Halted(bool),
            Fixed(Addr),
            CcDep {
                j: usize,
                taken: Addr,
                not_taken: Addr,
            },
        }
        let no_ccs = vec![false; width];
        let mut nexts: Vec<Option<Next>> = Vec::with_capacity(width);
        let mut fork: Vec<usize> = Vec::new();
        for (fu, slot) in parcels.iter().enumerate() {
            let Some(parcel) = slot else {
                nexts.push(None);
                continue;
            };
            let next = match &parcel.ctrl {
                ControlOp::Halt => Next::Halted(parcel.sync.is_done()),
                ControlOp::Goto(t) => Next::Fixed(*t),
                ControlOp::Branch {
                    cond,
                    taken,
                    not_taken,
                } => match cond {
                    CondSource::Cc(j) if state.cc_set[j.index()] => {
                        if !fork.contains(&j.index()) {
                            fork.push(j.index());
                        }
                        Next::CcDep {
                            j: j.index(),
                            taken: *taken,
                            not_taken: *not_taken,
                        }
                    }
                    CondSource::Cc(j) => {
                        // The latch is unwritten and reads false.
                        let addr = state.pcs[fu].expect("running");
                        if cc_warned.insert((addr, FuId(fu as u8))) {
                            diags.push(
                                Diagnostic::new(
                                    Check::CcBeforeCompare,
                                    Severity::Warning,
                                    format!(
                                        "branch reads cc{} before {j} has executed any \
                                         compare; the unwritten latch reads false",
                                        j.0
                                    ),
                                )
                                .at(addr, FuId(fu as u8))
                                .via(Engine::Product),
                            );
                        }
                        Next::Fixed(*not_taken)
                    }
                    _ => {
                        if cond.eval(&no_ccs, &sync) {
                            Next::Fixed(*taken)
                        } else {
                            Next::Fixed(*not_taken)
                        }
                    }
                },
            };
            nexts.push(Some(next));
        }

        // Expand: one successor per assignment of the forked CC bits.
        let mut out: Vec<usize> = Vec::new();
        for bits in 0..(1u32 << fork.len()) {
            let cc_of = |j: usize| -> bool {
                let pos = fork.iter().position(|&x| x == j).expect("forked");
                bits & (1 << pos) != 0
            };
            let mut pcs = Vec::with_capacity(width);
            let mut held_done = Vec::with_capacity(width);
            for (fu, next) in nexts.iter().enumerate() {
                match next {
                    None => {
                        pcs.push(None);
                        held_done.push(state.held_done[fu]);
                    }
                    Some(Next::Halted(done)) => {
                        pcs.push(None);
                        held_done.push(*done);
                    }
                    Some(Next::Fixed(t)) => {
                        pcs.push(Some(*t).filter(|a| in_range(*a)));
                        held_done.push(false);
                    }
                    Some(Next::CcDep {
                        j,
                        taken,
                        not_taken,
                    }) => {
                        let t = if cc_of(*j) { *taken } else { *not_taken };
                        pcs.push(Some(t).filter(|a| in_range(*a)));
                        held_done.push(false);
                    }
                }
            }
            let succ = State {
                pcs,
                held_done,
                cc_set: cc_next.clone(),
            };
            let ti = match index.get(&succ) {
                Some(&ti) => ti,
                None if states.len() >= config.max_states => {
                    truncated = true;
                    continue;
                }
                None => {
                    let ti = states.len();
                    states.push(succ.clone());
                    index.insert(succ, ti);
                    queue.push_back(ti);
                    ti
                }
            };
            if !out.contains(&ti) {
                out.push(ti);
            }
        }
        debug_assert_eq!(succs.len(), si);
        succs.push(out);
    }

    if truncated {
        diags.push(
            Diagnostic::new(
                Check::StateSpaceTruncated,
                Severity::Warning,
                format!(
                    "state space exceeds the cap of {} states; deadlock and \
                     termination results are incomplete",
                    config.max_states
                ),
            )
            .via(Engine::Product),
        );
        return InterpFacts {
            states_explored: states.len(),
            truncated,
            max_live_streams,
            race_keys: race_seen,
        };
    }

    // Termination: reverse reachability from the good terminals.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); states.len()];
    for (s, out) in succs.iter().enumerate() {
        for &t in out {
            preds[t].push(s);
        }
    }
    let mut can_finish = vec![false; states.len()];
    let mut back: VecDeque<usize> = VecDeque::new();
    for (s, state) in states.iter().enumerate() {
        if is_terminal(state, program) {
            can_finish[s] = true;
            back.push_back(s);
        }
    }
    while let Some(s) = back.pop_front() {
        for &p in &preds[s] {
            if !can_finish[p] {
                can_finish[p] = true;
                back.push_back(p);
            }
        }
    }

    // Report one finding per distinct stuck configuration (the multiset
    // of running (FU, address) pairs), capped to keep output readable.
    const MAX_STUCK_REPORTS: usize = 8;
    let mut stuck_seen: HashSet<Vec<(u8, u32)>> = HashSet::new();
    let mut suppressed = 0usize;
    for (s, state) in states.iter().enumerate() {
        if can_finish[s] {
            continue;
        }
        let mut signature: Vec<(u8, u32)> = state
            .pcs
            .iter()
            .enumerate()
            .filter_map(|(fu, pc)| pc.map(|a| (fu as u8, a.0)))
            .collect();
        signature.sort_unstable();
        if !stuck_seen.insert(signature.clone()) {
            continue;
        }
        if stuck_seen.len() > MAX_STUCK_REPORTS {
            suppressed += 1;
            continue;
        }
        let mut waits: Vec<String> = Vec::new();
        let mut anchor: Option<(Addr, FuId)> = None;
        for &(fu, a) in &signature {
            let (f, addr) = (FuId(fu), Addr(a));
            let parcel = program.parcel(addr, f).expect("in range");
            if let Some(cond) = parcel.ctrl.cond() {
                if !matches!(cond, CondSource::Cc(_)) {
                    waits.push(format!("{f} at {addr} waits on {}", cond_name(cond)));
                    anchor.get_or_insert((addr, f));
                }
            }
        }
        let running: Vec<String> = signature
            .iter()
            .map(|&(fu, a)| format!("{} at {}", FuId(fu), Addr(a)))
            .collect();
        if waits.is_empty() {
            let (fu, a) = signature[0];
            diags.push(
                Diagnostic::new(
                    Check::NoTermination,
                    Severity::Warning,
                    format!(
                        "no halt or park state is reachable from here (running: {})",
                        running.join(", ")
                    ),
                )
                .at(Addr(a), FuId(fu))
                .via(Engine::Product),
            );
        } else {
            let busy: Vec<String> = (0..width)
                .filter(|&j| state.pcs[j].is_none() && !state.held_done[j])
                .map(|j| format!("{} (halted, BUSY)", FuId(j as u8)))
                .collect();
            let mut message = format!("unreleasable synchronization: {}", waits.join("; "));
            if !busy.is_empty() {
                message.push_str(&format!("; {}", busy.join(", ")));
            }
            let (addr, fu) = anchor.expect("some wait");
            diags.push(
                Diagnostic::new(Check::SyncDeadlock, Severity::Error, message)
                    .at(addr, fu)
                    .via(Engine::Product),
            );
        }
    }
    if suppressed > 0 {
        diags.push(
            Diagnostic::new(
                Check::NoTermination,
                Severity::Warning,
                format!("{suppressed} further stuck configuration(s) not shown"),
            )
            .via(Engine::Product),
        );
    }

    InterpFacts {
        states_explored: states.len(),
        truncated,
        max_live_streams,
        race_keys: race_seen,
    }
}
