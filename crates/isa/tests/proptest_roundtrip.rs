//! Property tests: the binary parcel encoding round-trips losslessly for
//! every representable parcel, and display forms never panic.

use proptest::prelude::*;
use ximd_isa::encode::{decode_parcel, encode_parcel, ENC_MAX_ADDR, ENC_MAX_PORTS};
use ximd_isa::{
    Addr, AluOp, CmpOp, CondSource, ControlOp, DataOp, FuId, Operand, Parcel, Reg, SyncSignal,
    UnOp, Value,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u16..256).prop_map(Reg)
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(Value::I32),
        any::<u32>().prop_map(Value::from_bits_float),
    ]
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_reg().prop_map(Operand::Reg),
        arb_value().prop_map(Operand::Imm)
    ]
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(AluOp::ALL.to_vec())
}

fn arb_un() -> impl Strategy<Value = UnOp> {
    proptest::sample::select(UnOp::ALL.to_vec())
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    proptest::sample::select(CmpOp::ALL.to_vec())
}

fn arb_data() -> impl Strategy<Value = DataOp> {
    prop_oneof![
        Just(DataOp::Nop),
        (arb_alu(), arb_operand(), arb_operand(), arb_reg())
            .prop_map(|(op, a, b, d)| DataOp::Alu { op, a, b, d }),
        (arb_un(), arb_operand(), arb_reg()).prop_map(|(op, a, d)| DataOp::Un { op, a, d }),
        (arb_cmp(), arb_operand(), arb_operand()).prop_map(|(op, a, b)| DataOp::Cmp { op, a, b }),
        (arb_operand(), arb_operand(), arb_reg()).prop_map(|(a, b, d)| DataOp::Load { a, b, d }),
        (arb_operand(), arb_operand()).prop_map(|(a, b)| DataOp::Store { a, b }),
        (0u8..ENC_MAX_PORTS, arb_reg()).prop_map(|(port, d)| DataOp::PortIn { port, d }),
        (0u8..ENC_MAX_PORTS, arb_operand()).prop_map(|(port, a)| DataOp::PortOut { port, a }),
    ]
}

fn arb_addr() -> impl Strategy<Value = Addr> {
    (0u32..ENC_MAX_ADDR).prop_map(Addr)
}

fn arb_cond() -> impl Strategy<Value = CondSource> {
    prop_oneof![
        (0u8..32).prop_map(|f| CondSource::Cc(FuId(f))),
        (0u8..32).prop_map(|f| CondSource::Sync(FuId(f))),
        Just(CondSource::AllSync),
        Just(CondSource::AnySync),
    ]
}

fn arb_ctrl() -> impl Strategy<Value = ControlOp> {
    prop_oneof![
        arb_addr().prop_map(ControlOp::Goto),
        (arb_cond(), arb_addr(), arb_addr()).prop_map(|(cond, taken, not_taken)| {
            ControlOp::Branch {
                cond,
                taken,
                not_taken,
            }
        }),
        Just(ControlOp::Halt),
    ]
}

fn arb_parcel() -> impl Strategy<Value = Parcel> {
    (
        arb_data(),
        arb_ctrl(),
        prop_oneof![Just(SyncSignal::Busy), Just(SyncSignal::Done)],
    )
        .prop_map(|(data, ctrl, sync)| Parcel { data, ctrl, sync })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(parcel in arb_parcel()) {
        let word = encode_parcel(&parcel).expect("all generated parcels are encodable");
        let back = decode_parcel(word).expect("decode of encoded word");
        prop_assert_eq!(back, parcel);
    }

    #[test]
    fn encoded_word_fits_bit_budget(parcel in arb_parcel()) {
        let word = encode_parcel(&parcel).unwrap();
        prop_assert!(word < (1u128 << ximd_isa::encode::PARCEL_BITS));
    }

    #[test]
    fn display_never_panics(parcel in arb_parcel()) {
        let _ = parcel.to_string();
    }

    #[test]
    fn alu_eval_total_except_div_by_zero(op in arb_alu(), a in arb_value(), b in arb_value()) {
        match op.eval(a, b) {
            Ok(_) => {}
            Err(e) => {
                prop_assert_eq!(e, ximd_isa::IsaError::DivideByZero);
                prop_assert!(matches!(op, AluOp::Idiv | AluOp::Imod));
                prop_assert_eq!(b.as_i32(), 0);
            }
        }
    }

    #[test]
    fn cmp_eval_swapped_consistent(op in arb_cmp(), a in arb_value(), b in arb_value()) {
        prop_assert_eq!(op.eval(a, b), op.swapped().eval(b, a));
    }

    #[test]
    fn value_bits_roundtrip(bits in any::<u32>()) {
        prop_assert_eq!(Value::from_bits_int(bits).bits(), bits);
        prop_assert_eq!(Value::from_bits_float(bits).bits(), bits);
    }
}
