//! Control-path operations and synchronization signals.
//!
//! Each XIMD-1 instruction parcel carries, beside its data operation, a
//! control operation executed by the FU's private sequencer. The sequencer
//! has *no incrementer*: every parcel names two explicit branch targets `T1`
//! and `T2`, and a condition-selection field chooses between them. Conditions
//! are built from the globally distributed condition codes `CC_j` and
//! synchronization signals `SS_j` (paper §2.2, Figure 8).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::IsaError;
use crate::types::{Addr, FuId};

/// The per-FU synchronization signal `SS_i`.
///
/// Each parcel drives its FU's sync signal to `BUSY` or `DONE` for the cycle
/// it executes; the value is distributed to every sequencer and used by
/// barrier and non-blocking synchronizations (paper §3.3–3.4).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum SyncSignal {
    /// The FU has not reached its synchronization point.
    #[default]
    Busy,
    /// The FU has reached its synchronization point (or is exporting a
    /// "value ready" flag in the non-blocking protocol of Figure 12).
    Done,
}

impl SyncSignal {
    /// Returns `true` for [`SyncSignal::Done`].
    #[inline]
    pub fn is_done(self) -> bool {
        matches!(self, SyncSignal::Done)
    }
}

impl fmt::Display for SyncSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncSignal::Busy => write!(f, "BUSY"),
            SyncSignal::Done => write!(f, "DONE"),
        }
    }
}

/// The condition source of a conditional branch.
///
/// These are exactly the condition-selection criteria defined for XIMD-1
/// (paper §2.2): one condition code, one sync signal, the AND of all sync
/// signals, or the OR of all sync signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CondSource {
    /// `CC_j == TRUE` — branch on one condition code.
    Cc(FuId),
    /// `SS_j == DONE` — branch on one sync signal.
    Sync(FuId),
    /// `∏_j (SS_j == DONE)` — branch when **all** sync signals are DONE.
    AllSync,
    /// `∑_j (SS_j == DONE)` — branch when **any** sync signal is DONE.
    AnySync,
}

impl CondSource {
    /// Evaluates the condition against a snapshot of the distributed state.
    ///
    /// `ccs[j]` is `CC_j` and `sync[j]` is `SS_j` as visible *at the start of
    /// the cycle* (the simulator is responsible for that timing).
    ///
    /// # Panics
    ///
    /// Panics if the source names an FU outside the snapshot; programs are
    /// validated against the machine width before execution.
    pub fn eval(self, ccs: &[bool], sync: &[SyncSignal]) -> bool {
        match self {
            CondSource::Cc(fu) => ccs[fu.index()],
            CondSource::Sync(fu) => sync[fu.index()].is_done(),
            CondSource::AllSync => sync.iter().all(|s| s.is_done()),
            CondSource::AnySync => sync.iter().any(|s| s.is_done()),
        }
    }

    /// Validates FU references against a machine of `width` units.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::FuOutOfRange`] if the source names a unit outside
    /// the machine.
    pub fn validate(self, width: usize) -> Result<(), IsaError> {
        match self {
            CondSource::Cc(fu) | CondSource::Sync(fu) if fu.index() >= width => {
                Err(IsaError::FuOutOfRange { fu, width })
            }
            _ => Ok(()),
        }
    }
}

impl fmt::Display for CondSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondSource::Cc(fu) => write!(f, "cc{}", fu.0),
            CondSource::Sync(fu) => write!(f, "ss{}", fu.0),
            CondSource::AllSync => write!(f, "allss"),
            CondSource::AnySync => write!(f, "anyss"),
        }
    }
}

/// The control-path half of an instruction parcel.
///
/// # Example
///
/// The paper codes an unconditional branch as `-> 05:` and a conditional as
/// `if cc1 02: | 03:`; the [`Display`](fmt::Display) impl reproduces that
/// notation:
///
/// ```
/// use ximd_isa::{Addr, CondSource, ControlOp, FuId};
///
/// assert_eq!(ControlOp::Goto(Addr(5)).to_string(), "-> 05:");
/// let br = ControlOp::branch(CondSource::Cc(FuId(1)), Addr(2), Addr(3));
/// assert_eq!(br.to_string(), "if cc1 02: | 03:");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlOp {
    /// Unconditional branch to the target (the paper's `Target 1` /
    /// `Target 2` operations collapse to this form once targets are
    /// explicit).
    Goto(Addr),
    /// Conditional branch: `if cond` go to `taken`, else `not_taken`.
    Branch {
        /// The condition-selection criteria.
        cond: CondSource,
        /// Next address when the condition holds (`T1`).
        taken: Addr,
        /// Next address otherwise (`T2`).
        not_taken: Addr,
    },
    /// Stop this functional unit.
    ///
    /// XIMD-1 as published never stops (it is a research model); `halt` is
    /// the conventional simulator extension used by xsim-style tools to end
    /// a run. A halted FU keeps exporting its last `CC_i`/`SS_i` values.
    #[default]
    Halt,
}

impl ControlOp {
    /// Builds a conditional branch.
    pub fn branch(cond: CondSource, taken: Addr, not_taken: Addr) -> ControlOp {
        ControlOp::Branch {
            cond,
            taken,
            not_taken,
        }
    }

    /// Returns every address this operation may branch to.
    pub fn targets(&self) -> Vec<Addr> {
        match *self {
            ControlOp::Goto(t) => vec![t],
            ControlOp::Branch {
                taken, not_taken, ..
            } => vec![taken, not_taken],
            ControlOp::Halt => vec![],
        }
    }

    /// Returns the condition source, if this is a conditional branch.
    pub fn cond(&self) -> Option<CondSource> {
        match *self {
            ControlOp::Branch { cond, .. } => Some(cond),
            _ => None,
        }
    }

    /// Validates targets against a program of `len` instructions and FU
    /// references against a machine of `width` units.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::AddressOutOfRange`] or [`IsaError::FuOutOfRange`]
    /// on the first violation.
    pub fn validate(&self, len: u32, width: usize) -> Result<(), IsaError> {
        for t in self.targets() {
            if t.0 >= len {
                return Err(IsaError::AddressOutOfRange {
                    addr: t,
                    limit: len,
                });
            }
        }
        if let Some(cond) = self.cond() {
            cond.validate(width)?;
        }
        Ok(())
    }
}

impl fmt::Display for ControlOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControlOp::Goto(t) => write!(f, "-> {t}"),
            ControlOp::Branch {
                cond,
                taken,
                not_taken,
            } => {
                write!(f, "if {cond} {taken} | {not_taken}")
            }
            ControlOp::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: SyncSignal = SyncSignal::Busy;
    const D: SyncSignal = SyncSignal::Done;

    #[test]
    fn sync_signal_basics() {
        assert_eq!(SyncSignal::default(), B);
        assert!(D.is_done());
        assert!(!B.is_done());
        assert_eq!(D.to_string(), "DONE");
    }

    #[test]
    fn cond_cc_selects_named_unit() {
        let ccs = [false, true, false, false];
        let sync = [B; 4];
        assert!(CondSource::Cc(FuId(1)).eval(&ccs, &sync));
        assert!(!CondSource::Cc(FuId(0)).eval(&ccs, &sync));
    }

    #[test]
    fn cond_sync_single() {
        let ccs = [false; 4];
        let sync = [B, D, B, B];
        assert!(CondSource::Sync(FuId(1)).eval(&ccs, &sync));
        assert!(!CondSource::Sync(FuId(2)).eval(&ccs, &sync));
    }

    #[test]
    fn cond_all_sync_is_product() {
        let ccs = [false; 4];
        assert!(!CondSource::AllSync.eval(&ccs, &[D, D, B, D]));
        assert!(CondSource::AllSync.eval(&ccs, &[D, D, D, D]));
    }

    #[test]
    fn cond_any_sync_is_sum() {
        let ccs = [false; 4];
        assert!(CondSource::AnySync.eval(&ccs, &[B, B, D, B]));
        assert!(!CondSource::AnySync.eval(&ccs, &[B, B, B, B]));
    }

    #[test]
    fn all_sync_on_empty_machine_is_true_any_false() {
        // Degenerate but well-defined: product over empty set is TRUE.
        assert!(CondSource::AllSync.eval(&[], &[]));
        assert!(!CondSource::AnySync.eval(&[], &[]));
    }

    #[test]
    fn cond_validate_checks_fu_range() {
        assert!(CondSource::Cc(FuId(7)).validate(8).is_ok());
        assert_eq!(
            CondSource::Cc(FuId(8)).validate(8),
            Err(IsaError::FuOutOfRange {
                fu: FuId(8),
                width: 8
            })
        );
        assert!(CondSource::AllSync.validate(1).is_ok());
    }

    #[test]
    fn control_targets() {
        assert_eq!(ControlOp::Goto(Addr(3)).targets(), vec![Addr(3)]);
        let br = ControlOp::branch(CondSource::AllSync, Addr(1), Addr(2));
        assert_eq!(br.targets(), vec![Addr(1), Addr(2)]);
        assert!(ControlOp::Halt.targets().is_empty());
    }

    #[test]
    fn control_validate() {
        let br = ControlOp::branch(CondSource::Cc(FuId(0)), Addr(9), Addr(2));
        assert!(br.validate(10, 4).is_ok());
        assert_eq!(
            br.validate(9, 4),
            Err(IsaError::AddressOutOfRange {
                addr: Addr(9),
                limit: 9
            })
        );
        let bad_fu = ControlOp::branch(CondSource::Sync(FuId(5)), Addr(0), Addr(0));
        assert_eq!(
            bad_fu.validate(10, 4),
            Err(IsaError::FuOutOfRange {
                fu: FuId(5),
                width: 4
            })
        );
        assert!(ControlOp::Halt.validate(0, 0).is_ok());
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ControlOp::Goto(Addr(1)).to_string(), "-> 01:");
        let br = ControlOp::branch(CondSource::Cc(FuId(2)), Addr(8), Addr(2));
        assert_eq!(br.to_string(), "if cc2 08: | 02:");
        let all = ControlOp::branch(CondSource::AllSync, Addr(0x11), Addr(0x10));
        assert_eq!(all.to_string(), "if allss 11: | 10:");
    }
}
