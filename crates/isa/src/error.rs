//! Error type shared by ISA-level operations.

use std::fmt;

use crate::types::{Addr, FuId, Reg};

/// Errors raised while constructing, encoding or evaluating ISA entities.
///
/// # Example
///
/// ```
/// use ximd_isa::{IsaError, Reg};
///
/// let err = IsaError::RegisterOutOfRange { reg: Reg(200), num_regs: 64 };
/// assert!(err.to_string().contains("register r200"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A register index exceeds the configured register-file size.
    RegisterOutOfRange {
        /// The offending register.
        reg: Reg,
        /// The configured register-file size.
        num_regs: usize,
    },
    /// A functional-unit index exceeds the configured machine width.
    FuOutOfRange {
        /// The offending functional unit.
        fu: FuId,
        /// The configured machine width.
        width: usize,
    },
    /// A branch target does not fit the 16-bit encoded address field or the
    /// program's instruction memory.
    AddressOutOfRange {
        /// The offending address.
        addr: Addr,
        /// The exclusive upper bound that was violated.
        limit: u32,
    },
    /// An integer division or modulo by zero.
    ///
    /// XIMD-1 has no exception mechanism (the paper explicitly defers
    /// interrupt and exception handling), so the simulator surfaces this as a
    /// machine check instead of a trap.
    DivideByZero,
    /// A wide instruction's parcel count does not match the machine width.
    WidthMismatch {
        /// Parcels supplied.
        got: usize,
        /// Machine width expected.
        expected: usize,
    },
    /// An encoded parcel word contains an invalid field.
    Decode {
        /// Which field failed to decode.
        field: &'static str,
        /// The raw field value.
        raw: u64,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::RegisterOutOfRange { reg, num_regs } => {
                write!(f, "register r{} outside register file of {num_regs}", reg.0)
            }
            IsaError::FuOutOfRange { fu, width } => {
                write!(
                    f,
                    "functional unit {} outside machine of width {width}",
                    fu.0
                )
            }
            IsaError::AddressOutOfRange { addr, limit } => {
                write!(f, "address {:#06x} outside limit {limit:#06x}", addr.0)
            }
            IsaError::DivideByZero => write!(f, "integer divide by zero"),
            IsaError::WidthMismatch { got, expected } => {
                write!(
                    f,
                    "wide instruction has {got} parcels, machine width is {expected}"
                )
            }
            IsaError::Decode { field, raw } => {
                write!(f, "invalid encoded field {field}: {raw:#x}")
            }
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(IsaError, &str)> = vec![
            (
                IsaError::RegisterOutOfRange {
                    reg: Reg(42),
                    num_regs: 16,
                },
                "register r42",
            ),
            (
                IsaError::FuOutOfRange {
                    fu: FuId(9),
                    width: 8,
                },
                "functional unit 9",
            ),
            (
                IsaError::AddressOutOfRange {
                    addr: Addr(0x1_0000),
                    limit: 0x1_0000,
                },
                "address",
            ),
            (IsaError::DivideByZero, "divide by zero"),
            (
                IsaError::WidthMismatch {
                    got: 3,
                    expected: 8,
                },
                "3 parcels",
            ),
            (
                IsaError::Decode {
                    field: "opcode",
                    raw: 0xff,
                },
                "opcode",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg:?}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IsaError>();
    }
}
