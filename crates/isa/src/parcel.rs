//! Instruction parcels.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::control::{ControlOp, SyncSignal};
use crate::error::IsaError;
use crate::op::DataOp;

/// One functional unit's share of a wide instruction.
///
/// The paper defines the *instruction parcel* as "the set of instruction
/// fields which control each FU … the fields for the control path, data path,
/// and synchronization signals" (§2.4). Eight parcels comprise one
/// instruction on XIMD-1, whether or not they are issued from the same
/// physical address.
///
/// # Example
///
/// ```
/// use ximd_isa::{Addr, ControlOp, DataOp, Parcel, SyncSignal};
///
/// let p = Parcel::new(DataOp::Nop, ControlOp::Goto(Addr(4)), SyncSignal::Done);
/// assert_eq!(p.to_string(), "-> 04: ; nop ; DONE");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Parcel {
    /// The data-path operation.
    pub data: DataOp,
    /// The control-path operation.
    pub ctrl: ControlOp,
    /// The synchronization signal exported while this parcel executes.
    pub sync: SyncSignal,
}

impl Parcel {
    /// Builds a parcel from all three fields.
    pub fn new(data: DataOp, ctrl: ControlOp, sync: SyncSignal) -> Parcel {
        Parcel { data, ctrl, sync }
    }

    /// Builds a parcel exporting the default `BUSY` sync signal.
    pub fn data(data: DataOp, ctrl: ControlOp) -> Parcel {
        Parcel {
            data,
            ctrl,
            sync: SyncSignal::Busy,
        }
    }

    /// A parcel that performs no data operation and branches to `target`.
    pub fn goto(target: crate::Addr) -> Parcel {
        Parcel {
            data: DataOp::Nop,
            ctrl: ControlOp::Goto(target),
            sync: SyncSignal::Busy,
        }
    }

    /// A parcel that performs no data operation and halts its unit.
    pub fn halt() -> Parcel {
        Parcel {
            data: DataOp::Nop,
            ctrl: ControlOp::Halt,
            sync: SyncSignal::Busy,
        }
    }

    /// Returns a copy of this parcel exporting `DONE`.
    #[must_use]
    pub fn done(mut self) -> Parcel {
        self.sync = SyncSignal::Done;
        self
    }

    /// Validates this parcel against machine parameters.
    ///
    /// # Errors
    ///
    /// Propagates register, address and FU range errors from the data and
    /// control halves.
    pub fn validate(
        &self,
        program_len: u32,
        width: usize,
        num_regs: usize,
    ) -> Result<(), IsaError> {
        self.data.validate(num_regs)?;
        self.ctrl.validate(program_len, width)
    }
}

impl fmt::Display for Parcel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ; {} ; {}", self.ctrl, self.data, self.sync)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluOp, Operand};
    use crate::types::{Addr, Reg};

    #[test]
    fn constructors() {
        let p = Parcel::goto(Addr(7));
        assert_eq!(p.ctrl, ControlOp::Goto(Addr(7)));
        assert!(p.data.is_nop());
        assert_eq!(p.sync, SyncSignal::Busy);

        let h = Parcel::halt();
        assert_eq!(h.ctrl, ControlOp::Halt);

        let d = Parcel::goto(Addr(0)).done();
        assert_eq!(d.sync, SyncSignal::Done);
    }

    #[test]
    fn default_parcel_is_inert() {
        let p = Parcel::default();
        assert!(p.data.is_nop());
        assert_eq!(p.ctrl, ControlOp::Halt);
        assert_eq!(p.sync, SyncSignal::Busy);
    }

    #[test]
    fn validate_checks_all_fields() {
        let good = Parcel::data(
            DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(1), Reg(1)),
            ControlOp::Goto(Addr(0)),
        );
        assert!(good.validate(1, 4, 8).is_ok());

        let bad_reg = Parcel::data(
            DataOp::alu(AluOp::Iadd, Reg(99).into(), Operand::imm_i32(1), Reg(1)),
            ControlOp::Goto(Addr(0)),
        );
        assert!(bad_reg.validate(1, 4, 8).is_err());

        let bad_target = Parcel::goto(Addr(5));
        assert!(bad_target.validate(5, 4, 8).is_err());
    }

    #[test]
    fn display_shows_all_three_fields() {
        let p = Parcel::new(DataOp::Nop, ControlOp::Goto(Addr(1)), SyncSignal::Done);
        assert_eq!(p.to_string(), "-> 01: ; nop ; DONE");
    }
}
