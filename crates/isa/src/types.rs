//! Newtypes for registers, functional units and instruction addresses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A global register-file index.
///
/// XIMD-1 provides one flat, global register file shared by every functional
/// unit (256 registers in the research model, see
/// [`XIMD1_NUM_REGS`](crate::XIMD1_NUM_REGS)). Registers are displayed in the
/// conventional `rN` form.
///
/// # Example
///
/// ```
/// use ximd_isa::Reg;
///
/// assert_eq!(Reg(7).to_string(), "r7");
/// assert!(Reg(3) < Reg(4));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Reg(pub u16);

impl Reg {
    /// Returns the register index as a `usize`, for indexing register files.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl From<u16> for Reg {
    fn from(value: u16) -> Self {
        Reg(value)
    }
}

/// A functional-unit index.
///
/// The paper numbers functional units `FU0 … FU7`. Condition codes and sync
/// signals are addressed by the FU that owns them, so `FuId` doubles as the
/// name of `CC_i` and `SS_i`.
///
/// # Example
///
/// ```
/// use ximd_isa::FuId;
///
/// assert_eq!(FuId(2).to_string(), "FU2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FuId(pub u8);

impl FuId {
    /// Returns the unit index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FU{}", self.0)
    }
}

impl From<u8> for FuId {
    fn from(value: u8) -> Self {
        FuId(value)
    }
}

/// An instruction-memory address.
///
/// XIMD-1 sequencers have *no incrementer*: every parcel carries two explicit
/// branch targets, one of which becomes the next `PC`. Addresses display in
/// the paper's two-hex-digit, colon-suffixed style (`05:`) when small, and
/// plain hex otherwise.
///
/// # Example
///
/// ```
/// use ximd_isa::Addr;
///
/// assert_eq!(Addr(5).to_string(), "05:");
/// assert_eq!(Addr(0x1a2).to_string(), "1a2:");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u32);

impl Addr {
    /// Returns the address as a `usize`, for indexing instruction memory.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the address immediately after `self`.
    ///
    /// XIMD-1 hardware has no incrementer, but the assembler and compiler use
    /// fall-through targets pervasively when laying out code.
    #[inline]
    #[must_use]
    pub fn next(self) -> Addr {
        Addr(self.0 + 1)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}:", self.0)
    }
}

impl From<u32> for Addr {
    fn from(value: u32) -> Self {
        Addr(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_index() {
        assert_eq!(Reg(0).to_string(), "r0");
        assert_eq!(Reg(255).to_string(), "r255");
        assert_eq!(Reg(17).index(), 17);
    }

    #[test]
    fn fu_display_and_order() {
        assert_eq!(FuId(0).to_string(), "FU0");
        assert!(FuId(1) < FuId(2));
        assert_eq!(FuId::from(3u8), FuId(3));
    }

    #[test]
    fn addr_display_matches_paper_format() {
        assert_eq!(Addr(0).to_string(), "00:");
        assert_eq!(Addr(0x0a).to_string(), "0a:");
        assert_eq!(Addr(0x30).to_string(), "30:");
    }

    #[test]
    fn addr_next_increments() {
        assert_eq!(Addr(4).next(), Addr(5));
        assert_eq!(Addr(0).next().next(), Addr(2));
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Reg::from(9u16), Reg(9));
        assert_eq!(Addr::from(77u32), Addr(77));
    }
}
