//! Architectural data values.
//!
//! XIMD-1 supports exactly two data types: 32-bit two's-complement integers
//! and 32-bit IEEE-754 floats. Registers and memory words are untyped 32-bit
//! containers; the operation executed determines the interpretation, exactly
//! as on the hardware. [`Value`] keeps a typed view for ergonomic
//! construction and display while always being convertible to and from raw
//! bits.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 32-bit architectural value, viewed as integer or float.
///
/// `Value` is a *view* over a 32-bit word: [`Value::bits`] and
/// [`Value::from_bits_int`] / [`Value::from_bits_float`] convert losslessly,
/// so storing a float and reloading it as an integer reinterprets the bits,
/// matching the untyped register file of the machine.
///
/// # Example
///
/// ```
/// use ximd_isa::Value;
///
/// let v = Value::I32(-3);
/// assert_eq!(v.as_i32(), -3);
/// assert_eq!(Value::from_bits_int(v.bits()), v);
///
/// let f = Value::F32(1.5);
/// assert_eq!(f.as_f32(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum Value {
    /// 32-bit two's-complement integer.
    I32(i32),
    /// 32-bit IEEE-754 float.
    F32(f32),
}

impl Value {
    /// The integer zero, the reset value of every register.
    pub const ZERO: Value = Value::I32(0);

    /// Returns the raw 32-bit register image of this value.
    #[inline]
    pub fn bits(self) -> u32 {
        match self {
            Value::I32(v) => v as u32,
            Value::F32(v) => v.to_bits(),
        }
    }

    /// Reinterprets raw bits as an integer value.
    #[inline]
    pub fn from_bits_int(bits: u32) -> Value {
        Value::I32(bits as i32)
    }

    /// Reinterprets raw bits as a float value.
    #[inline]
    pub fn from_bits_float(bits: u32) -> Value {
        Value::F32(f32::from_bits(bits))
    }

    /// Returns this value viewed as an integer (bit reinterpretation for
    /// floats, as the hardware would).
    #[inline]
    pub fn as_i32(self) -> i32 {
        self.bits() as i32
    }

    /// Returns this value viewed as a float (bit reinterpretation for
    /// integers, as the hardware would).
    #[inline]
    pub fn as_f32(self) -> f32 {
        f32::from_bits(self.bits())
    }

    /// Returns `true` if the stored variant is [`Value::F32`].
    ///
    /// This is metadata for pretty-printing only; the machine itself is
    /// untyped.
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, Value::F32(_))
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::ZERO
    }
}

impl PartialEq for Value {
    /// Bit-level equality: two values are equal iff their register images
    /// are identical. (`F32(0.0) != F32(-0.0)`, and `F32(NaN) == F32(NaN)`
    /// for the *same* NaN payload — register-file semantics, not IEEE
    /// comparison. Use [`crate::CmpOp`] evaluation for IEEE comparisons.)
    fn eq(&self, other: &Self) -> bool {
        self.bits() == other.bits()
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.bits().hash(state);
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v:?}"),
        }
    }
}

impl From<i32> for Value {
    fn from(value: i32) -> Self {
        Value::I32(value)
    }
}

impl From<f32> for Value {
    fn from(value: f32) -> Self {
        Value::F32(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip_int() {
        for v in [0, 1, -1, i32::MIN, i32::MAX, 123_456] {
            let val = Value::I32(v);
            assert_eq!(Value::from_bits_int(val.bits()), val);
            assert_eq!(val.as_i32(), v);
        }
    }

    #[test]
    fn bits_roundtrip_float() {
        for v in [0.0f32, -0.0, 1.5, -3.25, f32::INFINITY, f32::MIN_POSITIVE] {
            let val = Value::F32(v);
            assert_eq!(
                Value::from_bits_float(val.bits()).as_f32().to_bits(),
                v.to_bits()
            );
        }
    }

    #[test]
    fn reinterpretation_is_bitwise() {
        let f = Value::F32(1.0);
        assert_eq!(f.as_i32(), 0x3f80_0000);
        let i = Value::I32(0x3f80_0000);
        assert_eq!(i.as_f32(), 1.0);
    }

    #[test]
    fn equality_is_bit_level() {
        assert_eq!(Value::I32(0x3f80_0000), Value::F32(1.0));
        assert_ne!(Value::F32(0.0), Value::F32(-0.0));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Value::default(), Value::ZERO);
        assert_eq!(Value::default().bits(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::I32(-7).to_string(), "-7");
        assert_eq!(Value::F32(1.5).to_string(), "1.5");
    }

    #[test]
    fn from_primitives() {
        assert_eq!(Value::from(4i32), Value::I32(4));
        assert_eq!(Value::from(2.0f32), Value::F32(2.0));
    }
}
