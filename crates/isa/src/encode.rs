//! Dense binary parcel encoding.
//!
//! The paper's prototype stores each FU's parcel in a private portion of
//! instruction memory. This module defines a reference 127-bit binary format
//! (packed in a `u128`) with a lossless round-trip, used by the workspace to
//! measure instruction-memory footprints and to exercise store/reload paths.
//!
//! Field layout (LSB first):
//!
//! | bits | field |
//! |------|-------|
//! | 0..3    | data kind (nop/alu/un/cmp/load/store/in/out) |
//! | 3..8    | opcode index |
//! | 8..10   | operand-A mode (reg / int imm / float imm) |
//! | 10..42  | operand-A payload |
//! | 42..44  | operand-B mode |
//! | 44..76  | operand-B payload |
//! | 76..84  | destination register |
//! | 84..89  | I/O port |
//! | 89..91  | control kind (goto/branch/halt) |
//! | 91..93  | condition kind (cc/ss/all/any) |
//! | 93..98  | condition FU |
//! | 98..112 | branch target T1 |
//! | 112..126| branch target T2 |
//! | 126..127| sync signal |
//!
//! Encoded limits: 256 registers, 32 ports, 32 functional units, and 16384
//! instruction addresses — all strictly larger than the XIMD-1 research
//! model needs.

use crate::control::{CondSource, ControlOp, SyncSignal};
use crate::error::IsaError;
use crate::op::{AluOp, CmpOp, DataOp, Operand, UnOp};
use crate::parcel::Parcel;
use crate::types::{Addr, FuId, Reg};
use crate::value::Value;

/// Maximum encodable register index + 1.
pub const ENC_MAX_REGS: usize = 256;
/// Maximum encodable instruction address + 1.
pub const ENC_MAX_ADDR: u32 = 1 << 14;
/// Maximum encodable functional-unit index + 1.
pub const ENC_MAX_FUS: usize = 32;
/// Maximum encodable I/O port index + 1.
pub const ENC_MAX_PORTS: u8 = 32;

/// Size of one encoded parcel in bits.
pub const PARCEL_BITS: u32 = 127;

fn put(word: &mut u128, lo: u32, width: u32, value: u128) {
    debug_assert!(value < (1 << width));
    *word |= value << lo;
}

fn get(word: u128, lo: u32, width: u32) -> u64 {
    ((word >> lo) & ((1u128 << width) - 1)) as u64
}

fn enc_reg(r: Reg) -> Result<u128, IsaError> {
    if r.index() >= ENC_MAX_REGS {
        return Err(IsaError::RegisterOutOfRange {
            reg: r,
            num_regs: ENC_MAX_REGS,
        });
    }
    Ok(r.0 as u128)
}

fn enc_addr(a: Addr) -> Result<u128, IsaError> {
    if a.0 >= ENC_MAX_ADDR {
        return Err(IsaError::AddressOutOfRange {
            addr: a,
            limit: ENC_MAX_ADDR,
        });
    }
    Ok(a.0 as u128)
}

fn enc_operand(o: Operand) -> Result<(u128, u128), IsaError> {
    Ok(match o {
        Operand::Reg(r) => (0, enc_reg(r)?),
        Operand::Imm(Value::I32(v)) => (1, v as u32 as u128),
        Operand::Imm(Value::F32(v)) => (2, v.to_bits() as u128),
    })
}

fn dec_operand(mode: u64, payload: u64) -> Result<Operand, IsaError> {
    Ok(match mode {
        0 => Operand::Reg(Reg(payload as u16)),
        1 => Operand::Imm(Value::from_bits_int(payload as u32)),
        2 => Operand::Imm(Value::from_bits_float(payload as u32)),
        _ => {
            return Err(IsaError::Decode {
                field: "operand mode",
                raw: mode,
            })
        }
    })
}

/// Encodes one parcel into its 127-bit binary image.
///
/// # Errors
///
/// Returns a range error if a register, port, FU or branch target exceeds
/// the encoded field widths (see module docs).
///
/// # Example
///
/// ```
/// use ximd_isa::encode::{encode_parcel, decode_parcel};
/// use ximd_isa::{Addr, Parcel};
///
/// let p = Parcel::goto(Addr(3)).done();
/// let word = encode_parcel(&p)?;
/// assert_eq!(decode_parcel(word)?, p);
/// # Ok::<(), ximd_isa::IsaError>(())
/// ```
pub fn encode_parcel(parcel: &Parcel) -> Result<u128, IsaError> {
    let mut w = 0u128;

    // Data half.
    match parcel.data {
        DataOp::Nop => {}
        DataOp::Alu { op, a, b, d } => {
            put(&mut w, 0, 3, 1);
            let idx = AluOp::ALL
                .iter()
                .position(|&o| o == op)
                .expect("opcode in table") as u128;
            put(&mut w, 3, 5, idx);
            let (am, ap) = enc_operand(a)?;
            let (bm, bp) = enc_operand(b)?;
            put(&mut w, 8, 2, am);
            put(&mut w, 10, 32, ap);
            put(&mut w, 42, 2, bm);
            put(&mut w, 44, 32, bp);
            put(&mut w, 76, 8, enc_reg(d)?);
        }
        DataOp::Un { op, a, d } => {
            put(&mut w, 0, 3, 2);
            let idx = UnOp::ALL
                .iter()
                .position(|&o| o == op)
                .expect("opcode in table") as u128;
            put(&mut w, 3, 5, idx);
            let (am, ap) = enc_operand(a)?;
            put(&mut w, 8, 2, am);
            put(&mut w, 10, 32, ap);
            put(&mut w, 76, 8, enc_reg(d)?);
        }
        DataOp::Cmp { op, a, b } => {
            put(&mut w, 0, 3, 3);
            let idx = CmpOp::ALL
                .iter()
                .position(|&o| o == op)
                .expect("opcode in table") as u128;
            put(&mut w, 3, 5, idx);
            let (am, ap) = enc_operand(a)?;
            let (bm, bp) = enc_operand(b)?;
            put(&mut w, 8, 2, am);
            put(&mut w, 10, 32, ap);
            put(&mut w, 42, 2, bm);
            put(&mut w, 44, 32, bp);
        }
        DataOp::Load { a, b, d } => {
            put(&mut w, 0, 3, 4);
            let (am, ap) = enc_operand(a)?;
            let (bm, bp) = enc_operand(b)?;
            put(&mut w, 8, 2, am);
            put(&mut w, 10, 32, ap);
            put(&mut w, 42, 2, bm);
            put(&mut w, 44, 32, bp);
            put(&mut w, 76, 8, enc_reg(d)?);
        }
        DataOp::Store { a, b } => {
            put(&mut w, 0, 3, 5);
            let (am, ap) = enc_operand(a)?;
            let (bm, bp) = enc_operand(b)?;
            put(&mut w, 8, 2, am);
            put(&mut w, 10, 32, ap);
            put(&mut w, 42, 2, bm);
            put(&mut w, 44, 32, bp);
        }
        DataOp::PortIn { port, d } => {
            if port >= ENC_MAX_PORTS {
                return Err(IsaError::Decode {
                    field: "port",
                    raw: port as u64,
                });
            }
            put(&mut w, 0, 3, 6);
            put(&mut w, 76, 8, enc_reg(d)?);
            put(&mut w, 84, 5, port as u128);
        }
        DataOp::PortOut { port, a } => {
            if port >= ENC_MAX_PORTS {
                return Err(IsaError::Decode {
                    field: "port",
                    raw: port as u64,
                });
            }
            put(&mut w, 0, 3, 7);
            let (am, ap) = enc_operand(a)?;
            put(&mut w, 8, 2, am);
            put(&mut w, 10, 32, ap);
            put(&mut w, 84, 5, port as u128);
        }
    }

    // Control half.
    match parcel.ctrl {
        ControlOp::Goto(t) => {
            put(&mut w, 89, 2, 0);
            put(&mut w, 98, 14, enc_addr(t)?);
        }
        ControlOp::Branch {
            cond,
            taken,
            not_taken,
        } => {
            put(&mut w, 89, 2, 1);
            let (ck, cf): (u128, u128) = match cond {
                CondSource::Cc(fu) => (0, fu.0 as u128),
                CondSource::Sync(fu) => (1, fu.0 as u128),
                CondSource::AllSync => (2, 0),
                CondSource::AnySync => (3, 0),
            };
            if cf >= ENC_MAX_FUS as u128 {
                return Err(IsaError::FuOutOfRange {
                    fu: FuId(cf as u8),
                    width: ENC_MAX_FUS,
                });
            }
            put(&mut w, 91, 2, ck);
            put(&mut w, 93, 5, cf);
            put(&mut w, 98, 14, enc_addr(taken)?);
            put(&mut w, 112, 14, enc_addr(not_taken)?);
        }
        ControlOp::Halt => {
            put(&mut w, 89, 2, 2);
        }
    }

    if parcel.sync.is_done() {
        put(&mut w, 126, 1, 1);
    }
    Ok(w)
}

/// Decodes a 127-bit parcel image produced by [`encode_parcel`].
///
/// # Errors
///
/// Returns [`IsaError::Decode`] if a kind, opcode or mode field holds an
/// out-of-table value.
pub fn decode_parcel(word: u128) -> Result<Parcel, IsaError> {
    let kind = get(word, 0, 3);
    let opcode = get(word, 3, 5) as usize;
    let am = get(word, 8, 2);
    let ap = get(word, 10, 32);
    let bm = get(word, 42, 2);
    let bp = get(word, 44, 32);
    let d = Reg(get(word, 76, 8) as u16);
    let port = get(word, 84, 5) as u8;

    let data = match kind {
        0 => DataOp::Nop,
        1 => {
            let op = *AluOp::ALL.get(opcode).ok_or(IsaError::Decode {
                field: "alu opcode",
                raw: opcode as u64,
            })?;
            DataOp::Alu {
                op,
                a: dec_operand(am, ap)?,
                b: dec_operand(bm, bp)?,
                d,
            }
        }
        2 => {
            let op = *UnOp::ALL.get(opcode).ok_or(IsaError::Decode {
                field: "unary opcode",
                raw: opcode as u64,
            })?;
            DataOp::Un {
                op,
                a: dec_operand(am, ap)?,
                d,
            }
        }
        3 => {
            let op = *CmpOp::ALL.get(opcode).ok_or(IsaError::Decode {
                field: "cmp opcode",
                raw: opcode as u64,
            })?;
            DataOp::Cmp {
                op,
                a: dec_operand(am, ap)?,
                b: dec_operand(bm, bp)?,
            }
        }
        4 => DataOp::Load {
            a: dec_operand(am, ap)?,
            b: dec_operand(bm, bp)?,
            d,
        },
        5 => DataOp::Store {
            a: dec_operand(am, ap)?,
            b: dec_operand(bm, bp)?,
        },
        6 => DataOp::PortIn { port, d },
        7 => DataOp::PortOut {
            port,
            a: dec_operand(am, ap)?,
        },
        _ => unreachable!("3-bit field"),
    };

    let t1 = Addr(get(word, 98, 14) as u32);
    let t2 = Addr(get(word, 112, 14) as u32);
    let ctrl = match get(word, 89, 2) {
        0 => ControlOp::Goto(t1),
        1 => {
            let fu = FuId(get(word, 93, 5) as u8);
            let cond = match get(word, 91, 2) {
                0 => CondSource::Cc(fu),
                1 => CondSource::Sync(fu),
                2 => CondSource::AllSync,
                3 => CondSource::AnySync,
                _ => unreachable!("2-bit field"),
            };
            ControlOp::Branch {
                cond,
                taken: t1,
                not_taken: t2,
            }
        }
        2 => ControlOp::Halt,
        raw => {
            return Err(IsaError::Decode {
                field: "control kind",
                raw,
            })
        }
    };

    let sync = if get(word, 126, 1) == 1 {
        SyncSignal::Done
    } else {
        SyncSignal::Busy
    };
    Ok(Parcel { data, ctrl, sync })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Operand;

    fn roundtrip(p: Parcel) {
        let word = encode_parcel(&p).unwrap();
        assert_eq!(decode_parcel(word).unwrap(), p, "word {word:#034x}");
    }

    #[test]
    fn roundtrip_simple_parcels() {
        roundtrip(Parcel::halt());
        roundtrip(Parcel::goto(Addr(0)));
        roundtrip(Parcel::goto(Addr(ENC_MAX_ADDR - 1)).done());
    }

    #[test]
    fn roundtrip_all_alu_opcodes() {
        for op in AluOp::ALL {
            roundtrip(Parcel::data(
                DataOp::alu(op, Reg(255).into(), Operand::imm_i32(-1), Reg(0)),
                ControlOp::Goto(Addr(1)),
            ));
        }
    }

    #[test]
    fn roundtrip_all_unary_opcodes() {
        for op in UnOp::ALL {
            roundtrip(Parcel::data(
                DataOp::un(op, Operand::imm_f32(-0.5), Reg(17)),
                ControlOp::Halt,
            ));
        }
    }

    #[test]
    fn roundtrip_all_cmp_opcodes_and_branches() {
        for (i, op) in CmpOp::ALL.into_iter().enumerate() {
            let cond = match i % 4 {
                0 => CondSource::Cc(FuId(7)),
                1 => CondSource::Sync(FuId(3)),
                2 => CondSource::AllSync,
                _ => CondSource::AnySync,
            };
            roundtrip(Parcel::new(
                DataOp::cmp(op, Reg(1).into(), Reg(2).into()),
                ControlOp::branch(cond, Addr(10), Addr(20)),
                SyncSignal::Done,
            ));
        }
    }

    #[test]
    fn roundtrip_memory_and_ports() {
        roundtrip(Parcel::data(
            DataOp::load(Operand::imm_i32(1024), Reg(4).into(), Reg(5)),
            ControlOp::Goto(Addr(2)),
        ));
        roundtrip(Parcel::data(
            DataOp::store(Reg(6).into(), Operand::imm_i32(i32::MIN)),
            ControlOp::Goto(Addr(2)),
        ));
        roundtrip(Parcel::data(
            DataOp::PortIn {
                port: 31,
                d: Reg(9),
            },
            ControlOp::Halt,
        ));
        roundtrip(Parcel::data(
            DataOp::PortOut {
                port: 0,
                a: Operand::imm_f32(2.5),
            },
            ControlOp::Halt,
        ));
    }

    #[test]
    fn encode_rejects_out_of_range_fields() {
        let big_reg = Parcel::data(
            DataOp::un(UnOp::Mov, Reg(0).into(), Reg(256)),
            ControlOp::Halt,
        );
        assert!(encode_parcel(&big_reg).is_err());

        let big_addr = Parcel::goto(Addr(ENC_MAX_ADDR));
        assert!(encode_parcel(&big_addr).is_err());

        let big_port = Parcel::data(
            DataOp::PortIn {
                port: 32,
                d: Reg(0),
            },
            ControlOp::Halt,
        );
        assert!(encode_parcel(&big_port).is_err());
    }

    #[test]
    fn decode_rejects_garbage_opcode() {
        // kind=1 (alu) with opcode index 31 (out of table).
        let mut w = 0u128;
        put(&mut w, 0, 3, 1);
        put(&mut w, 3, 5, 31);
        assert!(matches!(
            decode_parcel(w),
            Err(IsaError::Decode {
                field: "alu opcode",
                ..
            })
        ));
    }

    #[test]
    fn decode_rejects_garbage_control_kind() {
        let mut w = 0u128;
        put(&mut w, 89, 2, 3);
        assert!(matches!(
            decode_parcel(w),
            Err(IsaError::Decode {
                field: "control kind",
                ..
            })
        ));
    }

    #[test]
    fn encoding_fits_declared_bit_budget() {
        let p = Parcel::new(
            DataOp::alu(
                AluOp::Fdiv,
                Operand::imm_f32(f32::MIN),
                Operand::imm_f32(f32::MAX),
                Reg(255),
            ),
            ControlOp::branch(
                CondSource::AnySync,
                Addr(ENC_MAX_ADDR - 1),
                Addr(ENC_MAX_ADDR - 1),
            ),
            SyncSignal::Done,
        );
        let w = encode_parcel(&p).unwrap();
        assert!(w < (1u128 << PARCEL_BITS));
    }
}
