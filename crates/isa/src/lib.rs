//! Instruction-set architecture model for the **XIMD-1** research machine.
//!
//! XIMD ("Variable Instruction Stream, Multiple Data Stream") is the
//! VLIW extension proposed by Wolfe & Shen at ASPLOS 1991. Structurally it is
//! a VLIW: a set of homogeneous functional units (FUs) sharing a global,
//! multi-ported register file, each controlled by an independent field — an
//! *instruction parcel* — of a very long instruction word. The XIMD twist is
//! that the single global sequencer is replicated per FU, so each FU selects
//! its own parcel through a private program counter. Shared 1-bit condition
//! codes (`CC_i`) and synchronization signals (`SS_i`) let the compiler weave
//! the FUs into anywhere from one lock-step stream (VLIW emulation) to N
//! independent streams (MIMD emulation), varying cycle by cycle.
//!
//! This crate defines the architectural vocabulary shared by the assembler
//! ([`ximd-asm`]), the simulators ([`ximd-sim`]) and the compiler
//! ([`ximd-compiler`]):
//!
//! * [`Reg`], [`FuId`], [`Addr`] — newtypes for registers, functional units
//!   and instruction addresses;
//! * [`Value`] — the two architectural data types (32-bit integer and 32-bit
//!   float) with the paper's single-cycle operation semantics;
//! * [`DataOp`] — the data-path operation of a parcel (ALU, compare, memory);
//! * [`ControlOp`] and [`CondSource`] — the control-path operation: two
//!   explicit branch targets selected by a condition built from condition
//!   codes and sync signals (there is *no* PC incrementer in XIMD-1);
//! * [`SyncSignal`] — the per-FU `BUSY`/`DONE` signal used for barriers and
//!   non-blocking synchronization;
//! * [`Parcel`], [`WideInstruction`], [`Program`] — instruction memory;
//! * [`encode`] — a dense 128-bit binary encoding with lossless round-trip.
//!
//! # Example
//!
//! Build a two-FU program where FU0 computes `r2 = r0 + r1` and both units
//! halt:
//!
//! ```
//! use ximd_isa::{Addr, ControlOp, DataOp, Operand, Parcel, Program, Reg, AluOp};
//!
//! let mut program = Program::new(2);
//! program.push(vec![
//!     Parcel::data(
//!         DataOp::alu(AluOp::Iadd, Operand::Reg(Reg(0)), Operand::Reg(Reg(1)), Reg(2)),
//!         ControlOp::Halt,
//!     ),
//!     Parcel::data(DataOp::Nop, ControlOp::Halt),
//! ]);
//! assert_eq!(program.len(), 1);
//! assert_eq!(program.width(), 2);
//! ```
//!
//! [`ximd-asm`]: https://example.invalid/ximd
//! [`ximd-sim`]: https://example.invalid/ximd
//! [`ximd-compiler`]: https://example.invalid/ximd

pub mod cert;
pub mod control;
pub mod encode;
pub mod error;
pub mod op;
pub mod parcel;
pub mod program;
pub mod types;
pub mod value;

pub use control::{CondSource, ControlOp, SyncSignal};
pub use error::IsaError;
pub use op::{AluOp, CmpOp, DataOp, LatencyClass, Operand, UnOp};
pub use parcel::Parcel;
pub use program::{Program, WideInstruction};
pub use types::{Addr, FuId, Reg};
pub use value::Value;

/// Number of functional units in the XIMD-1 research model.
///
/// The paper's research model and hardware prototype both contain eight
/// homogeneous universal functional units; the published code examples use
/// four "for clarity". Machine width is configurable throughout this
/// workspace, with this constant as the canonical default.
pub const XIMD1_NUM_FUS: usize = 8;

/// Number of registers in the global register file.
///
/// The XIMD-1 prototype's custom register-file chip holds 256 global
/// registers with 16 read and 8 write ports (2 reads + 1 write per FU).
pub const XIMD1_NUM_REGS: usize = 256;

/// Register-file read ports available to each functional unit per cycle.
pub const READS_PER_FU: usize = 2;

/// Register-file write ports available to each functional unit per cycle.
pub const WRITES_PER_FU: usize = 1;
