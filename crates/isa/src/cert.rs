//! Schedule certificates — the compiler's machine-checkable claim about how
//! source operations were placed into the emitted program.
//!
//! A certificate travels *with* the untrusted artifact: it is rendered as
//! `// ximd-cert:` comment lines prepended to the emitted assembly, which
//! the assembler ignores and any tool holding the source can recover. The
//! certificate records only what the checker cannot re-derive from the
//! binary — the identity and source order of the operations the compiler
//! claims to have scheduled, the region structure (straight-line block vs.
//! modulo-pipelined loop), speculation guards introduced by percolation,
//! and for pipelined loops the claimed initiation interval, stage count and
//! the roles of the induction/trip-count/kernel-count registers. Everything
//! else — where each op actually landed, the dependence edges between the
//! located ops, row chaining, branch wiring — is re-derived from the
//! emitted program by `ximd-analysis`'s certify pass and checked against
//! these claims.
//!
//! Data operations are serialized losslessly as the hex image of the
//! parcel encoding ([`crate::encode::encode_parcel`] with a `halt` control
//! half), so the claimed op compares bit-exactly against the located one.
//!
//! # Example
//!
//! ```
//! use ximd_isa::cert::{Region, ScheduleCertificate, TermClaim};
//!
//! let cert = ScheduleCertificate {
//!     width: 4,
//!     regions: vec![Region::Block {
//!         base: 0,
//!         rows: 1,
//!         ops: vec![],
//!         cmp: None,
//!         term: TermClaim::Halt,
//!     }],
//! };
//! let text = cert.render();
//! assert!(text.starts_with("// ximd-cert: v1"));
//! let back = ScheduleCertificate::parse(&text).unwrap().unwrap();
//! assert_eq!(back, cert);
//! ```

use std::fmt::Write as _;

use crate::control::ControlOp;
use crate::encode::{decode_parcel, encode_parcel};
use crate::op::DataOp;
use crate::parcel::Parcel;

/// The line prefix that marks a certificate directive in assembly source.
pub const CERT_PREFIX: &str = "// ximd-cert:";

/// One source operation's claimed placement inside a block region.
#[derive(Debug, Clone, PartialEq)]
pub struct OpClaim {
    /// The data operation, exactly as the compiler lowered it.
    pub op: DataOp,
    /// Claimed row, relative to the region base.
    pub row: u32,
    /// Claimed functional unit.
    pub fu: u32,
    /// Absolute addresses of the *other* control-flow paths this op was
    /// speculatively hoisted above (empty for non-speculated ops). The
    /// checker must prove the op's destination is dead along each of them.
    pub spec: Vec<u32>,
}

/// The claimed terminator of a block region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermClaim {
    /// Falls through to an absolute address.
    Goto(u32),
    /// Conditional branch on `cc<fu>` between two absolute addresses.
    Branch {
        /// The FU whose condition code the branch reads.
        fu: u32,
        /// Absolute taken target.
        taken: u32,
        /// Absolute not-taken target.
        not_taken: u32,
    },
    /// The region halts the machine.
    Halt,
}

/// The claimed placement of a block region's terminating comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CmpClaim {
    /// The compare operation.
    pub op: DataOp,
    /// Claimed row, relative to the region base.
    pub row: u32,
    /// Claimed functional unit.
    pub fu: u32,
}

/// One certified region of the emitted program.
#[derive(Debug, Clone, PartialEq)]
pub enum Region {
    /// A straight-line scheduled basic block: `rows` consecutive wide
    /// instructions starting at `base`, executing in lockstep.
    Block {
        /// Absolute address of the first row.
        base: u32,
        /// Number of rows the region occupies.
        rows: u32,
        /// Source operations in source order.
        ops: Vec<OpClaim>,
        /// The terminating comparison, when `term` is a branch.
        cmp: Option<CmpClaim>,
        /// The claimed terminator.
        term: TermClaim,
    },
    /// A modulo-pipelined counted loop: init rows, prologue, `ii`-row
    /// kernel and epilogue, laid out contiguously from `base`.
    Pipelined {
        /// Absolute address of the first init row.
        base: u32,
        /// Claimed initiation interval.
        ii: u32,
        /// Claimed stage count.
        stages: u32,
        /// Number of init rows before the prologue.
        init_rows: u32,
        /// Absolute address execution continues at after the loop.
        exit: u32,
        /// Whether the scheduler assumed loop memory accesses don't alias
        /// (a recorded *assumption*, trusted — not re-derived).
        assume_no_alias: bool,
        /// Loop-body operations in source order with claimed issue times
        /// (cycles from kernel steady-state zero, as solved).
        nodes: Vec<(u32, DataOp)>,
        /// The induction increment and its claimed time.
        inc: (u32, DataOp),
        /// The kernel-count decrement and its claimed time.
        dec: (u32, DataOp),
        /// The loop-back compare and its claimed time.
        cmp: (u32, DataOp),
        /// Architectural register holding the induction variable.
        induction: u16,
        /// Architectural register holding the trip count.
        trips: u16,
        /// Architectural register holding the kernel count.
        kc: u16,
    },
}

impl Region {
    /// Absolute address of the region's first row.
    pub fn base(&self) -> u32 {
        match self {
            Region::Block { base, .. } | Region::Pipelined { base, .. } => *base,
        }
    }
}

/// A complete schedule certificate for one emitted program.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleCertificate {
    /// Machine width the program was compiled for.
    pub width: u32,
    /// Certified regions, in emission order.
    pub regions: Vec<Region>,
}

fn op_hex(op: &DataOp) -> String {
    let word = encode_parcel(&Parcel::data(*op, ControlOp::Halt))
        .expect("certificate data op must be encodable");
    format!("{word:032x}")
}

fn op_from_hex(hex: &str) -> Result<DataOp, String> {
    let word = u128::from_str_radix(hex, 16).map_err(|e| format!("bad op image {hex:?}: {e}"))?;
    decode_parcel(word)
        .map(|p| p.data)
        .map_err(|e| format!("bad op image {hex:?}: {e}"))
}

impl ScheduleCertificate {
    /// Renders the certificate as `// ximd-cert:` directive lines, ready to
    /// prepend to the emitted assembly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut line = |body: &str| {
            let _ = writeln!(out, "{CERT_PREFIX} {body}");
        };
        line(&format!(
            "v1 width={} regions={}",
            self.width,
            self.regions.len()
        ));
        for region in &self.regions {
            match region {
                Region::Block {
                    base,
                    rows,
                    ops,
                    cmp,
                    term,
                } => {
                    let term_s = match term {
                        TermClaim::Goto(t) => format!("goto:{t}"),
                        TermClaim::Branch {
                            fu,
                            taken,
                            not_taken,
                        } => format!("branch:{fu}:{taken}:{not_taken}"),
                        TermClaim::Halt => "halt".to_string(),
                    };
                    line(&format!("block base={base} rows={rows} term={term_s}"));
                    for op in ops {
                        let spec = if op.spec.is_empty() {
                            String::new()
                        } else {
                            let addrs: Vec<String> =
                                op.spec.iter().map(|a| a.to_string()).collect();
                            format!(" spec={}", addrs.join(","))
                        };
                        line(&format!(
                            "op row={} fu={}{spec} {}",
                            op.row,
                            op.fu,
                            op_hex(&op.op)
                        ));
                    }
                    if let Some(c) = cmp {
                        line(&format!("cmp row={} fu={} {}", c.row, c.fu, op_hex(&c.op)));
                    }
                }
                Region::Pipelined {
                    base,
                    ii,
                    stages,
                    init_rows,
                    exit,
                    assume_no_alias,
                    nodes,
                    inc,
                    dec,
                    cmp,
                    induction,
                    trips,
                    kc,
                } => {
                    line(&format!(
                        "pipe base={base} ii={ii} stages={stages} init={init_rows} \
                         exit={exit} alias={}",
                        u32::from(*assume_no_alias)
                    ));
                    for (t, op) in nodes {
                        line(&format!("node t={t} {}", op_hex(op)));
                    }
                    line(&format!("inc t={} {}", inc.0, op_hex(&inc.1)));
                    line(&format!("dec t={} {}", dec.0, op_hex(&dec.1)));
                    line(&format!("cmp t={} {}", cmp.0, op_hex(&cmp.1)));
                    line(&format!("regs ind=r{induction} trips=r{trips} kc=r{kc}"));
                }
            }
        }
        out
    }

    /// Extracts and parses the certificate embedded in assembly `source`.
    ///
    /// Returns `Ok(None)` when the source carries no certificate lines at
    /// all (an uncertified program, as opposed to a corrupt certificate).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first malformed
    /// directive.
    pub fn parse(source: &str) -> Result<Option<ScheduleCertificate>, String> {
        let mut directives: Vec<&str> = Vec::new();
        for raw in source.lines() {
            if let Some(rest) = raw.trim_start().strip_prefix(CERT_PREFIX) {
                directives.push(rest.trim());
            }
        }
        if directives.is_empty() {
            return Ok(None);
        }

        let kv = |tok: &str, key: &str| -> Result<String, String> {
            tok.strip_prefix(key)
                .and_then(|s| s.strip_prefix('='))
                .map(str::to_string)
                .ok_or_else(|| format!("expected {key}=..., got {tok:?}"))
        };
        let num = |tok: &str, key: &str| -> Result<u32, String> {
            let v = kv(tok, key)?;
            v.parse().map_err(|e| format!("bad {key}={v:?}: {e}"))
        };
        let reg = |tok: &str, key: &str| -> Result<u16, String> {
            let v = kv(tok, key)?;
            let v = v
                .strip_prefix('r')
                .ok_or_else(|| format!("bad {key}={v:?}: expected r<N>"))?;
            v.parse().map_err(|e| format!("bad {key} register: {e}"))
        };

        let mut lines = directives.into_iter();
        let header = lines.next().expect("non-empty");
        let mut toks = header.split_whitespace();
        if toks.next() != Some("v1") {
            return Err(format!("unsupported certificate version in {header:?}"));
        }
        let width = num(toks.next().ok_or("missing width")?, "width")?;
        let region_count = num(toks.next().ok_or("missing regions")?, "regions")?;

        // The inc/dec/cmp placements of a pipelined region still being
        // assembled, each an optional (row, op) pair.
        type PipeParts = (
            Option<(u32, DataOp)>,
            Option<(u32, DataOp)>,
            Option<(u32, DataOp)>,
        );

        let mut regions: Vec<Region> = Vec::new();
        // Trailing fields of a pipelined region still being assembled.
        let mut pipe_regs: Option<(u16, u16, u16)> = None;
        let mut pipe_parts: Option<PipeParts> = None;

        let finish_pipe = |regions: &mut Vec<Region>,
                           parts: &mut Option<PipeParts>,
                           regs: &mut Option<(u16, u16, u16)>|
         -> Result<(), String> {
            if let Some(Region::Pipelined {
                inc,
                dec,
                cmp,
                induction,
                trips,
                kc,
                ..
            }) = regions.last_mut()
            {
                let (pi, pd, pc) = parts.take().ok_or("pipe region missing inc/dec/cmp")?;
                *inc = pi.ok_or("pipe region missing inc")?;
                *dec = pd.ok_or("pipe region missing dec")?;
                *cmp = pc.ok_or("pipe region missing cmp")?;
                let (ri, rt, rk) = regs.take().ok_or("pipe region missing regs")?;
                *induction = ri;
                *trips = rt;
                *kc = rk;
            }
            Ok(())
        };

        for line in lines {
            let mut toks = line.split_whitespace();
            let head = match toks.next() {
                Some(h) => h,
                None => continue,
            };
            match head {
                "block" => {
                    if pipe_parts.is_some() {
                        finish_pipe(&mut regions, &mut pipe_parts, &mut pipe_regs)?;
                    }
                    let base = num(toks.next().ok_or("block missing base")?, "base")?;
                    let rows = num(toks.next().ok_or("block missing rows")?, "rows")?;
                    let term_s = kv(toks.next().ok_or("block missing term")?, "term")?;
                    let mut parts = term_s.split(':');
                    let term = match parts.next() {
                        Some("goto") => TermClaim::Goto(
                            parts
                                .next()
                                .ok_or("goto missing target")?
                                .parse()
                                .map_err(|e| format!("bad goto target: {e}"))?,
                        ),
                        Some("branch") => {
                            let mut three = || -> Result<u32, String> {
                                parts
                                    .next()
                                    .ok_or_else(|| "branch missing field".to_string())?
                                    .parse()
                                    .map_err(|e| format!("bad branch field: {e}"))
                            };
                            TermClaim::Branch {
                                fu: three()?,
                                taken: three()?,
                                not_taken: three()?,
                            }
                        }
                        Some("halt") => TermClaim::Halt,
                        other => return Err(format!("bad term {other:?}")),
                    };
                    regions.push(Region::Block {
                        base,
                        rows,
                        ops: Vec::new(),
                        cmp: None,
                        term,
                    });
                }
                "op" | "cmp" if matches!(regions.last(), Some(Region::Block { .. })) => {
                    let row = num(toks.next().ok_or("op missing row")?, "row")?;
                    let fu = num(toks.next().ok_or("op missing fu")?, "fu")?;
                    let mut spec = Vec::new();
                    let mut hex_tok = toks.next().ok_or("op missing image")?;
                    if let Ok(list) = kv(hex_tok, "spec") {
                        for part in list.split(',') {
                            spec.push(
                                part.parse()
                                    .map_err(|e| format!("bad spec address {part:?}: {e}"))?,
                            );
                        }
                        hex_tok = toks.next().ok_or("op missing image")?;
                    }
                    let op = op_from_hex(hex_tok)?;
                    if let Some(Region::Block { ops, cmp, .. }) = regions.last_mut() {
                        if head == "op" {
                            ops.push(OpClaim { op, row, fu, spec });
                        } else {
                            *cmp = Some(CmpClaim { op, row, fu });
                        }
                    }
                }
                "pipe" => {
                    if pipe_parts.is_some() {
                        finish_pipe(&mut regions, &mut pipe_parts, &mut pipe_regs)?;
                    }
                    let base = num(toks.next().ok_or("pipe missing base")?, "base")?;
                    let ii = num(toks.next().ok_or("pipe missing ii")?, "ii")?;
                    let stages = num(toks.next().ok_or("pipe missing stages")?, "stages")?;
                    let init_rows = num(toks.next().ok_or("pipe missing init")?, "init")?;
                    let exit = num(toks.next().ok_or("pipe missing exit")?, "exit")?;
                    let alias = num(toks.next().ok_or("pipe missing alias")?, "alias")?;
                    regions.push(Region::Pipelined {
                        base,
                        ii,
                        stages,
                        init_rows,
                        exit,
                        assume_no_alias: alias != 0,
                        nodes: Vec::new(),
                        inc: (0, DataOp::Nop),
                        dec: (0, DataOp::Nop),
                        cmp: (0, DataOp::Nop),
                        induction: 0,
                        trips: 0,
                        kc: 0,
                    });
                    pipe_parts = Some((None, None, None));
                    pipe_regs = None;
                }
                "node" | "inc" | "dec" | "cmp" => {
                    let t = num(toks.next().ok_or("node missing t")?, "t")?;
                    let op = op_from_hex(toks.next().ok_or("node missing image")?)?;
                    let parts = pipe_parts
                        .as_mut()
                        .ok_or_else(|| format!("{head} directive outside a pipe region"))?;
                    match head {
                        "node" => {
                            if let Some(Region::Pipelined { nodes, .. }) = regions.last_mut() {
                                nodes.push((t, op));
                            }
                        }
                        "inc" => parts.0 = Some((t, op)),
                        "dec" => parts.1 = Some((t, op)),
                        _ => parts.2 = Some((t, op)),
                    }
                }
                "regs" => {
                    if pipe_parts.is_none() {
                        return Err("regs directive outside a pipe region".to_string());
                    }
                    let ind = reg(toks.next().ok_or("regs missing ind")?, "ind")?;
                    let trips = reg(toks.next().ok_or("regs missing trips")?, "trips")?;
                    let kc = reg(toks.next().ok_or("regs missing kc")?, "kc")?;
                    pipe_regs = Some((ind, trips, kc));
                }
                other => return Err(format!("unknown certificate directive {other:?}")),
            }
        }
        if pipe_parts.is_some() {
            finish_pipe(&mut regions, &mut pipe_parts, &mut pipe_regs)?;
        }
        if regions.len() != region_count as usize {
            return Err(format!(
                "certificate declares {region_count} regions but carries {}",
                regions.len()
            ));
        }
        Ok(Some(ScheduleCertificate { width, regions }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluOp, CmpOp, Operand, UnOp};
    use crate::types::Reg;

    fn add(d: u16) -> DataOp {
        DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(1), Reg(d))
    }

    fn sample_block() -> Region {
        Region::Block {
            base: 3,
            rows: 4,
            ops: vec![
                OpClaim {
                    op: add(5),
                    row: 0,
                    fu: 0,
                    spec: vec![],
                },
                OpClaim {
                    op: DataOp::un(UnOp::Mov, Reg(5).into(), Reg(6)),
                    row: 1,
                    fu: 2,
                    spec: vec![9, 12],
                },
            ],
            cmp: Some(CmpClaim {
                op: DataOp::cmp(CmpOp::Lt, Reg(6).into(), Operand::imm_i32(10)),
                row: 2,
                fu: 1,
            }),
            term: TermClaim::Branch {
                fu: 1,
                taken: 3,
                not_taken: 9,
            },
        }
    }

    fn sample_pipe() -> Region {
        Region::Pipelined {
            base: 10,
            ii: 2,
            stages: 3,
            init_rows: 1,
            exit: 30,
            assume_no_alias: false,
            nodes: vec![
                (0, DataOp::load(Reg(1).into(), Reg(2).into(), Reg(3))),
                (1, add(4)),
            ],
            inc: (0, add(1)),
            dec: (
                1,
                DataOp::alu(AluOp::Isub, Reg(7).into(), Operand::imm_i32(1), Reg(7)),
            ),
            cmp: (
                1,
                DataOp::cmp(CmpOp::Gt, Reg(7).into(), Operand::imm_i32(1)),
            ),
            induction: 1,
            trips: 8,
            kc: 7,
        }
    }

    #[test]
    fn round_trips_block_regions() {
        let cert = ScheduleCertificate {
            width: 4,
            regions: vec![
                sample_block(),
                Region::Block {
                    base: 9,
                    rows: 1,
                    ops: vec![],
                    cmp: None,
                    term: TermClaim::Halt,
                },
            ],
        };
        let text = cert.render();
        assert_eq!(ScheduleCertificate::parse(&text).unwrap().unwrap(), cert);
    }

    #[test]
    fn round_trips_pipelined_regions() {
        let cert = ScheduleCertificate {
            width: 4,
            regions: vec![
                sample_block(),
                sample_pipe(),
                Region::Block {
                    base: 30,
                    rows: 1,
                    ops: vec![],
                    cmp: None,
                    term: TermClaim::Goto(0),
                },
            ],
        };
        let text = cert.render();
        assert_eq!(ScheduleCertificate::parse(&text).unwrap().unwrap(), cert);
    }

    #[test]
    fn survives_embedding_in_assembly_source() {
        let cert = ScheduleCertificate {
            width: 2,
            regions: vec![sample_block()],
        };
        let source = format!("{}\n.width 2\n00: nop ; halt\n", cert.render());
        assert_eq!(ScheduleCertificate::parse(&source).unwrap().unwrap(), cert);
    }

    #[test]
    fn absent_certificate_is_none() {
        assert_eq!(
            ScheduleCertificate::parse(".width 2\n00: nop").unwrap(),
            None
        );
    }

    #[test]
    fn corrupt_directives_are_errors() {
        assert!(ScheduleCertificate::parse("// ximd-cert: v2 width=2 regions=0").is_err());
        assert!(ScheduleCertificate::parse("// ximd-cert: v1 width=2 regions=1").is_err());
        assert!(ScheduleCertificate::parse(
            "// ximd-cert: v1 width=2 regions=1\n// ximd-cert: block base=0 rows=1 term=frob"
        )
        .is_err());
        // Truncated op image.
        assert!(ScheduleCertificate::parse(
            "// ximd-cert: v1 width=2 regions=1\n\
             // ximd-cert: block base=0 rows=1 term=halt\n\
             // ximd-cert: op row=0 fu=0 zzzz"
        )
        .is_err());
    }
}
