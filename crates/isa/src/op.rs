//! Data-path operations.
//!
//! Every instruction parcel carries exactly one data operation. XIMD-1 data
//! operations are 3-address, register-to-register (`a op b -> d`), with
//! single-cycle latency and no side effects other than the destination write
//! (compares write the issuing FU's condition code instead). Memory
//! operations use the paper's addressing forms: `load a,b,d` computes
//! `M(a+b) -> d` and `store a,b` performs `a -> M(b)`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::IsaError;
use crate::types::Reg;
use crate::value::Value;

/// A source operand: a register or an immediate constant.
///
/// The paper writes immediates with a `#` prefix (`#maxint`, `#1`); the
/// [`Display`](fmt::Display) impl follows suit.
///
/// # Example
///
/// ```
/// use ximd_isa::{Operand, Reg, Value};
///
/// assert_eq!(Operand::Reg(Reg(3)).to_string(), "r3");
/// assert_eq!(Operand::Imm(Value::I32(-2)).to_string(), "#-2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A global register.
    Reg(Reg),
    /// An immediate constant embedded in the parcel.
    Imm(Value),
}

impl Operand {
    /// Convenience constructor for an integer immediate.
    #[inline]
    pub fn imm_i32(v: i32) -> Operand {
        Operand::Imm(Value::I32(v))
    }

    /// Convenience constructor for a float immediate.
    #[inline]
    pub fn imm_f32(v: f32) -> Operand {
        Operand::Imm(Value::F32(v))
    }

    /// Returns the register if this operand reads one.
    #[inline]
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

/// Microarchitectural latency class of a data operation.
///
/// The paper's research model executes every operation in one cycle; a real
/// implementation would not (§6 discusses the idealizations). Each opcode
/// therefore carries a *latency class* — a statement about which hardware
/// resource evaluates it, not a cycle count. Cycle counts are assigned by a
/// timing model in the simulator (`ximd-sim`'s `TimingModel`), which maps
/// classes to latencies; the ISA only records the classification so every
/// layer (simulator, scheduler, linter) agrees on it.
///
/// # Example
///
/// ```
/// use ximd_isa::{AluOp, DataOp, LatencyClass, Operand, Reg};
///
/// let mul = DataOp::alu(AluOp::Imult, Reg(0).into(), Reg(1).into(), Reg(2));
/// assert_eq!(mul.latency_class(), LatencyClass::IntMul);
/// assert_eq!(DataOp::Nop.latency_class(), LatencyClass::Fixed);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LatencyClass {
    /// Single-cycle by construction: nops and other operations with no
    /// variable-latency resource behind them. Timing models must not
    /// stretch this class.
    Fixed,
    /// Simple integer/logical ALU (add, sub, min/max, logic, shifts,
    /// compares, moves, sign manipulation, conversions).
    Alu,
    /// Integer multiply.
    IntMul,
    /// Integer divide / remainder.
    IntDiv,
    /// Floating-point add/subtract/min/max (the FPU adder path).
    FloatAdd,
    /// Floating-point multiply.
    FloatMul,
    /// Floating-point divide.
    FloatDiv,
    /// Shared-memory access (loads and stores).
    Memory,
    /// I/O port access.
    Io,
}

impl LatencyClass {
    /// All latency classes, in declaration order.
    pub const ALL: [LatencyClass; 9] = [
        LatencyClass::Fixed,
        LatencyClass::Alu,
        LatencyClass::IntMul,
        LatencyClass::IntDiv,
        LatencyClass::FloatAdd,
        LatencyClass::FloatMul,
        LatencyClass::FloatDiv,
        LatencyClass::Memory,
        LatencyClass::Io,
    ];

    /// A short stable key for this class (used by `--timing latency:<spec>`
    /// parsers and report tags).
    pub fn key(self) -> &'static str {
        match self {
            LatencyClass::Fixed => "fixed",
            LatencyClass::Alu => "alu",
            LatencyClass::IntMul => "imul",
            LatencyClass::IntDiv => "idiv",
            LatencyClass::FloatAdd => "fadd",
            LatencyClass::FloatMul => "fmul",
            LatencyClass::FloatDiv => "fdiv",
            LatencyClass::Memory => "mem",
            LatencyClass::Io => "io",
        }
    }
}

impl fmt::Display for LatencyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(value: Reg) -> Self {
        Operand::Reg(value)
    }
}

/// Two-source ALU opcodes (`a op b -> d`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Integer add (wrapping).
    Iadd,
    /// Integer subtract (wrapping).
    Isub,
    /// Integer multiply (wrapping).
    Imult,
    /// Integer divide (truncating). Division by zero is a machine check.
    Idiv,
    /// Integer remainder. Division by zero is a machine check.
    Imod,
    /// Integer minimum.
    Imin,
    /// Integer maximum.
    Imax,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (count taken modulo 32).
    Shl,
    /// Logical shift right (count taken modulo 32).
    Shr,
    /// Arithmetic shift right (count taken modulo 32).
    Sar,
    /// Float add.
    Fadd,
    /// Float subtract.
    Fsub,
    /// Float multiply.
    Fmult,
    /// Float divide (IEEE semantics; divide by zero yields ±inf/NaN).
    Fdiv,
    /// Float minimum (IEEE-754 `minNum`-style: NaN loses to a number).
    Fmin,
    /// Float maximum (IEEE-754 `maxNum`-style: NaN loses to a number).
    Fmax,
}

impl AluOp {
    /// All ALU opcodes, in mnemonic-table order.
    pub const ALL: [AluOp; 19] = [
        AluOp::Iadd,
        AluOp::Isub,
        AluOp::Imult,
        AluOp::Idiv,
        AluOp::Imod,
        AluOp::Imin,
        AluOp::Imax,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Fadd,
        AluOp::Fsub,
        AluOp::Fmult,
        AluOp::Fdiv,
        AluOp::Fmin,
        AluOp::Fmax,
    ];

    /// Returns the assembler mnemonic for this opcode.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Iadd => "iadd",
            AluOp::Isub => "isub",
            AluOp::Imult => "imult",
            AluOp::Idiv => "idiv",
            AluOp::Imod => "imod",
            AluOp::Imin => "imin",
            AluOp::Imax => "imax",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Fadd => "fadd",
            AluOp::Fsub => "fsub",
            AluOp::Fmult => "fmult",
            AluOp::Fdiv => "fdiv",
            AluOp::Fmin => "fmin",
            AluOp::Fmax => "fmax",
        }
    }

    /// Returns `true` for the floating-point opcodes.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            AluOp::Fadd | AluOp::Fsub | AluOp::Fmult | AluOp::Fdiv | AluOp::Fmin | AluOp::Fmax
        )
    }

    /// The latency class of this opcode.
    pub fn latency_class(self) -> LatencyClass {
        match self {
            AluOp::Imult => LatencyClass::IntMul,
            AluOp::Idiv | AluOp::Imod => LatencyClass::IntDiv,
            AluOp::Fadd | AluOp::Fsub | AluOp::Fmin | AluOp::Fmax => LatencyClass::FloatAdd,
            AluOp::Fmult => LatencyClass::FloatMul,
            AluOp::Fdiv => LatencyClass::FloatDiv,
            _ => LatencyClass::Alu,
        }
    }

    /// Evaluates `a op b` with the machine's single-cycle semantics.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::DivideByZero`] for integer division or remainder
    /// by zero; XIMD-1 has no trap architecture, so this is a machine check.
    pub fn eval(self, a: Value, b: Value) -> Result<Value, IsaError> {
        let ia = a.as_i32();
        let ib = b.as_i32();
        let fa = a.as_f32();
        let fb = b.as_f32();
        Ok(match self {
            AluOp::Iadd => Value::I32(ia.wrapping_add(ib)),
            AluOp::Isub => Value::I32(ia.wrapping_sub(ib)),
            AluOp::Imult => Value::I32(ia.wrapping_mul(ib)),
            AluOp::Idiv => {
                if ib == 0 {
                    return Err(IsaError::DivideByZero);
                }
                Value::I32(ia.wrapping_div(ib))
            }
            AluOp::Imod => {
                if ib == 0 {
                    return Err(IsaError::DivideByZero);
                }
                Value::I32(ia.wrapping_rem(ib))
            }
            AluOp::Imin => Value::I32(ia.min(ib)),
            AluOp::Imax => Value::I32(ia.max(ib)),
            AluOp::And => Value::I32(ia & ib),
            AluOp::Or => Value::I32(ia | ib),
            AluOp::Xor => Value::I32(ia ^ ib),
            AluOp::Shl => Value::I32(((ia as u32) << (ib as u32 & 31)) as i32),
            AluOp::Shr => Value::I32(((ia as u32) >> (ib as u32 & 31)) as i32),
            AluOp::Sar => Value::I32(ia >> (ib as u32 & 31)),
            AluOp::Fadd => Value::F32(fa + fb),
            AluOp::Fsub => Value::F32(fa - fb),
            AluOp::Fmult => Value::F32(fa * fb),
            AluOp::Fdiv => Value::F32(fa / fb),
            AluOp::Fmin => Value::F32(fa.min(fb)),
            AluOp::Fmax => Value::F32(fa.max(fb)),
        })
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One-source opcodes (`op a -> d`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Copy `a` to `d` unchanged.
    Mov,
    /// Integer negate (wrapping; `ineg(i32::MIN) == i32::MIN`).
    Ineg,
    /// Integer absolute value (wrapping; `iabs(i32::MIN) == i32::MIN`).
    Iabs,
    /// Bitwise NOT.
    Not,
    /// Float negate.
    Fneg,
    /// Float absolute value.
    Fabs,
    /// Convert integer to float (round to nearest).
    Itof,
    /// Convert float to integer (truncate; saturates at the i32 range).
    Ftoi,
}

impl UnOp {
    /// All unary opcodes, in mnemonic-table order.
    pub const ALL: [UnOp; 8] = [
        UnOp::Mov,
        UnOp::Ineg,
        UnOp::Iabs,
        UnOp::Not,
        UnOp::Fneg,
        UnOp::Fabs,
        UnOp::Itof,
        UnOp::Ftoi,
    ];

    /// Returns the assembler mnemonic for this opcode.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Mov => "mov",
            UnOp::Ineg => "ineg",
            UnOp::Iabs => "iabs",
            UnOp::Not => "not",
            UnOp::Fneg => "fneg",
            UnOp::Fabs => "fabs",
            UnOp::Itof => "itof",
            UnOp::Ftoi => "ftoi",
        }
    }

    /// The latency class of this opcode.
    ///
    /// Float negate/absolute-value are sign-bit manipulations, and the
    /// conversions share the FPU adder's normalization path, so only the
    /// latter are classed as float work.
    pub fn latency_class(self) -> LatencyClass {
        match self {
            UnOp::Itof | UnOp::Ftoi => LatencyClass::FloatAdd,
            _ => LatencyClass::Alu,
        }
    }

    /// Evaluates `op a`.
    pub fn eval(self, a: Value) -> Value {
        match self {
            UnOp::Mov => a,
            UnOp::Ineg => Value::I32(a.as_i32().wrapping_neg()),
            UnOp::Iabs => Value::I32(a.as_i32().wrapping_abs()),
            UnOp::Not => Value::I32(!a.as_i32()),
            UnOp::Fneg => Value::F32(-a.as_f32()),
            UnOp::Fabs => Value::F32(a.as_f32().abs()),
            UnOp::Itof => Value::F32(a.as_i32() as f32),
            UnOp::Ftoi => Value::I32(a.as_f32() as i32),
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Compare opcodes: set the issuing FU's condition code to `a op b`.
///
/// Compares are the *only* operations that write a condition code; every
/// other data operation leaves `CC_i` unchanged (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Integer equal.
    Eq,
    /// Integer not-equal.
    Ne,
    /// Integer signed less-than.
    Lt,
    /// Integer signed less-or-equal.
    Le,
    /// Integer signed greater-than.
    Gt,
    /// Integer signed greater-or-equal.
    Ge,
    /// Float equal (IEEE; NaN compares false).
    Feq,
    /// Float not-equal (IEEE; NaN compares true).
    Fne,
    /// Float less-than.
    Flt,
    /// Float less-or-equal.
    Fle,
    /// Float greater-than.
    Fgt,
    /// Float greater-or-equal.
    Fge,
}

impl CmpOp {
    /// All compare opcodes, in mnemonic-table order.
    pub const ALL: [CmpOp; 12] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Feq,
        CmpOp::Fne,
        CmpOp::Flt,
        CmpOp::Fle,
        CmpOp::Fgt,
        CmpOp::Fge,
    ];

    /// Returns the assembler mnemonic for this opcode.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
            CmpOp::Feq => "feq",
            CmpOp::Fne => "fne",
            CmpOp::Flt => "flt",
            CmpOp::Fle => "fle",
            CmpOp::Fgt => "fgt",
            CmpOp::Fge => "fge",
        }
    }

    /// Evaluates the comparison, producing the new condition-code value.
    pub fn eval(self, a: Value, b: Value) -> bool {
        let ia = a.as_i32();
        let ib = b.as_i32();
        let fa = a.as_f32();
        let fb = b.as_f32();
        match self {
            CmpOp::Eq => ia == ib,
            CmpOp::Ne => ia != ib,
            CmpOp::Lt => ia < ib,
            CmpOp::Le => ia <= ib,
            CmpOp::Gt => ia > ib,
            CmpOp::Ge => ia >= ib,
            CmpOp::Feq => fa == fb,
            CmpOp::Fne => fa != fb,
            CmpOp::Flt => fa < fb,
            CmpOp::Fle => fa <= fb,
            CmpOp::Fgt => fa > fb,
            CmpOp::Fge => fa >= fb,
        }
    }

    /// Returns the comparison with operands swapped (`a op b == b op.swap() a`).
    #[must_use]
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Feq => CmpOp::Feq,
            CmpOp::Fne => CmpOp::Fne,
            CmpOp::Flt => CmpOp::Fgt,
            CmpOp::Fle => CmpOp::Fge,
            CmpOp::Fgt => CmpOp::Flt,
            CmpOp::Fge => CmpOp::Fle,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The data-path half of an instruction parcel.
///
/// # Example
///
/// ```
/// use ximd_isa::{AluOp, DataOp, Operand, Reg};
///
/// let op = DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(1), Reg(0));
/// assert_eq!(op.to_string(), "iadd r0,#1,r0");
/// assert_eq!(op.dest(), Some(Reg(0)));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataOp {
    /// No data operation this cycle.
    #[default]
    Nop,
    /// Two-source ALU operation: `a op b -> d`.
    Alu {
        /// The opcode.
        op: AluOp,
        /// Source operand A.
        a: Operand,
        /// Source operand B.
        b: Operand,
        /// Destination register.
        d: Reg,
    },
    /// One-source operation: `op a -> d`.
    Un {
        /// The opcode.
        op: UnOp,
        /// Source operand.
        a: Operand,
        /// Destination register.
        d: Reg,
    },
    /// Compare: sets the issuing FU's condition code to `a op b`.
    Cmp {
        /// The comparison.
        op: CmpOp,
        /// Source operand A.
        a: Operand,
        /// Source operand B.
        b: Operand,
    },
    /// Memory load: `M(a + b) -> d`.
    Load {
        /// Base operand.
        a: Operand,
        /// Offset operand.
        b: Operand,
        /// Destination register.
        d: Reg,
    },
    /// Memory store: `a -> M(b)`.
    Store {
        /// The value stored.
        a: Operand,
        /// The address.
        b: Operand,
    },
    /// Read one word from an I/O port into `d` (used by the paper's
    /// Figure 12 non-blocking synchronization example; a port read returns
    /// zero until the device has data ready).
    PortIn {
        /// Port number.
        port: u8,
        /// Destination register.
        d: Reg,
    },
    /// Write operand `a` to an I/O port.
    PortOut {
        /// Port number.
        port: u8,
        /// The value written.
        a: Operand,
    },
}

impl DataOp {
    /// Builds an ALU operation.
    pub fn alu(op: AluOp, a: Operand, b: Operand, d: Reg) -> DataOp {
        DataOp::Alu { op, a, b, d }
    }

    /// Builds a unary operation.
    pub fn un(op: UnOp, a: Operand, d: Reg) -> DataOp {
        DataOp::Un { op, a, d }
    }

    /// Builds a compare operation.
    pub fn cmp(op: CmpOp, a: Operand, b: Operand) -> DataOp {
        DataOp::Cmp { op, a, b }
    }

    /// Builds a load: `M(a + b) -> d`.
    pub fn load(a: Operand, b: Operand, d: Reg) -> DataOp {
        DataOp::Load { a, b, d }
    }

    /// Builds a store: `a -> M(b)`.
    pub fn store(a: Operand, b: Operand) -> DataOp {
        DataOp::Store { a, b }
    }

    /// Returns the destination register written by this operation, if any.
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            DataOp::Alu { d, .. }
            | DataOp::Un { d, .. }
            | DataOp::Load { d, .. }
            | DataOp::PortIn { d, .. } => Some(d),
            _ => None,
        }
    }

    /// Returns the registers read by this operation (0, 1 or 2).
    pub fn sources(&self) -> Vec<Reg> {
        let mut regs = Vec::with_capacity(2);
        let mut push = |o: Operand| {
            if let Some(r) = o.reg() {
                regs.push(r);
            }
        };
        match *self {
            DataOp::Nop => {}
            DataOp::Alu { a, b, .. } | DataOp::Cmp { a, b, .. } | DataOp::Load { a, b, .. } => {
                push(a);
                push(b);
            }
            DataOp::Store { a, b } => {
                push(a);
                push(b);
            }
            DataOp::Un { a, .. } | DataOp::PortOut { a, .. } => push(a),
            DataOp::PortIn { .. } => {}
        }
        regs
    }

    /// Returns `true` if this operation writes a condition code.
    pub fn sets_cc(&self) -> bool {
        matches!(self, DataOp::Cmp { .. })
    }

    /// The latency class of this operation.
    ///
    /// Compares are classed as ALU work regardless of type: XIMD-1's
    /// condition codes are produced combinationally alongside the ALU
    /// result, and a timing model that stretched them would also have to
    /// stretch the CC distribution the paper defines as end-of-cycle.
    pub fn latency_class(&self) -> LatencyClass {
        match *self {
            DataOp::Nop => LatencyClass::Fixed,
            DataOp::Alu { op, .. } => op.latency_class(),
            DataOp::Un { op, .. } => op.latency_class(),
            DataOp::Cmp { .. } => LatencyClass::Alu,
            DataOp::Load { .. } | DataOp::Store { .. } => LatencyClass::Memory,
            DataOp::PortIn { .. } | DataOp::PortOut { .. } => LatencyClass::Io,
        }
    }

    /// Returns `true` if this operation touches memory.
    pub fn is_memory(&self) -> bool {
        matches!(self, DataOp::Load { .. } | DataOp::Store { .. })
    }

    /// Returns `true` for [`DataOp::Nop`].
    pub fn is_nop(&self) -> bool {
        matches!(self, DataOp::Nop)
    }

    /// Validates that every register named by this operation fits a register
    /// file of `num_regs` registers.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::RegisterOutOfRange`] on the first violation.
    pub fn validate(&self, num_regs: usize) -> Result<(), IsaError> {
        let check = |r: Reg| {
            if r.index() < num_regs {
                Ok(())
            } else {
                Err(IsaError::RegisterOutOfRange { reg: r, num_regs })
            }
        };
        for r in self.sources() {
            check(r)?;
        }
        if let Some(d) = self.dest() {
            check(d)?;
        }
        Ok(())
    }
}

impl fmt::Display for DataOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DataOp::Nop => write!(f, "nop"),
            DataOp::Alu { op, a, b, d } => write!(f, "{op} {a},{b},{d}"),
            DataOp::Un { op, a, d } => write!(f, "{op} {a},{d}"),
            DataOp::Cmp { op, a, b } => write!(f, "{op} {a},{b}"),
            DataOp::Load { a, b, d } => write!(f, "load {a},{b},{d}"),
            DataOp::Store { a, b } => write!(f, "store {a},{b}"),
            DataOp::PortIn { port, d } => write!(f, "in p{port},{d}"),
            DataOp::PortOut { port, a } => write!(f, "out {a},p{port}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i32) -> Value {
        Value::I32(v)
    }

    #[test]
    fn integer_arithmetic_matches_paper_semantics() {
        assert_eq!(AluOp::Iadd.eval(i(2), i(3)).unwrap(), i(5));
        assert_eq!(AluOp::Isub.eval(i(2), i(3)).unwrap(), i(-1));
        assert_eq!(AluOp::Imult.eval(i(-4), i(3)).unwrap(), i(-12));
        assert_eq!(AluOp::Idiv.eval(i(7), i(2)).unwrap(), i(3));
        assert_eq!(AluOp::Imod.eval(i(7), i(2)).unwrap(), i(1));
    }

    #[test]
    fn integer_overflow_wraps() {
        assert_eq!(AluOp::Iadd.eval(i(i32::MAX), i(1)).unwrap(), i(i32::MIN));
        assert_eq!(AluOp::Imult.eval(i(i32::MAX), i(2)).unwrap(), i(-2));
        assert_eq!(UnOp::Ineg.eval(i(i32::MIN)), i(i32::MIN));
    }

    #[test]
    fn divide_by_zero_is_machine_check() {
        assert_eq!(AluOp::Idiv.eval(i(1), i(0)), Err(IsaError::DivideByZero));
        assert_eq!(AluOp::Imod.eval(i(1), i(0)), Err(IsaError::DivideByZero));
    }

    #[test]
    fn min_max() {
        assert_eq!(AluOp::Imin.eval(i(3), i(-5)).unwrap(), i(-5));
        assert_eq!(AluOp::Imax.eval(i(3), i(-5)).unwrap(), i(3));
    }

    #[test]
    fn shifts_mask_count_to_five_bits() {
        assert_eq!(AluOp::Shl.eval(i(1), i(33)).unwrap(), i(2));
        assert_eq!(AluOp::Shr.eval(i(-1), i(28)).unwrap(), i(0xf));
        assert_eq!(AluOp::Sar.eval(i(-16), i(2)).unwrap(), i(-4));
    }

    #[test]
    fn float_arithmetic() {
        let f = |v: f32| Value::F32(v);
        assert_eq!(AluOp::Fadd.eval(f(1.5), f(2.5)).unwrap(), f(4.0));
        assert_eq!(
            AluOp::Fdiv.eval(f(1.0), f(0.0)).unwrap().as_f32(),
            f32::INFINITY
        );
        assert_eq!(AluOp::Fmin.eval(f(1.0), f(2.0)).unwrap(), f(1.0));
    }

    #[test]
    fn unary_ops() {
        assert_eq!(UnOp::Mov.eval(i(9)), i(9));
        assert_eq!(UnOp::Iabs.eval(i(-9)), i(9));
        assert_eq!(UnOp::Not.eval(i(0)), i(-1));
        assert_eq!(UnOp::Itof.eval(i(3)).as_f32(), 3.0);
        assert_eq!(UnOp::Ftoi.eval(Value::F32(3.9)), i(3));
        assert_eq!(UnOp::Ftoi.eval(Value::F32(-3.9)), i(-3));
    }

    #[test]
    fn ftoi_saturates() {
        assert_eq!(UnOp::Ftoi.eval(Value::F32(1e30)), i(i32::MAX));
        assert_eq!(UnOp::Ftoi.eval(Value::F32(-1e30)), i(i32::MIN));
        assert_eq!(UnOp::Ftoi.eval(Value::F32(f32::NAN)), i(0));
    }

    #[test]
    fn compares() {
        assert!(CmpOp::Lt.eval(i(-1), i(0)));
        assert!(!CmpOp::Lt.eval(i(0), i(0)));
        assert!(CmpOp::Le.eval(i(0), i(0)));
        assert!(CmpOp::Ne.eval(i(0), i(1)));
        assert!(CmpOp::Fgt.eval(Value::F32(2.0), Value::F32(1.0)));
        assert!(!CmpOp::Feq.eval(Value::F32(f32::NAN), Value::F32(f32::NAN)));
        assert!(CmpOp::Fne.eval(Value::F32(f32::NAN), Value::F32(f32::NAN)));
    }

    #[test]
    fn cmp_swapped_is_consistent() {
        for op in CmpOp::ALL {
            for (a, b) in [(i(1), i(2)), (i(2), i(1)), (i(3), i(3))] {
                assert_eq!(op.eval(a, b), op.swapped().eval(b, a), "{op} {a} {b}");
            }
        }
    }

    #[test]
    fn dataop_dest_and_sources() {
        let op = DataOp::alu(AluOp::Iadd, Reg(1).into(), Reg(2).into(), Reg(3));
        assert_eq!(op.dest(), Some(Reg(3)));
        assert_eq!(op.sources(), vec![Reg(1), Reg(2)]);

        let st = DataOp::store(Reg(4).into(), Operand::imm_i32(100));
        assert_eq!(st.dest(), None);
        assert_eq!(st.sources(), vec![Reg(4)]);

        assert!(DataOp::Nop.sources().is_empty());
        assert!(DataOp::cmp(CmpOp::Eq, Reg(0).into(), Reg(0).into()).sets_cc());
        assert!(DataOp::load(Reg(0).into(), Reg(1).into(), Reg(2)).is_memory());
    }

    #[test]
    fn dataop_display_matches_paper_listing_style() {
        let op = DataOp::alu(AluOp::Iadd, Reg(0).into(), Reg(1).into(), Reg(2));
        assert_eq!(op.to_string(), "iadd r0,r1,r2");
        let ld = DataOp::load(Operand::imm_i32(64), Reg(5).into(), Reg(6));
        assert_eq!(ld.to_string(), "load #64,r5,r6");
        assert_eq!(DataOp::Nop.to_string(), "nop");
    }

    #[test]
    fn validate_rejects_out_of_range_registers() {
        let op = DataOp::alu(AluOp::Iadd, Reg(10).into(), Reg(1).into(), Reg(2));
        assert!(op.validate(16).is_ok());
        assert_eq!(
            op.validate(8),
            Err(IsaError::RegisterOutOfRange {
                reg: Reg(10),
                num_regs: 8
            })
        );
        let bad_dest = DataOp::un(UnOp::Mov, Reg(0).into(), Reg(300));
        assert!(bad_dest.validate(256).is_err());
    }

    #[test]
    fn latency_classes_cover_every_opcode() {
        // Every opcode maps to a class, and the classification is stable:
        // nop is Fixed, memory ops are Memory, multiplies/divides are split
        // from the 1-cycle ALU path.
        assert_eq!(DataOp::Nop.latency_class(), LatencyClass::Fixed);
        for op in AluOp::ALL {
            let class = op.latency_class();
            if op.is_float() {
                assert!(
                    matches!(
                        class,
                        LatencyClass::FloatAdd | LatencyClass::FloatMul | LatencyClass::FloatDiv
                    ),
                    "{op} classed {class}"
                );
            } else {
                assert!(
                    matches!(
                        class,
                        LatencyClass::Alu | LatencyClass::IntMul | LatencyClass::IntDiv
                    ),
                    "{op} classed {class}"
                );
            }
        }
        assert_eq!(AluOp::Imult.latency_class(), LatencyClass::IntMul);
        assert_eq!(AluOp::Idiv.latency_class(), LatencyClass::IntDiv);
        assert_eq!(AluOp::Fdiv.latency_class(), LatencyClass::FloatDiv);
        for op in UnOp::ALL {
            assert!(matches!(
                op.latency_class(),
                LatencyClass::Alu | LatencyClass::FloatAdd
            ));
        }
        let ld = DataOp::load(Reg(0).into(), Reg(1).into(), Reg(2));
        assert_eq!(ld.latency_class(), LatencyClass::Memory);
        let st = DataOp::store(Reg(0).into(), Operand::imm_i32(4));
        assert_eq!(st.latency_class(), LatencyClass::Memory);
        assert_eq!(
            DataOp::PortIn { port: 0, d: Reg(0) }.latency_class(),
            LatencyClass::Io
        );
        // Stable keys, one per class, all distinct.
        use std::collections::HashSet;
        let keys: HashSet<&str> = LatencyClass::ALL.iter().map(|c| c.key()).collect();
        assert_eq!(keys.len(), LatencyClass::ALL.len());
    }

    #[test]
    fn mnemonics_are_unique() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for m in AluOp::ALL.iter().map(|o| o.mnemonic()) {
            assert!(seen.insert(m), "duplicate mnemonic {m}");
        }
        for m in UnOp::ALL.iter().map(|o| o.mnemonic()) {
            assert!(seen.insert(m), "duplicate mnemonic {m}");
        }
        for m in CmpOp::ALL.iter().map(|o| o.mnemonic()) {
            assert!(seen.insert(m), "duplicate mnemonic {m}");
        }
    }
}
