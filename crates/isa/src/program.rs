//! Wide instructions and instruction memory.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::IsaError;
use crate::parcel::Parcel;
use crate::types::{Addr, FuId};

/// One instruction-memory word: a parcel per functional unit.
///
/// On XIMD every FU has a private program counter, so the parcels stored at
/// one address need not execute together — each FU *i* fetches parcel *i*
/// from whatever address its own `PC_i` holds. On the companion VLIW machine
/// (vsim) the whole word executes as a unit.
pub type WideInstruction = Vec<Parcel>;

/// An XIMD program: instruction memory plus its machine width.
///
/// # Example
///
/// ```
/// use ximd_isa::{Addr, Parcel, Program};
///
/// let mut p = Program::new(4);
/// let a0 = p.push(vec![Parcel::goto(Addr(1)); 4]);
/// let a1 = p.push(vec![Parcel::halt(); 4]);
/// assert_eq!((a0, a1), (Addr(0), Addr(1)));
/// p.validate(16).unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Program {
    width: usize,
    instrs: Vec<WideInstruction>,
}

impl Program {
    /// Creates an empty program for a machine of `width` functional units.
    pub fn new(width: usize) -> Program {
        Program {
            width,
            instrs: Vec::new(),
        }
    }

    /// The machine width (parcels per instruction).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of wide instructions in memory.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` if the program holds no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Appends a wide instruction, returning its address.
    ///
    /// # Panics
    ///
    /// Panics if the parcel count differs from the machine width; programs
    /// are built by trusted tools (assembler, compiler) that size words
    /// correctly. Use [`Program::try_push`] for fallible insertion.
    pub fn push(&mut self, word: WideInstruction) -> Addr {
        self.try_push(word)
            .expect("wide instruction width must match program width")
    }

    /// Appends a wide instruction, returning its address.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::WidthMismatch`] if the parcel count differs from
    /// the machine width.
    pub fn try_push(&mut self, word: WideInstruction) -> Result<Addr, IsaError> {
        if word.len() != self.width {
            return Err(IsaError::WidthMismatch {
                got: word.len(),
                expected: self.width,
            });
        }
        let addr = Addr(self.instrs.len() as u32);
        self.instrs.push(word);
        Ok(addr)
    }

    /// Returns the wide instruction at `addr`.
    pub fn get(&self, addr: Addr) -> Option<&WideInstruction> {
        self.instrs.get(addr.index())
    }

    /// Returns the parcel functional unit `fu` would fetch from `addr`.
    pub fn parcel(&self, addr: Addr, fu: FuId) -> Option<&Parcel> {
        self.instrs
            .get(addr.index())
            .and_then(|w| w.get(fu.index()))
    }

    /// Returns a mutable reference to the parcel at (`addr`, `fu`).
    pub fn parcel_mut(&mut self, addr: Addr, fu: FuId) -> Option<&mut Parcel> {
        self.instrs
            .get_mut(addr.index())
            .and_then(|w| w.get_mut(fu.index()))
    }

    /// Iterates over `(Addr, &WideInstruction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &WideInstruction)> {
        self.instrs
            .iter()
            .enumerate()
            .map(|(i, w)| (Addr(i as u32), w))
    }

    /// Validates every parcel against this program's length, its width and a
    /// register file of `num_regs` registers.
    ///
    /// # Errors
    ///
    /// Returns the first register, FU or branch-target range violation.
    pub fn validate(&self, num_regs: usize) -> Result<(), IsaError> {
        let len = self.instrs.len() as u32;
        for word in &self.instrs {
            if word.len() != self.width {
                return Err(IsaError::WidthMismatch {
                    got: word.len(),
                    expected: self.width,
                });
            }
            for parcel in word {
                parcel.validate(len, self.width, num_regs)?;
            }
        }
        Ok(())
    }

    /// Total number of non-nop data operations (static count).
    pub fn static_ops(&self) -> usize {
        self.instrs
            .iter()
            .flatten()
            .filter(|p| !p.data.is_nop())
            .count()
    }

    /// Static code size in parcels (len × width).
    pub fn static_parcels(&self) -> usize {
        self.instrs.len() * self.width
    }
}

impl fmt::Display for Program {
    /// Renders a compact listing: one line per address, parcels separated by
    /// `‖`. The paper's boxed multi-column listing lives in `ximd-asm`'s
    /// listing printer; this form is for debugging.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (addr, word) in self.iter() {
            write!(f, "{addr} ")?;
            for (i, parcel) in word.iter().enumerate() {
                if i > 0 {
                    write!(f, " \u{2016} ")?;
                }
                write!(f, "{parcel}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{CondSource, ControlOp};
    use crate::op::{AluOp, DataOp, Operand};
    use crate::types::Reg;

    fn two_wide() -> Program {
        let mut p = Program::new(2);
        p.push(vec![Parcel::goto(Addr(1)), Parcel::goto(Addr(1))]);
        p.push(vec![Parcel::halt(), Parcel::halt()]);
        p
    }

    #[test]
    fn push_assigns_sequential_addresses() {
        let p = two_wide();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.width(), 2);
    }

    #[test]
    fn try_push_rejects_wrong_width() {
        let mut p = Program::new(4);
        assert_eq!(
            p.try_push(vec![Parcel::halt(); 3]),
            Err(IsaError::WidthMismatch {
                got: 3,
                expected: 4
            })
        );
    }

    #[test]
    #[should_panic(expected = "width")]
    fn push_panics_on_wrong_width() {
        Program::new(2).push(vec![Parcel::halt()]);
    }

    #[test]
    fn parcel_lookup_by_fu() {
        let mut p = Program::new(2);
        let op = DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(1), Reg(0));
        p.push(vec![Parcel::data(op, ControlOp::Halt), Parcel::halt()]);
        assert_eq!(p.parcel(Addr(0), FuId(0)).unwrap().data, op);
        assert!(p.parcel(Addr(0), FuId(1)).unwrap().data.is_nop());
        assert!(p.parcel(Addr(1), FuId(0)).is_none());
        assert!(p.parcel(Addr(0), FuId(2)).is_none());
    }

    #[test]
    fn validate_catches_bad_branch_target() {
        let mut p = Program::new(1);
        p.push(vec![Parcel::goto(Addr(9))]);
        assert!(matches!(
            p.validate(8),
            Err(IsaError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn validate_catches_bad_cond_fu() {
        let mut p = Program::new(2);
        p.push(vec![
            Parcel::data(
                DataOp::Nop,
                ControlOp::branch(CondSource::Cc(FuId(3)), Addr(0), Addr(0)),
            ),
            Parcel::halt(),
        ]);
        assert!(matches!(p.validate(8), Err(IsaError::FuOutOfRange { .. })));
    }

    #[test]
    fn static_counts() {
        let mut p = Program::new(2);
        let op = DataOp::alu(AluOp::Iadd, Reg(0).into(), Operand::imm_i32(1), Reg(0));
        p.push(vec![Parcel::data(op, ControlOp::Halt), Parcel::halt()]);
        p.push(vec![Parcel::halt(), Parcel::halt()]);
        assert_eq!(p.static_ops(), 1);
        assert_eq!(p.static_parcels(), 4);
    }

    #[test]
    fn display_lists_every_address() {
        let p = two_wide();
        let text = p.to_string();
        assert!(text.contains("00: "));
        assert!(text.contains("01: "));
        assert!(text.contains("halt"));
    }

    #[test]
    fn iter_yields_addressed_words() {
        let p = two_wide();
        let addrs: Vec<Addr> = p.iter().map(|(a, _)| a).collect();
        assert_eq!(addrs, vec![Addr(0), Addr(1)]);
    }
}
