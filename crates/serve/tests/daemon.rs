//! End-to-end daemon tests: a real server on a loopback socket, a real
//! client, every protocol op.

use ximd_serve::{json, spawn, Client, Message, ServerConfig};

const SRC: &str = "\
.width 2
loop:
  fu0: lt r0,#6      ; -> next
  fu1: iadd r1,r0,r1 ; -> next
next:
  fu0: iadd r0,#1,r0 ; if cc0 loop | done
  fu1: nop           ; if cc0 loop | done
done:
  fu0: nop ; halt
  fu1: nop ; halt
";

fn client(threads: usize) -> (Client, ximd_serve::ServerHandle) {
    let handle = spawn(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
    })
    .expect("daemon spawns");
    let client = Client::connect(handle.addr()).expect("client connects");
    (client, handle)
}

#[test]
fn second_submission_reports_cache_hits_and_identical_stats() {
    let (mut c, handle) = client(2);
    c.ping().expect("ping");

    let first = c.simulate_source(SRC, "decoded").expect("first run");
    assert_eq!(first.get("cached_program"), Some("false"));
    assert_eq!(first.get("cached_decode"), Some("false"));

    let second = c.simulate_source(SRC, "decoded").expect("second run");
    assert_eq!(second.get("cached_program"), Some("true"));
    assert_eq!(second.get("cached_decode"), Some("true"));
    assert_eq!(second.get("hash"), first.get("hash"));
    assert_eq!(second.body, first.body, "identical stats bodies");

    // The stats endpoint corroborates the per-response flags.
    let stats = c.stats().expect("stats");
    let stages = stats
        .lines()
        .find(|l| l.contains("assemble_hits"))
        .expect("stages line");
    assert_eq!(json::u64_field(stages, "assemble_hits"), Some(1));
    assert_eq!(json::u64_field(stages, "assemble_misses"), Some(1));
    assert_eq!(json::u64_field(stages, "decode_hits"), Some(1));
    assert_eq!(json::u64_field(stages, "decode_misses"), Some(1));

    c.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn workload_runs_agree_across_backends_and_cache_decode() {
    let (mut c, handle) = client(2);
    let interp = c
        .simulate_workload("minmax", 16, 5, "interp")
        .expect("interp");
    let decoded = c
        .simulate_workload("minmax", 16, 5, "decoded")
        .expect("decoded");
    let lanes = c
        .simulate_workload("minmax", 16, 5, "lanes")
        .expect("lanes");
    assert_eq!(interp.body, decoded.body);
    assert_eq!(interp.body, lanes.body);
    assert_eq!(interp.get("backend"), Some("interp"));
    assert_eq!(decoded.get("backend"), Some("decoded"));
    assert_eq!(lanes.get("backend"), Some("lanes"));
    // interp never consults the decode cache; decoded missed then lanes hit.
    assert_eq!(interp.get("cached_decode"), Some("false"));
    assert_eq!(decoded.get("cached_decode"), Some("false"));
    assert_eq!(lanes.get("cached_decode"), Some("true"));
    // An omitted backend header means auto, which picks the decoded fast
    // path for a plain single-machine run.
    let auto = c
        .call_ok(
            &Message::request("simulate")
                .with("workload", "minmax")
                .with("n", "16")
                .with("seed", "5"),
        )
        .expect("auto");
    assert_eq!(auto.get("backend"), Some("decoded"));
    assert_eq!(auto.body, interp.body);

    // The stats op reports per-backend run and decode-cache counters.
    let stats = c.stats().expect("stats");
    let line = stats
        .lines()
        .find(|l| l.contains("\"backends\""))
        .expect("backends line");
    for piece in [
        "\"interp\": {\"runs\": 1, \"decode_cache_hits\": 0}",
        "\"decoded\": {\"runs\": 2, \"decode_cache_hits\": 1}",
        "\"lanes\": {\"runs\": 1, \"decode_cache_hits\": 1}",
    ] {
        assert!(line.contains(piece), "missing {piece} in {line}");
    }
    c.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn lint_reports_and_caches() {
    let (mut c, handle) = client(1);
    let first = c.lint(SRC).expect("lint");
    assert_eq!(first.get("cached_lint"), Some("false"));
    assert_eq!(first.get("errors"), Some("false"));
    let second = c.lint(SRC).expect("lint again");
    assert_eq!(second.get("cached_lint"), Some("true"));
    assert_eq!(second.get("cached_program"), Some("true"));

    let err = c.lint(".width 1\nmain:\n  fu0: bogus ; halt\n");
    assert!(err.is_err(), "assembly failure surfaces as remote error");
    c.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn batch_shards_across_single_worker_without_deadlock() {
    // threads=1 is the adversarial case: the connection handler occupies
    // the only worker, so its shards must be self-drained.
    let (mut c, handle) = client(1);
    let req = Message::request("batch")
        .with("workload", "bitcount")
        .with("lanes", "6")
        .with("n", "8")
        .with("backend", "lanes");
    let resp = c.call_ok(&req).expect("batch runs");
    let body = String::from_utf8(resp.body).expect("utf-8 body");
    assert_eq!(json::u64_field(&body, "lanes"), Some(6));
    assert!(json::u64_field(&body, "total_cycles").unwrap() > 0);

    // Per-lane results must equal solo runs of the same seeds.
    for lane in 0..3u64 {
        let solo = c
            .simulate_workload("bitcount", 8, lane, "decoded")
            .expect("solo");
        let solo_body = String::from_utf8(solo.body).expect("utf-8");
        let solo_cycles = json::u64_field(&solo_body, "cycles").unwrap();
        let lane_cycles: Vec<u64> = body
            .split("\"lane_cycles\": [")
            .nth(1)
            .and_then(|rest| rest.split(']').next())
            .expect("lane_cycles array")
            .split(", ")
            .map(|v| v.parse().unwrap())
            .collect();
        assert_eq!(lane_cycles.len(), 6);
        assert_eq!(lane_cycles[lane as usize], solo_cycles);
    }
    c.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn snapshot_resume_round_trips_bit_exactly() {
    let (mut c, handle) = client(2);
    // Uninterrupted baseline.
    let solo = c
        .simulate_workload("livermore", 24, 11, "interp")
        .expect("solo run");

    // Snapshot mid-flight, then resume to completion.
    let snap = c
        .call_ok(
            &Message::request("snapshot")
                .with("workload", "livermore")
                .with("n", "24")
                .with("seed", "11")
                .with("upto", "17"),
        )
        .expect("snapshot");
    assert_eq!(snap.get("complete"), Some("false"));
    assert_eq!(snap.get("cycle"), Some("17"));
    let budget = snap.get("budget").expect("budget header").to_string();

    let mut resume = Message::request("resume")
        .with("budget", &budget)
        .with("backend", "interp");
    resume.body = snap.body.clone();
    let resumed = c.call_ok(&resume).expect("resume");
    assert_eq!(resumed.get("complete"), Some("true"));
    assert_eq!(
        resumed.body, solo.body,
        "resumed run must match uninterrupted stats bit-for-bit"
    );
    assert_eq!(resumed.get("hash"), solo.get("hash"));

    // Same under a stalling timing model.
    let solo_t = c
        .call_ok(
            &Message::request("simulate")
                .with("workload", "livermore")
                .with("n", "24")
                .with("seed", "11")
                .with("backend", "interp")
                .with("timing", "latency:mem=4"),
        )
        .expect("timed solo");
    let snap_t = c
        .call_ok(
            &Message::request("snapshot")
                .with("workload", "livermore")
                .with("n", "24")
                .with("seed", "11")
                .with("timing", "latency:mem=4")
                .with("upto", "33"),
        )
        .expect("timed snapshot");
    let mut resume_t = Message::request("resume")
        .with("budget", snap_t.get("budget").unwrap())
        .with("backend", "interp");
    resume_t.body = snap_t.body.clone();
    let resumed_t = c.call_ok(&resume_t).expect("timed resume");
    assert_eq!(resumed_t.body, solo_t.body);

    c.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

#[test]
fn usage_errors_are_typed() {
    let (mut c, handle) = client(1);
    let bad_backend = c
        .call(
            &Message::request("simulate")
                .with("workload", "minmax")
                .with("backend", "warp"),
        )
        .expect("transport ok");
    assert!(!bad_backend.is_ok());
    assert_eq!(bad_backend.get("code"), Some("usage"));
    assert!(
        bad_backend
            .get("error")
            .unwrap()
            .contains("unknown backend"),
        "{:?}",
        bad_backend.get("error")
    );

    // The retired engine: spelling is rejected with a pointer, not
    // silently accepted or treated as an unknown header.
    let old_spelling = c
        .call(
            &Message::request("simulate")
                .with("workload", "minmax")
                .with("engine", "decoded"),
        )
        .expect("transport ok");
    assert_eq!(old_spelling.get("code"), Some("usage"));
    assert!(
        old_spelling
            .get("error")
            .unwrap()
            .contains("backend: NAME|auto"),
        "{:?}",
        old_spelling.get("error")
    );

    // Asking an ideal-only backend for a non-ideal timing model is the
    // uniform capability-mismatch rejection.
    let mismatch = c
        .call(
            &Message::request("simulate")
                .with("workload", "minmax")
                .with("backend", "decoded")
                .with("timing", "latency:mem=4"),
        )
        .expect("transport ok");
    assert_eq!(mismatch.get("code"), Some("usage"));
    assert_eq!(
        mismatch.get("error"),
        Some("backend \"decoded\" does not support non-ideal timing models")
    );

    let no_op = c
        .call(&Message::default().with("x", "y"))
        .expect("transport ok");
    assert_eq!(no_op.get("code"), Some("usage"));

    let bad_workload = c
        .call(&Message::request("simulate").with("workload", "fibonacci"))
        .expect("transport ok");
    assert_eq!(bad_workload.get("code"), Some("usage"));
    c.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}
