//! Content-addressed artifact cache.
//!
//! One source text flows through up to four derivation stages before it
//! can execute: assembly (text → [`Program`]), lint (program →
//! [`Analysis`] report), certify (program + embedded schedule certificate
//! → [`CertifyOutcome`] report) and decode (program → [`DecodedProgram`]
//! execution tables). The [`ArtifactStore`] memoizes each stage under an
//! FNV-1a content hash, so a program submitted twice skips every stage
//! already done — the second `simulate` of the same source performs zero
//! parsing and zero lowering, it just tiles fresh machine state.
//!
//! Assembly and lint are keyed by the *source text*; decode and certify
//! are keyed by the *program contents* ([`program_hash`]), because those
//! results depend only on what was assembled — resubmitting a compiled
//! program under a new file name or with reflowed comments still hits.
//!
//! Per-stage hit/miss counters are first-class: every store operation
//! reports whether it hit, the daemon forwards that in each response, and
//! the `stats` endpoint exposes the running totals — which is how the CI
//! smoke test *proves* the second submission skipped the decode stage
//! instead of trusting that it did.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ximd_analysis::{certify_assembly, lint_assembly, Analysis, AnalysisConfig, CertifyOutcome};
use ximd_asm::{assemble, AsmError, Assembly};
use ximd_isa::cert::CERT_PREFIX;
use ximd_isa::{encode::encode_parcel, Program};
use ximd_sim::DecodedProgram;

use crate::hash::{fnv1a, FNV_OFFSET, FNV_PRIME};

/// FNV-1a digest of a program's contents: width, length and every encoded
/// parcel. Two structurally equal programs hash equally regardless of how
/// they were produced (assembled from text, built by a workload generator,
/// or restored from a snapshot image).
#[must_use]
pub fn program_hash(program: &Program) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    mix(&(program.width() as u64).to_le_bytes());
    mix(&(program.len() as u64).to_le_bytes());
    for (_, instr) in program.iter() {
        for parcel in instr {
            // Every stored program passed `Program::validate`, so encoding
            // cannot fail; an unencodable parcel would have been rejected
            // long before it reached a cache.
            let word = encode_parcel(parcel).expect("validated parcel encodes");
            mix(&word.to_le_bytes());
        }
    }
    h
}

/// Monotonic hit/miss counters for each derivation stage. Shared across
/// worker threads; all updates are relaxed atomics (the counters order
/// nothing, they only count).
#[derive(Default)]
pub struct StageCounters {
    assemble_hits: AtomicU64,
    assemble_misses: AtomicU64,
    lint_hits: AtomicU64,
    lint_misses: AtomicU64,
    decode_hits: AtomicU64,
    decode_misses: AtomicU64,
    certify_hits: AtomicU64,
    certify_misses: AtomicU64,
}

impl StageCounters {
    fn count(&self, stage: Stage, hit: bool) {
        let counter = match (stage, hit) {
            (Stage::Assemble, true) => &self.assemble_hits,
            (Stage::Assemble, false) => &self.assemble_misses,
            (Stage::Lint, true) => &self.lint_hits,
            (Stage::Lint, false) => &self.lint_misses,
            (Stage::Decode, true) => &self.decode_hits,
            (Stage::Decode, false) => &self.decode_misses,
            (Stage::Certify, true) => &self.certify_hits,
            (Stage::Certify, false) => &self.certify_misses,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy as plain integers (for JSON emission).
    #[must_use]
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            assemble_hits: self.assemble_hits.load(Ordering::Relaxed),
            assemble_misses: self.assemble_misses.load(Ordering::Relaxed),
            lint_hits: self.lint_hits.load(Ordering::Relaxed),
            lint_misses: self.lint_misses.load(Ordering::Relaxed),
            decode_hits: self.decode_hits.load(Ordering::Relaxed),
            decode_misses: self.decode_misses.load(Ordering::Relaxed),
            certify_hits: self.certify_hits.load(Ordering::Relaxed),
            certify_misses: self.certify_misses.load(Ordering::Relaxed),
        }
    }
}

#[derive(Clone, Copy)]
enum Stage {
    Assemble,
    Lint,
    Decode,
    Certify,
}

/// Plain-integer view of [`StageCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageSnapshot {
    pub assemble_hits: u64,
    pub assemble_misses: u64,
    pub lint_hits: u64,
    pub lint_misses: u64,
    pub decode_hits: u64,
    pub decode_misses: u64,
    pub certify_hits: u64,
    pub certify_misses: u64,
}

/// Everything derived from one source text, cached under its content hash.
pub struct ProgramArtifact {
    /// FNV-1a digest of the source.
    pub hash: u64,
    /// The source itself — kept so lookups can verify a hash hit against
    /// the full text (FNV-1a is not collision-resistant; see
    /// [`crate::hash`]).
    pub source: String,
    /// The assembled program plus symbol table and source map.
    pub assembly: Assembly,
    lint: Mutex<Option<Arc<Analysis>>>,
}

/// Content-addressed cache of assembled programs, lint reports and decoded
/// tables, with per-stage hit/miss accounting. Designed to sit behind an
/// [`Arc`]: all interior state is locked or atomic.
///
/// Every lookup returns `(value, hit)`; the `hit` flag is what the daemon
/// reports per response.
///
/// # Example
///
/// ```
/// use ximd_serve::ArtifactStore;
///
/// let store = ArtifactStore::new();
/// let src = ".width 1\nmain:\n  fu0: nop ; halt\n";
/// let (first, hit1) = store.assemble(src)?;
/// let (again, hit2) = store.assemble(src)?;
/// assert_eq!(first.hash, again.hash);
/// assert_eq!((hit1, hit2), (false, true));
/// # Ok::<(), ximd_asm::AsmError>(())
/// ```
/// A cached decode: the exact program the tables were built from (decode
/// keys on program content, so a hit must verify against it) plus the
/// tables themselves.
type DecodedEntry = (Arc<Program>, Arc<DecodedProgram>);

/// A cached certify report: the program the certificate was checked
/// against (certify keys on program content, so a hit must verify
/// against it), the certificate lines that accompanied it, and the
/// outcome of the check.
type CertifiedEntry = (Arc<Program>, String, Arc<CertifyOutcome>);

#[derive(Default)]
pub struct ArtifactStore {
    entries: Mutex<HashMap<u64, Arc<ProgramArtifact>>>,
    decoded: Mutex<HashMap<(u64, usize), DecodedEntry>>,
    certified: Mutex<HashMap<u64, CertifiedEntry>>,
    counters: StageCounters,
}

/// The certificate comment lines of a source text, isolated so two
/// sources that assemble to the same program but carry different
/// certificates never share a cached certify report.
fn cert_lines(source: &str) -> String {
    source
        .lines()
        .filter(|line| line.trim_start().starts_with(CERT_PREFIX))
        .collect::<Vec<_>>()
        .join("\n")
}

impl ArtifactStore {
    #[must_use]
    pub fn new() -> ArtifactStore {
        ArtifactStore::default()
    }

    /// Returns the artifact for `source` and whether it was already
    /// cached, assembling on first sight. Assembly errors are not cached:
    /// a failing source re-parses (and re-fails) on every submission,
    /// which keeps error reporting simple and penalizes only broken
    /// clients.
    ///
    /// # Errors
    ///
    /// Any [`AsmError`] the assembler reports.
    pub fn assemble(&self, source: &str) -> Result<(Arc<ProgramArtifact>, bool), AsmError> {
        let hash = fnv1a(source.as_bytes());
        if let Some(entry) = self.entries.lock().unwrap().get(&hash) {
            if entry.source == source {
                self.counters.count(Stage::Assemble, true);
                return Ok((Arc::clone(entry), true));
            }
            // Genuine FNV collision: fall through and assemble fresh. The
            // colliding artifact stays cached; this one is returned
            // uncached, so correctness never depends on hash uniqueness.
        }
        self.counters.count(Stage::Assemble, false);
        let assembly = assemble(source)?;
        let artifact = Arc::new(ProgramArtifact {
            hash,
            source: source.to_string(),
            assembly,
            lint: Mutex::new(None),
        });
        let mut entries = self.entries.lock().unwrap();
        let slot = entries.entry(hash).or_insert_with(|| Arc::clone(&artifact));
        if slot.source == source {
            Ok((Arc::clone(slot), false))
        } else {
            Ok((artifact, false))
        }
    }

    /// Returns the lint report for an artifact and whether it was cached,
    /// running the analyzer on first request. The report is computed with
    /// the default [`AnalysisConfig`]; the daemon exposes no per-request
    /// analysis knobs, so one cached report serves every client.
    #[must_use]
    pub fn lint(&self, artifact: &ProgramArtifact) -> (Arc<Analysis>, bool) {
        let mut slot = artifact.lint.lock().unwrap();
        if let Some(report) = slot.as_ref() {
            self.counters.count(Stage::Lint, true);
            return (Arc::clone(report), true);
        }
        self.counters.count(Stage::Lint, false);
        let report = Arc::new(lint_assembly(
            &artifact.assembly,
            &AnalysisConfig::default(),
        ));
        *slot = Some(Arc::clone(&report));
        (report, false)
    }

    /// Returns the schedule-certificate verification report for an
    /// artifact and whether it was cached, running the certifier on first
    /// request. Keyed by program *contents* plus the certificate lines,
    /// so resubmitting the same compiled program (even under a different
    /// file name or with reflowed non-cert comments) hits the cache.
    #[must_use]
    pub fn certify(&self, artifact: &ProgramArtifact) -> (Arc<CertifyOutcome>, bool) {
        let program = &artifact.assembly.program;
        let key = program_hash(program);
        let cert = cert_lines(&artifact.source);
        let mut slot = self.certified.lock().unwrap();
        if let Some((stored, stored_cert, outcome)) = slot.get(&key) {
            if **stored == *program && *stored_cert == cert {
                self.counters.count(Stage::Certify, true);
                return (Arc::clone(outcome), true);
            }
        }
        self.counters.count(Stage::Certify, false);
        let outcome = Arc::new(certify_assembly(&artifact.source, &artifact.assembly));
        slot.insert(key, (Arc::new(program.clone()), cert, Arc::clone(&outcome)));
        (outcome, false)
    }

    /// Returns decoded execution tables for `program` lowered against a
    /// `num_regs`-register machine, and whether they were cached. Keyed by
    /// program *contents*, so the same tables serve a program whether it
    /// arrived as source text, as a named workload, or inside a snapshot
    /// image. A hash collision is disarmed by comparing the stored program
    /// before declaring a hit.
    #[must_use]
    pub fn decoded(&self, program: &Program, num_regs: usize) -> (Arc<DecodedProgram>, bool) {
        let key = (program_hash(program), num_regs);
        let mut slot = self.decoded.lock().unwrap();
        if let Some((stored, tables)) = slot.get(&key) {
            if **stored == *program {
                self.counters.count(Stage::Decode, true);
                return (Arc::clone(tables), true);
            }
        }
        self.counters.count(Stage::Decode, false);
        let tables = Arc::new(DecodedProgram::lower(program, num_regs));
        slot.insert(key, (Arc::new(program.clone()), Arc::clone(&tables)));
        (tables, false)
    }

    /// The stage hit/miss counters.
    #[must_use]
    pub fn counters(&self) -> &StageCounters {
        &self.counters
    }

    /// Number of distinct source programs cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct decoded-table entries cached.
    #[must_use]
    pub fn decoded_len(&self) -> usize {
        self.decoded.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "\
.width 2
loop:
  fu0: lt r0,#8      ; -> next
  fu1: iadd r1,r0,r1 ; -> next
next:
  fu0: iadd r0,#1,r0 ; if cc0 loop | done
  fu1: nop           ; if cc0 loop | done
done:
  fu0: nop ; halt
  fu1: nop ; halt
";

    #[test]
    fn second_submission_skips_every_stage() {
        let store = ArtifactStore::new();
        let (a, hit_a) = store.assemble(SRC).expect("assembles");
        let (lint_a, lhit_a) = store.lint(&a);
        let (dec_a, dhit_a) = store.decoded(&a.assembly.program, 16);
        assert!(!hit_a && !lhit_a && !dhit_a);

        let (b, hit_b) = store.assemble(SRC).expect("assembles");
        let (lint_b, lhit_b) = store.lint(&b);
        let (dec_b, dhit_b) = store.decoded(&b.assembly.program, 16);
        assert!(hit_b && lhit_b && dhit_b);

        assert!(Arc::ptr_eq(&a, &b));
        assert!(Arc::ptr_eq(&lint_a, &lint_b));
        assert!(Arc::ptr_eq(&dec_a, &dec_b));
        let c = store.counters().snapshot();
        assert_eq!((c.assemble_hits, c.assemble_misses), (1, 1));
        assert_eq!((c.lint_hits, c.lint_misses), (1, 1));
        assert_eq!((c.decode_hits, c.decode_misses), (1, 1));
        assert_eq!(store.len(), 1);
        assert_eq!(store.decoded_len(), 1);
    }

    #[test]
    fn decode_cache_is_program_keyed_not_source_keyed() {
        let store = ArtifactStore::new();
        // Same program text with different comments/whitespace assembles to
        // the same Program, so the decode stage hits even though the
        // assemble stage misses.
        let variant = SRC.replace("loop:", "loop: // hot loop");
        let (a, _) = store.assemble(SRC).expect("assembles");
        let (b, hit) = store.assemble(&variant).expect("assembles");
        assert!(!hit, "different text is a different source artifact");
        assert_eq!(
            program_hash(&a.assembly.program),
            program_hash(&b.assembly.program)
        );
        let (_, dhit_a) = store.decoded(&a.assembly.program, 16);
        let (_, dhit_b) = store.decoded(&b.assembly.program, 16);
        assert!(!dhit_a);
        assert!(dhit_b, "structurally equal programs share decoded tables");
    }

    #[test]
    fn distinct_register_counts_decode_separately() {
        let store = ArtifactStore::new();
        let (a, _) = store.assemble(SRC).expect("assembles");
        let (d16, _) = store.decoded(&a.assembly.program, 16);
        let (d32, _) = store.decoded(&a.assembly.program, 32);
        assert_eq!(d16.num_regs(), 16);
        assert_eq!(d32.num_regs(), 32);
        let c = store.counters().snapshot();
        assert_eq!((c.decode_hits, c.decode_misses), (0, 2));
    }

    #[test]
    fn certify_reports_are_program_keyed_and_cached() {
        let store = ArtifactStore::new();
        let (a, _) = store.assemble(SRC).expect("assembles");
        let (out_a, hit_a) = store.certify(&a);
        assert!(!hit_a);
        assert!(matches!(*out_a, CertifyOutcome::Missing));
        // Same program under different non-cert comments: assemble misses,
        // certify hits (keyed by program content + cert lines).
        let variant = SRC.replace("loop:", "loop: // hot loop");
        let (b, _) = store.assemble(&variant).expect("assembles");
        let (out_b, hit_b) = store.certify(&b);
        assert!(hit_b, "structurally equal programs share certify reports");
        assert!(Arc::ptr_eq(&out_a, &out_b));
        let c = store.counters().snapshot();
        assert_eq!((c.certify_hits, c.certify_misses), (1, 1));
    }

    #[test]
    fn assembly_errors_are_not_cached() {
        let store = ArtifactStore::new();
        assert!(store
            .assemble(".width 1\nmain:\n  fu0: bogus ; halt\n")
            .is_err());
        assert!(store
            .assemble(".width 1\nmain:\n  fu0: bogus ; halt\n")
            .is_err());
        assert!(store.is_empty());
        let c = store.counters().snapshot();
        assert_eq!((c.assemble_hits, c.assemble_misses), (0, 2));
    }
}
